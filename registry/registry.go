// Package registry implements the named-segment directory of the Mether
// library (paper §5: "The library provides named segments with
// capabilities") — and it is dogfooded: the directory itself lives in a
// Mether page, coordinated with the same primitives the paper's study
// arrives at.
//
//   - Writers lock the directory page, append an entry, unlock and PURGE
//     — the writer-side discipline of the sample user protocol.
//   - The entry count lives in the first word, so "anything new?" rides
//     the 32-byte short page.
//   - Lookup of a name that is not yet published can block on the
//     data-driven view until a publisher's purge transits the network,
//     instead of polling.
//
// Capabilities stored in the directory are bearer tokens: publishing one
// grants the segment's rights to every process that can attach the
// directory.
package registry

import (
	"errors"
	"fmt"

	"mether"
	"mether/internal/vm"
)

// Directory page layout.
const (
	offCount   = 0  // uint32 entry count (short region: cheap checks)
	offEntries = 32 // entry records start past the short region
	entrySize  = 128
	keySize    = 32
	capOffset  = keySize // capability blob within an entry

	// MaxEntries is the directory capacity of one page.
	MaxEntries = (vm.PageSize - offEntries) / entrySize
)

// Errors.
var (
	// ErrNotFound reports a lookup miss.
	ErrNotFound = errors.New("registry: name not found")
	// ErrFull reports a directory page out of entry slots.
	ErrFull = errors.New("registry: directory full")
	// ErrBadName reports an unusable registry key.
	ErrBadName = errors.New("registry: bad name")
	// ErrExists reports a duplicate publish.
	ErrExists = errors.New("registry: name already published")
)

// Create allocates the directory segment (one page, homed on host) and
// returns the capability processes use to Open it.
func Create(w *mether.World, name string, host int) (mether.Capability, error) {
	seg, err := w.CreateSegment("registry:"+name, 1, host)
	if err != nil {
		return mether.Capability{}, err
	}
	return seg.CapRW(), nil
}

// Handle is a process's attachment to a directory.
type Handle struct {
	env *mether.Env
	rw  *mether.Mapping // nil for read-only handles
	ro  *mether.Mapping
}

// Open attaches a directory. A Handle opened with an RW capability can
// publish; one opened with a read-only capability can only look up.
func Open(env *mether.Env, cap mether.Capability) (*Handle, error) {
	h := &Handle{env: env}
	ro, err := env.Attach(cap.ReadOnly(), mether.RO)
	if err != nil {
		return nil, fmt.Errorf("registry: attach ro: %w", err)
	}
	h.ro = ro
	if cap.Mode == mether.RW {
		rw, err := env.Attach(cap, mether.RW)
		if err != nil {
			return nil, fmt.Errorf("registry: attach rw: %w", err)
		}
		h.rw = rw
	}
	return h, nil
}

// Publish adds name -> cap to the directory and propagates the update.
func (h *Handle) Publish(name string, cap mether.Capability) error {
	if h.rw == nil {
		return fmt.Errorf("registry: read-only handle cannot publish")
	}
	if name == "" || len(name) >= keySize {
		return fmt.Errorf("%w: %q", ErrBadName, name)
	}
	blob, err := cap.MarshalBinary()
	if err != nil {
		return err
	}
	if len(blob) > entrySize-capOffset {
		return fmt.Errorf("%w: capability too large", ErrBadName)
	}

	// The writer locks the page, fills in the data, bumps the count and
	// issues a purge (the paper's writer discipline; the count bump is
	// the WriteGeneration analogue). A first lock on a remote host fails
	// with the remainder marked wanted (Figure-1 rule); touching the
	// full view demand-fetches it and the retry succeeds.
	lockA := h.rw.Addr(0, 0)
	if err := h.lockRetry(lockA); err != nil {
		return fmt.Errorf("registry: lock: %w", err)
	}
	defer func() { _ = h.rw.Unlock(lockA) }()

	count, err := h.rw.Load32(h.rw.Addr(0, offCount))
	if err != nil {
		return err
	}
	if int(count) >= MaxEntries {
		return ErrFull
	}
	// Reject duplicates.
	if _, idx, err := h.scan(h.rw, int(count), name); err == nil && idx >= 0 {
		return fmt.Errorf("%w: %q", ErrExists, name)
	}

	base := offEntries + int(count)*entrySize
	var key [keySize]byte
	copy(key[:], name)
	if err := h.rw.Write(h.rw.Addr(0, base), key[:]); err != nil {
		return err
	}
	if err := h.rw.Write(h.rw.Addr(0, base+capOffset), blob); err != nil {
		return err
	}
	if err := h.rw.Store32(h.rw.Addr(0, offCount), count+1); err != nil {
		return err
	}
	// Propagate the whole page: entries live beyond the short region.
	return h.rw.Purge(h.rw.Addr(0, 0))
}

// lockRetry takes the directory lock, demand-fetching absent pieces
// that a failed attempt marked wanted (the Figure-1 lock discipline).
func (h *Handle) lockRetry(a mether.Addr) error {
	const attempts = 64
	var err error
	for i := 0; i < attempts; i++ {
		if err = h.rw.Lock(a); err == nil {
			return nil
		}
		// Touch the full view: pulls the whole page (and ownership)
		// so the next attempt finds every subset present.
		if _, lerr := h.rw.Load32(h.rw.Addr(0, offEntries)); lerr != nil {
			return lerr
		}
	}
	return err
}

// Lookup finds a published capability, reading whatever directory copy
// is resident (it may be stale; use Wait for publication ordering).
func (h *Handle) Lookup(name string) (mether.Capability, error) {
	return h.lookupVia(false, name)
}

// LookupFresh purges the local copy first, forcing a fetch of the
// current directory before searching — the paper's active update.
func (h *Handle) LookupFresh(name string) (mether.Capability, error) {
	return h.lookupVia(true, name)
}

func (h *Handle) lookupVia(fresh bool, name string) (mether.Capability, error) {
	m := h.ro
	if fresh {
		if err := m.Purge(m.Addr(0, 0)); err != nil {
			return mether.Capability{}, err
		}
	}
	count, err := m.Load32(m.Addr(0, offCount).Short())
	if err != nil {
		return mether.Capability{}, err
	}
	cap, idx, err := h.scan(m, int(count), name)
	if err != nil {
		return mether.Capability{}, err
	}
	if idx < 0 {
		return mether.Capability{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return cap, nil
}

// Wait blocks until name is published, using the short page to watch the
// entry count and the data-driven view to sleep between updates — the
// final protocol's reader discipline instead of a polling loop.
func (h *Handle) Wait(name string) (mether.Capability, error) {
	m := h.ro
	shortCount := m.Addr(0, offCount).Short()
	for {
		cap, err := h.LookupFresh(name)
		if err == nil {
			return cap, nil
		}
		if !errors.Is(err, ErrNotFound) {
			return mether.Capability{}, err
		}
		// Nothing yet: purge the short view and sleep until the next
		// publisher purge transits.
		if err := m.Purge(shortCount); err != nil {
			return mether.Capability{}, err
		}
		if _, err := m.Load32(shortCount.DataDriven()); err != nil {
			return mether.Capability{}, err
		}
	}
}

// List returns all published names in publication order.
func (h *Handle) List() ([]string, error) {
	m := h.ro
	count, err := m.Load32(m.Addr(0, offCount).Short())
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, count)
	for i := 0; i < int(count) && i < MaxEntries; i++ {
		key, err := h.readKey(m, i)
		if err != nil {
			return nil, err
		}
		names = append(names, key)
	}
	return names, nil
}

// scan searches the first count entries for name, returning its
// capability and index (or -1).
func (h *Handle) scan(m *mether.Mapping, count int, name string) (mether.Capability, int, error) {
	for i := 0; i < count && i < MaxEntries; i++ {
		key, err := h.readKey(m, i)
		if err != nil {
			return mether.Capability{}, -1, err
		}
		if key != name {
			continue
		}
		blob := make([]byte, entrySize-capOffset)
		if err := m.Read(m.Addr(0, offEntries+i*entrySize+capOffset), blob); err != nil {
			return mether.Capability{}, -1, err
		}
		var cap mether.Capability
		if err := cap.UnmarshalBinary(blob); err != nil {
			return mether.Capability{}, -1, err
		}
		return cap, i, nil
	}
	return mether.Capability{}, -1, nil
}

func (h *Handle) readKey(m *mether.Mapping, i int) (string, error) {
	var key [keySize]byte
	if err := m.Read(m.Addr(0, offEntries+i*entrySize), key[:]); err != nil {
		return "", err
	}
	n := 0
	for n < keySize && key[n] != 0 {
		n++
	}
	return string(key[:n]), nil
}
