package registry

import (
	"errors"
	"strings"
	"testing"
	"time"

	"mether"
)

func newWorld(t *testing.T, hosts int) *mether.World {
	t.Helper()
	w := mether.NewWorld(mether.Config{Hosts: hosts, Pages: 16, Seed: 3})
	t.Cleanup(w.Shutdown)
	return w
}

func TestPublishLookupAcrossHosts(t *testing.T) {
	w := newWorld(t, 2)
	dir, err := Create(w, "main", 0)
	if err != nil {
		t.Fatal(err)
	}
	data, err := w.CreateSegment("data", 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	dataCap := data.CapRW()

	var got mether.Capability
	var lookupErr error
	w.Spawn(0, "publisher", func(env *mether.Env) {
		h, err := Open(env, dir)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if err := h.Publish("data", dataCap); err != nil {
			t.Errorf("publish: %v", err)
		}
	})
	w.Run()
	w.Spawn(1, "consumer", func(env *mether.Env) {
		h, err := Open(env, dir.ReadOnly())
		if err != nil {
			t.Errorf("open ro: %v", err)
			return
		}
		got, lookupErr = h.LookupFresh("data")
		if lookupErr != nil {
			return
		}
		// The fetched capability must actually grant access.
		m, err := env.Attach(got, mether.RW)
		if err != nil {
			t.Errorf("attach via registry capability: %v", err)
			return
		}
		if err := m.Store32(m.Addr(0, 0), 11); err != nil {
			t.Errorf("store via registry capability: %v", err)
		}
	})
	w.Run()
	if lookupErr != nil {
		t.Fatalf("lookup: %v", lookupErr)
	}
	if got.Segment != "data" {
		t.Errorf("capability segment = %q, want data", got.Segment)
	}
	if err := w.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestWaitBlocksUntilPublish(t *testing.T) {
	w := newWorld(t, 2)
	dir, _ := Create(w, "main", 0)
	late, _ := w.CreateSegment("late", 1, 0)
	lateCap := late.CapRO()

	var gotAt time.Duration
	var got mether.Capability
	w.Spawn(1, "waiter", func(env *mether.Env) {
		h, err := Open(env, dir.ReadOnly())
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		c, err := h.Wait("late")
		if err != nil {
			t.Errorf("wait: %v", err)
			return
		}
		got, gotAt = c, env.Now()
	})
	w.Spawn(0, "publisher", func(env *mether.Env) {
		h, err := Open(env, dir)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		env.SleepFor(300 * time.Millisecond) // publish late
		if err := h.Publish("late", lateCap); err != nil {
			t.Errorf("publish: %v", err)
		}
	})
	w.Run()
	if gotAt < 300*time.Millisecond {
		t.Errorf("wait returned at %v, before the publish", gotAt)
	}
	if got.Segment != "late" {
		t.Errorf("waited capability = %q", got.Segment)
	}
}

func TestListAndOrder(t *testing.T) {
	w := newWorld(t, 1)
	dir, _ := Create(w, "main", 0)
	segA, _ := w.CreateSegment("a", 1, 0)
	segB, _ := w.CreateSegment("b", 1, 0)
	var names []string
	w.Spawn(0, "p", func(env *mether.Env) {
		h, err := Open(env, dir)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		_ = h.Publish("first", segA.CapRO())
		_ = h.Publish("second", segB.CapRO())
		names, err = h.List()
		if err != nil {
			t.Errorf("list: %v", err)
		}
	})
	w.Run()
	if len(names) != 2 || names[0] != "first" || names[1] != "second" {
		t.Errorf("List = %v, want [first second]", names)
	}
}

func TestPublishValidation(t *testing.T) {
	w := newWorld(t, 1)
	dir, _ := Create(w, "main", 0)
	seg, _ := w.CreateSegment("s", 1, 0)
	w.Spawn(0, "p", func(env *mether.Env) {
		h, err := Open(env, dir)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if err := h.Publish("", seg.CapRO()); !errors.Is(err, ErrBadName) {
			t.Errorf("empty name err = %v, want ErrBadName", err)
		}
		if err := h.Publish(strings.Repeat("x", 40), seg.CapRO()); !errors.Is(err, ErrBadName) {
			t.Errorf("long name err = %v, want ErrBadName", err)
		}
		if err := h.Publish("dup", seg.CapRO()); err != nil {
			t.Errorf("publish: %v", err)
		}
		if err := h.Publish("dup", seg.CapRO()); !errors.Is(err, ErrExists) {
			t.Errorf("duplicate err = %v, want ErrExists", err)
		}
		if _, err := h.Lookup("missing"); !errors.Is(err, ErrNotFound) {
			t.Errorf("missing lookup err = %v, want ErrNotFound", err)
		}
		// Read-only handles cannot publish.
		hro, err := Open(env, dir.ReadOnly())
		if err != nil {
			t.Errorf("open ro: %v", err)
			return
		}
		if err := hro.Publish("nope", seg.CapRO()); err == nil {
			t.Error("read-only handle published")
		}
	})
	w.Run()
}

func TestDirectoryCapacity(t *testing.T) {
	w := mether.NewWorld(mether.Config{Hosts: 1, Pages: 80, Seed: 3})
	t.Cleanup(w.Shutdown)
	dir, _ := Create(w, "main", 0)
	seg, _ := w.CreateSegment("s", 1, 0)
	cap := seg.CapRO()
	var fullErr error
	var published int
	w.Spawn(0, "p", func(env *mether.Env) {
		h, err := Open(env, dir)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		for i := 0; ; i++ {
			name := "entry-" + itoa(i)
			if err := h.Publish(name, cap); err != nil {
				fullErr = err
				return
			}
			published++
		}
	})
	w.Run()
	if !errors.Is(fullErr, ErrFull) {
		t.Errorf("err = %v, want ErrFull", fullErr)
	}
	if published != MaxEntries {
		t.Errorf("published %d entries, want %d", published, MaxEntries)
	}
}

func TestCapabilityRoundTripBinary(t *testing.T) {
	w := newWorld(t, 1)
	seg, _ := w.CreateSegment("rt", 1, 0)
	orig := seg.CapRW()
	blob, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back mether.Capability
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if back != orig {
		t.Errorf("round trip: %+v != %+v", back, orig)
	}
	if err := back.UnmarshalBinary([]byte{5}); err == nil {
		t.Error("truncated blob accepted")
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestConcurrentPublishersFromDifferentHosts(t *testing.T) {
	// Two hosts publish into the same directory page concurrently. The
	// page's consistent copy ping-pongs; Figure-1 locks pin it during
	// each append and the owner defers steals until unlock, so both
	// entries land and the count is exact.
	w := mether.NewWorld(mether.Config{Hosts: 3, Pages: 16, Seed: 9})
	t.Cleanup(w.Shutdown)
	dir, _ := Create(w, "main", 2) // directory homed on a third host
	segA, _ := w.CreateSegment("from-a", 1, 0)
	segB, _ := w.CreateSegment("from-b", 1, 1)

	var errA, errB error
	w.Spawn(0, "pubA", func(env *mether.Env) {
		h, err := Open(env, dir)
		if err != nil {
			errA = err
			return
		}
		errA = h.Publish("from-a", segA.CapRO())
	})
	w.Spawn(1, "pubB", func(env *mether.Env) {
		h, err := Open(env, dir)
		if err != nil {
			errB = err
			return
		}
		errB = h.Publish("from-b", segB.CapRO())
	})
	w.RunUntil(5 * time.Minute)
	if errA != nil || errB != nil {
		t.Fatalf("publish errors: %v / %v", errA, errB)
	}

	var names []string
	w.Spawn(2, "list", func(env *mether.Env) {
		h, err := Open(env, dir.ReadOnly())
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		names, _ = h.List()
	})
	w.RunUntil(6 * time.Minute)
	if len(names) != 2 {
		t.Fatalf("directory lists %v, want both entries", names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	if !seen["from-a"] || !seen["from-b"] {
		t.Errorf("missing entries: %v", names)
	}
	if err := w.CheckInvariants(); err != nil {
		t.Error(err)
	}
}
