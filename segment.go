package mether

import (
	"errors"
	"fmt"

	"mether/internal/vm"
)

// Segment errors.
var (
	// ErrSegmentExists reports a name collision at creation.
	ErrSegmentExists = errors.New("mether: segment already exists")
	// ErrNoSuchSegment reports an unknown segment name.
	ErrNoSuchSegment = errors.New("mether: no such segment")
	// ErrBadCapability reports an attach with an invalid or insufficient
	// capability.
	ErrBadCapability = errors.New("mether: bad capability")
	// ErrOutOfPages reports page-space exhaustion.
	ErrOutOfPages = errors.New("mether: out of pages")
)

// Segment is a named, capability-protected range of Mether pages — the
// unit the §5 library hands to applications. Segments are created once
// (their pages' consistent copies start on the creating host) and then
// attached by any process holding a capability.
type Segment struct {
	w     *World
	name  string
	base  vm.PageID
	pages int
	tokRW uint64
	tokRO uint64
}

// CreateSegment allocates a segment of n pages whose initial owner is the
// given host. It returns the segment; mint capabilities with CapRO/CapRW.
func (w *World) CreateSegment(name string, n int, ownerHost int) (*Segment, error) {
	owners := make([]int, n)
	for i := range owners {
		owners[i] = ownerHost
	}
	return w.CreateSegmentOwners(name, owners)
}

// CreateSegmentOnTrunk allocates a segment whose pages' consistent
// copies start on the first host of the given trunk. On a multi-trunk
// world the owner's trunk is the segment's home: the owner answers every
// demand request, so its trunk sees requests once while the others pay
// the bridge's store-and-forward delay both ways — server placement is a
// topology decision, exactly like placing the busiest file server on the
// backbone.
func (w *World) CreateSegmentOnTrunk(name string, n, trunk int) (*Segment, error) {
	if trunk < 0 || trunk >= w.Trunks() {
		return nil, fmt.Errorf("mether: trunk %d out of range (world has %d)", trunk, w.Trunks())
	}
	owner := w.FirstHostOnTrunk(trunk)
	if owner < 0 {
		return nil, fmt.Errorf("mether: trunk %d has no hosts", trunk)
	}
	return w.CreateSegment(name, n, owner)
}

// CreateSegmentOwners allocates a segment with one page per entry of
// owners, each page's consistent copy starting on the named host. This
// is how the pipe library lays out its two one-way link pages, one owned
// by each endpoint (Figure 3).
func (w *World) CreateSegmentOwners(name string, owners []int) (*Segment, error) {
	n := len(owners)
	if n == 0 {
		return nil, fmt.Errorf("mether: segment %q needs at least one page", name)
	}
	if _, ok := w.segs[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrSegmentExists, name)
	}
	if int(w.nextPage)+n > w.cfg.Pages {
		return nil, fmt.Errorf("%w: need %d, have %d", ErrOutOfPages, n, w.cfg.Pages-int(w.nextPage))
	}
	for _, o := range owners {
		if o < 0 || o >= len(w.hosts) {
			return nil, fmt.Errorf("mether: owner host %d out of range", o)
		}
	}
	s := &Segment{
		w:     w,
		name:  name,
		base:  w.nextPage,
		pages: n,
		tokRW: w.mintToken(),
		tokRO: w.mintToken(),
	}
	w.nextPage += vm.PageID(n)
	for i, o := range owners {
		w.drivers[o].CreatePage(s.base + vm.PageID(i))
	}
	w.segs[name] = s
	return s, nil
}

// LookupSegment finds a segment by name.
func (w *World) LookupSegment(name string) (*Segment, error) {
	s, ok := w.segs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchSegment, name)
	}
	return s, nil
}

// mintToken returns a fresh unforgeable-within-the-simulation token.
func (w *World) mintToken() uint64 {
	w.nextTok++
	return w.nextTok<<32 | uint64(w.k.Rand().Uint32())
}

// Name returns the segment name.
func (s *Segment) Name() string { return s.name }

// WarmReplicas seeds a zero-filled resident replica of every segment
// page on every host, modelling a cluster that has been running long
// enough for broadcasts to have populated all resident copies. Call it
// before spawning processes: attaches then map in without demand
// fetches, which keeps large-cluster world setup linear instead of
// cubic in host count (each cold fetch is a broadcast request that
// every host must ingest).
// Seeding records one page range per driver (core.SeedReplicaRange)
// and applies it lazily as pages materialize, so warming a segment is
// O(hosts), not O(hosts × pages) — at the 10k-host tier the difference
// is a hundred million page records that never get built.
func (s *Segment) WarmReplicas() {
	for _, d := range s.w.drivers {
		d.SeedReplicaRange(s.base, s.base+vm.PageID(s.pages))
	}
}

// Pages returns the segment length in pages.
func (s *Segment) Pages() int { return s.pages }

// Capability grants access to a segment at up to Mode rights. A
// capability with RW mode can be weakened with ReadOnly; there is no way
// to strengthen one.
type Capability struct {
	Segment string
	Mode    Mode
	token   uint64
}

// CapRW mints a capability allowing both consistent (writable) and
// inconsistent attaches.
func (s *Segment) CapRW() Capability {
	return Capability{Segment: s.name, Mode: RW, token: s.tokRW}
}

// CapRO mints a capability allowing only inconsistent (read-only)
// attaches.
func (s *Segment) CapRO() Capability {
	return Capability{Segment: s.name, Mode: RO, token: s.tokRO}
}

// ReadOnly weakens a capability to read-only rights.
func (c Capability) ReadOnly() Capability {
	seg := c.Segment
	return Capability{Segment: seg, Mode: RO, token: c.token}
}

// MarshalBinary serializes a capability so it can be stored inside
// Mether memory (e.g. the registry package's directory pages).
// Capabilities are bearer tokens: anything that can read the bytes can
// use the rights, which is exactly how a capability directory grants
// access.
func (c Capability) MarshalBinary() ([]byte, error) {
	if len(c.Segment) > 255 {
		return nil, fmt.Errorf("mether: segment name %q too long", c.Segment)
	}
	buf := make([]byte, 1+len(c.Segment)+1+8)
	buf[0] = byte(len(c.Segment))
	copy(buf[1:], c.Segment)
	buf[1+len(c.Segment)] = byte(c.Mode)
	for i := 0; i < 8; i++ {
		buf[2+len(c.Segment)+i] = byte(c.token >> (8 * i))
	}
	return buf, nil
}

// UnmarshalBinary restores a capability serialized by MarshalBinary.
func (c *Capability) UnmarshalBinary(b []byte) error {
	if len(b) < 2 {
		return fmt.Errorf("%w: capability blob too short", ErrBadCapability)
	}
	n := int(b[0])
	if len(b) < 2+n+8 {
		return fmt.Errorf("%w: capability blob truncated", ErrBadCapability)
	}
	c.Segment = string(b[1 : 1+n])
	c.Mode = Mode(b[1+n])
	c.token = 0
	for i := 0; i < 8; i++ {
		c.token |= uint64(b[2+n+i]) << (8 * i)
	}
	return nil
}

// checkAttach validates a capability for an attach at the given mode.
func (s *Segment) checkAttach(c Capability, mode Mode) error {
	switch {
	case c.Segment != s.name:
		return fmt.Errorf("%w: capability for %q used on %q", ErrBadCapability, c.Segment, s.name)
	case mode == RW && (c.Mode != RW || c.token != s.tokRW):
		return fmt.Errorf("%w: writable attach to %q requires an RW capability", ErrBadCapability, s.name)
	case mode == RO && c.token != s.tokRO && c.token != s.tokRW:
		return fmt.Errorf("%w: unknown token for %q", ErrBadCapability, s.name)
	default:
		return nil
	}
}
