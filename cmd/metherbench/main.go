// Command metherbench regenerates every table and figure of the paper's
// evaluation: the baselines of Section 4, Figures 4-9 (the six user
// protocols), the solver speedup claim of Section 3, and the MemNet
// comparison of Sections 1/6 — printing the paper's reported values next
// to the simulation's measurements. With -md it emits Markdown suitable
// for EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mether/internal/memnet"
	"mether/internal/protocols"
	"mether/internal/solver"
	"mether/internal/sweep"
)

var (
	flagTarget = flag.Uint("target", 1024, "counter target (paper: 1024)")
	flagMD     = flag.Bool("md", false, "emit Markdown tables")
	flagSeed   = flag.Int64("seed", 1, "simulation seed")
	flagQuick  = flag.Bool("quick", false, "reduced scale for smoke runs (target 128, small solver)")
)

func main() {
	flag.Parse()
	target := uint32(*flagTarget)
	solverN := 400_000
	if *flagQuick {
		target = 128
		solverN = 40_000
	}

	out := &writer{md: *flagMD}
	runBaselines(out, target)
	runFigures(out, target)
	runHysteresisSweep(out, target)
	runLossAblation(out, target)
	runKernelServerAblation(out, target)
	runFanout(out)
	runSolver(out, solverN)
	runMemNet(out, target)
	out.flush()
}

// runFanout measures the broadcast-scaling property: one writer's purge
// serves any number of resident copies (like a hardware invalidate,
// "the cost ... is the same no matter how many caches have a copy"),
// while demand-refetch readers cost the writer per-reader traffic.
func runFanout(w *writer) {
	w.section("Experiment: one writer, N readers — broadcast vs demand scaling")
	headers := []string{"mode", "readers", "packets/update", "writer CPU", "wall"}
	var rows [][]string
	for _, mode := range []protocols.FanoutMode{protocols.FanoutDataDriven, protocols.FanoutDemand} {
		for _, readers := range []int{1, 2, 4, 8} {
			r, err := protocols.RunFanout(protocols.FanoutConfig{Mode: mode, Readers: readers, Updates: 32, Seed: *flagSeed})
			if err != nil {
				fmt.Fprintf(os.Stderr, "fanout %v/%d: %v\n", mode, readers, err)
				os.Exit(1)
			}
			rows = append(rows, []string{
				mode.String(), fmt.Sprint(readers), fmt.Sprintf("%.1f", r.PacketsPerU),
				fmtDur(r.WriterCPU), fmtDur(r.Wall),
			})
		}
	}
	w.table(headers, rows)
	w.notef("data-driven fan-out stays flat in reader count; demand-refetch scales linearly.")
}

// runKernelServerAblation measures the paper's predicted fix: moving the
// server into the kernel removes the context-switch bottleneck. The
// configurations come from the sweep engine's kernel-ablation grid.
func runKernelServerAblation(w *writer, target uint32) {
	w.section("Ablation: user-level vs in-kernel server (the paper's future work)")
	headers := []string{"scenario", "wall", "latency", "loss/win", "sys+server"}
	var rows [][]string
	for _, sc := range sweep.KernelAblation(sweep.Options{Target: target, Seed: *flagSeed}) {
		r := mustRun(sc.CounterConfig())
		rows = append(rows, []string{
			sc.Name, fmtDur(r.Wall), fmtDur(r.AvgLatency),
			fmt.Sprintf("%.1f", r.LossWin), fmtDur(r.SysTotal()),
		})
	}
	w.table(headers, rows)
	w.notef("\"That problem will be solved by ... a migration of the user level server code to the kernel.\"")
}

type writer struct {
	md  bool
	buf strings.Builder
}

func (w *writer) section(title string) {
	if w.md {
		fmt.Fprintf(&w.buf, "\n### %s\n\n", title)
	} else {
		fmt.Fprintf(&w.buf, "\n== %s ==\n", title)
	}
}

func (w *writer) table(headers []string, rows [][]string) {
	if w.md {
		fmt.Fprintf(&w.buf, "| %s |\n", strings.Join(headers, " | "))
		seps := make([]string, len(headers))
		for i := range seps {
			seps[i] = "---"
		}
		fmt.Fprintf(&w.buf, "| %s |\n", strings.Join(seps, " | "))
		for _, r := range rows {
			fmt.Fprintf(&w.buf, "| %s |\n", strings.Join(r, " | "))
		}
		return
	}
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&w.buf, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(&w.buf)
	}
	line(headers)
	for _, r := range rows {
		line(r)
	}
}

func (w *writer) notef(format string, args ...any) {
	fmt.Fprintf(&w.buf, format+"\n", args...)
}

func (w *writer) flush() { fmt.Print(w.buf.String()) }

func mustRun(cfg protocols.Config) protocols.Report {
	r, err := protocols.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "run %v: %v\n", cfg.Protocol, err)
		os.Exit(1)
	}
	return r
}

func scale(target uint32) float64 { return 1024 / float64(target) }

// figSpec carries the paper's published values for one figure; the run
// configuration itself comes from the sweep engine's figure scenarios,
// matched by protocol. paper holds the paper's values (empty string =
// not reported).
type figSpec struct {
	title string
	proto protocols.Protocol
	paper map[string]string
}

// figSpecFor finds the paper values for a figure scenario's protocol.
func figSpecFor(p protocols.Protocol) (figSpec, bool) {
	for _, f := range figures {
		if f.proto == p {
			return f, true
		}
	}
	return figSpec{}, false
}

var figures = []figSpec{
	{
		title: "Figure 4: first user protocol — increment on full-size page",
		proto: protocols.P1FullPage,
		paper: map[string]string{
			"wall": "128 s", "user": "10 s", "sys": "30 s",
			"net": "66 kB/s", "ctx": "4 /add", "space": "1 page",
			"lat": "120 ms", "losswin": "500",
		},
	},
	{
		title: "Figure 5: second user protocol — spin on short page",
		proto: protocols.P2ShortPage,
		paper: map[string]string{
			"wall": "68 s", "user": "3 s", "sys": "17 s",
			"net": "2.2 kB/s", "ctx": "4 /add", "space": "1 page",
			"lat": "68 ms", "losswin": "134",
		},
	},
	{
		title: "Figure 6: third user protocol — spin on disjoint pages, one read-only",
		proto: protocols.P3DisjointRO,
		paper: map[string]string{
			"wall": "never finished", "user": "never finished", "sys": "never finished",
			"net": "n/a", "ctx": "n/a", "space": "2 pages",
			"lat": "very high", "losswin": "10000",
		},
	},
	{
		title: "Figure 7: third user protocol with hysteresis",
		proto: protocols.P3Hysteresis,
		paper: map[string]string{
			"wall": "77 s", "user": "19 s", "sys": "50 s",
			"net": "~1 kB/s", "ctx": "5 /add", "space": "2 pages",
			"lat": "45 ms", "losswin": "80",
		},
	},
	{
		title: "Figure 8: fourth user protocol — spin on short page, data driven",
		proto: protocols.P4DataDriven,
		paper: map[string]string{
			"wall": "68 s", "user": "7 s", "sys": "50 s",
			"net": "~1 kB/s", "ctx": "10 /add", "space": "1 page",
			"lat": "65 ms", "losswin": "400",
		},
	},
	{
		title: "Figure 9: final user protocol — spin on disjoint pages, one data driven",
		proto: protocols.P5Final,
		paper: map[string]string{
			"wall": "57 s", "user": "0.7 s", "sys": "6 s",
			"net": "0.5 kB/s", "ctx": "5 /add", "space": "2 pages",
			"lat": "20 ms", "losswin": "3",
		},
	},
}

func runBaselines(w *writer, target uint32) {
	w.section(fmt.Sprintf("Section 4 baselines (target %d)", target))
	single := mustRun(protocols.Config{Protocol: protocols.BaselineSingle, Target: target, Seed: *flagSeed})
	local := mustRun(protocols.Config{Protocol: protocols.BaselineLocalPair, Target: target, Seed: *flagSeed})
	s := scale(target)
	w.table(
		[]string{"baseline", "paper (1024)", "measured", "scaled to 1024"},
		[][]string{
			{"single process", "~50 ms", fmtDur(single.Wall), fmtDur(time.Duration(float64(single.Wall) * s))},
			{"two processes, one host (wall)", "81 s", fmtDur(local.Wall), fmtDur(time.Duration(float64(local.Wall) * s))},
			{"two processes, one host (cpu/proc)", "37 s", fmtDur((local.User + local.Sys) / 2), fmtDur(time.Duration(float64(local.User+local.Sys) * s / 2))},
		},
	)
}

func runFigures(w *writer, target uint32) {
	// The sweep engine owns the figure configurations (including the
	// Figure-6 loss injection and cap); this command only adds the
	// paper's published values alongside the measurements.
	for _, sc := range sweep.FigureScenarios(sweep.Options{Target: target, Seed: *flagSeed}) {
		f, ok := figSpecFor(sc.Protocol)
		if !ok {
			fmt.Fprintf(os.Stderr, "no paper values for %v\n", sc.Protocol)
			os.Exit(1)
		}
		r := mustRun(sc.CounterConfig())
		w.section(f.title)
		s := scale(target)
		rows := [][]string{
			{"Wallclock Time", f.paper["wall"], fmtWall(r, 1), fmtWallScaled(r, s)},
			{"User Time", f.paper["user"], fmtDur(r.User), fmtDur(time.Duration(float64(r.User) * s))},
			{"Sys Time", f.paper["sys"], fmtDur(r.SysTotal()), fmtDur(time.Duration(float64(r.SysTotal()) * s))},
			{"Network Load", f.paper["net"], fmt.Sprintf("%.1f kB/s", r.NetBytesPerSec/1000), fmt.Sprintf("%.1f kB/s", r.NetBytesPerSec/1000)},
			{"Context Switches", f.paper["ctx"], fmt.Sprintf("%.1f /add", r.CtxPerAdd), fmt.Sprintf("%.1f /add", r.CtxPerAdd)},
			{"Space", f.paper["space"], fmt.Sprintf("%d page(s) (%d bytes)", r.SpacePages, r.SpaceBytes), ""},
			{"Average Latency", f.paper["lat"], fmtDur(r.AvgLatency), fmtDur(r.AvgLatency)},
			{"Losses/Wins", f.paper["losswin"], fmt.Sprintf("%.1f", r.LossWin), fmt.Sprintf("%.1f", r.LossWin)},
		}
		w.table([]string{"metric", "paper", "measured", "scaled/rate"}, rows)
		if r.DNF {
			w.notef("run did not finish within the cap (additions reached: %d) — the paper's \"never finished\"", r.Additions)
		}
	}
}

func runHysteresisSweep(w *writer, target uint32) {
	w.section("Ablation: hysteresis period N (Figure 7 discussion)")
	headers := []string{"scenario", "wall", "loss/win", "packets", "sys", "user", "finished"}
	var rows [][]string
	for _, sc := range sweep.HysteresisSweep(sweep.Options{Target: target, Seed: *flagSeed}) {
		r := mustRun(sc.CounterConfig())
		rows = append(rows, []string{
			sc.Name, fmtDur(r.Wall), fmt.Sprintf("%.1f", r.LossWin),
			fmt.Sprint(r.Packets), fmtDur(r.SysTotal()), fmtDur(r.User),
			fmt.Sprint(!r.DNF),
		})
	}
	w.table(headers, rows)
}

func runLossAblation(w *writer, target uint32) {
	w.section("Ablation: datagram loss vs. protocol liveness (reliability discussion, Section 3)")
	headers := []string{"scenario", "finished", "additions", "loss/win", "retries"}
	var rows [][]string
	for _, sc := range sweep.LossAblation(sweep.Options{Target: target, Seed: *flagSeed}) {
		r := mustRun(sc.CounterConfig())
		rows = append(rows, []string{
			sc.Name, fmt.Sprint(!r.DNF), fmt.Sprint(r.Additions),
			fmt.Sprintf("%.1f", r.LossWin), fmt.Sprint(r.Retries),
		})
	}
	w.table(headers, rows)
	w.notef("the passive spin protocol (Fig. 6) has no recovery path: one lost broadcast stalls it forever;")
	w.notef("the hysteresis purge (Fig. 7) is the recovery mechanism, and demand protocols retry.")
}

func runSolver(w *writer, n int) {
	w.section(fmt.Sprintf("Section 3: sparse solver speedup over csend/crecv pipes (N=%d)", n))
	headers := []string{"processors", "wall", "speedup", "efficiency", "messages", "net bytes", "max |x - x_seq|"}
	var rows [][]string
	for _, hosts := range []int{1, 2, 3, 4} {
		r, err := solver.RunDistributed(solver.Config{N: n, Hosts: hosts, Sweeps: 10, Seed: *flagSeed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "solver %d hosts: %v\n", hosts, err)
			os.Exit(1)
		}
		rows = append(rows, []string{
			fmt.Sprint(hosts), fmtDur(r.Wall), fmt.Sprintf("%.2f", r.Speedup),
			fmt.Sprintf("%.0f%%", r.Efficient*100), fmt.Sprint(r.Messages),
			fmt.Sprint(r.NetBytes), fmt.Sprintf("%.1e", r.MaxDiff),
		})
	}
	w.table(headers, rows)
	w.notef("paper: \"the program shows linear speedup on up to four processors\"")
}

func runMemNet(w *writer, target uint32) {
	w.section("Sections 1/6: the same best protocol on MemNet (hardware DSM)")
	headers := []string{"shape", "wall", "loss/win", "ring fetches", "ring bytes", "finished"}
	var rows [][]string
	for _, s := range []memnet.Shape{memnet.SharedChunk, memnet.DisjointSpin, memnet.DisjointBlocked} {
		r, err := memnet.RunCounter(memnet.Config{Shape: s, Target: target, Seed: *flagSeed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "memnet %v: %v\n", s, err)
			os.Exit(1)
		}
		rows = append(rows, []string{
			s.String(), fmtDur(r.Wall), fmt.Sprintf("%.1f", r.LossWin),
			fmt.Sprint(r.Fetches), fmt.Sprint(r.RingBytes), fmt.Sprint(!r.DNF),
		})
	}
	w.table(headers, rows)
	w.notef("the stationary-writer, blocked-waiting shape wins on both systems — the paper's cross-system result.")
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= 10*time.Second:
		return fmt.Sprintf("%.1f s", d.Seconds())
	case d >= time.Second:
		return fmt.Sprintf("%.2f s", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1f ms", float64(d.Microseconds())/1000)
	default:
		return d.String()
	}
}

func fmtWall(r protocols.Report, s float64) string {
	if r.DNF {
		return fmt.Sprintf("DNF (capped, %d adds)", r.Additions)
	}
	return fmtDur(time.Duration(float64(r.Wall) * s))
}

func fmtWallScaled(r protocols.Report, s float64) string {
	if r.DNF {
		return "DNF"
	}
	return fmtDur(time.Duration(float64(r.Wall) * s))
}
