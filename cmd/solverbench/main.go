// Command solverbench measures the paper's Section-3 application claim:
// the sparse solver, ported to Mether by reimplementing csend/crecv on
// pipes, shows linear speedup on up to four processors.
package main

import (
	"flag"
	"fmt"
	"os"

	"mether/internal/solver"
)

func main() {
	var (
		n      = flag.Int("n", 400_000, "unknowns")
		sweeps = flag.Int("sweeps", 10, "Jacobi sweeps")
		maxP   = flag.Int("maxp", 4, "largest processor count")
		seed   = flag.Int64("seed", 1, "seed")
	)
	flag.Parse()

	fmt.Printf("sparse solver over Mether csend/crecv pipes: N=%d, %d sweeps\n", *n, *sweeps)
	fmt.Printf("%-5s %-12s %-9s %-11s %-9s %-10s %s\n",
		"procs", "wall", "speedup", "efficiency", "messages", "netbytes", "max|Δx|")
	for p := 1; p <= *maxP; p++ {
		r, err := solver.RunDistributed(solver.Config{N: *n, Hosts: p, Sweeps: *sweeps, Seed: *seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%d procs: %v\n", p, err)
			os.Exit(1)
		}
		fmt.Printf("%-5d %-12v %-9.2f %-11.0f%% %-9d %-10d %.2e\n",
			p, r.Wall.Round(1e6), r.Speedup, r.Efficient*100, r.Messages, r.NetBytes, r.MaxDiff)
	}
}
