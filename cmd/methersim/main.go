// Command methersim runs one Mether counter experiment from flags and
// prints the measured figure rows. It is the quick exploration tool; the
// full paper-table harness is cmd/metherbench.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mether/internal/core"
	"mether/internal/protocols"
)

func main() {
	var (
		proto  = flag.String("protocol", "all", "protocol to run: single, local, p1, p2, p3, p3h, p4, p5, all")
		target = flag.Uint("target", 1024, "counter target (paper: 1024)")
		capS   = flag.Duration("cap", 600*time.Second, "simulated time cap")
		hystN  = flag.Int("hysteresis", 100, "purge period for p3h")
		seed   = flag.Int64("seed", 1, "simulation seed")
		trace  = flag.Int("trace", 0, "print the first N decoded packets of each run")
		kernel = flag.Bool("kernel", false, "run the Mether server in the kernel (the paper's future work)")
	)
	flag.Parse()

	byName := map[string]protocols.Protocol{
		"single": protocols.BaselineSingle,
		"local":  protocols.BaselineLocalPair,
		"p1":     protocols.P1FullPage,
		"p2":     protocols.P2ShortPage,
		"p3":     protocols.P3DisjointRO,
		"p3h":    protocols.P3Hysteresis,
		"p4":     protocols.P4DataDriven,
		"p5":     protocols.P5Final,
	}
	var list []protocols.Protocol
	if *proto == "all" {
		list = []protocols.Protocol{
			protocols.BaselineSingle, protocols.BaselineLocalPair,
			protocols.P1FullPage, protocols.P2ShortPage,
			protocols.P3DisjointRO, protocols.P3Hysteresis,
			protocols.P4DataDriven, protocols.P5Final,
		}
	} else {
		p, ok := byName[*proto]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown protocol %q\n", *proto)
			os.Exit(2)
		}
		list = []protocols.Protocol{p}
	}

	for _, p := range list {
		start := time.Now()
		cc := core.DefaultConfig(8)
		cc.KernelServer = *kernel
		r, err := protocols.Run(protocols.Config{
			Protocol:    p,
			Target:      uint32(*target),
			Cap:         *capS,
			HysteresisN: *hystN,
			Seed:        *seed,
			TraceLimit:  *trace,
			Core:        cc,
		})
		if err != nil {
			fmt.Printf("%-22s ERR %v\n", p, err)
			continue
		}
		fmt.Printf("%-22s dnf=%-5v adds=%-5d wall=%-12v user=%-10v sys=%-10v net=%-9.0fB/s pkts=%-6d ctx/add=%-5.1f lat=%-12v loss/win=%-9.1f [real %v]\n",
			p, r.DNF, r.Additions, r.Wall.Round(time.Millisecond), r.User.Round(time.Millisecond),
			r.SysTotal().Round(time.Millisecond), r.NetBytesPerSec, r.Packets, r.CtxPerAdd,
			r.AvgLatency.Round(100*time.Microsecond), r.LossWin, time.Since(start).Round(time.Millisecond))
		if r.Trace != "" {
			fmt.Print(r.Trace)
		}
	}
}
