// Command methersweep runs named scenario grids through the parallel
// sweep engine and emits deterministic JSON or CSV reports.
//
// The report on stdout is a pure function of (grid, target, seed): it
// contains only virtual-time measurements, so it is byte-identical
// across runs, worker counts and machines — diff two runs to prove a
// change is a no-op, or use -baseline to compare against a saved report.
// Real-time execution stats (wall clock, per-worker speedup) go to
// stderr, where they cannot perturb the report.
//
// Examples:
//
//	methersweep -list
//	methersweep -grid smoke
//	methersweep -grid paper -target 1024 -o paper.json
//	methersweep -grid paper -baseline paper.json -tolerance 0.05
//	methersweep -grid all -workers 1 -format csv
//	methersweep -grid cluster -hosts 16
//	methersweep -grid cluster -bench-out BENCH_sweep.json -cpuprofile cpu.pprof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"mether/internal/proto"
	"mether/internal/sweep"
)

var (
	flagGrid      = flag.String("grid", "smoke", "named grid to run (see -list)")
	flagList      = flag.Bool("list", false, "list available grids and exit")
	flagWorkers   = flag.Int("workers", 0, "concurrent scenarios (0 = GOMAXPROCS)")
	flagSerial    = flag.Bool("serial", false, "force one worker (baseline for speedup measurement)")
	flagTarget    = flag.Uint("target", 1024, "counter target for protocol scenarios")
	flagSeed      = flag.Int64("seed", 1, "simulation seed for every scenario")
	flagHosts     = flag.Int("hosts", 0, "restrict host-count grids (cluster) to one size (0 = all)")
	flagOnly      = flag.String("only", "", "run only the scenarios whose name contains this substring (profiling a single cell)")
	flagTrunks    = flag.Int("trunks", 0, "restrict the cluster grid's topology axis: 0 = full grid, 1 = classic single-trunk cells only (baseline comparisons), N>1 = every base cell on N bridged trunks")
	flagRedund    = flag.Int("redundancy", 0, "force redundant-fetch fan-out k onto every cluster cell: 0 = default grid (explicit k cells), 1 = classic owner-only, N>1 = every read fault asks the owner plus N-1 replicas")
	flagFaults    = flag.String("faults", "on", "cluster-grid fault cells: on = include, off = exact healthy grid (baseline comparisons), or a schedule spec like crash@150ms:h3;recover@400ms:h3 run as one extra stationary cell")
	flagMedium    = flag.String("medium", "", "cluster-grid interconnect axis: empty = full grid incl. the /fab fabric cells, ethernet = exact pre-fabric grid (baseline comparisons), fabric = every compatible cell on the point-to-point fabric")
	flagFormat    = flag.String("format", "json", "report format: json, csv or summary")
	flagOut       = flag.String("o", "", "write the report to a file instead of stdout")
	flagBaseline  = flag.String("baseline", "", "JSON report to compare against")
	flagTolerance = flag.Float64("tolerance", 0, "relative change below which -baseline deltas are ignored")
	flagQuiet     = flag.Bool("q", false, "suppress the timing summary on stderr")
	flagCPUProf   = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	flagMemProf   = flag.String("memprofile", "", "write a heap profile (post-sweep) to this file")
	flagBenchOut  = flag.String("bench-out", "", "write an engine-throughput record (worlds/sec, events/sec, allocs/event) to this JSON file")
	flagBenchBase = flag.String("bench-baseline", "", "committed bench record to gate against: fail if events/sec regresses beyond 15% or allocs/event grows beyond 10%")
	flagAllocCeil = flag.Float64("alloc-ceiling", 0, "fail if the sweep allocates more than this per dispatched event (0 = no gate)")
)

// Bench-drift tolerances for -bench-baseline. Events/sec is a real-time
// measurement, so its band is generous (nightly CI runs on one machine
// class but still jitters); allocs/event is near-deterministic, so its
// band is tight, with a small absolute epsilon so a zero-alloc baseline
// does not make any nonzero measurement an automatic failure.
const (
	benchEventsTol   = 0.15
	benchAllocsTol   = 0.10
	benchAllocsEpsil = 0.001
	// benchMemTol gates bytes/host of the grid's biggest world: the
	// measurement is deterministic, but per-host footprint legitimately
	// moves with struct layout and directory shape, so the band is a
	// growth ratchet, not an equality check. Records predating the field
	// (BytesPerHost 0) skip the gate.
	benchMemTol = 0.25
)

// benchRecord is the engine-throughput trajectory point -bench-out
// writes: how fast this build chews through simulated worlds and events,
// and what each event costs in allocations. Scenario results stay in the
// report; this file is about the engine, so its fields are real-time
// measurements and deliberately live outside Report.
type benchRecord struct {
	Grid           string  `json:"grid"`
	Scenarios      int     `json:"scenarios"`
	Workers        int     `json:"workers"`
	GoMaxProcs     int     `json:"gomaxprocs"`
	ElapsedNS      int64   `json:"elapsed_ns"`
	WorldsPerSec   float64 `json:"worlds_per_sec"`
	EventsTotal    uint64  `json:"events_total"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsTotal    uint64  `json:"allocs_total"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
	// BytesPerHost is the structural memory footprint per host of the
	// grid's biggest world (the cell with the largest mem_bytes) — the
	// flyweight-scaling headline. Unlike the fields above it is a
	// virtual-world measurement, deterministic for a given grid and seed;
	// zero when no cell reports a footprint (pre-flyweight records).
	BytesPerHost float64 `json:"bytes_per_host,omitempty"`
}

func main() {
	flag.Parse()
	if *flagList {
		for _, name := range sweep.GridNames() {
			scs, _ := sweep.Grid(name, sweep.Options{})
			fmt.Printf("%-12s %3d scenarios\n", name, len(scs))
		}
		return
	}

	switch *flagFormat {
	case "json", "csv", "summary":
	default:
		// Reject before running: a bad format must not cost a full sweep.
		fatal(fmt.Errorf("unknown format %q (want json, csv or summary)", *flagFormat))
	}
	if *flagTarget > math.MaxUint32 {
		fatal(fmt.Errorf("-target %d exceeds the 32-bit counter", *flagTarget))
	}
	// Reject before running: host ids must fit the wire format's 16-bit
	// field, and a bad flag must not cost (or panic) a sweep.
	if *flagHosts < 0 || *flagHosts > proto.MaxHostID {
		fatal(fmt.Errorf("-hosts %d out of range (0..%d)", *flagHosts, proto.MaxHostID))
	}
	// The smallest default cluster size is 16 hosts; a trunk count that
	// exceeds the smallest cell's host count must fail here as a flag
	// error, not panic a worker goroutine mid-sweep.
	minHosts := *flagHosts
	if minHosts == 0 {
		minHosts = 16
	}
	if *flagTrunks < 0 || *flagTrunks > minHosts {
		fatal(fmt.Errorf("-trunks %d out of range for %d hosts", *flagTrunks, minHosts))
	}
	// A fetch names at most MaxRedundantTargets-1 extra holders beyond
	// the owner; reject out-of-range fan-outs as flag errors, not
	// mid-sweep truncation surprises.
	if *flagRedund < 0 || *flagRedund > proto.MaxRedundantTargets+1 {
		fatal(fmt.Errorf("-redundancy %d out of range (0..%d)", *flagRedund, proto.MaxRedundantTargets+1))
	}
	switch *flagMedium {
	case "", "ethernet", "fabric":
	default:
		fatal(fmt.Errorf("unknown -medium %q (want ethernet or fabric)", *flagMedium))
	}
	// Trunks bridge Ethernet segments; the fabric has no broadcast
	// domains to bridge. Reject the cross as a flag error rather than
	// handing the grid builder a combination it would silently drop
	// every cell of.
	if *flagMedium == "fabric" && *flagTrunks > 1 {
		fatal(fmt.Errorf("-medium fabric is incompatible with -trunks %d: trunks are an Ethernet bridging concept", *flagTrunks))
	}
	scs, err := sweep.Grid(*flagGrid, sweep.Options{Target: uint32(*flagTarget), Seed: *flagSeed, Hosts: *flagHosts, Trunks: *flagTrunks, Redundancy: *flagRedund, Faults: *flagFaults, Medium: *flagMedium})
	if err != nil {
		fatal(err)
	}
	// -only narrows the grid before the sweep runs, so profiles capture a
	// single named cell instead of the whole grid (the DNF gate below
	// indexes scs, which must therefore stay aligned with the report).
	if *flagOnly != "" {
		kept := scs[:0]
		for _, s := range scs {
			if strings.Contains(s.Name, *flagOnly) {
				kept = append(kept, s)
			}
		}
		if len(kept) == 0 {
			fatal(fmt.Errorf("-only %q matches no scenario in grid %q", *flagOnly, *flagGrid))
		}
		scs = kept
	}
	workers := *flagWorkers
	if *flagSerial {
		workers = 1
	}

	// Every exit below goes through fatal() or exit(), both of which
	// finalize the CPU profile: a deferred StopCPUProfile would be
	// skipped by os.Exit, and the runs that fail (band deviations,
	// baseline deltas) are exactly the ones worth profiling.
	if *flagCPUProf != "" {
		f, err := os.Create(*flagCPUProf)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)

	report, timing := sweep.Runner{Workers: workers}.Run(*flagGrid, scs)
	// One post-sweep MemStats snapshot serves both the bench record and
	// the alloc gate, taken before anything else (bench-out marshalling,
	// file writes) can allocate against the sweep's budget.
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)

	benchFailure := false
	if *flagBenchOut != "" || *flagBenchBase != "" {
		rec := buildBenchRecord(report, timing, msBefore, msAfter)
		if *flagBenchOut != "" {
			if err := writeBenchRecord(*flagBenchOut, rec); err != nil {
				fatal(err)
			}
		}
		if *flagBenchBase != "" {
			ok, err := checkBenchBaseline(*flagBenchBase, rec)
			if err != nil {
				fatal(err)
			}
			benchFailure = !ok
		}
	}
	// The allocs/event ceiling is a regression gate on the engine's
	// zero-allocation hot path: CI runs the cluster smoke cell with
	// -alloc-ceiling 0.1 so a leaked per-event allocation fails the
	// build instead of quietly eroding throughput.
	allocFailure := false
	if *flagAllocCeil > 0 {
		after := msAfter
		var events uint64
		for _, s := range report.Scenarios {
			events += s.Events
		}
		if events == 0 {
			fmt.Fprintf(os.Stderr, "alloc gate: no events dispatched, cannot compute allocs/event\n")
			allocFailure = true
		} else if perEvent := float64(after.Mallocs-msBefore.Mallocs) / float64(events); perEvent > *flagAllocCeil {
			fmt.Fprintf(os.Stderr, "alloc gate: %.4f allocs/event exceeds ceiling %.4f (%d allocs over %d events)\n",
				perEvent, *flagAllocCeil, after.Mallocs-msBefore.Mallocs, events)
			allocFailure = true
		} else {
			fmt.Fprintf(os.Stderr, "alloc gate: %.4f allocs/event within ceiling %.4f\n", perEvent, *flagAllocCeil)
		}
	}
	if *flagMemProf != "" {
		f, err := os.Create(*flagMemProf)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}

	var out []byte
	switch *flagFormat {
	case "json":
		out, err = report.JSON()
		if err != nil {
			fatal(err)
		}
	case "csv":
		out = report.CSV()
	case "summary":
		out = []byte(report.Summary())
	}
	if *flagOut != "" {
		if err := os.WriteFile(*flagOut, out, 0o644); err != nil {
			fatal(err)
		}
	} else {
		os.Stdout.Write(out)
	}

	if !*flagQuiet {
		fmt.Fprintf(os.Stderr, "sweep %s: %d scenarios, %d workers, elapsed %v, serial-equivalent %v, speedup %.2fx\n",
			*flagGrid, len(scs), timing.Workers, timing.Elapsed.Round(time.Millisecond), timing.Serial.Round(time.Millisecond), timing.Speedup)
	}

	// A scenario error or an out-of-band paper check is a gate failure:
	// the band checks exist to catch calibration drift, so drifting
	// outside them must flip the exit code.
	failures := 0
	if allocFailure {
		failures++
	}
	if benchFailure {
		failures++
	}
	for i, r := range report.Scenarios {
		if r.Err != "" {
			fmt.Fprintf(os.Stderr, "scenario %s failed: %s\n", r.Name, r.Err)
			failures++
		}
		// A cell that fails to finish is correctness drift unless the
		// grid marked it as a "Never finished"-style measurement
		// (Figure 6, hysteresis extremes, lossy passive protocols).
		if r.DNF && !scs[i].MayDNF {
			fmt.Fprintf(os.Stderr, "scenario %s did not finish (unexpected DNF)\n", r.Name)
			failures++
		}
		for _, d := range r.Deviations {
			fmt.Fprintf(os.Stderr, "band deviation: %s\n", d)
		}
		if len(r.Deviations) > 0 {
			failures++
		}
	}

	if *flagBaseline != "" {
		base, err := os.ReadFile(*flagBaseline)
		if err != nil {
			fatal(err)
		}
		baseRep, err := sweep.ParseJSON(base)
		if err != nil {
			fatal(err)
		}
		deltas := sweep.Compare(baseRep, report, *flagTolerance)
		if len(deltas) == 0 {
			fmt.Fprintf(os.Stderr, "baseline %s: no deltas beyond tolerance %.3g\n", *flagBaseline, *flagTolerance)
		}
		var lines []string
		for _, d := range deltas {
			lines = append(lines, "  "+d.String())
		}
		if len(lines) > 0 {
			fmt.Fprintf(os.Stderr, "baseline %s: %d delta(s)\n%s\n", *flagBaseline, len(deltas), strings.Join(lines, "\n"))
			failures++
		}
	}
	if failures > 0 {
		exit(1)
	}
}

// buildBenchRecord aggregates the run's engine-throughput numbers into
// the BENCH_sweep.json trajectory point.
func buildBenchRecord(report sweep.Report, timing sweep.Timing, before, after runtime.MemStats) benchRecord {
	rec := benchRecord{
		Grid:        report.Grid,
		Scenarios:   len(report.Scenarios),
		Workers:     timing.Workers,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		ElapsedNS:   timing.Elapsed.Nanoseconds(),
		AllocsTotal: after.Mallocs - before.Mallocs,
	}
	var maxMem uint64
	for _, s := range report.Scenarios {
		rec.EventsTotal += s.Events
		if s.MemBytes > maxMem {
			maxMem = s.MemBytes
			rec.BytesPerHost = s.BytesPerHost
		}
	}
	if sec := timing.Elapsed.Seconds(); sec > 0 {
		rec.WorldsPerSec = float64(rec.Scenarios) / sec
		rec.EventsPerSec = float64(rec.EventsTotal) / sec
	}
	if rec.EventsTotal > 0 {
		rec.AllocsPerEvent = float64(rec.AllocsTotal) / float64(rec.EventsTotal)
		rec.BytesPerEvent = float64(after.TotalAlloc-before.TotalAlloc) / float64(rec.EventsTotal)
	}
	return rec
}

// writeBenchRecord writes a trajectory point as indented JSON.
func writeBenchRecord(path string, rec benchRecord) error {
	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// checkBenchBaseline is the nightly bench-drift gate: compare this run's
// engine throughput against the committed record. Events/sec may not
// regress beyond benchEventsTol; allocs/event may not grow beyond
// benchAllocsTol (plus a small absolute epsilon). Improvements never
// fail — commit a fresh record to ratchet them in.
func checkBenchBaseline(path string, rec benchRecord) (bool, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	var base benchRecord
	if err := json.Unmarshal(b, &base); err != nil {
		return false, fmt.Errorf("bad bench baseline %s: %w", path, err)
	}
	if base.Grid != rec.Grid || base.Scenarios != rec.Scenarios {
		return false, fmt.Errorf("bench baseline %s covers grid %q (%d scenarios), this run is %q (%d): regenerate the record",
			path, base.Grid, base.Scenarios, rec.Grid, rec.Scenarios)
	}
	// Events/sec is only comparable at equal parallelism: a record made
	// serially would let a parallel run hide a multi-x regression (and a
	// parallel record would flake a narrower machine every night).
	if base.Workers != rec.Workers || base.GoMaxProcs != rec.GoMaxProcs {
		return false, fmt.Errorf("bench baseline %s was recorded with %d workers / GOMAXPROCS %d, this run has %d / %d: regenerate the record on this machine class",
			path, base.Workers, base.GoMaxProcs, rec.Workers, rec.GoMaxProcs)
	}
	ok := true
	if floor := base.EventsPerSec * (1 - benchEventsTol); rec.EventsPerSec < floor {
		fmt.Fprintf(os.Stderr, "bench gate: events/sec %.3g below %.3g (baseline %.3g -%d%%)\n",
			rec.EventsPerSec, floor, base.EventsPerSec, int(benchEventsTol*100))
		ok = false
	}
	if ceil := base.AllocsPerEvent*(1+benchAllocsTol) + benchAllocsEpsil; rec.AllocsPerEvent > ceil {
		fmt.Fprintf(os.Stderr, "bench gate: allocs/event %.4f above %.4f (baseline %.4f +%d%%)\n",
			rec.AllocsPerEvent, ceil, base.AllocsPerEvent, int(benchAllocsTol*100))
		ok = false
	}
	if base.BytesPerHost > 0 {
		if ceil := base.BytesPerHost * (1 + benchMemTol); rec.BytesPerHost > ceil {
			fmt.Fprintf(os.Stderr, "bench gate: bytes/host %.0f above %.0f (baseline %.0f +%d%%)\n",
				rec.BytesPerHost, ceil, base.BytesPerHost, int(benchMemTol*100))
			ok = false
		}
	}
	if ok {
		fmt.Fprintf(os.Stderr, "bench gate: events/sec %.3g (baseline %.3g), allocs/event %.4f (baseline %.4f) within tolerance\n",
			rec.EventsPerSec, base.EventsPerSec, rec.AllocsPerEvent, base.AllocsPerEvent)
	}
	return ok, nil
}

// exit finalizes any in-flight CPU profile (StopCPUProfile is a no-op
// when none is running) and terminates; os.Exit skips deferred calls,
// so non-zero exits must route through here.
func exit(code int) {
	pprof.StopCPUProfile()
	os.Exit(code)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "methersweep:", err)
	exit(1)
}
