// Command methersweep runs named scenario grids through the parallel
// sweep engine and emits deterministic JSON or CSV reports.
//
// The report on stdout is a pure function of (grid, target, seed): it
// contains only virtual-time measurements, so it is byte-identical
// across runs, worker counts and machines — diff two runs to prove a
// change is a no-op, or use -baseline to compare against a saved report.
// Real-time execution stats (wall clock, per-worker speedup) go to
// stderr, where they cannot perturb the report.
//
// Examples:
//
//	methersweep -list
//	methersweep -grid smoke
//	methersweep -grid paper -target 1024 -o paper.json
//	methersweep -grid paper -baseline paper.json -tolerance 0.05
//	methersweep -grid all -workers 1 -format csv
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"mether/internal/sweep"
)

var (
	flagGrid      = flag.String("grid", "smoke", "named grid to run (see -list)")
	flagList      = flag.Bool("list", false, "list available grids and exit")
	flagWorkers   = flag.Int("workers", 0, "concurrent scenarios (0 = GOMAXPROCS)")
	flagSerial    = flag.Bool("serial", false, "force one worker (baseline for speedup measurement)")
	flagTarget    = flag.Uint("target", 1024, "counter target for protocol scenarios")
	flagSeed      = flag.Int64("seed", 1, "simulation seed for every scenario")
	flagFormat    = flag.String("format", "json", "report format: json, csv or summary")
	flagOut       = flag.String("o", "", "write the report to a file instead of stdout")
	flagBaseline  = flag.String("baseline", "", "JSON report to compare against")
	flagTolerance = flag.Float64("tolerance", 0, "relative change below which -baseline deltas are ignored")
	flagQuiet     = flag.Bool("q", false, "suppress the timing summary on stderr")
)

func main() {
	flag.Parse()
	if *flagList {
		for _, name := range sweep.GridNames() {
			scs, _ := sweep.Grid(name, sweep.Options{})
			fmt.Printf("%-12s %3d scenarios\n", name, len(scs))
		}
		return
	}

	switch *flagFormat {
	case "json", "csv", "summary":
	default:
		// Reject before running: a bad format must not cost a full sweep.
		fatal(fmt.Errorf("unknown format %q (want json, csv or summary)", *flagFormat))
	}
	if *flagTarget > math.MaxUint32 {
		fatal(fmt.Errorf("-target %d exceeds the 32-bit counter", *flagTarget))
	}
	scs, err := sweep.Grid(*flagGrid, sweep.Options{Target: uint32(*flagTarget), Seed: *flagSeed})
	if err != nil {
		fatal(err)
	}
	workers := *flagWorkers
	if *flagSerial {
		workers = 1
	}
	report, timing := sweep.Runner{Workers: workers}.Run(*flagGrid, scs)

	var out []byte
	switch *flagFormat {
	case "json":
		out, err = report.JSON()
		if err != nil {
			fatal(err)
		}
	case "csv":
		out = report.CSV()
	case "summary":
		out = []byte(report.Summary())
	}
	if *flagOut != "" {
		if err := os.WriteFile(*flagOut, out, 0o644); err != nil {
			fatal(err)
		}
	} else {
		os.Stdout.Write(out)
	}

	if !*flagQuiet {
		fmt.Fprintf(os.Stderr, "sweep %s: %d scenarios, %d workers, elapsed %v, serial-equivalent %v, speedup %.2fx\n",
			*flagGrid, len(scs), timing.Workers, timing.Elapsed.Round(time.Millisecond), timing.Serial.Round(time.Millisecond), timing.Speedup)
	}

	// A scenario error or an out-of-band paper check is a gate failure:
	// the band checks exist to catch calibration drift, so drifting
	// outside them must flip the exit code.
	failures := 0
	for _, r := range report.Scenarios {
		if r.Err != "" {
			fmt.Fprintf(os.Stderr, "scenario %s failed: %s\n", r.Name, r.Err)
			failures++
		}
		for _, d := range r.Deviations {
			fmt.Fprintf(os.Stderr, "band deviation: %s\n", d)
		}
		if len(r.Deviations) > 0 {
			failures++
		}
	}

	if *flagBaseline != "" {
		base, err := os.ReadFile(*flagBaseline)
		if err != nil {
			fatal(err)
		}
		baseRep, err := sweep.ParseJSON(base)
		if err != nil {
			fatal(err)
		}
		deltas := sweep.Compare(baseRep, report, *flagTolerance)
		if len(deltas) == 0 {
			fmt.Fprintf(os.Stderr, "baseline %s: no deltas beyond tolerance %.3g\n", *flagBaseline, *flagTolerance)
		}
		var lines []string
		for _, d := range deltas {
			lines = append(lines, "  "+d.String())
		}
		if len(lines) > 0 {
			fmt.Fprintf(os.Stderr, "baseline %s: %d delta(s)\n%s\n", *flagBaseline, len(deltas), strings.Join(lines, "\n"))
			failures++
		}
	}
	if failures > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "methersweep:", err)
	os.Exit(1)
}
