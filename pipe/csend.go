package pipe

import (
	"errors"
	"fmt"
)

// Intel iPSC-style message passing, the paper's porting target: "At the
// heart of his program are send and receive functions modelled after
// Intel's csend and crecv. To move the program to a new machine requires
// writing a new version of csend and crecv." This file is that version
// for Mether: typed, blocking send/receive over a Pipe, with crecv able
// to demand a specific message type.
//
// The emulation is deliberately thin — the paper's point is that a
// Cray/iPSC program ports to Mether by swapping only these two calls.

// ErrWrongType reports a crecv whose next message had a different type
// and type filtering was strict.
var ErrWrongType = errors.New("pipe: unexpected message type")

// AnyType matches any message type in CRecv.
const AnyType = ^uint32(0)

// CSend transmits one typed message, blocking until the peer has
// consumed the previous one (csend semantics: synchronous send).
func CSend(p *Pipe, msgType uint32, data []byte) error {
	if msgType == AnyType {
		return fmt.Errorf("pipe: message type %#x is reserved", msgType)
	}
	return p.Send(msgType, data)
}

// CRecv receives the next message, blocking until one arrives. If
// msgType is AnyType any message matches; otherwise the received type
// must equal msgType, and a mismatch is an error (iPSC programs treat an
// unexpected type as a protocol bug, and the pipe is FIFO so out-of-
// order delivery cannot happen).
func CRecv(p *Pipe, msgType uint32) ([]byte, uint32, error) {
	m, err := p.Recv()
	if err != nil {
		return nil, 0, err
	}
	if msgType != AnyType && m.Tag != msgType {
		return nil, m.Tag, fmt.Errorf("%w: got %d, want %d", ErrWrongType, m.Tag, msgType)
	}
	return m.Data, m.Tag, nil
}
