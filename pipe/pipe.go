// Package pipe implements the pipe-like operations of the Mether library
// (paper §5): message send/receive built on two one-way Mether pages,
// using the communication structure of the paper's sparse-solver protocol
// (Figure 3).
//
// Each endpoint owns one page (its consistent, writable, demand-driven
// side) and views the peer's page as inconsistent, read-only, and — while
// waiting — data-driven. Every page carries a WriteGeneration /
// WriteDataSize pair describing the owner's outgoing message and a
// ReadGeneration / ReadDataSize pair acknowledging consumption of the
// peer's messages:
//
//	a write can only proceed when the WriteGeneration in the consistent
//	page and the ReadGeneration in the inconsistent page are equal; a
//	read can proceed only when the WriteGeneration in the inconsistent
//	page is greater than the ReadGeneration in the consistent page.
//
// Messages up to ShortPayload bytes ride entirely in the 32-byte short
// page, so a fault moves 32 bytes instead of 8192 — the short-page fast
// path the paper measures. Larger messages use the full page.
//
// The receive path follows the paper's reader verbatim: check the
// inconsistent short demand-driven copy; if it shows no new data, purge
// it and check again (a fresh fetch); if still nothing, purge and touch
// the data-driven view, sleeping until the writer's PURGE broadcast
// transits the network. Initialization purges the inconsistent copy so a
// current one is fetched — the ubiquitous "Deal Me In" step.
package pipe

import (
	"errors"
	"fmt"
	"time"

	"mether"
	"mether/internal/vm"
)

// Page layout (byte offsets). The header lives in the short region so
// generation checks always ride the 32-byte path.
const (
	offWriteGen  = 0
	offWriteSize = 4
	offReadGen   = 8
	offReadSize  = 12
	offTag       = 16
	offInline    = 20
	offOverflow  = vm.ShortSize

	// ShortPayload is the largest message that fits the short-page fast
	// path alongside the header.
	ShortPayload = vm.ShortSize - offInline
	// MaxPayload is the largest message a pipe can carry.
	MaxPayload = vm.PageSize - offOverflow
)

// ErrTooLarge reports a message exceeding MaxPayload.
var ErrTooLarge = errors.New("pipe: message too large")

// Message is one received message: the payload plus the writer's tag
// (tags emulate the type argument of Intel-style csend/crecv).
type Message struct {
	Tag  uint32
	Data []byte
}

// Create allocates the two-page segment for a pipe between two hosts and
// returns the capability both ends use to open it. Side 0 belongs to
// hostA (it owns page 0), side 1 to hostB.
func Create(w *mether.World, name string, hostA, hostB int) (mether.Capability, error) {
	seg, err := w.CreateSegmentOwners("pipe:"+name, []int{hostA, hostB})
	if err != nil {
		return mether.Capability{}, err
	}
	return seg.CapRW(), nil
}

// Pipe is one endpoint of a bidirectional Mether pipe. It is bound to
// the process that opened it and must not be shared.
type Pipe struct {
	env  *mether.Env
	own  *mether.Mapping // writable view of our page
	peer *mether.Mapping // read-only view of both pages (we read the peer's)

	ownPage  int
	peerPage int

	// checkCost models the application's generation-compare instruction
	// cost, charged as user CPU per check.
	checkCost time.Duration
}

// defaultCheckCost is ~50µs: a handful of loads, compares and loop
// overhead on a Sun-3/50-class machine (the paper's single-process
// increment costs ~50µs with loop overhead).
const defaultCheckCost = 50 * time.Microsecond

// Open attaches a pipe endpoint. side is 0 or 1 and must differ between
// the two endpoints; cap must come from Create.
func Open(env *mether.Env, cap mether.Capability, side int) (*Pipe, error) {
	if side != 0 && side != 1 {
		return nil, fmt.Errorf("pipe: side must be 0 or 1, got %d", side)
	}
	own, err := env.Attach(cap, mether.RW)
	if err != nil {
		return nil, fmt.Errorf("pipe: attach writable: %w", err)
	}
	peer, err := env.Attach(cap.ReadOnly(), mether.RO)
	if err != nil {
		return nil, fmt.Errorf("pipe: attach read-only: %w", err)
	}
	p := &Pipe{
		env:       env,
		own:       own,
		peer:      peer,
		ownPage:   side,
		peerPage:  1 - side,
		checkCost: defaultCheckCost,
	}
	// Deal Me In: purge the attach-time inconsistent copy of the peer
	// page so the first check fetches a current one.
	if err := p.peer.Purge(p.peerAddr(0).Short()); err != nil {
		return nil, fmt.Errorf("pipe: deal-me-in purge: %w", err)
	}
	return p, nil
}

// ownAddr returns an address within our page.
func (p *Pipe) ownAddr(off int) mether.Addr { return p.own.Addr(p.ownPage, off) }

// peerAddr returns an address within the peer's page.
func (p *Pipe) peerAddr(off int) mether.Addr { return p.peer.Addr(p.peerPage, off) }

// compute charges one generation-check's worth of user CPU.
func (p *Pipe) compute() { p.env.Compute(p.checkCost) }

// SetCheckCost overrides the modelled per-check CPU cost (tests and
// calibration sweeps).
func (p *Pipe) SetCheckCost(d time.Duration) { p.checkCost = d }

// Send transmits one message, blocking until the peer has consumed the
// previous one (the pipe is one message deep, like a synchronous csend).
func (p *Pipe) Send(tag uint32, data []byte) error {
	if len(data) > MaxPayload {
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, len(data), MaxPayload)
	}
	myWriteGen, err := p.own.Load32(p.ownAddr(offWriteGen).Short())
	if err != nil {
		return err
	}
	// Flow control: wait until the peer's ReadGeneration catches up with
	// our WriteGeneration.
	if err := p.waitPeer(func(peerShort []byte) bool {
		return le32(peerShort[offReadGen:]) == myWriteGen
	}); err != nil {
		return err
	}

	// The writer locks the page, fills in the data, sets the
	// WriteDataSize, increments the WriteGeneration counter, and issues
	// a purge.
	short := len(data) <= ShortPayload
	lockA := p.ownAddr(0)
	if err := p.own.Lock(lockA); err != nil {
		return fmt.Errorf("pipe: lock: %w", err)
	}
	dataOff := offOverflow
	if short {
		dataOff = offInline
	}
	if len(data) > 0 {
		if err := p.own.Write(p.ownAddr(dataOff), data); err != nil {
			p.unlockBestEffort(lockA)
			return err
		}
	}
	if err := p.own.Store32(p.ownAddr(offWriteSize).Short(), uint32(len(data))); err != nil {
		p.unlockBestEffort(lockA)
		return err
	}
	if err := p.own.Store32(p.ownAddr(offTag).Short(), tag); err != nil {
		p.unlockBestEffort(lockA)
		return err
	}
	if err := p.own.Store32(p.ownAddr(offWriteGen).Short(), myWriteGen+1); err != nil {
		p.unlockBestEffort(lockA)
		return err
	}
	if err := p.own.Unlock(lockA); err != nil {
		return err
	}
	purgeA := p.ownAddr(0)
	if short {
		purgeA = purgeA.Short()
	}
	return p.own.Purge(purgeA)
}

func (p *Pipe) unlockBestEffort(a mether.Addr) {
	_ = p.own.Unlock(a)
}

// Recv receives one message, blocking until the peer writes.
func (p *Pipe) Recv() (Message, error) {
	myReadGen, err := p.own.Load32(p.ownAddr(offReadGen).Short())
	if err != nil {
		return Message{}, err
	}
	if err := p.waitPeer(func(peerShort []byte) bool {
		return le32(peerShort[offWriteGen:]) > myReadGen
	}); err != nil {
		return Message{}, err
	}

	size, err := p.peer.Load32(p.peerAddr(offWriteSize).Short())
	if err != nil {
		return Message{}, err
	}
	tag, err := p.peer.Load32(p.peerAddr(offTag).Short())
	if err != nil {
		return Message{}, err
	}
	if size > MaxPayload {
		return Message{}, fmt.Errorf("pipe: corrupt size %d", size)
	}
	data := make([]byte, size)
	if size > 0 {
		// Short messages ride in the short page we already hold; larger
		// ones read through the full view (fetching the remainder if the
		// transit that woke us carried only 32 bytes).
		src := p.peerAddr(offInline).Short()
		if int(size) > ShortPayload {
			src = p.peerAddr(offOverflow)
		}
		if err := p.peer.Read(src, data); err != nil {
			return Message{}, err
		}
	}

	// Acknowledge: copy the sizes, bump our ReadGeneration and propagate
	// so the sender's flow-control wait can proceed.
	if err := p.own.Store32(p.ownAddr(offReadSize).Short(), size); err != nil {
		return Message{}, err
	}
	if err := p.own.Store32(p.ownAddr(offReadGen).Short(), myReadGen+1); err != nil {
		return Message{}, err
	}
	if err := p.own.Purge(p.ownAddr(0).Short()); err != nil {
		return Message{}, err
	}
	return Message{Tag: tag, Data: data}, nil
}

// waitPeer implements the paper's reader protocol on the peer page: one
// cheap check of the resident inconsistent copy, then purge + demand
// refetch, then purge + data-driven block, repeating.
func (p *Pipe) waitPeer(ready func(peerShort []byte) bool) error {
	buf := make([]byte, vm.ShortSize)
	shortA := p.peerAddr(0).Short()
	for {
		// 1. Check the (possibly stale) resident copy.
		p.compute()
		if err := p.peer.Read(shortA, buf); err != nil {
			return err
		}
		if ready(buf) {
			return nil
		}
		// 2. Purge and check again: an explicit fresh fetch.
		if err := p.peer.Purge(shortA); err != nil {
			return err
		}
		p.compute()
		if err := p.peer.Read(shortA, buf); err != nil {
			return err
		}
		if ready(buf) {
			return nil
		}
		// 3. Purge and touch the data-driven view: sleep until a new
		// version of the page transits the network.
		if err := p.peer.Purge(shortA); err != nil {
			return err
		}
		p.compute()
		if err := p.peer.Read(shortA.DataDriven(), buf); err != nil {
			return err
		}
		if ready(buf) {
			return nil
		}
	}
}

// le32 decodes a little-endian uint32 (frame layout is little-endian).
func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
