package pipe_test

import (
	"fmt"

	"mether"
	"mether/pipe"
)

// Example demonstrates the §5 pipe library: message passing whose whole
// transport is two Mether pages driven by the paper's final protocol.
func Example() {
	w := mether.NewWorld(mether.Config{Hosts: 2, Pages: 8, Seed: 1})
	defer w.Shutdown()

	cap, err := pipe.Create(w, "demo", 0, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	w.Spawn(0, "tx", func(env *mether.Env) {
		p, _ := pipe.Open(env, cap, 0)
		_ = p.Send(1, []byte("hello over DSM"))
	})
	w.Spawn(1, "rx", func(env *mether.Env) {
		p, _ := pipe.Open(env, cap, 1)
		m, _ := p.Recv()
		fmt.Printf("tag %d: %s\n", m.Tag, m.Data)
	})
	w.Run()
	// Output: tag 1: hello over DSM
}

// ExampleCSend shows the Intel-iPSC-style primitives the paper ported
// its sparse solver with.
func ExampleCSend() {
	w := mether.NewWorld(mether.Config{Hosts: 2, Pages: 8, Seed: 1})
	defer w.Shutdown()
	cap, _ := pipe.Create(w, "csend", 0, 1)
	const msgWork = 7
	w.Spawn(0, "tx", func(env *mether.Env) {
		p, _ := pipe.Open(env, cap, 0)
		_ = pipe.CSend(p, msgWork, []byte{1, 2, 3})
	})
	w.Spawn(1, "rx", func(env *mether.Env) {
		p, _ := pipe.Open(env, cap, 1)
		data, typ, _ := pipe.CRecv(p, msgWork)
		fmt.Println(typ, data)
	})
	w.Run()
	// Output: 7 [1 2 3]
}
