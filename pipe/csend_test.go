package pipe

import (
	"errors"
	"testing"

	"mether"
)

func TestCSendCRecvTyped(t *testing.T) {
	w := fastWorld(t, 2, 8)
	cap, _ := Create(w, "csend", 0, 1)
	var got []byte
	var gotType uint32
	w.Spawn(0, "tx", func(env *mether.Env) {
		p, err := Open(env, cap, 0)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if err := CSend(p, 7, []byte("typed")); err != nil {
			t.Errorf("csend: %v", err)
		}
	})
	w.Spawn(1, "rx", func(env *mether.Env) {
		p, err := Open(env, cap, 1)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		data, typ, err := CRecv(p, 7)
		if err != nil {
			t.Errorf("crecv: %v", err)
			return
		}
		got, gotType = data, typ
	})
	w.Run()
	if string(got) != "typed" || gotType != 7 {
		t.Errorf("crecv = %q type %d, want typed/7", got, gotType)
	}
}

func TestCRecvAnyType(t *testing.T) {
	w := fastWorld(t, 2, 8)
	cap, _ := Create(w, "any", 0, 1)
	var typ uint32
	w.Spawn(0, "tx", func(env *mether.Env) {
		p, _ := Open(env, cap, 0)
		_ = CSend(p, 99, []byte("x"))
	})
	w.Spawn(1, "rx", func(env *mether.Env) {
		p, _ := Open(env, cap, 1)
		_, typ, _ = CRecv(p, AnyType)
	})
	w.Run()
	if typ != 99 {
		t.Errorf("type = %d, want 99", typ)
	}
}

func TestCRecvTypeMismatch(t *testing.T) {
	w := fastWorld(t, 2, 8)
	cap, _ := Create(w, "mismatch", 0, 1)
	var err error
	w.Spawn(0, "tx", func(env *mether.Env) {
		p, _ := Open(env, cap, 0)
		_ = CSend(p, 1, nil)
	})
	w.Spawn(1, "rx", func(env *mether.Env) {
		p, _ := Open(env, cap, 1)
		_, _, err = CRecv(p, 2)
	})
	w.Run()
	if !errors.Is(err, ErrWrongType) {
		t.Errorf("err = %v, want ErrWrongType", err)
	}
}

func TestCSendReservedType(t *testing.T) {
	w := fastWorld(t, 2, 8)
	cap, _ := Create(w, "reserved", 0, 1)
	var err error
	w.Spawn(0, "tx", func(env *mether.Env) {
		p, _ := Open(env, cap, 0)
		err = CSend(p, AnyType, nil)
	})
	w.Run()
	if err == nil {
		t.Error("reserved type accepted")
	}
}
