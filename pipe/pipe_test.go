package pipe

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"mether"
)

// fastWorld builds a 2..n host world with quick constants.
func fastWorld(t *testing.T, hosts, pages int) *mether.World {
	t.Helper()
	cfg := mether.Config{Hosts: hosts, Pages: pages, Seed: 5}
	w := mether.NewWorld(cfg)
	t.Cleanup(w.Shutdown)
	return w
}

func TestPingPong(t *testing.T) {
	w := fastWorld(t, 2, 8)
	cap, err := Create(w, "pp", 0, 1)
	if err != nil {
		t.Fatal(err)
	}

	var got []string
	var errA, errB error
	w.Spawn(0, "a", func(env *mether.Env) {
		p, err := Open(env, cap, 0)
		if err != nil {
			errA = err
			return
		}
		if err := p.Send(1, []byte("ping")); err != nil {
			errA = err
			return
		}
		msg, err := p.Recv()
		if err != nil {
			errA = err
			return
		}
		got = append(got, string(msg.Data))
	})
	w.Spawn(1, "b", func(env *mether.Env) {
		p, err := Open(env, cap, 1)
		if err != nil {
			errB = err
			return
		}
		msg, err := p.Recv()
		if err != nil {
			errB = err
			return
		}
		got = append(got, string(msg.Data))
		if err := p.Send(2, []byte("pong")); err != nil {
			errB = err
		}
	})
	w.Run()

	if errA != nil || errB != nil {
		t.Fatalf("errors: %v / %v", errA, errB)
	}
	if len(got) != 2 || got[0] != "ping" || got[1] != "pong" {
		t.Errorf("messages = %v, want [ping pong]", got)
	}
	if err := w.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestTagsArePreserved(t *testing.T) {
	w := fastWorld(t, 2, 8)
	cap, _ := Create(w, "tags", 0, 1)
	var tags []uint32
	w.Spawn(0, "tx", func(env *mether.Env) {
		p, err := Open(env, cap, 0)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		for i := uint32(1); i <= 3; i++ {
			if err := p.Send(i*100, []byte{byte(i)}); err != nil {
				t.Errorf("send: %v", err)
			}
		}
	})
	w.Spawn(1, "rx", func(env *mether.Env) {
		p, err := Open(env, cap, 1)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		for i := 0; i < 3; i++ {
			m, err := p.Recv()
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			tags = append(tags, m.Tag)
		}
	})
	w.Run()
	want := []uint32{100, 200, 300}
	if len(tags) != 3 || tags[0] != want[0] || tags[1] != want[1] || tags[2] != want[2] {
		t.Errorf("tags = %v, want %v", tags, want)
	}
}

func TestShortFastPathMovesFewBytes(t *testing.T) {
	w := fastWorld(t, 2, 8)
	cap, _ := Create(w, "short", 0, 1)
	done := false
	w.Spawn(0, "tx", func(env *mether.Env) {
		p, _ := Open(env, cap, 0)
		_ = p.Send(0, []byte("hi")) // 2 bytes: short path
	})
	w.Spawn(1, "rx", func(env *mether.Env) {
		p, _ := Open(env, cap, 1)
		m, err := p.Recv()
		if err == nil && string(m.Data) == "hi" {
			done = true
		}
	})
	w.Run()
	if !done {
		t.Fatal("short message not delivered")
	}
	// No full-page (8 KiB) payload should ever have hit the wire.
	if pb := w.NetStats().PayloadBytes; pb > 4096 {
		t.Errorf("payload bytes = %d; short fast path should stay tiny", pb)
	}
}

func TestLargeMessageUsesFullPage(t *testing.T) {
	w := fastWorld(t, 2, 8)
	cap, _ := Create(w, "big", 0, 1)
	msg := bytes.Repeat([]byte{0xC3}, 4000)
	var got []byte
	w.Spawn(0, "tx", func(env *mether.Env) {
		p, _ := Open(env, cap, 0)
		if err := p.Send(9, msg); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	w.Spawn(1, "rx", func(env *mether.Env) {
		p, _ := Open(env, cap, 1)
		m, err := p.Recv()
		if err != nil {
			t.Errorf("recv: %v", err)
			return
		}
		got = m.Data
	})
	w.Run()
	if !bytes.Equal(got, msg) {
		t.Fatalf("large message corrupted: got %d bytes", len(got))
	}
	if pb := w.NetStats().PayloadBytes; pb < uint64(len(msg)) {
		t.Errorf("payload bytes = %d, expected at least the message size", pb)
	}
}

func TestMaxPayloadBoundary(t *testing.T) {
	w := fastWorld(t, 2, 8)
	cap, _ := Create(w, "max", 0, 1)
	var sendErr error
	var got int
	w.Spawn(0, "tx", func(env *mether.Env) {
		p, _ := Open(env, cap, 0)
		if err := p.Send(0, make([]byte, MaxPayload+1)); !errors.Is(err, ErrTooLarge) {
			t.Errorf("oversize send err = %v, want ErrTooLarge", err)
		}
		sendErr = p.Send(0, make([]byte, MaxPayload))
	})
	w.Spawn(1, "rx", func(env *mether.Env) {
		p, _ := Open(env, cap, 1)
		m, err := p.Recv()
		if err != nil {
			t.Errorf("recv: %v", err)
			return
		}
		got = len(m.Data)
	})
	w.Run()
	if sendErr != nil {
		t.Fatalf("max-size send: %v", sendErr)
	}
	if got != MaxPayload {
		t.Errorf("received %d bytes, want %d", got, MaxPayload)
	}
}

func TestEmptyMessage(t *testing.T) {
	w := fastWorld(t, 2, 8)
	cap, _ := Create(w, "empty", 0, 1)
	delivered := false
	w.Spawn(0, "tx", func(env *mether.Env) {
		p, _ := Open(env, cap, 0)
		if err := p.Send(42, nil); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	w.Spawn(1, "rx", func(env *mether.Env) {
		p, _ := Open(env, cap, 1)
		m, err := p.Recv()
		if err == nil && len(m.Data) == 0 && m.Tag == 42 {
			delivered = true
		}
	})
	w.Run()
	if !delivered {
		t.Error("empty message with tag not delivered")
	}
}

func TestBidirectionalConcurrentTraffic(t *testing.T) {
	w := fastWorld(t, 2, 8)
	cap, _ := Create(w, "bidi", 0, 1)
	const n = 5
	var fromA, fromB []byte
	w.Spawn(0, "a", func(env *mether.Env) {
		p, _ := Open(env, cap, 0)
		for i := 0; i < n; i++ {
			if err := p.Send(0, []byte{byte(i)}); err != nil {
				t.Errorf("a send: %v", err)
				return
			}
			m, err := p.Recv()
			if err != nil {
				t.Errorf("a recv: %v", err)
				return
			}
			fromB = append(fromB, m.Data[0])
		}
	})
	w.Spawn(1, "b", func(env *mether.Env) {
		p, _ := Open(env, cap, 1)
		for i := 0; i < n; i++ {
			m, err := p.Recv()
			if err != nil {
				t.Errorf("b recv: %v", err)
				return
			}
			fromA = append(fromA, m.Data[0])
			if err := p.Send(0, []byte{byte(100 + i)}); err != nil {
				t.Errorf("b send: %v", err)
				return
			}
		}
	})
	w.Run()
	for i := 0; i < n; i++ {
		if i >= len(fromA) || fromA[i] != byte(i) {
			t.Fatalf("a->b stream corrupt: %v", fromA)
		}
		if i >= len(fromB) || fromB[i] != byte(100+i) {
			t.Fatalf("b->a stream corrupt: %v", fromB)
		}
	}
}

func TestOpenValidation(t *testing.T) {
	w := fastWorld(t, 2, 8)
	cap, _ := Create(w, "v", 0, 1)
	w.Spawn(0, "p", func(env *mether.Env) {
		if _, err := Open(env, cap, 2); err == nil {
			t.Error("side 2 accepted")
		}
		bad := mether.Capability{Segment: "pipe:v", Mode: mether.RW}
		if _, err := Open(env, bad, 0); err == nil {
			t.Error("forged capability accepted")
		}
	})
	w.Run()
}

// TestFigure3LinkStructure verifies the paper's communication layout:
// after Open, each endpoint owns exactly its side's page, and the
// generation counters live in the short region.
func TestFigure3LinkStructure(t *testing.T) {
	w := fastWorld(t, 2, 8)
	cap, _ := Create(w, "fig3", 0, 1)
	seg, err := w.LookupSegment("pipe:fig3")
	if err != nil {
		t.Fatal(err)
	}
	if seg.Pages() != 2 {
		t.Fatalf("pipe segment has %d pages, want 2", seg.Pages())
	}
	opened := 0
	for side := 0; side < 2; side++ {
		side := side
		w.Spawn(side, "e", func(env *mether.Env) {
			if _, err := Open(env, cap, side); err == nil {
				opened++
			}
		})
	}
	w.Run()
	if opened != 2 {
		t.Fatal("endpoints failed to open")
	}
	// Page 0's consistent copy starts on host 0, page 1's on host 1.
	if err := w.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if offWriteGen != 0 || offReadGen >= 32 || offInline >= 32 {
		t.Error("generation header must live inside the short page")
	}
}

// Property: a stream of random messages arrives intact and in order,
// whichever payload sizes (short/full path mix) are drawn.
func TestStreamIntegrityProperty(t *testing.T) {
	prop := func(seed int64, sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 8 {
			sizes = sizes[:8]
		}
		msgs := make([][]byte, len(sizes))
		for i, s := range sizes {
			n := int(s) % 200 // mix of short and inline sizes
			msgs[i] = bytes.Repeat([]byte{byte(i + 1)}, n)
		}
		w := mether.NewWorld(mether.Config{Hosts: 2, Pages: 8, Seed: seed})
		defer w.Shutdown()
		cap, err := Create(w, "prop", 0, 1)
		if err != nil {
			return false
		}
		ok := true
		w.Spawn(0, "tx", func(env *mether.Env) {
			p, err := Open(env, cap, 0)
			if err != nil {
				ok = false
				return
			}
			for i, m := range msgs {
				if err := p.Send(uint32(i), m); err != nil {
					ok = false
					return
				}
			}
		})
		w.Spawn(1, "rx", func(env *mether.Env) {
			p, err := Open(env, cap, 1)
			if err != nil {
				ok = false
				return
			}
			for i, want := range msgs {
				m, err := p.Recv()
				if err != nil || m.Tag != uint32(i) || !bytes.Equal(m.Data, want) {
					ok = false
					return
				}
			}
		})
		w.RunUntil(10 * time.Minute)
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestManyPipesShareHostsIndependently(t *testing.T) {
	// Three pipes between the same two hosts carry independent streams;
	// traffic on one must not corrupt or reorder another.
	w := fastWorld(t, 2, 16)
	caps := make([]mether.Capability, 3)
	for i := range caps {
		c, err := Create(w, fmt.Sprintf("multi-%d", i), 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		caps[i] = c
	}
	const msgs = 4
	received := make([][]uint32, 3)
	w.Spawn(0, "tx", func(env *mether.Env) {
		ps := make([]*Pipe, 3)
		for i, c := range caps {
			p, err := Open(env, c, 0)
			if err != nil {
				t.Errorf("open %d: %v", i, err)
				return
			}
			ps[i] = p
		}
		// Interleave sends round-robin across the pipes.
		for m := 0; m < msgs; m++ {
			for i, p := range ps {
				if err := p.Send(uint32(100*i+m), []byte{byte(i), byte(m)}); err != nil {
					t.Errorf("send pipe %d msg %d: %v", i, m, err)
					return
				}
			}
		}
	})
	w.Spawn(1, "rx", func(env *mether.Env) {
		ps := make([]*Pipe, 3)
		for i, c := range caps {
			p, err := Open(env, c, 1)
			if err != nil {
				t.Errorf("open %d: %v", i, err)
				return
			}
			ps[i] = p
		}
		for m := 0; m < msgs; m++ {
			for i, p := range ps {
				got, err := p.Recv()
				if err != nil {
					t.Errorf("recv pipe %d msg %d: %v", i, m, err)
					return
				}
				received[i] = append(received[i], got.Tag)
			}
		}
	})
	w.RunUntil(10 * time.Minute)
	for i := 0; i < 3; i++ {
		if len(received[i]) != msgs {
			t.Fatalf("pipe %d delivered %d/%d", i, len(received[i]), msgs)
		}
		for m, tag := range received[i] {
			if tag != uint32(100*i+m) {
				t.Errorf("pipe %d msg %d tag = %d, want %d", i, m, tag, 100*i+m)
			}
		}
	}
}
