// Solver: the paper's application study in miniature. A sparse system is
// solved by four simulated workstations whose only communication is
// csend/crecv-style messages over Mether pipes — the exact porting
// strategy the paper describes for Bob Lucas's solver — and the result is
// checked against a sequential solve.
package main

import (
	"fmt"
	"log"
	"time"

	"mether/internal/solver"
)

func main() {
	const n = 100_000
	fmt.Printf("solving a %d-unknown sparse system with 10 Jacobi sweeps\n\n", n)
	var base time.Duration
	for _, hosts := range []int{1, 2, 4} {
		r, err := solver.RunDistributed(solver.Config{N: n, Hosts: hosts, Sweeps: 10, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		if hosts == 1 {
			base = r.Wall
		}
		fmt.Printf("%d processor(s): wall %-10v speedup %.2fx  residual %.4e  max|Δx| %g\n",
			hosts, r.Wall.Round(time.Millisecond), float64(base)/float64(r.Wall), r.Residual, r.MaxDiff)
	}
	fmt.Println("\ndistributed runs match the sequential solution bit for bit, and")
	fmt.Println("speedup stays near-linear to four processors (the paper's claim).")
}
