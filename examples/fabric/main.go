// Fabric: the quickstart's two-host session moved off the shared
// Ethernet and onto the RDMA-like point-to-point fabric via
// Config.Medium — one line of configuration, same programming model.
// The interesting part is the bill: on the fabric a broadcast has no
// shared wire to ride, so every PURGE's propagation is expanded into
// sender-paid unicast copies (Stats.FanoutFrames), each serialized on
// its own link.
package main

import (
	"fmt"
	"log"
	"time"

	"mether"
)

func main() {
	fp := mether.DefaultFabricParams()
	fp.LinkLatency = 5 * time.Microsecond

	w := mether.NewWorld(mether.Config{
		Hosts: 2, Pages: 4, Seed: 1,
		Medium: mether.MediumConfig{Kind: mether.MediumFabric, Fabric: fp},
	})
	defer w.Shutdown()

	seg, err := w.CreateSegment("greetings", 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	capRW := seg.CapRW()

	w.Spawn(0, "writer", func(env *mether.Env) {
		m, err := env.Attach(capRW, mether.RW)
		if err != nil {
			log.Fatal(err)
		}
		a := m.Addr(0, 0).Short()
		if err := m.Store32(a, 42); err != nil {
			log.Fatal(err)
		}
		if err := m.Purge(a); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%8v] writer: stored and propagated 42\n", env.Now())
	})

	w.Spawn(1, "reader", func(env *mether.Env) {
		m, err := env.Attach(capRW.ReadOnly(), mether.RO)
		if err != nil {
			log.Fatal(err)
		}
		a := m.Addr(0, 0).Short()
		if err := m.Purge(a); err != nil {
			log.Fatal(err)
		}
		v, err := m.Load32(a.DataDriven())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%8v] reader: saw %d over the fabric\n", env.Now(), v)
	})

	w.Run()
	st := w.NetStats()
	fmt.Printf("fabric bill: %d frames (%d of them broadcast fan-out copies), %d wire bytes\n",
		st.Frames, st.FanoutFrames, st.WireBytes)
}
