// Registry: the §5 library's "named segments with capabilities",
// dogfooded through Mether itself. A producer creates a data segment,
// publishes its capability in a directory page (lock, write, purge), and
// a consumer on another host blocks on the directory's data-driven view
// until the name appears — no polling, no out-of-band channel.
package main

import (
	"fmt"
	"log"
	"time"

	"mether"
	"mether/registry"
)

func main() {
	w := mether.NewWorld(mether.Config{Hosts: 2, Pages: 16, Seed: 1})
	defer w.Shutdown()

	dir, err := registry.Create(w, "cluster", 0)
	if err != nil {
		log.Fatal(err)
	}
	results, err := w.CreateSegment("results", 1, 0)
	if err != nil {
		log.Fatal(err)
	}

	w.Spawn(0, "producer", func(env *mether.Env) {
		m, err := env.Attach(results.CapRW(), mether.RW)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.Store32(m.Addr(0, 0), 2026); err != nil {
			log.Fatal(err)
		}
		if err := m.Purge(m.Addr(0, 0).Short()); err != nil {
			log.Fatal(err)
		}
		// Let the consumer wait a while before the name exists.
		env.SleepFor(200 * time.Millisecond)
		h, err := registry.Open(env, dir)
		if err != nil {
			log.Fatal(err)
		}
		if err := h.Publish("results", results.CapRO()); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%8v] producer: published %q\n", env.Now(), "results")
	})

	w.Spawn(1, "consumer", func(env *mether.Env) {
		h, err := registry.Open(env, dir.ReadOnly())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%8v] consumer: waiting for %q...\n", env.Now(), "results")
		cap, err := h.Wait("results") // sleeps on the directory's data view
		if err != nil {
			log.Fatal(err)
		}
		m, err := env.Attach(cap, mether.RO)
		if err != nil {
			log.Fatal(err)
		}
		v, err := m.Load32(m.Addr(0, 0).Short())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%8v] consumer: looked up %q and read %d\n", env.Now(), cap.Segment, v)
	})

	w.Run()
	if err := w.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
}
