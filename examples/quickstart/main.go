// Quickstart: the smallest complete Mether session. Two simulated
// workstations share a page; one writes through the consistent view and
// propagates it with PURGE, the other first reads a possibly stale
// inconsistent copy and then blocks data-driven for fresh contents —
// the paper's whole programming model in thirty lines.
package main

import (
	"fmt"
	"log"

	"mether"
)

func main() {
	w := mether.NewWorld(mether.Config{Hosts: 2, Pages: 4, Seed: 1})
	defer w.Shutdown()

	seg, err := w.CreateSegment("greetings", 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	capRW := seg.CapRW()

	w.Spawn(0, "writer", func(env *mether.Env) {
		m, err := env.Attach(capRW, mether.RW)
		if err != nil {
			log.Fatal(err)
		}
		a := m.Addr(0, 0).Short() // short view: 32-byte transfers
		if err := m.Store32(a, 42); err != nil {
			log.Fatal(err)
		}
		// PURGE on a writable page broadcasts a read-only copy and blocks
		// until the server's DO-PURGE — the "passive update".
		if err := m.Purge(a); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%8v] writer: stored and propagated 42\n", env.Now())
	})

	w.Spawn(1, "reader", func(env *mether.Env) {
		m, err := env.Attach(capRW.ReadOnly(), mether.RO)
		if err != nil {
			log.Fatal(err)
		}
		a := m.Addr(0, 0).Short()
		// Deal Me In: drop the attach-time copy so we wait for a current
		// one instead of reading a stale zero.
		if err := m.Purge(a); err != nil {
			log.Fatal(err)
		}
		// The data-driven view blocks until a copy transits the network.
		v, err := m.Load32(a.DataDriven())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%8v] reader: data-driven view woke with %d\n", env.Now(), v)
	})

	w.Run()
	ns := w.NetStats()
	fmt.Printf("network: %d frames, %d wire bytes\n", ns.Frames, ns.WireBytes)
	if err := w.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
}
