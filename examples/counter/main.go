// Counter: the paper's Section-4 microbenchmark as a standalone program.
// It runs the worst protocol (increment on a shared full page) and the
// best (disjoint pages, one data-driven) side by side and prints the
// figure rows, showing why the final protocol wins on every axis.
package main

import (
	"fmt"
	"log"
	"time"

	"mether/internal/protocols"
)

func main() {
	const target = 512
	for _, p := range []protocols.Protocol{protocols.P1FullPage, protocols.P5Final} {
		r, err := protocols.Run(protocols.Config{Protocol: p, Target: target, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s (count to %d)\n", r.Protocol, target)
		fmt.Printf("  wallclock        %v\n", r.Wall.Round(time.Millisecond))
		fmt.Printf("  user time        %v\n", r.User.Round(time.Millisecond))
		fmt.Printf("  sys time         %v\n", r.SysTotal().Round(time.Millisecond))
		fmt.Printf("  network load     %.1f kB/s (%d packets)\n", r.NetBytesPerSec/1000, r.Packets)
		fmt.Printf("  ctx switches     %.1f per addition\n", r.CtxPerAdd)
		fmt.Printf("  space            %d page(s)\n", r.SpacePages)
		fmt.Printf("  fault latency    %v\n", r.AvgLatency.Round(100*time.Microsecond))
		fmt.Printf("  losses/wins      %.1f\n", r.LossWin)
	}
	fmt.Println("\nThe final protocol trades one extra page for an order of magnitude")
	fmt.Println("less host load, network load and latency — the paper's conclusion.")
}
