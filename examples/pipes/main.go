// Pipes: the Section-5 library in action. A client streams requests to a
// server host over a Mether pipe and gets responses back on the same
// bidirectional link; small messages ride the 32-byte short-page fast
// path, a large one exercises the full-page path. This is exactly the
// send/receive emulation the paper used to port the sparse solver.
package main

import (
	"bytes"
	"fmt"
	"log"

	"mether"
	"mether/pipe"
)

func main() {
	w := mether.NewWorld(mether.Config{Hosts: 2, Pages: 8, Seed: 1})
	defer w.Shutdown()

	cap, err := pipe.Create(w, "rpc", 0, 1)
	if err != nil {
		log.Fatal(err)
	}

	requests := [][]byte{
		[]byte("ping"),
		[]byte("short"),
		bytes.Repeat([]byte("x"), 2000), // > 32 bytes: full-page path
		[]byte("bye"),
	}

	w.Spawn(0, "client", func(env *mether.Env) {
		p, err := pipe.Open(env, cap, 0)
		if err != nil {
			log.Fatal(err)
		}
		for i, req := range requests {
			if err := p.Send(uint32(i), req); err != nil {
				log.Fatal(err)
			}
			resp, err := p.Recv()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("[%8v] client: sent %d bytes, got %q (tag %d)\n",
				env.Now(), len(req), trim(resp.Data), resp.Tag)
		}
	})

	w.Spawn(1, "server", func(env *mether.Env) {
		p, err := pipe.Open(env, cap, 1)
		if err != nil {
			log.Fatal(err)
		}
		for range requests {
			msg, err := p.Recv()
			if err != nil {
				log.Fatal(err)
			}
			reply := fmt.Sprintf("ack:%d bytes", len(msg.Data))
			if err := p.Send(msg.Tag, []byte(reply)); err != nil {
				log.Fatal(err)
			}
		}
	})

	w.Run()
	ns := w.NetStats()
	fmt.Printf("wire: %d frames, %d bytes (note how little the short path moves)\n",
		ns.Frames, ns.WireBytes)
}

func trim(b []byte) string {
	if len(b) > 24 {
		return string(b[:24]) + "..."
	}
	return string(b)
}
