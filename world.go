// Package mether is a reproduction of the Mether distributed shared
// memory (Minnich & Farber, "Reducing Host Load, Network Load, and
// Latency in a Distributed Shared Memory", ICDCS 1990) as a deterministic
// simulation library.
//
// A World is a simulated cluster: SunOS-like workstations with
// round-robin schedulers, a shared 10 Mb/s broadcast Ethernet, and a
// Mether kernel driver plus user-level server on every host. Application
// code runs as simulated processes spawned with World.Spawn and accesses
// Mether segments through view-encoded addresses exactly as the paper
// describes: address bits select full vs short (32-byte) pages and
// demand- vs data-driven fault semantics, while the choice of mapping
// (read-only inconsistent vs writable consistent) is made at Attach time.
//
// A minimal session:
//
//	w := mether.NewWorld(mether.Config{Hosts: 2, Pages: 4})
//	seg, _ := w.CreateSegment("counter", 1, 0)
//	cap := seg.CapRW()
//	w.Spawn(0, "writer", func(env *mether.Env) {
//	    m, _ := env.Attach(cap, mether.RW)
//	    m.Store32(m.Addr(0, 0), 42)
//	    m.Purge(m.Addr(0, 0).Short())
//	})
//	w.Spawn(1, "reader", func(env *mether.Env) {
//	    m, _ := env.Attach(cap.ReadOnly(), mether.RO)
//	    v, _ := m.Load32(m.Addr(0, 0).Short().DataDriven())
//	    _ = v
//	})
//	w.Run()
package mether

import (
	"fmt"
	"time"

	"mether/internal/core"
	"mether/internal/ethernet"
	"mether/internal/fabric"
	"mether/internal/host"
	"mether/internal/medium"
	"mether/internal/sim"
	"mether/internal/trace"
	"mether/internal/vm"
)

// Re-exported view types so callers need only this package.
type (
	// Addr is a Mether virtual address; view bits are set with Short,
	// Full, DataDriven and Demand.
	Addr = core.Addr
	// Mode selects the read-only (inconsistent) or writable (consistent)
	// mapping.
	Mode = core.Mode
)

// Mapping modes.
const (
	RO = core.RO
	RW = core.RW
)

// Page geometry re-exports.
const (
	PageSize  = vm.PageSize
	ShortSize = vm.ShortSize
)

// Medium kinds for MediumConfig.Kind (and the methersweep -medium axis).
const (
	// MediumEthernet is the paper's shared broadcast bus (the default).
	MediumEthernet = "ethernet"
	// MediumFabric is the RDMA-like point-to-point interconnect: per-link
	// queues and bandwidth, broadcast as sender-paid unicast fan-out.
	MediumFabric = "fabric"
)

// EthernetParams and FabricParams re-export the two media's parameter
// types so callers configure either interconnect through this package
// alone, like FaultSchedule does for the fault plane.
type (
	EthernetParams = ethernet.Params
	FabricParams   = fabric.Params
)

// DefaultEthernetParams returns the default 10 Mb/s shared-bus model.
func DefaultEthernetParams() EthernetParams { return ethernet.DefaultParams() }

// DefaultFabricParams returns the default RDMA-like fabric model.
func DefaultFabricParams() FabricParams { return fabric.DefaultParams() }

// MediumConfig scopes everything about the interconnect in one block:
// which medium kind carries the frames, its parameters, and the
// network-shape knobs (bridged topology, per-host ring sizing) that
// only make sense medium-side. The zero value is the classic shared
// 10 Mb/s Ethernet with uniform rings.
type MediumConfig struct {
	// Kind selects the backend: MediumEthernet ("" defaults to it) or
	// MediumFabric.
	Kind string
	// Ethernet is the shared-bus model (default ethernet.DefaultParams);
	// with Config.Trunks > 1 it parameterizes every trunk. Used only
	// when Kind is MediumEthernet.
	Ethernet ethernet.Params
	// Fabric is the point-to-point model (default fabric.DefaultParams).
	// Used only when Kind is MediumFabric.
	Fabric FabricParams
	// Topology parameterizes the bridges of a multi-trunk Ethernet
	// (shape, store-and-forward delay, backlogs, per-port loss); ignored
	// when Config.Trunks <= 1. A fabric has no trunks to bridge.
	Topology ethernet.TopologyConfig
	// RingOf sizes host i's receive ring, overriding the uniform
	// per-medium RxRing when non-nil. Only hosts that see fan-in bursts
	// (segment owners, servers) need deep rings; role-aware sizing keeps
	// ring memory proportional to real fan-in instead of paying the
	// worst case times the host count. Rings are physically lazy on both
	// media, so the returned value is a drop bound, not an allocation.
	RingOf func(host int) int
}

// Config describes a simulated cluster. Zero-valued fields get defaults.
type Config struct {
	// Hosts is the number of workstations (default 2).
	Hosts int
	// Pages bounds the Mether page space (default 64).
	Pages int
	// Seed drives all randomness; equal seeds give identical runs.
	Seed int64
	// HostParams is the workstation cost model (default host.DefaultParams).
	HostParams host.Params
	// Medium scopes the interconnect: kind, parameters, topology and
	// ring sizing. The zero value is the classic shared Ethernet.
	Medium MediumConfig
	// Core is the driver/server cost model (default core.DefaultConfig).
	// Its TrunkOf/TrunkHops fields are derived by NewWorld from the
	// world-level Trunks/TrunkOf placement — values set here are
	// overwritten, so the two configs cannot disagree.
	Core core.Config
	// Trunks is the number of Ethernet trunks (default 1, the classic
	// single broadcast bus). With more than one, hosts are partitioned
	// across trunks joined by store-and-forward bridges per
	// Medium.Topology — the paper's real multi-trunk network, where
	// broadcasts reach other trunks late and cross-trunk purge ordering
	// is not globally consistent. Only meaningful on MediumEthernet: a
	// point-to-point fabric has no trunks (NewWorld rejects the combination).
	Trunks int
	// TrunkOf places host i on a trunk (must return 0..Trunks-1). Nil
	// uses the default contiguous block partition: host i sits on trunk
	// i*Trunks/Hosts, like machines sharing the wing of a building.
	// NewWorld materializes this placement once and feeds it to the
	// drivers (core.Config.TrunkOf); there is no second copy to keep in
	// sync.
	TrunkOf func(host int) int

	// Deprecated knobs, kept so pre-MediumConfig callers build
	// unchanged. Each folds into the Medium block in withDefaults, and
	// only when the corresponding Medium field was left zero:
	//
	//	NetParams → Medium.Ethernet
	//	Topology  → Medium.Topology
	//	RingOf    → Medium.RingOf
	//
	// New code should set the Medium block directly.
	NetParams ethernet.Params
	// Topology parameterizes multi-trunk bridges.
	//
	// Deprecated: set Medium.Topology.
	Topology ethernet.TopologyConfig
	// RingOf sizes per-host receive rings.
	//
	// Deprecated: set Medium.RingOf.
	RingOf func(host int) int
}

func (c Config) withDefaults() Config {
	if c.Hosts == 0 {
		c.Hosts = 2
	}
	if c.Pages == 0 {
		c.Pages = 64
	}
	if c.HostParams.Quantum == 0 {
		c.HostParams = host.DefaultParams()
	}
	// Fold the deprecated medium-scoped knobs into the Medium block
	// (documented mapping on Config); explicit Medium fields win.
	if c.Medium.Ethernet.BandwidthBps == 0 {
		c.Medium.Ethernet = c.NetParams
	}
	if c.Medium.Topology == (ethernet.TopologyConfig{}) {
		c.Medium.Topology = c.Topology
	}
	if c.Medium.RingOf == nil {
		c.Medium.RingOf = c.RingOf
	}
	switch c.Medium.Kind {
	case "":
		c.Medium.Kind = MediumEthernet
	case MediumEthernet, MediumFabric:
	default:
		panic(fmt.Sprintf("mether: unknown medium kind %q (want %q or %q)",
			c.Medium.Kind, MediumEthernet, MediumFabric))
	}
	if c.Medium.Ethernet.BandwidthBps == 0 {
		c.Medium.Ethernet = ethernet.DefaultParams()
	}
	if c.Medium.Fabric.BandwidthBps == 0 {
		c.Medium.Fabric = fabric.DefaultParams()
	}
	if c.Core.NumPages == 0 {
		c.Core = core.DefaultConfig(c.Pages)
	}
	c.Core.NumPages = c.Pages
	if c.Trunks == 0 {
		c.Trunks = 1
	}
	if c.Trunks < 1 || c.Trunks > c.Hosts {
		panic(fmt.Sprintf("mether: %d trunks for %d hosts", c.Trunks, c.Hosts))
	}
	if c.Medium.Kind == MediumFabric && c.Trunks > 1 {
		panic("mether: trunks are an Ethernet concept; a fabric has no broadcast domains to bridge")
	}
	return c
}

// World is one simulated Mether cluster.
type World struct {
	cfg Config
	k   *sim.Kernel
	// med is the interconnect the cluster's reporting surface talks to:
	// the fabric, the single bus, or trunk 0 of a multi-trunk topology
	// (so taps keep listening on the backbone).
	med      medium.Medium
	bus      *ethernet.Bus      // trunk 0; nil on a fabric world
	topo     *ethernet.Topology // nil unless multi-trunk Ethernet
	fab      *fabric.Fabric     // nil unless MediumFabric
	trunkOf  []int              // host index -> trunk (nil for single trunk)
	hosts    []*host.Host
	drivers  []*core.Driver
	segs     map[string]*Segment
	nextPage vm.PageID
	nextTok  uint64
}

// NewWorld builds a cluster and starts the Mether server on every host.
func NewWorld(cfg Config) *World {
	cfg = cfg.withDefaults()
	w := &World{
		cfg:  cfg,
		k:    sim.New(cfg.Seed),
		segs: make(map[string]*Segment),
	}
	// Size the kernel's same-instant run queue from the fan-in model:
	// the widest same-instant burst is a broadcast delivery, which wakes
	// at most one interrupt-coalesced server per host, plus a small
	// constant for timers and the handful of client wakeups any single
	// event can produce. Invariant: reserve >= Hosts + O(1); anything
	// more is dead capacity (the old blanket 8× over-reserved every
	// world), anything less only costs a doubling copy, never
	// correctness.
	w.k.ReserveRunq(cfg.Hosts + 16)
	coreCfg := cfg.Core
	// The drivers learn the cluster size for redundant-fetch target
	// selection (a no-op at the default Redundancy of 0/1).
	coreCfg.NumHosts = cfg.Hosts
	// One decode-once view pool per world: the drivers attach each
	// broadcast's parsed header to its shared wire buffer so the other
	// N-1 receivers skip the parse, and the buses hand views back to the
	// pool as the buffers recycle.
	views := core.NewViewPool()
	coreCfg.Views = views
	// NewWorld is the single place the trunk placement is materialized
	// and handed to the drivers: coreCfg.TrunkOf/TrunkHops are
	// unconditionally derived here (nil for a single-trunk or fabric
	// world), so the world-level and core-level configs cannot disagree.
	coreCfg.TrunkOf = nil
	coreCfg.TrunkHops = nil
	switch {
	case cfg.Medium.Kind == MediumFabric:
		w.fab = fabric.New(w.k, cfg.Medium.Fabric)
		w.med = w.fab
		w.fab.OnViewDrop(views.Recycle)
	case cfg.Trunks > 1:
		w.topo = ethernet.NewTopology(w.k, cfg.Trunks, cfg.Medium.Ethernet, cfg.Medium.Topology)
		w.trunkOf = make([]int, cfg.Hosts)
		for i := range w.trunkOf {
			t := i * cfg.Trunks / cfg.Hosts
			if cfg.TrunkOf != nil {
				t = cfg.TrunkOf(i)
			}
			if t < 0 || t >= cfg.Trunks {
				panic(fmt.Sprintf("mether: TrunkOf(%d) = %d outside 0..%d", i, t, cfg.Trunks-1))
			}
			w.trunkOf[i] = t
		}
		w.bus = w.topo.Bus(0)
		w.med = w.bus
		// The drivers learn the trunk map so cross-trunk protocol hazards
		// (stale refreshes arriving after newer ones reordered by bridge
		// queues) are counted, not just possible.
		coreCfg.TrunkOf = w.trunkOf
		// Bridge-hop distances feed the redundant-fetch nearest-first
		// target ordering (same trunk beats one hop beats two).
		coreCfg.TrunkHops = w.topo.Hops
		for i := 0; i < w.topo.Trunks(); i++ {
			w.topo.Bus(i).OnViewDrop(views.Recycle)
		}
	default:
		w.bus = ethernet.NewBus(w.k, cfg.Medium.Ethernet)
		w.med = w.bus
		w.bus.OnViewDrop(views.Recycle)
	}
	defaultRing := cfg.Medium.Ethernet.RxRing
	if cfg.Medium.Kind == MediumFabric {
		defaultRing = cfg.Medium.Fabric.RxRing
	}
	for i := 0; i < cfg.Hosts; i++ {
		h := host.New(w.k, i, fmt.Sprintf("host%d", i), cfg.HostParams)
		var d *core.Driver
		m := w.med
		if w.topo != nil {
			m = w.topo.Bus(w.trunkOf[i])
		}
		ring := defaultRing
		if cfg.Medium.RingOf != nil {
			ring = cfg.Medium.RingOf(i)
		}
		port := m.AttachPortWithRing(h.Name(), func() { d.FrameArrived() }, ring)
		d = core.New(h, port, coreCfg)
		d.StartServer()
		w.hosts = append(w.hosts, h)
		w.drivers = append(w.drivers, d)
	}
	return w
}

// NumHosts returns the cluster size.
func (w *World) NumHosts() int { return len(w.hosts) }

// Trunks returns the number of Ethernet trunks (1 for the classic
// single-bus world).
func (w *World) Trunks() int {
	if w.topo == nil {
		return 1
	}
	return w.topo.Trunks()
}

// TrunkOf returns the trunk host hostIdx is attached to.
func (w *World) TrunkOf(hostIdx int) int {
	if w.trunkOf == nil {
		return 0
	}
	return w.trunkOf[hostIdx]
}

// FirstHostOnTrunk returns the lowest-numbered host attached to the
// given trunk, or -1 if the trunk is empty. Workloads use it for
// trunk-aware placement: putting a segment owner on a chosen trunk
// decides which trunk serves that segment's demand requests.
func (w *World) FirstHostOnTrunk(trunk int) int {
	for i := range w.hosts {
		if w.TrunkOf(i) == trunk {
			return i
		}
	}
	return -1
}

// BridgeStats returns the aggregated store-and-forward counters of the
// topology's bridges (zero for a single-trunk world).
func (w *World) BridgeStats() ethernet.BridgeStats {
	if w.topo == nil {
		return ethernet.BridgeStats{}
	}
	return w.topo.BridgeStats()
}

// Now returns the current virtual time.
func (w *World) Now() time.Duration { return w.k.Now() }

// Run executes the simulation until it quiesces (all processes blocked
// or finished) and returns the final virtual time.
func (w *World) Run() time.Duration { return w.k.Run() }

// RunUntil executes the simulation up to the given virtual deadline.
func (w *World) RunUntil(d time.Duration) time.Duration { return w.k.RunUntil(d) }

// Shutdown releases all simulation goroutines. Call it when done with a
// World, especially in tests and sweeps that build many worlds.
func (w *World) Shutdown() { w.k.Shutdown() }

// Spawn starts a simulated application process on a host. fn must express
// computation via Env.Compute and blocking via the Env sleep helpers so
// that virtual time advances.
func (w *World) Spawn(hostIdx int, name string, fn func(env *Env)) {
	h := w.hosts[hostIdx]
	d := w.drivers[hostIdx]
	h.Spawn(name, func(p *host.Proc) {
		fn(&Env{w: w, host: hostIdx, p: p, d: d})
	})
}

// Kernel exposes the simulation kernel (advanced use: custom events).
func (w *World) Kernel() *sim.Kernel { return w.k }

// Driver exposes a host's Mether driver for metrics and invariant checks
// (advanced use; the type lives in an internal package).
func (w *World) Driver(hostIdx int) *core.Driver { return w.drivers[hostIdx] }

// HostMachine exposes a host's scheduler (advanced use).
func (w *World) HostMachine(hostIdx int) *host.Host { return w.hosts[hostIdx] }

// NetStats returns the interconnect counters — summed over every trunk
// on a multi-trunk Ethernet, where a frame forwarded across bridges is
// counted on each trunk it crosses: cross-trunk broadcasts genuinely
// occupy every wire they transit. On a fabric the fan-out/link-queue
// fields (FanoutFrames, LinkOverflows, LinkMaxQueued) are populated;
// on Ethernet they are always zero.
func (w *World) NetStats() ethernet.Stats {
	if w.topo != nil {
		return w.topo.Stats()
	}
	return w.med.Stats()
}

// TrunkStats returns every trunk's own segment counters in trunk order
// (a one-element slice for a single-bus or fabric world). Unlike
// NetStats, nothing is summed: multi-trunk reports use this to show
// which trunk's wire saturates.
func (w *World) TrunkStats() []ethernet.Stats {
	if w.topo == nil {
		return []ethernet.Stats{w.med.Stats()}
	}
	out := make([]ethernet.Stats, w.topo.Trunks())
	for i := range out {
		out[i] = w.topo.Bus(i).Stats()
	}
	return out
}

// TrunkUtilization returns each trunk's wire utilization (busy time as
// a fraction of the given wall time) and transmitted frame count, in
// trunk order — the report-ready form of TrunkStats. Nils for the
// classic single-bus world, so report fields fed from it stay omitted
// there.
func (w *World) TrunkUtilization(wall time.Duration) ([]float64, []uint64) {
	if w.topo == nil {
		return nil, nil
	}
	util := make([]float64, 0, w.topo.Trunks())
	frames := make([]uint64, 0, w.topo.Trunks())
	for _, ts := range w.TrunkStats() {
		u := 0.0
		if wall > 0 {
			u = float64(ts.BusyTime) / float64(wall)
		}
		util = append(util, u)
		frames = append(frames, ts.Frames)
	}
	return util, frames
}

// MemFootprint returns the world's structural memory footprint in
// bytes: every driver's directory/frame/queue walk plus the network's
// rings and pools. It is a deterministic function of simulated
// behaviour — identical across runs, GC timing and sweep worker counts
// — which is why reports carry it instead of runtime heap statistics
// (those are polluted by whatever else shares the process, including
// parallel sweep workers). Monotone structures only: the walk counts
// peak-shaped capacity (rings, pools, tiers never shrink), so it is a
// resident-footprint measure, not an instantaneous live-byte count.
func (w *World) MemFootprint() uint64 {
	var b uint64
	for _, d := range w.drivers {
		b += d.MemFootprint()
	}
	if w.topo != nil {
		b += w.topo.MemFootprint()
	} else {
		b += w.med.MemFootprint()
	}
	b += uint64(len(w.trunkOf)) * 8
	return b
}

// EventsDispatched returns the number of simulation-kernel events
// executed so far — a deterministic measure of engine work, used by
// sweep throughput records (events/sec, allocs/event).
func (w *World) EventsDispatched() uint64 { return w.k.Dispatched() }

// ContextSwitches returns a host's dispatch count.
func (w *World) ContextSwitches(hostIdx int) uint64 { return w.hosts[hostIdx].ContextSwitches() }

// CheckInvariants verifies the cluster-wide single-consistent-copy
// invariants; it returns nil when they hold.
func (w *World) CheckInvariants() error { return core.CheckInvariants(w.drivers...) }

// AttachTap adds a passive protocol analyzer to the cluster's
// interconnect and returns its log (the simulation's tcpdump). max
// bounds retained entries; 0 keeps everything. Attach taps before
// running. On a multi-trunk world the tap listens on trunk 0 (the
// backbone), like a real analyzer plugged into one segment. On a fabric
// there is no promiscuous mode: the tap sees only broadcast fan-out
// copies addressed to it, never host-to-host unicasts.
func (w *World) AttachTap(max int) *trace.Log { return trace.Tap(w.k, w.med, max) }
