package mether_test

import (
	"fmt"
	"testing"
	"time"

	"mether"
	"mether/internal/ethernet"
)

// TestTrunkPartitionAndPlacement covers the public topology surface: the
// default contiguous block partition, the trunk accessors, and
// trunk-aware segment placement.
func TestTrunkPartitionAndPlacement(t *testing.T) {
	w := mether.NewWorld(mether.Config{Hosts: 8, Pages: 8, Seed: 3, Trunks: 4})
	defer w.Shutdown()
	if w.Trunks() != 4 {
		t.Fatalf("Trunks() = %d, want 4", w.Trunks())
	}
	for i := 0; i < 8; i++ {
		if got, want := w.TrunkOf(i), i/2; got != want {
			t.Errorf("TrunkOf(%d) = %d, want %d (block partition)", i, got, want)
		}
	}
	if h := w.FirstHostOnTrunk(2); h != 4 {
		t.Errorf("FirstHostOnTrunk(2) = %d, want 4", h)
	}
	seg, err := w.CreateSegmentOnTrunk("far", 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if snap := w.Driver(6).Snapshot(0); !snap.Owner {
		t.Errorf("segment %q should be owned by host 6 (first host of trunk 3): %+v", seg.Name(), snap)
	}
	if _, err := w.CreateSegmentOnTrunk("bad", 1, 4); err == nil {
		t.Error("CreateSegmentOnTrunk accepted an out-of-range trunk")
	}

	// Custom placement overrides the block partition.
	w2 := mether.NewWorld(mether.Config{
		Hosts: 4, Pages: 8, Seed: 3, Trunks: 2,
		TrunkOf: func(host int) int { return host % 2 },
	})
	defer w2.Shutdown()
	for i := 0; i < 4; i++ {
		if got := w2.TrunkOf(i); got != i%2 {
			t.Errorf("custom TrunkOf(%d) = %d, want %d", i, got, i%2)
		}
	}
}

// TestCrossTrunkPurgeOrderingDisagrees reproduces the paper's central
// multi-trunk argument at the protocols layer (Mether drivers and
// servers, not raw frames as in ethernet's bridge test): two owners on
// different trunks purge their stationary pages at the same virtual
// instant, and observers on the two trunks see the refreshes land in
// opposite orders — there is no global purge ordering across bridges.
// The bridge delay sits well above the hosts' ~3ms scheduling
// granularity so the observers' polls resolve the two arrivals.
func TestCrossTrunkPurgeOrderingDisagrees(t *testing.T) {
	w := mether.NewWorld(mether.Config{
		Hosts: 4, Pages: 8, Seed: 11, Trunks: 2,
		Topology: ethernet.TopologyConfig{BridgeDelay: 20 * time.Millisecond},
	})
	defer w.Shutdown()
	segA, err := w.CreateSegment("a", 1, 0) // owner host 0, trunk 0
	if err != nil {
		t.Fatal(err)
	}
	segB, err := w.CreateSegment("b", 1, 2) // owner host 2, trunk 1
	if err != nil {
		t.Fatal(err)
	}
	capA, capB := segA.CapRW(), segB.CapRW()

	// Observers (one per trunk) hold replicas of both pages and record
	// which owner's update becomes visible first. Polling sleeps rather
	// than spins so the Mether server handles each refresh promptly.
	firstSeen := make([]string, 4)
	errs := make([]error, 4)
	observe := func(hostIdx int) {
		w.Spawn(hostIdx, fmt.Sprintf("obs%d", hostIdx), func(env *mether.Env) {
			ma, err := env.Attach(capA.ReadOnly(), mether.RO)
			if err != nil {
				errs[hostIdx] = err
				return
			}
			mb, err := env.Attach(capB.ReadOnly(), mether.RO)
			if err != nil {
				errs[hostIdx] = err
				return
			}
			aAddr, bAddr := ma.Addr(0, 0).Short(), mb.Addr(0, 0).Short()
			for env.Now() < 5*time.Second {
				env.SleepFor(50 * time.Microsecond)
				va, err := ma.Load32(aAddr)
				if err != nil {
					errs[hostIdx] = err
					return
				}
				vb, err := mb.Load32(bAddr)
				if err != nil {
					errs[hostIdx] = err
					return
				}
				switch {
				case va == 1 && vb == 1:
					errs[hostIdx] = fmt.Errorf("host %d saw both updates within one 50µs poll", hostIdx)
					return
				case va == 1:
					firstSeen[hostIdx] = "A"
					return
				case vb == 1:
					firstSeen[hostIdx] = "B"
					return
				}
			}
			errs[hostIdx] = fmt.Errorf("host %d never saw an update", hostIdx)
		})
	}
	observe(1) // trunk 0
	observe(3) // trunk 1

	// The two owners write and purge at the same virtual instant.
	write := func(hostIdx int, c mether.Capability) {
		w.Spawn(hostIdx, fmt.Sprintf("w%d", hostIdx), func(env *mether.Env) {
			m, err := env.Attach(c, mether.RW)
			if err != nil {
				errs[hostIdx] = err
				return
			}
			a := m.Addr(0, 0).Short()
			env.SleepFor(200*time.Millisecond - env.Now())
			if err := m.Store32(a, 1); err != nil {
				errs[hostIdx] = err
				return
			}
			errs[hostIdx] = m.Purge(a)
		})
	}
	write(0, capA)
	write(2, capB)

	w.RunUntil(10 * time.Second)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("host %d: %v", i, err)
		}
	}
	if firstSeen[1] != "A" {
		t.Errorf("trunk-0 observer saw %q first, want its local purge A", firstSeen[1])
	}
	if firstSeen[3] != "B" {
		t.Errorf("trunk-1 observer saw %q first, want its local purge B", firstSeen[3])
	}
	if firstSeen[1] == firstSeen[3] {
		t.Error("both trunks agreed on purge order; the bridge hazard did not reproduce")
	}
	if bs := w.BridgeStats(); bs.Forwarded == 0 {
		t.Error("no frames crossed the bridge")
	}
	if err := w.CheckInvariants(); err != nil {
		t.Error(err)
	}
}
