// Benchmarks regenerating every table and figure of the paper's
// evaluation as testing.B targets. Each benchmark runs the deterministic
// simulation at a reduced counter target and reports the paper's metrics
// per addition via b.ReportMetric:
//
//	sim-ms/add    simulated wall-clock milliseconds per addition
//	loss/win      the paper's Losses/Wins ratio
//	lat-ms        mean page-fault latency (simulated milliseconds)
//	net-B/s       network load, bytes per simulated second
//	ctx/add       context switches per addition
//
// Absolute Go-side ns/op numbers measure the simulator, not Mether; the
// reported metrics are the reproduction's outputs. cmd/metherbench runs
// the same experiments at full scale (1024) with paper-vs-measured tables.
package mether_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"mether"
	"mether/internal/core"
	"mether/internal/ethernet"
	"mether/internal/host"
	"mether/internal/memnet"
	"mether/internal/proto"
	"mether/internal/protocols"
	"mether/internal/sim"
	"mether/internal/solver"
	"mether/internal/sweep"
	"mether/internal/vm"
	"mether/internal/workload"
	"mether/pipe"
)

const benchTarget = 128

// reportCounter attaches the figure metrics to a benchmark.
func reportCounter(b *testing.B, r protocols.Report) {
	b.Helper()
	if r.Additions > 0 {
		b.ReportMetric(float64(r.Wall.Milliseconds())/float64(r.Additions), "sim-ms/add")
		b.ReportMetric(r.CtxPerAdd, "ctx/add")
	}
	b.ReportMetric(r.LossWin, "loss/win")
	b.ReportMetric(float64(r.AvgLatency.Microseconds())/1000, "lat-ms")
	b.ReportMetric(r.NetBytesPerSec, "net-B/s")
}

func runProtocolBench(b *testing.B, cfg protocols.Config) {
	b.Helper()
	var last protocols.Report
	for i := 0; i < b.N; i++ {
		r, err := protocols.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	reportCounter(b, last)
}

// BenchmarkBaselineSingle reproduces the Section-4 text: one process
// counting alone (~50 µs per increment on the era hardware).
func BenchmarkBaselineSingle(b *testing.B) {
	runProtocolBench(b, protocols.Config{Protocol: protocols.BaselineSingle, Target: 1024, Seed: 1})
}

// BenchmarkBaselineLocalPair reproduces the 81 s / 37 s CPU two-process
// local baseline (quantum thrashing).
func BenchmarkBaselineLocalPair(b *testing.B) {
	runProtocolBench(b, protocols.Config{Protocol: protocols.BaselineLocalPair, Target: benchTarget, Seed: 1})
}

// BenchmarkFigures regenerates Figures 4-9 from the sweep engine's
// figure definitions, so the benchmarks, cmd/metherbench and
// cmd/methersweep all measure the exact same configurations. The
// degenerate Figure-6 run is capped at bench scale (it never finishes).
func BenchmarkFigures(b *testing.B) {
	for _, sc := range sweep.FigureScenarios(sweep.Options{Target: benchTarget, Seed: 1}) {
		sc := sc
		if sc.Protocol == protocols.P3DisjointRO {
			sc.Cap = 20 * time.Second
		}
		b.Run(sc.Name, func(b *testing.B) {
			runProtocolBench(b, sc.CounterConfig())
		})
	}
}

// BenchmarkFig7Hysteresis sweeps the Figure-7 purge period and the
// paper's rejected sleep-based fix, via the sweep definitions.
func BenchmarkFig7Hysteresis(b *testing.B) {
	for _, sc := range sweep.HysteresisSweep(sweep.Options{Target: benchTarget, Seed: 1}) {
		sc := sc
		b.Run(sc.Name, func(b *testing.B) {
			runProtocolBench(b, sc.CounterConfig())
		})
	}
}

// BenchmarkSolverSpeedup regenerates the Section-3 claim: near-linear
// speedup of the csend/crecv sparse solver up to four processors.
func BenchmarkSolverSpeedup(b *testing.B) {
	for _, hosts := range []int{1, 2, 3, 4} {
		b.Run(fmt.Sprintf("procs=%d", hosts), func(b *testing.B) {
			var last solver.Report
			for i := 0; i < b.N; i++ {
				r, err := solver.RunDistributed(solver.Config{N: 100_000, Hosts: hosts, Sweeps: 6, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(last.Speedup, "speedup")
			b.ReportMetric(last.Efficient*100, "efficiency-%")
			b.ReportMetric(float64(last.Wall.Milliseconds()), "sim-ms")
		})
	}
}

// BenchmarkMemNetComparison regenerates the cross-system claim: the same
// protocol shapes on the hardware DSM rank in the same order.
func BenchmarkMemNetComparison(b *testing.B) {
	for _, s := range []memnet.Shape{memnet.SharedChunk, memnet.DisjointSpin, memnet.DisjointBlocked} {
		b.Run(s.String(), func(b *testing.B) {
			var last memnet.Report
			for i := 0; i < b.N; i++ {
				r, err := memnet.RunCounter(memnet.Config{Shape: s, Target: 1024, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(last.LossWin, "loss/win")
			b.ReportMetric(float64(last.Fetches), "ring-fetches")
			b.ReportMetric(float64(last.RingBytes), "ring-bytes")
			b.ReportMetric(float64(last.Wall.Microseconds())/float64(last.Additions), "sim-us/add")
		})
	}
}

// BenchmarkShortPageSizeSweep is the ablation behind the short-page
// design discussion ("we could make the short pages larger with very
// little impact on performance; making them smaller would not be
// worthwhile"): per-message cost through the pipe library as payload
// size crosses the short-page boundary into full-page territory.
func BenchmarkShortPageSizeSweep(b *testing.B) {
	for _, size := range []int{1, 4, 8, 12, 64, 512, 2048, 8000} {
		b.Run(fmt.Sprintf("bytes=%d", size), func(b *testing.B) {
			var perMsg time.Duration
			for i := 0; i < b.N; i++ {
				perMsg = pipeRoundTrip(b, size, 8)
			}
			b.ReportMetric(float64(perMsg.Microseconds())/1000, "sim-ms/msg")
		})
	}
}

// pipeRoundTrip measures simulated time per message for count messages
// of the given size.
func pipeRoundTrip(b *testing.B, size, count int) time.Duration {
	b.Helper()
	w := mether.NewWorld(mether.Config{Hosts: 2, Pages: 8, Seed: 1})
	defer w.Shutdown()
	cap, err := pipe.Create(w, "bench", 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xA5}, size)
	w.Spawn(0, "tx", func(env *mether.Env) {
		p, err := pipe.Open(env, cap, 0)
		if err != nil {
			b.Error(err)
			return
		}
		for i := 0; i < count; i++ {
			if err := p.Send(uint32(i), payload); err != nil {
				b.Error(err)
				return
			}
		}
	})
	w.Spawn(1, "rx", func(env *mether.Env) {
		p, err := pipe.Open(env, cap, 1)
		if err != nil {
			b.Error(err)
			return
		}
		for i := 0; i < count; i++ {
			if _, err := p.Recv(); err != nil {
				b.Error(err)
				return
			}
		}
	})
	end := w.RunUntil(10 * time.Minute)
	return end / time.Duration(count)
}

// BenchmarkAblationWakeBoost quantifies the scheduler design choice
// DESIGN.md calls out: how the SunOS wakeup priority boost affects the
// paper's protocols (0 = pure round robin).
func BenchmarkAblationWakeBoost(b *testing.B) {
	for _, boost := range []time.Duration{0, 2 * time.Millisecond, 15 * time.Millisecond} {
		b.Run(fmt.Sprintf("boost=%v", boost), func(b *testing.B) {
			hp := host.DefaultParams()
			hp.WakeBoostDelay = boost
			runProtocolBench(b, protocols.Config{
				Protocol: protocols.P2ShortPage, Target: benchTarget,
				Seed: 1, HostParams: hp,
			})
		})
	}
}

// BenchmarkAblationKernelServer measures the paper's proposed fix for
// its final bottleneck ("the context switches required to receive a new
// page... will be solved by ... a migration of the user level server
// code to the kernel") via the sweep engine's kernel-ablation grid.
func BenchmarkAblationKernelServer(b *testing.B) {
	for _, sc := range sweep.KernelAblation(sweep.Options{Target: benchTarget, Seed: 1}) {
		sc := sc
		b.Run(sc.Name, func(b *testing.B) {
			runProtocolBench(b, sc.CounterConfig())
		})
	}
}

// BenchmarkSweepEngine measures the sweep engine itself: the smoke grid
// through the bounded worker pool, reporting achieved parallel speedup
// over serial-equivalent execution.
func BenchmarkSweepEngine(b *testing.B) {
	scs, err := sweep.Grid("smoke", sweep.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	var tm sweep.Timing
	for i := 0; i < b.N; i++ {
		_, tm = sweep.Runner{}.Run("smoke", scs)
	}
	b.ReportMetric(tm.Speedup, "speedup")
	b.ReportMetric(float64(tm.Workers), "workers")
}

// BenchmarkAblationRetryTimeout sweeps the demand-request retransmit
// timeout under loss, the knob behind the reliability discussion.
func BenchmarkAblationRetryTimeout(b *testing.B) {
	for _, rt := range []time.Duration{50 * time.Millisecond, 250 * time.Millisecond, time.Second} {
		b.Run(fmt.Sprintf("timeout=%v", rt), func(b *testing.B) {
			np := ethernet.DefaultParams()
			np.LossRate = 0.01
			cc := core.DefaultConfig(8)
			cc.RetryTimeout = rt
			runProtocolBench(b, protocols.Config{
				Protocol: protocols.P2ShortPage, Target: benchTarget,
				Seed: 1, NetParams: np, Core: cc,
			})
		})
	}
}

// BenchmarkPipeThroughput measures message throughput through the §5
// pipe library for the workload mixes the paper's applications exhibit:
// all-control (short path), all-bulk (full pages) and the bimodal mix.
func BenchmarkPipeThroughput(b *testing.B) {
	dists := []workload.SizeDist{
		workload.Fixed{Size: 8},
		workload.Fixed{Size: 7000},
		workload.Bimodal{Small: 8, Large: 7000, LargeEvery: 8},
	}
	for _, d := range dists {
		b.Run(d.Name(), func(b *testing.B) {
			var last workload.Report
			for i := 0; i < b.N; i++ {
				r, err := workload.Run(workload.Config{Dist: d, Messages: 24, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(last.MsgsPerSec, "sim-msg/s")
			b.ReportMetric(last.BytesPerSec, "sim-B/s")
			b.ReportMetric(last.ShortRatio*100, "short-%")
		})
	}
}

// BenchmarkFanoutScaling measures the broadcast-vs-demand reader scaling
// experiment (one writer, N readers).
func BenchmarkFanoutScaling(b *testing.B) {
	for _, mode := range []protocols.FanoutMode{protocols.FanoutDataDriven, protocols.FanoutDemand} {
		for _, readers := range []int{2, 8} {
			b.Run(fmt.Sprintf("%v/readers=%d", mode, readers), func(b *testing.B) {
				var last protocols.FanoutReport
				for i := 0; i < b.N; i++ {
					r, err := protocols.RunFanout(protocols.FanoutConfig{
						Mode: mode, Readers: readers, Updates: 16, Seed: 1,
					})
					if err != nil {
						b.Fatal(err)
					}
					last = r
				}
				b.ReportMetric(last.PacketsPerU, "pkts/update")
				b.ReportMetric(last.WriterCPU.Seconds()*1000, "writer-cpu-ms")
			})
		}
	}
}

// --- microbenchmarks of the substrates themselves ---

// BenchmarkAddrCodec measures the Figure-2 view-bit arithmetic.
func BenchmarkAddrCodec(b *testing.B) {
	var sink core.Addr
	for i := 0; i < b.N; i++ {
		a := core.NewAddr(vm.PageID(i%1024), i%vm.PageSize)
		sink = a.Short().DataDriven().Demand().Full()
	}
	_ = sink
}

// BenchmarkProtoEncodeShort measures wire-format encoding of the 32-byte
// data packet, the hot packet of the good protocols.
func BenchmarkProtoEncodeShort(b *testing.B) {
	pkt := proto.Packet{Type: proto.TypeData, Page: 1, Short: true, OwnerTo: proto.NoOwner, Gen: 7, Data: make([]byte, vm.ShortSize)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := proto.Encode(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProtoDecodeShort measures the receive path's decode.
func BenchmarkProtoDecodeShort(b *testing.B) {
	enc, err := proto.Encode(proto.Packet{Type: proto.TypeData, Page: 1, Short: true, OwnerTo: proto.NoOwner, Data: make([]byte, vm.ShortSize)})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := proto.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimEventThroughput measures raw event-queue throughput, the
// simulator's own speed limit.
func BenchmarkSimEventThroughput(b *testing.B) {
	k := sim.New(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			k.After(time.Microsecond, "tick", tick)
		}
	}
	k.After(time.Microsecond, "tick", tick)
	k.Run()
}
