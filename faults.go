package mether

import (
	"fmt"

	"mether/internal/fault"
	"mether/internal/vm"
)

// This file executes internal/fault schedules against a World: host
// crash and recovery, bridge partition and heal, and owner migration
// become first-class kernel events installed before the run starts.
// The schedule is pure data and every event runs at its virtual time
// under the seeded kernel, so a faulted run is byte-identical across
// runs and sweep worker counts — and an empty schedule is a provable
// no-op (InjectFaults installs nothing).

// FaultSchedule aliases the internal schedule type so callers outside
// this module can build schedules (the alias makes the internal type
// nameable; its chainable builders work through it) without importing
// an internal package.
type FaultSchedule = fault.Schedule

// ParseFaults parses the textual schedule syntax used by methersweep's
// -faults flag, e.g. "crash@8s:h17;recover@12s:h17;partition@20s:b0".
func ParseFaults(spec string) (FaultSchedule, error) { return fault.Parse(spec) }

// InjectFaults validates the schedule against this world's shape and
// installs its events on the kernel. Call before Run; the events fire
// at their virtual times in schedule order (ties keep listed order).
func (w *World) InjectFaults(s FaultSchedule) error {
	if s.Empty() {
		return nil
	}
	bridges := 0
	if w.topo != nil {
		bridges = len(w.topo.Bridges())
	}
	if err := s.Validate(len(w.hosts), bridges); err != nil {
		return err
	}
	for _, e := range s.Sorted() {
		ev := e
		w.k.At(ev.At, "fault "+ev.Kind.String(), func() { w.applyFault(ev) })
	}
	return nil
}

func (w *World) applyFault(e fault.Event) {
	switch e.Kind {
	case fault.Crash:
		w.CrashHost(e.Host)
	case fault.Recover:
		w.RecoverHost(e.Host)
	case fault.Partition:
		w.PartitionBridge(e.Bridge)
	case fault.Heal:
		w.HealBridge(e.Bridge)
	case fault.Migrate:
		w.MigrateHost(e.Host, e.Dest)
	}
}

// CrashHost crashes a host now: NIC down, driver state lost, client
// processes left to re-fault (core.Driver.Crash). Idempotent while
// down.
func (w *World) CrashHost(hostIdx int) { w.drivers[hostIdx].Crash() }

// RecoverHost brings a crashed host back; it re-joins cold through the
// lazy directory attach path. A no-op if the host is up.
func (w *World) RecoverHost(hostIdx int) { w.drivers[hostIdx].Recover() }

// PartitionBridge takes one of the topology's bridges down, splitting
// the extended LAN; buffered and in-flight bridge frames are dropped
// (BridgeStats.PartitionDrops), never replayed after a heal.
func (w *World) PartitionBridge(bridge int) {
	if w.topo == nil {
		panic(fmt.Sprintf("mether: partition of bridge %d in a single-trunk world", bridge))
	}
	w.topo.Bridges()[bridge].SetPartitioned(true)
}

// HealBridge brings a partitioned bridge back up.
func (w *World) HealBridge(bridge int) {
	if w.topo == nil {
		panic(fmt.Sprintf("mether: heal of bridge %d in a single-trunk world", bridge))
	}
	w.topo.Bridges()[bridge].SetPartitioned(false)
}

// MigrateHost re-homes every page authority resident on src to dst,
// shipping the resident working set MOSIX-style (core.Driver.MigrateTo).
// Returns the number of authorities moved (0 if either end is down).
func (w *World) MigrateHost(src, dst int) int {
	return w.drivers[src].MigrateTo(w.drivers[dst])
}

// OrphanedPages counts created pages that currently have no consistent
// copy anywhere in the cluster — authority lost to a crash and not (or
// not yet) re-claimed. The walk peeks materialized state only, so it
// never perturbs the directories it inspects. Fault workloads assert
// this returns zero at end of run: every crashed owner's pages must
// have been re-claimed.
func (w *World) OrphanedPages() int {
	orphans := 0
	for pg := 0; pg < int(w.nextPage); pg++ {
		owned := false
		for _, d := range w.drivers {
			if d.OwnsPage(vm.PageID(pg)) {
				owned = true
				break
			}
		}
		if !owned {
			orphans++
		}
	}
	return orphans
}
