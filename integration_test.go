package mether_test

import (
	"fmt"
	"testing"
	"time"

	"mether"
	"mether/internal/ethernet"
	"mether/pipe"
	"mether/registry"
)

// TestFourHostMixedWorkload runs a realistic multi-application cluster:
// a registry publisher, pipe traffic between two hosts, and a shared
// status page updated with the final-protocol discipline — all on four
// hosts at once, ending with the global invariants intact.
func TestFourHostMixedWorkload(t *testing.T) {
	w := mether.NewWorld(mether.Config{Hosts: 4, Pages: 32, Seed: 21})
	defer w.Shutdown()

	dir, err := registry.Create(w, "cluster", 0)
	if err != nil {
		t.Fatal(err)
	}
	status, err := w.CreateSegment("status", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	pipeCap, err := pipe.Create(w, "bulk", 2, 3)
	if err != nil {
		t.Fatal(err)
	}

	const msgs = 6
	var (
		consumerSaw  mether.Capability
		pipeReceived int
		statusReads  uint32
	)

	// Host 0: publishes the status segment's capability, then updates
	// the status page periodically with store+purge.
	w.Spawn(0, "publisher", func(env *mether.Env) {
		h, err := registry.Open(env, dir)
		if err != nil {
			t.Errorf("registry open: %v", err)
			return
		}
		if err := h.Publish("status", status.CapRO()); err != nil {
			t.Errorf("publish: %v", err)
			return
		}
		m, err := env.Attach(status.CapRW(), mether.RW)
		if err != nil {
			t.Errorf("attach: %v", err)
			return
		}
		a := m.Addr(0, 0).Short()
		for i := uint32(1); i <= 5; i++ {
			if err := m.Store32(a, i); err != nil {
				t.Errorf("store: %v", err)
				return
			}
			if err := m.Purge(a); err != nil {
				t.Errorf("purge: %v", err)
				return
			}
			env.SleepFor(40 * time.Millisecond)
		}
	})

	// Host 1: waits for the registry entry, then follows status updates
	// through the data-driven view.
	w.Spawn(1, "watcher", func(env *mether.Env) {
		h, err := registry.Open(env, dir.ReadOnly())
		if err != nil {
			t.Errorf("registry open ro: %v", err)
			return
		}
		cap, err := h.Wait("status")
		if err != nil {
			t.Errorf("wait: %v", err)
			return
		}
		consumerSaw = cap
		m, err := env.Attach(cap, mether.RO)
		if err != nil {
			t.Errorf("attach status: %v", err)
			return
		}
		a := m.Addr(0, 0).Short()
		last := uint32(0)
		for last < 5 {
			v, err := m.Load32(a)
			if err != nil {
				t.Errorf("status read: %v", err)
				return
			}
			if v > last {
				last = v
				statusReads++
				continue
			}
			if err := m.Purge(a); err != nil {
				t.Errorf("status purge: %v", err)
				return
			}
			if _, err := m.Load32(a.DataDriven()); err != nil {
				t.Errorf("status data read: %v", err)
				return
			}
		}
	})

	// Hosts 2 and 3: bulk pipe traffic alongside everything else.
	w.Spawn(2, "pipe-tx", func(env *mether.Env) {
		p, err := pipe.Open(env, pipeCap, 0)
		if err != nil {
			t.Errorf("pipe open: %v", err)
			return
		}
		for i := 0; i < msgs; i++ {
			size := 8 + (i%3)*1000 // mix of short and full path
			if err := p.Send(uint32(i), make([]byte, size)); err != nil {
				t.Errorf("pipe send: %v", err)
				return
			}
		}
	})
	w.Spawn(3, "pipe-rx", func(env *mether.Env) {
		p, err := pipe.Open(env, pipeCap, 1)
		if err != nil {
			t.Errorf("pipe open: %v", err)
			return
		}
		for i := 0; i < msgs; i++ {
			m, err := p.Recv()
			if err != nil {
				t.Errorf("pipe recv: %v", err)
				return
			}
			if m.Tag != uint32(i) {
				t.Errorf("pipe tag = %d, want %d", m.Tag, i)
				return
			}
			pipeReceived++
		}
	})

	w.RunUntil(5 * time.Minute)

	if consumerSaw.Segment != "status" {
		t.Errorf("watcher got capability %q", consumerSaw.Segment)
	}
	if statusReads == 0 {
		t.Error("watcher never observed a status update")
	}
	if pipeReceived != msgs {
		t.Errorf("pipe delivered %d/%d messages", pipeReceived, msgs)
	}
	if err := w.CheckInvariants(); err != nil {
		t.Errorf("invariants after mixed workload: %v", err)
	}
}

// TestMixedWorkloadUnderLossStillConverges repeats a trimmed mixed
// workload on a lossy wire: demand paths retry, so everything completes.
func TestMixedWorkloadUnderLossStillConverges(t *testing.T) {
	np := ethernet.DefaultParams()
	np.LossRate = 0.01
	w := mether.NewWorld(mether.Config{Hosts: 3, Pages: 16, Seed: 5, NetParams: np})
	defer w.Shutdown()

	seg, err := w.CreateSegment("shared", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	cap := seg.CapRW()
	done := make([]bool, 3)
	for i := 0; i < 3; i++ {
		i := i
		w.Spawn(i, fmt.Sprintf("writer%d", i), func(env *mether.Env) {
			m, err := env.Attach(cap, mether.RW)
			if err != nil {
				t.Errorf("attach: %v", err)
				return
			}
			a := m.Addr(0, i*8)
			for j := 0; j < 10; j++ {
				if err := m.Store32(a, uint32(j)); err != nil {
					t.Errorf("store: %v", err)
					return
				}
				env.SleepFor(5 * time.Millisecond)
			}
			done[i] = true
		})
	}
	w.RunUntil(5 * time.Minute)
	for i, d := range done {
		if !d {
			t.Errorf("writer %d did not finish under loss", i)
		}
	}
	if err := w.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestWorldDeterminismAcrossSubsystems runs the full mixed stack twice
// and requires identical outcomes.
func TestWorldDeterminismAcrossSubsystems(t *testing.T) {
	run := func() (time.Duration, uint64) {
		w := mether.NewWorld(mether.Config{Hosts: 3, Pages: 16, Seed: 17})
		defer w.Shutdown()
		cap, err := pipe.Create(w, "d", 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		w.Spawn(0, "tx", func(env *mether.Env) {
			p, _ := pipe.Open(env, cap, 0)
			for i := 0; i < 4; i++ {
				_ = p.Send(uint32(i), []byte{byte(i)})
			}
		})
		w.Spawn(1, "rx", func(env *mether.Env) {
			p, _ := pipe.Open(env, cap, 1)
			for i := 0; i < 4; i++ {
				_, _ = p.Recv()
			}
		})
		end := w.Run()
		return end, w.NetStats().WireBytes
	}
	e1, b1 := run()
	e2, b2 := run()
	if e1 != e2 || b1 != b2 {
		t.Errorf("nondeterministic: (%v,%d) vs (%v,%d)", e1, b1, e2, b2)
	}
}
