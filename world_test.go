package mether

import (
	"errors"
	"testing"
	"time"
)

// fastWorld builds a small world with quick scheduler constants for tests.
func fastWorld(t *testing.T, hosts int) *World {
	t.Helper()
	cfg := Config{Hosts: hosts, Pages: 16, Seed: 7}
	cfg = cfg.withDefaults()
	cfg.HostParams.Quantum = 10 * time.Millisecond
	cfg.HostParams.CtxSwitch = 200 * time.Microsecond
	cfg.HostParams.TrapCost = 100 * time.Microsecond
	cfg.HostParams.SyscallCost = 50 * time.Microsecond
	cfg.Core.RetryTimeout = 50 * time.Millisecond
	cfg.Core.PacketCost = 200 * time.Microsecond
	cfg.Core.ByteCost = 100 * time.Nanosecond
	w := NewWorld(cfg)
	t.Cleanup(w.Shutdown)
	return w
}

func TestCrossHostWriteRead(t *testing.T) {
	w := fastWorld(t, 2)
	seg, err := w.CreateSegment("shared", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	capRW := seg.CapRW()

	var got uint32
	var rerr error
	w.Spawn(0, "writer", func(env *Env) {
		m, err := env.Attach(capRW, RW)
		if err != nil {
			rerr = err
			return
		}
		if err := m.Store32(m.Addr(0, 0), 1234); err != nil {
			rerr = err
		}
	})
	w.Run()
	w.Spawn(1, "reader", func(env *Env) {
		m, err := env.Attach(capRW.ReadOnly(), RO)
		if err != nil {
			rerr = err
			return
		}
		got, rerr = m.Load32(m.Addr(0, 0).Short())
	})
	w.Run()

	if rerr != nil {
		t.Fatal(rerr)
	}
	if got != 1234 {
		t.Errorf("remote read = %d, want 1234", got)
	}
	if err := w.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSegmentNamesAndLookup(t *testing.T) {
	w := fastWorld(t, 2)
	if _, err := w.CreateSegment("a", 2, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := w.CreateSegment("a", 1, 0); !errors.Is(err, ErrSegmentExists) {
		t.Errorf("duplicate create err = %v, want ErrSegmentExists", err)
	}
	s, err := w.LookupSegment("a")
	if err != nil || s.Pages() != 2 || s.Name() != "a" {
		t.Errorf("lookup = %+v, %v", s, err)
	}
	if _, err := w.LookupSegment("nope"); !errors.Is(err, ErrNoSuchSegment) {
		t.Errorf("missing lookup err = %v, want ErrNoSuchSegment", err)
	}
}

func TestSegmentExhaustion(t *testing.T) {
	w := fastWorld(t, 2) // 16 pages
	if _, err := w.CreateSegment("big", 16, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := w.CreateSegment("more", 1, 0); !errors.Is(err, ErrOutOfPages) {
		t.Errorf("exhausted create err = %v, want ErrOutOfPages", err)
	}
}

func TestCreateSegmentValidation(t *testing.T) {
	w := fastWorld(t, 2)
	if _, err := w.CreateSegment("zero", 0, 0); err == nil {
		t.Error("zero-page segment accepted")
	}
	if _, err := w.CreateSegment("badhost", 1, 9); err == nil {
		t.Error("out-of-range owner host accepted")
	}
}

func TestCapabilityEnforcement(t *testing.T) {
	w := fastWorld(t, 2)
	seg, _ := w.CreateSegment("guarded", 1, 0)
	other, _ := w.CreateSegment("other", 1, 0)
	capRO := seg.CapRO()
	capRW := seg.CapRW()

	var errRWviaRO, errWrongSeg, errOK, errWeakened error
	w.Spawn(1, "attacher", func(env *Env) {
		// RO capability cannot attach writable.
		_, errRWviaRO = env.Attach(capRO, RW)
		// Capability for one segment cannot open another.
		wrong := Capability{Segment: other.Name(), Mode: RW, token: 0xdead}
		_, errWrongSeg = env.Attach(wrong, RW)
		// RW capability attaches writable fine.
		_, errOK = env.Attach(capRW, RW)
		// Weakened RW capability attaches read-only fine.
		_, errWeakened = env.Attach(capRW.ReadOnly(), RO)
	})
	w.Run()

	if !errors.Is(errRWviaRO, ErrBadCapability) {
		t.Errorf("RW attach via RO cap err = %v, want ErrBadCapability", errRWviaRO)
	}
	if !errors.Is(errWrongSeg, ErrBadCapability) {
		t.Errorf("wrong segment attach err = %v, want ErrBadCapability", errWrongSeg)
	}
	if errOK != nil {
		t.Errorf("legitimate RW attach failed: %v", errOK)
	}
	if errWeakened != nil {
		t.Errorf("weakened RO attach failed: %v", errWeakened)
	}
}

func TestViewsThroughFacade(t *testing.T) {
	w := fastWorld(t, 2)
	seg, _ := w.CreateSegment("views", 1, 0)
	capRW := seg.CapRW()

	var dataVal uint32
	var done bool
	// Reader blocks on the data-driven view before any data exists.
	w.Spawn(1, "reader", func(env *Env) {
		m, err := env.Attach(capRW.ReadOnly(), RO)
		if err != nil {
			t.Errorf("attach: %v", err)
			return
		}
		a := m.Addr(0, 0).Short()
		_ = m.Purge(a) // deal me in: drop the attach-time copy
		v, err := m.Load32(a.DataDriven())
		if err != nil {
			t.Errorf("data-driven load: %v", err)
			return
		}
		dataVal = v
		done = true
	})
	w.RunUntil(2 * time.Second)
	if done {
		t.Fatal("data-driven read completed without any transit")
	}

	// Writer stores and purges: the broadcast satisfies the reader.
	w.Spawn(0, "writer", func(env *Env) {
		m, err := env.Attach(capRW, RW)
		if err != nil {
			t.Errorf("attach rw: %v", err)
			return
		}
		if err := m.Store32(m.Addr(0, 0), 7); err != nil {
			t.Errorf("store: %v", err)
		}
		if err := m.Purge(m.Addr(0, 0).Short()); err != nil {
			t.Errorf("purge: %v", err)
		}
	})
	w.Run()

	if !done {
		t.Fatal("data-driven read never satisfied")
	}
	if dataVal != 7 {
		t.Errorf("data-driven value = %d, want 7", dataVal)
	}
}

func TestBytesReadWrite(t *testing.T) {
	w := fastWorld(t, 2)
	seg, _ := w.CreateSegment("bytes", 1, 0)
	capRW := seg.CapRW()
	msg := []byte("the mether system")

	var got []byte
	w.Spawn(0, "writer", func(env *Env) {
		m, _ := env.Attach(capRW, RW)
		if err := m.Write(m.Addr(0, 100), msg); err != nil {
			t.Errorf("write: %v", err)
		}
	})
	w.Run()
	w.Spawn(1, "reader", func(env *Env) {
		m, _ := env.Attach(capRW.ReadOnly(), RO)
		got = make([]byte, len(msg))
		if err := m.Read(m.Addr(0, 100), got); err != nil {
			t.Errorf("read: %v", err)
		}
	})
	w.Run()
	if string(got) != string(msg) {
		t.Errorf("read %q, want %q", got, msg)
	}
}

func TestDeterministicWorldRuns(t *testing.T) {
	run := func() (time.Duration, uint64) {
		w := NewWorld(Config{Hosts: 2, Pages: 8, Seed: 11})
		defer w.Shutdown()
		seg, _ := w.CreateSegment("d", 1, 0)
		capRW := seg.CapRW()
		for i := 0; i < 2; i++ {
			i := i
			w.Spawn(i, "p", func(env *Env) {
				m, _ := env.Attach(capRW, RW)
				for j := 0; j < 10; j++ {
					_ = m.Store32(m.Addr(0, 0).Short(), uint32(i*100+j))
					env.Compute(time.Millisecond)
				}
			})
		}
		end := w.Run()
		return end, w.NetStats().WireBytes
	}
	e1, b1 := run()
	e2, b2 := run()
	if e1 != e2 || b1 != b2 {
		t.Errorf("runs differ: (%v,%d) vs (%v,%d)", e1, b1, e2, b2)
	}
}

func TestAddrPanicsOutsideSegment(t *testing.T) {
	w := fastWorld(t, 2)
	seg, _ := w.CreateSegment("one", 1, 0)
	capRW := seg.CapRW()
	w.Spawn(0, "p", func(env *Env) {
		m, _ := env.Attach(capRW, RW)
		defer func() {
			if recover() == nil {
				t.Error("Addr beyond segment did not panic")
			}
		}()
		_ = m.Addr(5, 0)
	})
	w.Run()
}

func TestMultiPageSegmentsAreDisjoint(t *testing.T) {
	w := fastWorld(t, 2)
	s1, _ := w.CreateSegment("s1", 2, 0)
	s2, _ := w.CreateSegment("s2", 2, 1)
	c1, c2 := s1.CapRW(), s2.CapRW()
	var v1, v2 uint32
	w.Spawn(0, "w1", func(env *Env) {
		m, _ := env.Attach(c1, RW)
		_ = m.Store32(m.Addr(1, 0), 111)
	})
	w.Spawn(1, "w2", func(env *Env) {
		m, _ := env.Attach(c2, RW)
		_ = m.Store32(m.Addr(1, 0), 222)
	})
	w.Run()
	w.Spawn(0, "check", func(env *Env) {
		m1, _ := env.Attach(c1, RO)
		m2, _ := env.Attach(c2, RO)
		v1, _ = m1.Load32(m1.Addr(1, 0))
		v2, _ = m2.Load32(m2.Addr(1, 0))
	})
	w.Run()
	if v1 != 111 || v2 != 222 {
		t.Errorf("segment isolation broken: %d/%d, want 111/222", v1, v2)
	}
}

func TestAttachTapSeesProtocolTraffic(t *testing.T) {
	w := fastWorld(t, 2)
	tap := w.AttachTap(0)
	seg, _ := w.CreateSegment("tapped", 1, 0)
	capRW := seg.CapRW()
	w.Spawn(0, "w", func(env *Env) {
		m, _ := env.Attach(capRW, RW)
		_ = m.Store32(m.Addr(0, 0).Short(), 1)
		_ = m.Purge(m.Addr(0, 0).Short())
	})
	w.Spawn(1, "r", func(env *Env) {
		m, _ := env.Attach(capRW.ReadOnly(), RO)
		_, _ = m.Load32(m.Addr(0, 0).Short())
	})
	w.Run()
	if tap.Len() == 0 {
		t.Fatal("tap recorded nothing")
	}
	counts := tap.CountByType()
	if len(counts) == 0 {
		t.Error("tap decoded no Mether packets")
	}
	if len(tap.PageHistory(0)) == 0 {
		t.Error("page 0 has no wire history")
	}
}
