package mether

import (
	"fmt"
	"time"

	"mether/internal/core"
	"mether/internal/host"
	"mether/internal/vm"
)

// Env is a simulated process's handle onto Mether: it carries the
// process identity (for CPU accounting and blocking) and the host's
// driver. An Env is only valid inside the function passed to World.Spawn
// and must not be shared across processes.
type Env struct {
	w    *World
	host int
	p    *host.Proc
	d    *core.Driver
}

// HostID returns the host this process runs on.
func (e *Env) HostID() int { return e.host }

// Now returns the current virtual time.
func (e *Env) Now() time.Duration { return e.p.Now() }

// Proc exposes the underlying scheduler process (advanced use, e.g.
// reading the user/sys accounting).
func (e *Env) Proc() *host.Proc { return e.p }

// Compute consumes d of user-mode CPU time: the only way application
// work passes virtual time.
func (e *Env) Compute(d time.Duration) { e.p.UseUser(d) }

// SleepFor blocks the process for virtual duration d.
func (e *Env) SleepFor(d time.Duration) { e.p.SleepFor(d) }

// SleepOn blocks until another process on the same host calls WakeUp
// with the same key (local condition synchronization).
func (e *Env) SleepOn(key any) { e.p.SleepOn(key) }

// WakeUp wakes processes on this host sleeping on key.
func (e *Env) WakeUp(key any) { e.p.Host().Wakeup(key) }

// Attach maps a segment into this process's address space at the given
// mode, validating the capability. Per the paper, the consistent
// (writable) versus inconsistent (read-only) choice is made here; all
// other view selection happens through address bits.
func (e *Env) Attach(c Capability, mode Mode) (*Mapping, error) {
	seg, err := e.w.LookupSegment(c.Segment)
	if err != nil {
		return nil, err
	}
	if err := seg.checkAttach(c, mode); err != nil {
		return nil, err
	}
	for i := 0; i < seg.pages; i++ {
		if err := e.d.MapIn(e.p, mode, seg.base+vm.PageID(i)); err != nil {
			return nil, fmt.Errorf("mether: attach %q: %w", c.Segment, err)
		}
	}
	return &Mapping{env: e, seg: seg, mode: mode}, nil
}

// AttachPages maps only the named segment-relative pages instead of the
// whole segment: the windowed attach for workloads whose per-host
// working set is O(1) pages of an O(hosts)-page segment. A full Attach
// maps (and on a cold world demand-fetches) every page on every host —
// quadratic state for linear use — where a windowed attach keeps each
// host's mapped set, and therefore its driver directory, at working-set
// size. Accessing an unlisted page through the returned mapping fails
// with ErrNotMapped exactly as an unattached segment would.
func (e *Env) AttachPages(c Capability, mode Mode, pages ...int) (*Mapping, error) {
	seg, err := e.w.LookupSegment(c.Segment)
	if err != nil {
		return nil, err
	}
	if err := seg.checkAttach(c, mode); err != nil {
		return nil, err
	}
	for _, pg := range pages {
		if pg < 0 || pg >= seg.pages {
			return nil, fmt.Errorf("mether: attach %q: page %d outside segment", c.Segment, pg)
		}
		if err := e.d.MapIn(e.p, mode, seg.base+vm.PageID(pg)); err != nil {
			return nil, fmt.Errorf("mether: attach %q: %w", c.Segment, err)
		}
	}
	return &Mapping{env: e, seg: seg, mode: mode}, nil
}

// Mapping is an attached segment. All accessors take segment-relative
// addresses built with Addr.
type Mapping struct {
	env  *Env
	seg  *Segment
	mode Mode
}

// Mode returns the mapping's access mode.
func (m *Mapping) Mode() Mode { return m.mode }

// Segment returns the mapped segment.
func (m *Mapping) Segment() *Segment { return m.seg }

// Addr builds a full-space demand-driven address for byte off of the
// segment-relative page; apply Short/DataDriven to select other views.
func (m *Mapping) Addr(page, off int) Addr {
	if page < 0 || page >= m.seg.pages {
		panic(fmt.Sprintf("mether: page %d outside segment %q", page, m.seg.name))
	}
	return core.NewAddr(m.seg.base+vm.PageID(page), off)
}

// Load32 reads a 32-bit word through the mapping.
func (m *Mapping) Load32(a Addr) (uint32, error) {
	v, err := m.env.d.Load(m.env.p, m.mode, a, 4)
	return uint32(v), err
}

// Store32 writes a 32-bit word through the mapping.
func (m *Mapping) Store32(a Addr, v uint32) error {
	return m.env.d.Store(m.env.p, m.mode, a, 4, uint64(v))
}

// Load64 reads a 64-bit word through the mapping.
func (m *Mapping) Load64(a Addr) (uint64, error) {
	return m.env.d.Load(m.env.p, m.mode, a, 8)
}

// Store64 writes a 64-bit word through the mapping.
func (m *Mapping) Store64(a Addr, v uint64) error {
	return m.env.d.Store(m.env.p, m.mode, a, 8, v)
}

// Read copies len(buf) bytes from the segment into buf.
func (m *Mapping) Read(a Addr, buf []byte) error {
	return m.env.d.ReadBytes(m.env.p, m.mode, a, buf)
}

// Write copies data into the segment.
func (m *Mapping) Write(a Addr, data []byte) error {
	return m.env.d.WriteBytes(m.env.p, m.mode, a, data)
}

// Purge applies the PURGE operator to the addressed view: invalidation
// for read-only copies (active update), broadcast-then-DO-PURGE for the
// consistent copy (passive update; blocks until propagated).
func (m *Mapping) Purge(a Addr) error {
	return m.env.d.Purge(m.env.p, m.mode, a)
}

// Lock pins the addressed page per the Figure-1 rules; remote requests
// are deferred until Unlock.
func (m *Mapping) Lock(a Addr) error {
	return m.env.d.Lock(m.env.p, m.mode, a)
}

// Unlock releases a lock taken with Lock.
func (m *Mapping) Unlock(a Addr) error {
	return m.env.d.Unlock(m.env.p, a)
}
