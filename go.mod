module mether

go 1.21
