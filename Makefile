# Tier-1 verification and developer targets for the Mether reproduction.
#
#   make ci            - everything the tier-1 gate runs: format check, vet,
#                        tests, race tests, smoke sweep, a bench smoke pass
#                        and a 16-host cluster smoke sweep (which also gates
#                        the engine on an allocs/event ceiling of 0.1).
#                        Each stage ends with a machine-readable
#                        "CI-STAGE <name>: PASS|FAIL" line so the GitHub
#                        Actions log is scannable at a glance.
#   make test          - go build + go test ./...
#   make race          - go test -race ./...
#   make smoke         - a fast cross-section sweep through cmd/methersweep
#   make sweep         - the full paper grid at scale 1024 (slow)
#   make cluster       - the 16/64/256-host cluster grid incl. the loss,
#                        kernel-server and multi-trunk topology axes (slow)
#   make cluster-large - the 1024-host tier of the cluster grid (slower;
#                        kept out of `make cluster` so bench records stay
#                        comparable across PRs)
#   make cluster-xl    - the 10000-host windowed flyweight tier: one
#                        stationary cell with working-set attach, lazy
#                        replica materialization and fan-in-sized rx
#                        rings; writes cluster-xl.json so the nightly
#                        workflow can upload the report
#   make bench         - the hot-path microbenchmarks (kernel dispatch incl.
#                        the 4096-deep timer population, host sleep/wake and
#                        quantum rotation, bus broadcast, full counter runs)
#                        plus the figure benchmarks at reduced scale
#   make bench-smoke   - the microbenchmarks once (-benchtime=1x), as CI runs them
#   make bench-record  - regenerate BENCH_sweep.json, the engine-throughput
#                        trajectory record (worlds/sec, events/sec, allocs/event)
#   make bench-check   - the nightly bench-drift gate: regenerate the cluster
#                        record into $(BENCH_NIGHTLY) (kept on disk so the
#                        nightly workflow can upload it as an artifact) and
#                        fail if events/sec regressed >15% or allocs/event
#                        grew >10% against the committed BENCH_sweep.json.
#                        The events/sec floor is real-time: the committed
#                        record must come from the same machine class that
#                        runs the gate (regenerate it there when the classes
#                        diverge; allocs/event is machine-independent)
#   make profile       - run one named cell (CELL=<name substring>, any cell
#                        of GRID, default the bridged 256-host hotspot) under CPU and
#                        heap profiling, then print `go tool pprof -top` for
#                        both profiles (cpu.pprof / mem.pprof are left on
#                        disk for interactive pprof sessions)

GO ?= go

MICROBENCH = BenchmarkKernelDispatch|BenchmarkKernelDispatchImmediate|BenchmarkKernelDispatchDeep|BenchmarkKernelScheduleCancel|BenchmarkHostSleepWake|BenchmarkHostQuantumRotation|BenchmarkBusBroadcast|BenchmarkCounterRun

.PHONY: ci ci-stage fmt-check vet test race smoke cluster-smoke cluster-large cluster-xl sweep cluster bench bench-smoke bench-record bench-check profile

# Each CI stage runs through ci-stage so the log carries exactly one
# machine-readable verdict line per stage, pass or fail.
CI_STAGES = fmt-check vet test race smoke bench-smoke cluster-smoke

ci:
	@for s in $(CI_STAGES); do \
		$(MAKE) --no-print-directory ci-stage STAGE=$$s || exit 1; \
	done

ci-stage:
	@if $(MAKE) --no-print-directory $(STAGE); then \
		echo "CI-STAGE $(STAGE): PASS"; \
	else \
		echo "CI-STAGE $(STAGE): FAIL"; exit 1; \
	fi

# Scoped to tracked files so vendored or scratch directories can never
# break (or sneak past) the format gate.
fmt-check:
	@out="$$(git ls-files '*.go' | xargs gofmt -l)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) build ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

smoke:
	$(GO) run ./cmd/methersweep -grid smoke -format summary

cluster-smoke:
	$(GO) run ./cmd/methersweep -grid cluster -hosts 16 -alloc-ceiling 0.1 -format summary

cluster-large:
	$(GO) run ./cmd/methersweep -grid cluster -hosts 1024 -format summary

# The report is written to disk (JSON, not summary) so the nightly
# workflow can attach it: the 10k-host cell's numbers — mem_bytes,
# bytes_per_host, ring high-water, latency tails — are the point of
# running it.
XL_REPORT ?= cluster-xl.json

cluster-xl:
	$(GO) run ./cmd/methersweep -grid cluster -hosts 10000 -format json -o $(XL_REPORT)
	@echo "wrote $(XL_REPORT)"

sweep:
	$(GO) run ./cmd/methersweep -grid paper -target 1024 -format summary

cluster:
	$(GO) run ./cmd/methersweep -grid cluster -format summary

bench:
	$(GO) test -run - -bench '$(MICROBENCH)' ./internal/sim ./internal/host ./internal/ethernet ./internal/protocols
	$(GO) test -run - -bench BenchmarkFigures -benchtime 1x .

bench-smoke:
	$(GO) test -run - -bench '$(MICROBENCH)' -benchtime 1x ./internal/sim ./internal/host ./internal/ethernet ./internal/protocols

bench-record:
	$(GO) run ./cmd/methersweep -grid cluster -bench-out BENCH_sweep.json -format summary

# The regenerated record is kept (not a temp file) so the nightly
# workflow can attach it as a build artifact: when the gate trips, the
# numbers that tripped it are one download away, and when it passes the
# trajectory point is preserved without committing it.
BENCH_NIGHTLY ?= bench-nightly.json

bench-check:
	$(GO) run ./cmd/methersweep -grid cluster -bench-out $(BENCH_NIGHTLY) \
		-bench-baseline BENCH_sweep.json -format summary

# Profile one cell: make profile CELL=cluster/barrier/h16 narrows GRID
# to the scenarios whose name CONTAINS CELL (methersweep -only, a
# substring — a prefix like cluster/hotspot/h256 profiles that cell
# plus its kernel/loss/topology variants as one blended run) and runs
# the selection under -cpuprofile/-memprofile. The default names the
# bridged 256-host hotspot exactly, so bare `make profile` captures a
# single cell.
GRID ?= cluster
CELL ?= cluster/hotspot/h256/t2-star

profile:
	$(GO) run ./cmd/methersweep -grid $(GRID) -only '$(CELL)' \
		-cpuprofile cpu.pprof -memprofile mem.pprof -format summary
	$(GO) tool pprof -top -nodecount 25 cpu.pprof
	$(GO) tool pprof -top -nodecount 15 -sample_index=alloc_space mem.pprof
