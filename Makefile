# Tier-1 verification and developer targets for the Mether reproduction.
#
#   make ci      - everything the tier-1 gate runs: format check, vet,
#                  tests, race tests and a smoke sweep
#   make test    - go build + go test ./...
#   make race    - go test -race ./...
#   make smoke   - a fast cross-section sweep through cmd/methersweep
#   make sweep   - the full paper grid at scale 1024 (slow)
#   make bench   - the figure benchmarks at reduced scale

GO ?= go

.PHONY: ci fmt-check vet test race smoke sweep bench

ci: fmt-check vet test race smoke

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) build ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

smoke:
	$(GO) run ./cmd/methersweep -grid smoke -format summary

sweep:
	$(GO) run ./cmd/methersweep -grid paper -target 1024 -format summary

bench:
	$(GO) test -run - -bench BenchmarkFigures -benchtime 1x .
