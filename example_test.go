package mether_test

import (
	"fmt"

	"mether"
)

// Example shows the paper's whole programming model in one session: a
// writer updates the consistent copy and propagates it with PURGE, a
// reader on another workstation blocks on the data-driven view.
func Example() {
	w := mether.NewWorld(mether.Config{Hosts: 2, Pages: 4, Seed: 1})
	defer w.Shutdown()

	seg, err := w.CreateSegment("demo", 1, 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	cap := seg.CapRW()

	w.Spawn(0, "writer", func(env *mether.Env) {
		m, _ := env.Attach(cap, mether.RW)
		a := m.Addr(0, 0).Short()
		_ = m.Store32(a, 42)
		_ = m.Purge(a) // broadcast + DO-PURGE
	})
	w.Spawn(1, "reader", func(env *mether.Env) {
		m, _ := env.Attach(cap.ReadOnly(), mether.RO)
		a := m.Addr(0, 0).Short()
		_ = m.Purge(a) // Deal Me In
		v, _ := m.Load32(a.DataDriven())
		fmt.Println("reader saw", v)
	})
	w.Run()
	// Output: reader saw 42
}

// ExampleAddr demonstrates the Figure-2 address encoding: the four views
// of a page are plain address-bit aliases.
func ExampleAddr() {
	w := mether.NewWorld(mether.Config{Hosts: 1, Pages: 2, Seed: 1})
	defer w.Shutdown()
	seg, _ := w.CreateSegment("views", 1, 0)
	cap := seg.CapRW()
	w.Spawn(0, "p", func(env *mether.Env) {
		m, _ := env.Attach(cap, mether.RW)
		a := m.Addr(0, 16)
		fmt.Println(a)
		fmt.Println(a.Short())
		fmt.Println(a.Short().DataDriven())
	})
	w.Run()
	// Output:
	// page 0+0x10 [full,demand]
	// page 0+0x10 [short,demand]
	// page 0+0x10 [short,data]
}

// ExampleWorld_CheckInvariants shows the cluster-wide safety check every
// test can apply: one consistent copy per page, always.
func ExampleWorld_CheckInvariants() {
	w := mether.NewWorld(mether.Config{Hosts: 3, Pages: 4, Seed: 1})
	defer w.Shutdown()
	seg, _ := w.CreateSegment("inv", 1, 0)
	cap := seg.CapRW()
	for i := 0; i < 3; i++ {
		i := i
		w.Spawn(i, "writer", func(env *mether.Env) {
			m, _ := env.Attach(cap, mether.RW)
			_ = m.Store32(m.Addr(0, 0).Short(), uint32(i))
		})
	}
	w.Run()
	fmt.Println(w.CheckInvariants())
	// Output: <nil>
}
