package solver

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"mether"
	"mether/pipe"
)

// Config parameterizes a distributed solve.
type Config struct {
	// N is the number of unknowns (default 100_000 — large enough that
	// computation dominates the halo exchanges, which is the regime the
	// paper's solver ran in).
	N int
	// Hosts is the number of processors (paper: 1..4).
	Hosts int
	// Sweeps is the number of Jacobi iterations (default 25).
	Sweeps int
	// FlopCost is the CPU cost of one floating-point operation
	// (Sun-3/50-class software floating point, default 3 µs).
	FlopCost time.Duration
	Seed     int64
	// Cap bounds the simulated run (default 30 minutes).
	Cap time.Duration
}

func (c Config) withDefaults() Config {
	if c.N == 0 {
		c.N = 100_000
	}
	if c.Hosts == 0 {
		c.Hosts = 4
	}
	if c.Sweeps == 0 {
		c.Sweeps = 25
	}
	if c.FlopCost == 0 {
		c.FlopCost = 3 * time.Microsecond
	}
	if c.Cap == 0 {
		c.Cap = 30 * time.Minute
	}
	return c
}

// Report carries one distributed solve's measurements.
type Report struct {
	Hosts     int
	N         int
	Sweeps    int
	Wall      time.Duration
	Residual  float64 // final squared residual, reduced at rank 0
	Messages  uint64  // pipe messages exchanged
	NetBytes  uint64  // wire bytes
	MaxDiff   float64 // max |x_distributed - x_sequential|
	SeqWall   time.Duration
	Speedup   float64
	Efficient float64 // Speedup / Hosts
}

// tag values for the pipe streams.
const (
	tagHaloBase = 1 << 16 // + sweep number
	tagResidual = 1
	tagGatherX  = 2
)

// RunDistributed solves the problem on cfg.Hosts simulated processors
// communicating only through csend/crecv-style pipe messages, then
// compares against the sequential reference (both for correctness and
// for the speedup figure).
func RunDistributed(cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	prob := NewProblem(cfg.N, cfg.Seed)

	// Sequential reference: correctness baseline and speedup denominator.
	seqX, _ := prob.SolveSequential(cfg.Sweeps)
	seqWall := time.Duration(cfg.N) * FlopsPerRow * time.Duration(cfg.Sweeps) * cfg.FlopCost

	if cfg.Hosts == 1 {
		// Degenerate case: one host, no communication.
		r := Report{
			Hosts: 1, N: cfg.N, Sweeps: cfg.Sweeps,
			Wall: seqWall, SeqWall: seqWall, Speedup: 1, Efficient: 1,
		}
		_, res := prob.SolveSequential(cfg.Sweeps)
		r.Residual = res
		return r, nil
	}

	w := mether.NewWorld(mether.Config{
		Hosts: cfg.Hosts,
		Pages: 2*cfg.Hosts + 4,
		Seed:  cfg.Seed,
	})
	defer w.Shutdown()

	// A chain of pipes: rank i talks to rank i+1 over pipe i.
	caps := make([]mether.Capability, cfg.Hosts-1)
	for i := 0; i < cfg.Hosts-1; i++ {
		c, err := pipe.Create(w, fmt.Sprintf("solver-%d", i), i, i+1)
		if err != nil {
			return Report{}, err
		}
		caps[i] = c
	}

	type rankState struct {
		x    []float64
		res  float64 // reduced residual (rank 0 only)
		err  error
		done bool
	}
	states := make([]*rankState, cfg.Hosts)
	for i := range states {
		states[i] = &rankState{}
	}

	for rank := 0; rank < cfg.Hosts; rank++ {
		rank := rank
		w.Spawn(rank, fmt.Sprintf("rank%d", rank), func(env *mether.Env) {
			states[rank].x, states[rank].res, states[rank].err = runRank(env, cfg, prob, caps, rank)
			states[rank].done = true
		})
	}
	w.RunUntil(cfg.Cap)

	rep := Report{Hosts: cfg.Hosts, N: cfg.N, Sweeps: cfg.Sweeps, SeqWall: seqWall}
	for rank, st := range states {
		if st.err != nil {
			return rep, fmt.Errorf("rank %d: %w", rank, st.err)
		}
		if !st.done {
			return rep, fmt.Errorf("rank %d did not finish within cap", rank)
		}
	}
	rep.Wall = w.Now()
	rep.Residual = states[0].res
	ns := w.NetStats()
	rep.NetBytes = ns.WireBytes
	rep.Messages = ns.Frames
	for rank, st := range states {
		lo, hi := prob.Partition(rank, cfg.Hosts)
		for i := lo; i < hi; i++ {
			if d := math.Abs(st.x[i-lo] - seqX[i]); d > rep.MaxDiff {
				rep.MaxDiff = d
			}
		}
	}
	rep.Speedup = float64(seqWall) / float64(rep.Wall)
	rep.Efficient = rep.Speedup / float64(cfg.Hosts)
	return rep, nil
}

// runRank is the SPMD body: halo exchange + local sweep per iteration,
// then a chain reduction of the residual to rank 0.
func runRank(env *mether.Env, cfg Config, prob *Problem, caps []mether.Capability, rank int) ([]float64, float64, error) {
	lo, hi := prob.Partition(rank, cfg.Hosts)
	n := hi - lo

	var left, right *pipe.Pipe
	var err error
	if rank > 0 {
		if left, err = pipe.Open(env, caps[rank-1], 1); err != nil {
			return nil, 0, fmt.Errorf("open left pipe: %w", err)
		}
	}
	if rank < cfg.Hosts-1 {
		if right, err = pipe.Open(env, caps[rank], 0); err != nil {
			return nil, 0, fmt.Errorf("open right pipe: %w", err)
		}
	}

	x := make([]float64, n)
	next := make([]float64, n)
	var haloL, haloR float64

	for s := 0; s < cfg.Sweeps; s++ {
		tag := uint32(tagHaloBase + s)
		// Exchange halos: send own boundary values, then receive the
		// neighbours'. The two directions ride independent one-way pages,
		// so symmetric send-then-receive cannot deadlock.
		if left != nil {
			if err := pipe.CSend(left, tag, f64bytes(x[0])); err != nil {
				return nil, 0, fmt.Errorf("sweep %d send left: %w", s, err)
			}
		}
		if right != nil {
			if err := pipe.CSend(right, tag, f64bytes(x[n-1])); err != nil {
				return nil, 0, fmt.Errorf("sweep %d send right: %w", s, err)
			}
		}
		if left != nil {
			data, _, err := pipe.CRecv(left, tag)
			if err != nil {
				return nil, 0, fmt.Errorf("sweep %d recv left: %w", s, err)
			}
			haloL = bytesF64(data)
		}
		if right != nil {
			data, _, err := pipe.CRecv(right, tag)
			if err != nil {
				return nil, 0, fmt.Errorf("sweep %d recv right: %w", s, err)
			}
			haloR = bytesF64(data)
		}

		// Local sweep: do the real arithmetic and charge its CPU cost.
		prob.SweepSlice(next, x, lo, hi, haloL, haloR)
		env.Compute(time.Duration(n) * FlopsPerRow * cfg.FlopCost)
		x, next = next, x
	}

	// Residual chain-reduction to rank 0. Halos for the residual use the
	// final x boundary values already held from the last exchange... the
	// last sweep's halos describe x's previous iterate, so exchange once
	// more for an exact residual.
	finalTag := uint32(tagHaloBase + cfg.Sweeps)
	if left != nil {
		if err := pipe.CSend(left, finalTag, f64bytes(x[0])); err != nil {
			return nil, 0, err
		}
	}
	if right != nil {
		if err := pipe.CSend(right, finalTag, f64bytes(x[n-1])); err != nil {
			return nil, 0, err
		}
	}
	if left != nil {
		data, _, err := pipe.CRecv(left, finalTag)
		if err != nil {
			return nil, 0, err
		}
		haloL = bytesF64(data)
	}
	if right != nil {
		data, _, err := pipe.CRecv(right, finalTag)
		if err != nil {
			return nil, 0, err
		}
		haloR = bytesF64(data)
	}
	res := prob.ResidualSlice(x, lo, hi, haloL, haloR)
	env.Compute(time.Duration(n) * 6 * cfg.FlopCost)

	// Ranks pass partial sums right-to-left.
	if right != nil {
		data, _, err := pipe.CRecv(right, tagResidual)
		if err != nil {
			return nil, 0, fmt.Errorf("residual recv: %w", err)
		}
		res += bytesF64(data)
	}
	if left != nil {
		if err := pipe.CSend(left, tagResidual, f64bytes(res)); err != nil {
			return nil, 0, fmt.Errorf("residual send: %w", err)
		}
	}
	return x, res, nil
}

func f64bytes(v float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	return b[:]
}

func bytesF64(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}
