package solver

import (
	"math"
	"testing"
	"time"
)

func TestSequentialConverges(t *testing.T) {
	p := NewProblem(500, 1)
	_, r0 := p.SolveSequential(1)
	_, r1 := p.SolveSequential(50)
	if r1 >= r0 {
		t.Errorf("residual did not decrease: %g -> %g", r0, r1)
	}
	if math.IsNaN(r1) || math.IsInf(r1, 0) {
		t.Errorf("residual = %g", r1)
	}
}

func TestPartitionCoversAllRows(t *testing.T) {
	p := NewProblem(101, 1)
	for parts := 1; parts <= 5; parts++ {
		covered := 0
		prevHi := 0
		for r := 0; r < parts; r++ {
			lo, hi := p.Partition(r, parts)
			if lo != prevHi {
				t.Errorf("parts=%d rank=%d: lo=%d, want %d", parts, r, lo, prevHi)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != p.N {
			t.Errorf("parts=%d covered %d rows, want %d", parts, covered, p.N)
		}
	}
}

func TestSweepSliceMatchesFullSweep(t *testing.T) {
	p := NewProblem(40, 2)
	x := make([]float64, p.N)
	for i := range x {
		x[i] = float64(i%7) * 0.1
	}
	want := make([]float64, p.N)
	p.SweepSlice(want, x, 0, p.N, 0, 0)

	// Same sweep computed in 3 partitions with halos must agree exactly.
	for _, parts := range []int{2, 3, 4} {
		for r := 0; r < parts; r++ {
			lo, hi := p.Partition(r, parts)
			got := make([]float64, hi-lo)
			var left, right float64
			if lo > 0 {
				left = x[lo-1]
			}
			if hi < p.N {
				right = x[hi]
			}
			p.SweepSlice(got, x[lo:hi], lo, hi, left, right)
			for i := range got {
				if got[i] != want[lo+i] {
					t.Fatalf("parts=%d rank=%d row %d: %g != %g", parts, r, lo+i, got[i], want[lo+i])
				}
			}
		}
	}
}

func TestDistributedMatchesSequential(t *testing.T) {
	for _, hosts := range []int{2, 3, 4} {
		hosts := hosts
		t.Run(time.Duration(hosts).String(), func(t *testing.T) {
			r, err := RunDistributed(Config{N: 2000, Hosts: hosts, Sweeps: 8, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			if r.MaxDiff != 0 {
				t.Errorf("distributed result differs from sequential by %g; the halo exchange must be exact", r.MaxDiff)
			}
			if r.Residual <= 0 || math.IsNaN(r.Residual) {
				t.Errorf("residual = %g", r.Residual)
			}
		})
	}
}

func TestMessagesScaleWithBoundaries(t *testing.T) {
	r2, err := RunDistributed(Config{N: 2000, Hosts: 2, Sweeps: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := RunDistributed(Config{N: 2000, Hosts: 4, Sweeps: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r4.Messages <= r2.Messages {
		t.Errorf("4-host run should exchange more messages than 2-host: %d vs %d", r4.Messages, r2.Messages)
	}
}

func TestSpeedupIsNearLinear(t *testing.T) {
	// The paper: "the program shows linear speedup on up to four
	// processors". Its solver was compute-dominated (seconds of work per
	// exchange); with a comparably sized problem the speedup at 4 hosts
	// must approach 4.
	base, err := RunDistributed(Config{N: 200_000, Hosts: 1, Sweeps: 5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if base.Speedup != 1 {
		t.Errorf("1-host speedup = %f, want 1", base.Speedup)
	}
	prev := base.Wall
	for _, hosts := range []int{2, 4} {
		r, err := RunDistributed(Config{N: 200_000, Hosts: hosts, Sweeps: 5, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if r.Wall >= prev {
			t.Errorf("%d hosts (%v) not faster than previous (%v)", hosts, r.Wall, prev)
		}
		prev = r.Wall
		want := 0.7 * float64(hosts)
		if r.Speedup < want {
			t.Errorf("%d-host speedup = %.2f, want >= %.2f (near-linear)", hosts, r.Speedup, want)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := RunDistributed(Config{N: 100, Hosts: 4, Sweeps: 2, Seed: 1, Cap: time.Millisecond}); err == nil {
		t.Error("expected cap violation error for tiny cap")
	}
}
