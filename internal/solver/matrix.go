// Package solver reproduces the paper's application study: a multiple-
// process sparse matrix solver whose only communication primitives are
// Intel-iPSC-style csend/crecv, implemented here (as in the paper) on
// Mether pipes. The paper reports linear speedup on up to four
// processors; RunDistributed measures exactly that.
//
// The paper's solver is Bob Lucas's direct sparse solver, which is not
// available; per the reproduction's substitution rule we use a weighted
// Jacobi iteration on a sparse symmetric positive-definite system with
// the same communication skeleton — nearest-neighbour halo exchange of a
// few bytes per sweep, exercising the identical Mether code path (short
// pages, generation counters, purge propagation).
package solver

import "math/rand"

// Problem is a 1-D Laplacian-like sparse SPD system A x = b with
// tridiagonal structure: A = tridiag(-1, 2+eps, -1). Jacobi on it needs
// only single-value halo exchanges between adjacent row partitions.
type Problem struct {
	N    int
	Diag float64   // diagonal entry (2 + eps, diagonally dominant)
	B    []float64 // right-hand side
}

// NewProblem builds a deterministic random-RHS problem of n unknowns.
func NewProblem(n int, seed int64) *Problem {
	if n < 2 {
		panic("solver: need at least 2 unknowns")
	}
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.Float64()*2 - 1
	}
	return &Problem{N: n, Diag: 2.05, B: b}
}

// FlopsPerRow is the floating-point work per row per Jacobi sweep
// (two adds, one multiply-accumulate pair, one divide).
const FlopsPerRow = 5

// SweepSlice performs one Jacobi sweep for rows [lo, hi) of x into dst,
// using left and right halo values for the out-of-slice neighbours.
// dst and x must have length hi-lo; left/right are x[lo-1] and x[hi]
// (zero at the domain boundary).
func (p *Problem) SweepSlice(dst, x []float64, lo, hi int, left, right float64) {
	n := hi - lo
	for i := 0; i < n; i++ {
		var xl, xr float64
		if i == 0 {
			xl = left
		} else {
			xl = x[i-1]
		}
		if i == n-1 {
			xr = right
		} else {
			xr = x[i+1]
		}
		dst[i] = (p.B[lo+i] + xl + xr) / p.Diag
	}
}

// ResidualSlice returns the squared residual norm contribution of rows
// [lo, hi): sum of (b - A x)_i^2.
func (p *Problem) ResidualSlice(x []float64, lo, hi int, left, right float64) float64 {
	n := hi - lo
	var sum float64
	for i := 0; i < n; i++ {
		var xl, xr float64
		if i == 0 {
			xl = left
		} else {
			xl = x[i-1]
		}
		if i == n-1 {
			xr = right
		} else {
			xr = x[i+1]
		}
		r := p.B[lo+i] - (p.Diag*x[i] - xl - xr)
		sum += r * r
	}
	return sum
}

// SolveSequential runs sweeps Jacobi iterations single-threaded and
// returns the solution and final squared residual. It is the correctness
// and speedup reference.
func (p *Problem) SolveSequential(sweeps int) ([]float64, float64) {
	x := make([]float64, p.N)
	next := make([]float64, p.N)
	for s := 0; s < sweeps; s++ {
		p.SweepSlice(next, x, 0, p.N, 0, 0)
		x, next = next, x
	}
	return x, p.ResidualSlice(x, 0, p.N, 0, 0)
}

// Partition returns the row range [lo, hi) of rank r among parts.
func (p *Problem) Partition(r, parts int) (lo, hi int) {
	lo = r * p.N / parts
	hi = (r + 1) * p.N / parts
	return lo, hi
}
