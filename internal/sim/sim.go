// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and an event queue ordered by
// (time, insertion sequence). Simulated processes are goroutines that run
// under a strict single-runner handoff discipline: at any instant at most
// one process goroutine executes, and control passes back to the kernel
// whenever the process blocks (Sleep, Park) or exits. Together with a
// seeded random source this makes every simulation bit-reproducible.
//
// The package is intentionally free of real-time dependencies: virtual
// time is a time.Duration measured from the start of the run, and nothing
// ever consults the wall clock.
//
// The dispatch core is allocation-free in steady state: fired events are
// recycled through a freelist, and same-instant events (the After(0)
// wakeup/interrupt/handoff shape that dominates protocol-heavy runs)
// bypass the heap through a FIFO run queue. Neither optimization is
// observable: events still execute in exact (time, sequence) order.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Kernel is a discrete-event simulation engine. Create one with New.
// A Kernel must only be used from event callbacks and from process
// goroutines it manages; it is not safe for concurrent use from outside
// the simulation.
type Kernel struct {
	now   time.Duration
	seq   uint64
	queue eventQueue
	// runq is the same-instant FIFO fast path: events scheduled for the
	// current time in strictly increasing seq order, so FIFO order is
	// (time, seq) order. The clock cannot advance while runq is
	// non-empty, which keeps the invariant trivially true.
	runq fifo
	// free recycles fired and cancelled events. Events are reset before
	// reuse; holding a *Event after its callback has run (or after
	// cancelling and releasing it) is a caller bug.
	free       []*Event
	rng        *rand.Rand
	procs      []*Proc
	running    *Proc
	dispatched uint64
	// handoff is signalled by a process goroutine when it parks or exits,
	// returning control to the kernel loop.
	handoff chan struct{}
	stopped bool
}

// New returns a Kernel whose random source is seeded with seed.
// Equal seeds produce identical runs.
func New(seed int64) *Kernel {
	return &Kernel{
		rng:     rand.New(rand.NewSource(seed)),
		handoff: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// alloc takes an event from the freelist or the heap.
func (k *Kernel) alloc() *Event {
	if n := len(k.free); n > 0 {
		ev := k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		return ev
	}
	return &Event{}
}

// release resets a popped event and returns it to the freelist. The
// closure and name references are dropped so they become collectable
// immediately.
func (k *Kernel) release(ev *Event) {
	*ev = Event{index: -1}
	k.free = append(k.free, ev)
}

// At schedules fn to run at absolute virtual time t. If t is in the past
// it runs at the current time, after already-queued events. The returned
// Event may be cancelled until it fires; once the callback has run the
// kernel recycles the Event, so references must not be retained past
// that point.
func (k *Kernel) At(t time.Duration, name string, fn func()) *Event {
	if t < k.now {
		t = k.now
	}
	k.seq++
	ev := k.alloc()
	ev.at = t
	ev.seq = k.seq
	ev.name = name
	ev.fn = fn
	if t == k.now {
		ev.index = -1
		k.runq.push(ev)
	} else {
		heap.Push(&k.queue, ev)
	}
	return ev
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (k *Kernel) After(d time.Duration, name string, fn func()) *Event {
	return k.At(k.now+d, name, fn)
}

// Stop makes Run return after the currently executing event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Stopped reports whether Stop has been called.
func (k *Kernel) Stopped() bool { return k.stopped }

// Run executes events until the queue is empty or Stop is called.
// It returns the virtual time at which it stopped.
func (k *Kernel) Run() time.Duration {
	return k.RunUntil(1<<63 - 1)
}

// peek returns the next event in (time, seq) order without removing it,
// or nil when both queues are empty.
func (k *Kernel) peek() *Event {
	if k.runq.n > 0 {
		f := k.runq.first()
		if k.queue.Len() > 0 {
			if h := k.queue[0]; h.at < f.at || (h.at == f.at && h.seq < f.seq) {
				return h
			}
		}
		return f
	}
	if k.queue.Len() > 0 {
		return k.queue[0]
	}
	return nil
}

// RunUntil executes events with timestamps no later than deadline, then
// advances the clock to min(deadline, time of last event) and returns it.
// If the queue drains earlier, the clock is left at the last event time.
func (k *Kernel) RunUntil(deadline time.Duration) time.Duration {
	for !k.stopped {
		next := k.peek()
		if next == nil {
			break
		}
		if next.at > deadline {
			k.now = deadline
			return k.now
		}
		if k.runq.n > 0 && next == k.runq.first() {
			k.runq.pop()
		} else {
			heap.Pop(&k.queue)
		}
		if next.cancelled {
			k.release(next)
			continue
		}
		k.now = next.at
		k.dispatched++
		fn := next.fn
		next.fn = nil
		fn()
		k.release(next)
	}
	return k.now
}

// Idle reports the names of processes that are parked (blocked waiting for
// an explicit wake). It is intended for tests and deadlock diagnostics.
func (k *Kernel) Idle() []string {
	var out []string
	for _, p := range k.procs {
		if p.state == procParked {
			out = append(out, p.name)
		}
	}
	return out
}

// PendingEvents returns the number of events waiting in the queue.
func (k *Kernel) PendingEvents() int { return k.queue.Len() + k.runq.n }

// Dispatched returns the number of events executed so far. It is a pure
// function of the simulation (virtual events, not wall time), so equal
// seeds report equal counts; sweeps use it for events/sec throughput
// records.
func (k *Kernel) Dispatched() uint64 { return k.dispatched }

// runProc transfers control to p until it parks or exits.
func (k *Kernel) runProc(p *Proc) {
	if p.state == procDead {
		return
	}
	prev := k.running
	k.running = p
	p.state = procRunning
	p.resume <- struct{}{}
	<-k.handoff
	k.running = prev
}

// Event is a scheduled callback. The zero value is not useful; events are
// created by Kernel.At and Kernel.After. After the callback has run the
// kernel resets and recycles the Event; callers that keep a *Event to
// Cancel it later must drop the reference once the event has fired.
type Event struct {
	at        time.Duration
	seq       uint64
	name      string
	fn        func()
	cancelled bool
	index     int
}

// Cancel prevents the event from running and immediately drops the
// callback (so everything the closure pins becomes collectable without
// waiting for heap removal). Cancelling an event that has already fired
// is a no-op only as long as the Event has not been recycled; see the
// retention rule on Event.
func (e *Event) Cancel() {
	e.cancelled = true
	e.fn = nil
}

// Time returns the virtual time the event is scheduled for.
func (e *Event) Time() time.Duration { return e.at }

// Name returns the diagnostic name given at scheduling time.
func (e *Event) Name() string { return e.name }

func (e *Event) String() string {
	return fmt.Sprintf("event %q @%v", e.name, e.at)
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// fifo is a growable ring buffer of events. Push order equals seq order
// for same-instant events, so pop order is dispatch order.
type fifo struct {
	buf  []*Event
	head int
	n    int
}

func (f *fifo) push(ev *Event) {
	if f.n == len(f.buf) {
		f.grow()
	}
	f.buf[(f.head+f.n)%len(f.buf)] = ev
	f.n++
}

func (f *fifo) grow() {
	size := len(f.buf) * 2
	if size == 0 {
		size = 64
	}
	buf := make([]*Event, size)
	for i := 0; i < f.n; i++ {
		buf[i] = f.buf[(f.head+i)%len(f.buf)]
	}
	f.buf = buf
	f.head = 0
}

func (f *fifo) first() *Event { return f.buf[f.head] }

func (f *fifo) pop() *Event {
	ev := f.buf[f.head]
	f.buf[f.head] = nil
	f.head = (f.head + 1) % len(f.buf)
	f.n--
	return ev
}
