// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and an event queue ordered by
// (time, insertion sequence). Simulated processes are goroutines that run
// under a strict single-runner handoff discipline: at any instant at most
// one process goroutine executes, and control passes back to the kernel
// whenever the process blocks (Sleep, Park) or exits. Together with a
// seeded random source this makes every simulation bit-reproducible.
//
// The package is intentionally free of real-time dependencies: virtual
// time is a time.Duration measured from the start of the run, and nothing
// ever consults the wall clock.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Kernel is a discrete-event simulation engine. Create one with New.
// A Kernel must only be used from event callbacks and from process
// goroutines it manages; it is not safe for concurrent use from outside
// the simulation.
type Kernel struct {
	now     time.Duration
	seq     uint64
	queue   eventQueue
	rng     *rand.Rand
	procs   []*Proc
	running *Proc
	// handoff is signalled by a process goroutine when it parks or exits,
	// returning control to the kernel loop.
	handoff chan struct{}
	stopped bool
}

// New returns a Kernel whose random source is seeded with seed.
// Equal seeds produce identical runs.
func New(seed int64) *Kernel {
	return &Kernel{
		rng:     rand.New(rand.NewSource(seed)),
		handoff: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// At schedules fn to run at absolute virtual time t. If t is in the past
// it runs at the current time, after already-queued events. The returned
// Event may be cancelled.
func (k *Kernel) At(t time.Duration, name string, fn func()) *Event {
	if t < k.now {
		t = k.now
	}
	k.seq++
	ev := &Event{at: t, seq: k.seq, name: name, fn: fn}
	heap.Push(&k.queue, ev)
	return ev
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (k *Kernel) After(d time.Duration, name string, fn func()) *Event {
	return k.At(k.now+d, name, fn)
}

// Stop makes Run return after the currently executing event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Stopped reports whether Stop has been called.
func (k *Kernel) Stopped() bool { return k.stopped }

// Run executes events until the queue is empty or Stop is called.
// It returns the virtual time at which it stopped.
func (k *Kernel) Run() time.Duration {
	return k.RunUntil(1<<63 - 1)
}

// RunUntil executes events with timestamps no later than deadline, then
// advances the clock to min(deadline, time of last event) and returns it.
// If the queue drains earlier, the clock is left at the last event time.
func (k *Kernel) RunUntil(deadline time.Duration) time.Duration {
	for !k.stopped && k.queue.Len() > 0 {
		next := k.queue[0]
		if next.at > deadline {
			k.now = deadline
			return k.now
		}
		heap.Pop(&k.queue)
		if next.cancelled {
			continue
		}
		k.now = next.at
		next.fn()
	}
	return k.now
}

// Idle reports the names of processes that are parked (blocked waiting for
// an explicit wake). It is intended for tests and deadlock diagnostics.
func (k *Kernel) Idle() []string {
	var out []string
	for _, p := range k.procs {
		if p.state == procParked {
			out = append(out, p.name)
		}
	}
	return out
}

// PendingEvents returns the number of events waiting in the queue.
func (k *Kernel) PendingEvents() int { return k.queue.Len() }

// runProc transfers control to p until it parks or exits.
func (k *Kernel) runProc(p *Proc) {
	if p.state == procDead {
		return
	}
	prev := k.running
	k.running = p
	p.state = procRunning
	p.resume <- struct{}{}
	<-k.handoff
	k.running = prev
}

// Event is a scheduled callback. The zero value is not useful; events are
// created by Kernel.At and Kernel.After.
type Event struct {
	at        time.Duration
	seq       uint64
	name      string
	fn        func()
	cancelled bool
	index     int
}

// Cancel prevents the event from running. Cancelling an event that has
// already fired is a no-op.
func (e *Event) Cancel() { e.cancelled = true }

// Time returns the virtual time the event is scheduled for.
func (e *Event) Time() time.Duration { return e.at }

// Name returns the diagnostic name given at scheduling time.
func (e *Event) Name() string { return e.name }

func (e *Event) String() string {
	return fmt.Sprintf("event %q @%v", e.name, e.at)
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
