// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and dispatches events in exact
// (time, insertion sequence) order. Simulated processes are goroutines
// that run under a strict single-runner handoff discipline: at any
// instant at most one process goroutine executes, and control passes
// back to the kernel whenever the process blocks (Sleep, Park) or
// exits. Together with a seeded random source this makes every
// simulation bit-reproducible.
//
// The package is intentionally free of real-time dependencies: virtual
// time is a time.Duration measured from the start of the run, and nothing
// ever consults the wall clock.
//
// The dispatch core is allocation-free in steady state and its cost does
// not grow with the pending-event population. Future events live in a
// hierarchical timing wheel (eight levels of 256 power-of-two buckets;
// see wheel.go for the structure and the determinism argument), giving
// O(1) schedule and cancel where a binary heap pays O(log n) sift work
// per event. Same-instant events — the After(0) wakeup/interrupt/handoff
// shape that dominates protocol-heavy runs — bypass the wheel entirely
// through a FIFO run queue, the wheel's de facto level zero. Fired
// events are recycled through a freelist and cancellation unlinks the
// event from its bucket immediately instead of letting it ride the
// queue until its timestamp comes up. None of this is observable:
// events still execute in exact (time, sequence) order, proven by the
// randomized differential test against a reference priority list.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Kernel is a discrete-event simulation engine. Create one with New.
// A Kernel must only be used from event callbacks and from process
// goroutines it manages; it is not safe for concurrent use from outside
// the simulation.
type Kernel struct {
	now   time.Duration
	seq   uint64
	wheel wheel
	// due stages the events of the instant the wheel cursor last advanced
	// to, in (time, seq) order; dispatch drains it before consulting runq
	// (everything in due was scheduled before anything now entering runq,
	// so due seqs are strictly lower).
	due     []*Event
	dueHead int
	// runq is the same-instant FIFO fast path: events scheduled for the
	// current time in strictly increasing seq order, so FIFO order is
	// (time, seq) order. The clock cannot advance while runq is
	// non-empty, which keeps the invariant trivially true.
	runq fifo
	// free recycles fired and cancelled events. Events are reset before
	// reuse; holding a *Event after its callback has run (or after
	// cancelling it) is a caller bug.
	free       []*Event
	rng        *rand.Rand
	procs      []*Proc
	running    *Proc
	dispatched uint64
	// Coalescing state (see AfterCoalesced): the open batch, its absolute
	// deadline, and the value of seq immediately after the batch's last
	// append — if seq has moved since, another event was scheduled in
	// between and the batch is no longer adjacent.
	coalB     *batch
	coalAt    time.Duration
	coalSeq   uint64
	freeBatch []*batch
	// handoff is signalled by a process goroutine when it parks or exits,
	// returning control to the kernel loop.
	handoff chan struct{}
	stopped bool
}

// New returns a Kernel whose random source is seeded with seed.
// Equal seeds produce identical runs.
func New(seed int64) *Kernel {
	return &Kernel{
		rng:     rand.New(rand.NewSource(seed)),
		handoff: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// ReserveRunq pre-sizes the same-instant run queue to hold at least n
// events without growing (rounded up to a power of two). World builders
// call it with a multiple of the host count so steady-state dispatch
// never pays the ring-doubling copy.
func (k *Kernel) ReserveRunq(n int) { k.runq.reserve(n) }

// alloc takes an event from the freelist or the heap.
func (k *Kernel) alloc() *Event {
	if n := len(k.free); n > 0 {
		ev := k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		return ev
	}
	return &Event{pos: posNone}
}

// release resets a popped event and returns it to the freelist. The
// closure and name references are dropped so they become collectable
// immediately.
func (k *Kernel) release(ev *Event) {
	*ev = Event{pos: posNone}
	k.free = append(k.free, ev)
}

// At schedules fn to run at absolute virtual time t. If t is in the past
// it runs at the current time, after already-queued events. The returned
// Event may be cancelled until it fires; once the callback has run the
// kernel recycles the Event, so references must not be retained past
// that point.
func (k *Kernel) At(t time.Duration, name string, fn func()) *Event {
	if t < k.now {
		t = k.now
	}
	k.seq++
	ev := k.alloc()
	ev.k = k
	ev.at = t
	ev.seq = k.seq
	ev.name = name
	ev.fn = fn
	ev.cancelled = false
	if t == k.now {
		ev.pos = posNone
		k.runq.push(ev)
	} else {
		k.wheel.schedule(ev)
	}
	return ev
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (k *Kernel) After(d time.Duration, name string, fn func()) *Event {
	return k.At(k.now+d, name, fn)
}

// AfterCoalesced schedules fn to run d from now, like After, but merges
// the call into the immediately preceding AfterCoalesced event when the
// merge is provably invisible to dispatch order: the deadlines are equal
// and no event of any kind has been scheduled since that call (the
// kernel's sequence counter is unchanged). Under exactly those
// conditions fn's own event would have been assigned the very next
// sequence number at the same timestamp, so it would have dispatched
// immediately after the batch's previous callback with nothing able to
// run in between — executing it from the same kernel event is
// observably identical, and the per-event schedule/dispatch cost is
// saved. This is the broadcast fan-out shape: one Ethernet delivery
// raising the same fixed-latency interrupt on every receiving host
// collapses from N kernel events into one.
//
// Dispatched() counts every batched callback individually, so event
// counts (and events/sec records) remain comparable with an uncoalesced
// execution. Batched callbacks cannot be cancelled — no Event is
// returned — so the mechanism suits fire-and-forget wakeups like NIC
// interrupts, not timers.
func (k *Kernel) AfterCoalesced(d time.Duration, name string, fn func()) {
	if d < 0 {
		d = 0
	}
	t := k.now + d
	if b := k.coalB; b != nil && k.coalAt == t && k.coalSeq == k.seq {
		b.fns = append(b.fns, fn)
		return
	}
	b := k.allocBatch()
	b.fns = append(b.fns, fn)
	k.coalB = b
	k.coalAt = t
	k.At(t, name, b.fn)
	k.coalSeq = k.seq
}

// batch is one coalesced event: the callbacks of several logically
// distinct events that provably occupy one contiguous (time, seq) run.
// The closure is built once so re-arming from the pool is
// allocation-free, like the Event freelist.
type batch struct {
	k   *Kernel
	fns []func()
	fn  func()
}

// allocBatch takes a batch (with its prebuilt closure) from the pool.
func (k *Kernel) allocBatch() *batch {
	if n := len(k.freeBatch); n > 0 {
		b := k.freeBatch[n-1]
		k.freeBatch[n-1] = nil
		k.freeBatch = k.freeBatch[:n-1]
		return b
	}
	b := &batch{k: k}
	b.fn = b.run
	return b
}

// run fires the batch: close it to further appends, execute every
// callback in append (= would-be seq) order, then recycle. The event pop
// already counted one dispatch; each further callback counts its own, at
// the same point relative to its execution as an uncoalesced event's.
// Stop() is honoured between callbacks exactly where the uncoalesced
// kernel would check it — before dispatching the next event — so a
// callback that stops the kernel suppresses the rest of the batch (they
// are dropped, matching the fate of events left queued at Stop: a
// stopped kernel never runs again).
func (b *batch) run() {
	k := b.k
	if k.coalB == b {
		k.coalB = nil
	}
	for i, fn := range b.fns {
		b.fns[i] = nil
		if i > 0 {
			if k.stopped {
				continue
			}
			k.dispatched++
		}
		fn()
	}
	b.fns = b.fns[:0]
	k.freeBatch = append(k.freeBatch, b)
}

// Stop makes Run return after the currently executing event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Stopped reports whether Stop has been called.
func (k *Kernel) Stopped() bool { return k.stopped }

// Run executes events until the queue is empty or Stop is called.
// It returns the virtual time at which it stopped.
func (k *Kernel) Run() time.Duration {
	return k.RunUntil(1<<63 - 1)
}

// RunUntil executes events with timestamps no later than deadline, then
// advances the clock to min(deadline, time of last event) and returns it.
// If the queue drains earlier, the clock is left at the last event time.
func (k *Kernel) RunUntil(deadline time.Duration) time.Duration {
	for !k.stopped {
		var ev *Event
		switch {
		case k.dueHead < len(k.due):
			ev = k.due[k.dueHead]
			if ev.at > deadline {
				k.now = deadline
				return k.now
			}
			k.due[k.dueHead] = nil
			k.dueHead++
		case k.runq.n > 0:
			if k.runq.first().at > deadline {
				k.now = deadline
				return k.now
			}
			ev = k.runq.pop()
		default:
			k.due = k.due[:0]
			k.dueHead = 0
			switch k.advance(int64(deadline)) {
			case advEmpty:
				return k.now
			case advDeadline:
				k.now = deadline
				return k.now
			}
			continue
		}
		if ev.cancelled {
			k.release(ev)
			continue
		}
		k.now = ev.at
		k.dispatched++
		fn := ev.fn
		ev.fn = nil
		fn()
		k.release(ev)
	}
	return k.now
}

// Idle reports the names of processes that are parked (blocked waiting for
// an explicit wake). It is intended for tests and deadlock diagnostics.
func (k *Kernel) Idle() []string {
	var out []string
	for _, p := range k.procs {
		if p.state == procParked {
			out = append(out, p.name)
		}
	}
	return out
}

// PendingEvents returns the number of events waiting to run. Cancelled
// events are unlinked (and stop counting) immediately, except for the
// bounded few already staged for the current instant.
func (k *Kernel) PendingEvents() int {
	return k.wheel.cnt + (len(k.due) - k.dueHead) + k.runq.n
}

// Dispatched returns the number of events executed so far. It is a pure
// function of the simulation (virtual events, not wall time), so equal
// seeds report equal counts; sweeps use it for events/sec throughput
// records.
func (k *Kernel) Dispatched() uint64 { return k.dispatched }

// runProc transfers control to p until it parks or exits.
func (k *Kernel) runProc(p *Proc) {
	if p.state == procDead {
		return
	}
	prev := k.running
	k.running = p
	p.state = procRunning
	p.resume <- struct{}{}
	<-k.handoff
	k.running = prev
}

// Event is a scheduled callback. The zero value is not useful; events are
// created by Kernel.At and Kernel.After. After the callback has run the
// kernel resets and recycles the Event; callers that keep a *Event to
// Cancel it later must drop the reference once the event has fired.
type Event struct {
	at        time.Duration
	seq       uint64
	name      string
	fn        func()
	k         *Kernel
	cancelled bool
	// Wheel linkage: doubly-linked bucket list plus the packed
	// (level, bucket) position, posNone when not wheel-resident.
	next, prev *Event
	pos        int32
}

// Cancel prevents the event from running. A wheel-resident event is
// unlinked from its bucket and recycled immediately — O(1), no dead
// event rides the queue until its timestamp comes up — so Cancel must
// be called at most once, and the reference dropped afterwards (the
// same retention rule that applies after an event has fired). The
// callback is released either way, so everything the closure pins
// becomes collectable at once.
func (e *Event) Cancel() {
	e.cancelled = true
	e.fn = nil
	if e.pos >= 0 {
		e.k.wheel.unlink(e)
		e.k.release(e)
	}
}

// Time returns the virtual time the event is scheduled for.
func (e *Event) Time() time.Duration { return e.at }

// Name returns the diagnostic name given at scheduling time.
func (e *Event) Name() string { return e.name }

func (e *Event) String() string {
	return fmt.Sprintf("event %q @%v", e.name, e.at)
}

// fifo is a growable power-of-two ring buffer of events, indexed with
// mask arithmetic. Push order equals seq order for same-instant events,
// so pop order is dispatch order.
type fifo struct {
	buf  []*Event
	head int
	n    int
}

func (f *fifo) push(ev *Event) {
	if f.n == len(f.buf) {
		f.grow(f.n + 1)
	}
	f.buf[(f.head+f.n)&(len(f.buf)-1)] = ev
	f.n++
}

// reserve pre-sizes the ring to hold at least min events.
func (f *fifo) reserve(min int) {
	if min > len(f.buf) {
		f.grow(min)
	}
}

// grow replaces the ring with one of power-of-two capacity >= min
// (at least 64, at least double the current), preserving order.
func (f *fifo) grow(min int) {
	size := len(f.buf) * 2
	if size < 64 {
		size = 64
	}
	for size < min {
		size *= 2
	}
	buf := make([]*Event, size)
	for i := 0; i < f.n; i++ {
		buf[i] = f.buf[(f.head+i)&(len(f.buf)-1)]
	}
	f.buf = buf
	f.head = 0
}

func (f *fifo) first() *Event { return f.buf[f.head] }

func (f *fifo) pop() *Event {
	ev := f.buf[f.head]
	f.buf[f.head] = nil
	f.head = (f.head + 1) & (len(f.buf) - 1)
	f.n--
	return ev
}
