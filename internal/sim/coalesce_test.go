package sim

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// TestAfterCoalescedMergesAdjacent: back-to-back same-deadline calls with
// nothing scheduled in between share one kernel event, run in call order,
// and are counted as individual dispatches.
func TestAfterCoalescedMergesAdjacent(t *testing.T) {
	k := New(1)
	var order []int
	k.After(0, "setup", func() {
		for i := 0; i < 3; i++ {
			i := i
			k.AfterCoalesced(time.Millisecond, "intr", func() { order = append(order, i) })
		}
		if got := k.PendingEvents(); got != 1 {
			t.Errorf("3 adjacent coalesced callbacks occupy %d events, want 1", got)
		}
	})
	k.Run()
	if want := []int{0, 1, 2}; !reflect.DeepEqual(order, want) {
		t.Fatalf("coalesced callbacks ran as %v, want %v", order, want)
	}
	// setup + 3 logical events: Dispatched must match an uncoalesced run.
	if got := k.Dispatched(); got != 4 {
		t.Errorf("Dispatched() = %d, want 4 (each batched callback counts)", got)
	}
}

// TestAfterCoalescedNoMergeAcrossSchedule: an ordinary event scheduled
// between two coalesced calls breaks adjacency — the kernel cannot prove
// the merge invisible, so the second call gets its own event and overall
// dispatch order is the plain (time, seq) order.
func TestAfterCoalescedNoMergeAcrossSchedule(t *testing.T) {
	k := New(1)
	var order []string
	k.After(0, "setup", func() {
		k.AfterCoalesced(time.Millisecond, "intr", func() { order = append(order, "c0") })
		k.After(time.Millisecond, "plain", func() { order = append(order, "p") })
		k.AfterCoalesced(time.Millisecond, "intr", func() { order = append(order, "c1") })
		if got := k.PendingEvents(); got != 3 {
			t.Errorf("interleaved schedule left %d events, want 3 (no merge)", got)
		}
	})
	k.Run()
	if want := []string{"c0", "p", "c1"}; !reflect.DeepEqual(order, want) {
		t.Fatalf("dispatch order %v, want %v", order, want)
	}
}

// TestAfterCoalescedNoMergeAcrossDeadline: same adjacency, different
// deadline — never merged.
func TestAfterCoalescedNoMergeAcrossDeadline(t *testing.T) {
	k := New(1)
	var order []string
	k.After(0, "setup", func() {
		k.AfterCoalesced(2*time.Millisecond, "intr", func() { order = append(order, "late") })
		k.AfterCoalesced(time.Millisecond, "intr", func() { order = append(order, "early") })
	})
	k.Run()
	if want := []string{"early", "late"}; !reflect.DeepEqual(order, want) {
		t.Fatalf("dispatch order %v, want %v", order, want)
	}
}

// TestAfterCoalescedBatchClosesOnFire: a batch that has fired must not
// accept appends, even when the next coalesced call has the same
// deadline and no schedule happened in between (callbacks that schedule
// nothing leave the sequence counter untouched — exactly the trap).
func TestAfterCoalescedBatchClosesOnFire(t *testing.T) {
	k := New(1)
	var ran []string
	k.After(0, "setup", func() {
		k.AfterCoalesced(0, "intr", func() { ran = append(ran, "first") })
	})
	k.After(time.Millisecond, "later", func() {
		// The first batch fired a millisecond ago; this must run, not be
		// appended to a recycled batch.
		k.AfterCoalesced(0, "intr", func() { ran = append(ran, "second") })
	})
	k.Run()
	if want := []string{"first", "second"}; !reflect.DeepEqual(ran, want) {
		t.Fatalf("ran %v, want %v", ran, want)
	}
}

// TestAfterCoalescedStopSuppressesRest: a batched callback that stops
// the kernel suppresses the remaining callbacks of its batch, exactly
// as uncoalesced events queued behind a Stop never run — and the
// suppressed callbacks are not counted as dispatched.
func TestAfterCoalescedStopSuppressesRest(t *testing.T) {
	k := New(1)
	var ran []string
	k.After(0, "setup", func() {
		k.AfterCoalesced(time.Millisecond, "intr", func() { ran = append(ran, "a"); k.Stop() })
		k.AfterCoalesced(time.Millisecond, "intr", func() { ran = append(ran, "b") })
	})
	k.Run()
	if want := []string{"a"}; !reflect.DeepEqual(ran, want) {
		t.Fatalf("ran %v, want %v (Stop must suppress the rest of the batch)", ran, want)
	}
	if got := k.Dispatched(); got != 2 {
		t.Errorf("Dispatched() = %d, want 2 (setup + first callback only)", got)
	}
}

// TestAfterCoalescedDifferential drives two kernels through an identical
// random script of plain and coalescible schedules — one kernel using
// AfterCoalesced, the reference using After for everything — and
// requires identical execution traces (virtual time and order) plus
// identical dispatch counts. This is the order-neutrality proof
// obligation for the broadcast fan-out batching, at the kernel layer.
func TestAfterCoalescedDifferential(t *testing.T) {
	type rec struct {
		at time.Duration
		id int
	}
	run := func(coalesce bool, seed int64) ([]rec, uint64) {
		k := New(seed)
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		var trace []rec
		id := 0
		// A recursive event storm: each fired event may schedule a burst
		// of interrupts (the fan-out shape), a plain event at the same
		// deadline (adjacency breaker), or nothing.
		var fire func(depth int) func()
		fire = func(depth int) func() {
			myID := id
			id++
			return func() {
				trace = append(trace, rec{k.Now(), myID})
				if depth >= 3 {
					return
				}
				n := rng.Intn(4)
				d := time.Duration(rng.Intn(3)) * 100 * time.Microsecond
				for i := 0; i < n; i++ {
					if rng.Intn(4) == 0 {
						// Adjacency breaker at the same deadline.
						k.After(d, "plain", fire(depth+1))
						continue
					}
					if coalesce {
						k.AfterCoalesced(d, "intr", fire(depth+1))
					} else {
						k.After(d, "intr", fire(depth+1))
					}
				}
			}
		}
		for i := 0; i < 8; i++ {
			k.After(time.Duration(i)*50*time.Microsecond, "seed", fire(0))
		}
		k.Run()
		return trace, k.Dispatched()
	}
	for seed := int64(1); seed <= 40; seed++ {
		got, gotN := run(true, seed)
		want, wantN := run(false, seed)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: coalesced trace diverges from reference\n got %v\nwant %v", seed, got, want)
		}
		if gotN != wantN {
			t.Fatalf("seed %d: dispatch count %d, reference %d", seed, gotN, wantN)
		}
	}
}
