package sim

import (
	"math/rand"
	"testing"
	"time"
)

// TestCascadeBoundaryTimes schedules events exactly on, just before and
// just after every level boundary of the wheel (256^k ns) and verifies
// they fire at their exact times in order — the cascade path must not
// round, lose or reorder events that straddle bucket spans.
func TestCascadeBoundaryTimes(t *testing.T) {
	k := New(1)
	var want []time.Duration
	for _, base := range []int64{1 << 8, 1 << 16, 1 << 24, 1 << 32, 1 << 40, 1 << 48, 1 << 56} {
		for _, off := range []int64{-1, 0, 1} {
			want = append(want, time.Duration(base+off))
		}
	}
	var got []time.Duration
	for _, at := range want {
		k.At(at, "boundary", func() { got = append(got, k.Now()) })
	}
	end := k.Run()
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d fired at %v, want %v (full order %v)", i, got[i], want[i], got)
		}
	}
	if end != want[len(want)-1] {
		t.Errorf("Run returned %v, want %v", end, want[len(want)-1])
	}
}

// TestCascadeFromNonZeroNow re-runs boundary scheduling after the clock
// has advanced to an arbitrary offset, so bucket indices are computed
// against a cursor with non-zero bytes at several levels.
func TestCascadeFromNonZeroNow(t *testing.T) {
	k := New(1)
	start := time.Duration(3<<16 | 5<<8 | 7)
	k.At(start, "advance", func() {})
	k.Run()
	var got []time.Duration
	for _, d := range []time.Duration{1, 248, 249, 256, 1 << 16, 1<<24 + 3} {
		at := start + d
		k.At(at, "e", func() { got = append(got, k.Now()) })
	}
	k.Run()
	want := []time.Duration{start + 1, start + 248, start + 249, start + 256, start + 1<<16, start + 1<<24 + 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

// TestCancelAfterCascade cancels an event after the wheel has already
// cascaded it to a finer level, and verifies the O(1) unlink really
// removed it: it never fires and stops counting as pending immediately.
func TestCancelAfterCascade(t *testing.T) {
	k := New(1)
	fired := false
	// 1<<16 + 50 sits two levels up at schedule time (cursor 0).
	ev := k.At(time.Duration(1<<16+50), "victim", func() { fired = true })
	// Run to just past the level-1 boundary: the victim has cascaded but
	// not fired.
	k.At(time.Duration(1<<16+10), "marker", func() {})
	k.RunUntil(time.Duration(1<<16 + 20))
	if got := k.PendingEvents(); got != 1 {
		t.Fatalf("PendingEvents = %d before cancel, want 1", got)
	}
	ev.Cancel()
	if got := k.PendingEvents(); got != 0 {
		t.Errorf("PendingEvents = %d after cancel, want 0 (unlink must be immediate)", got)
	}
	k.Run()
	if fired {
		t.Error("cancelled event fired after cascade")
	}
}

// TestRunUntilDeadlineInsideBucketSpan stops a run between the wheel
// cursor's position and the next pending event, then schedules an
// earlier event inside that gap. The kernel must dispatch the new event
// first: the deadline stop must not strand the cursor beyond times that
// are still schedulable.
func TestRunUntilDeadlineInsideBucketSpan(t *testing.T) {
	k := New(1)
	var got []time.Duration
	k.At(2*time.Second, "late", func() { got = append(got, k.Now()) })
	if end := k.RunUntil(time.Second); end != time.Second {
		t.Fatalf("RunUntil = %v, want 1s", end)
	}
	k.At(1500*time.Millisecond, "mid", func() { got = append(got, k.Now()) })
	k.Run()
	want := []time.Duration{1500 * time.Millisecond, 2 * time.Second}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("order = %v, want %v", got, want)
	}
}

// TestRunUntilRepeatedDeadlinesAcrossSpans walks a deadline in steps
// that land inside bucket spans at several levels and verifies no event
// fires early and every event fires eventually.
func TestRunUntilRepeatedDeadlinesAcrossSpans(t *testing.T) {
	k := New(1)
	times := []time.Duration{100, 255, 256, 300, 1 << 16, 1<<16 + 1, 1 << 20, 1<<24 + 5}
	fired := make(map[time.Duration]bool)
	for _, at := range times {
		at := at
		k.At(at, "e", func() {
			if k.Now() != at {
				t.Errorf("event for %v fired at %v", at, k.Now())
			}
			fired[at] = true
		})
	}
	for deadline := time.Duration(64); deadline < 1<<25; deadline *= 2 {
		end := k.RunUntil(deadline)
		if end > deadline {
			t.Fatalf("RunUntil(%v) returned %v beyond the deadline", deadline, end)
		}
		for _, at := range times {
			if at > deadline && fired[at] {
				t.Fatalf("event for %v fired before deadline %v reached it", at, deadline)
			}
		}
	}
	k.Run()
	for _, at := range times {
		if !fired[at] {
			t.Errorf("event for %v never fired", at)
		}
	}
}

// TestWheelThenSameInstantOrder verifies the (time, seq) interleaving of
// wheel-resident events with same-instant events scheduled mid-dispatch:
// events already queued for time T run before an At(T) issued while T is
// executing, because the latter has a higher sequence number.
func TestWheelThenSameInstantOrder(t *testing.T) {
	k := New(1)
	var got []string
	T := 5 * time.Millisecond
	k.At(T, "first", func() {
		got = append(got, "first")
		k.At(T, "third", func() { got = append(got, "third") })
	})
	k.At(T, "second", func() { got = append(got, "second") })
	k.Run()
	want := []string{"first", "second", "third"}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

// TestDispatchSteadyStateAllocs proves the wheel dispatch core is
// allocation-free in steady state across all three hot shapes: timer
// chains through the wheel, same-instant chains through the run queue,
// and schedule-then-cancel churn.
func TestDispatchSteadyStateAllocs(t *testing.T) {
	k := New(1)
	var tick func()
	n := 0
	tick = func() {
		n++
		ev := k.After(time.Millisecond, "retry", func() { panic("cancelled event ran") })
		ev.Cancel()
		if n >= 1000 {
			return
		}
		if n%2 == 0 {
			k.After(time.Microsecond, "tick", tick)
		} else {
			k.After(0, "tick", tick)
		}
	}
	k.After(time.Microsecond, "tick", tick)
	k.Run() // warm up freelists and ring capacity
	allocs := testing.AllocsPerRun(100, func() {
		n = 0
		k.After(time.Microsecond, "tick", tick)
		k.Run()
	})
	// Each AllocsPerRun round dispatches a fresh chain; the budget of
	// 0.1 allocs per round (not per event) catches any per-event leak.
	if allocs > 0.1 {
		t.Errorf("steady-state dispatch allocates %.2f/run, want 0", allocs)
	}
}

// --- Differential fuzz: wheel vs reference priority list -------------

// refSched is the reference scheduler: a flat map scanned for the
// minimal (time, seq) entry. Sub-quadratic it is not, but it is
// obviously correct, and the fuzz driver runs identical adversarial op
// sequences against it and the real kernel, comparing dispatch logs.
type refSched struct {
	now  int64
	seq  uint64
	evs  map[int64]*refEvent
	drv  *fuzzDriver
	self int // index into drv.scheds
}

type refEvent struct {
	at  int64
	seq uint64
}

func newRefSched() *refSched { return &refSched{evs: make(map[int64]*refEvent)} }

func (r *refSched) schedule(id, delay int64) {
	at := r.now + delay
	if at < r.now {
		at = r.now
	}
	r.seq++
	r.evs[id] = &refEvent{at: at, seq: r.seq}
}

func (r *refSched) cancel(id int64) { delete(r.evs, id) }

func (r *refSched) next() (int64, *refEvent) {
	var bestID int64
	var best *refEvent
	for id, ev := range r.evs {
		if best == nil || ev.at < best.at || (ev.at == best.at && ev.seq < best.seq) {
			bestID, best = id, ev
		}
	}
	return bestID, best
}

func (r *refSched) runUntil(deadline int64) int64 {
	for {
		id, ev := r.next()
		if ev == nil {
			return r.now
		}
		if ev.at > deadline {
			r.now = deadline
			return r.now
		}
		delete(r.evs, id)
		r.now = ev.at
		r.drv.fired(r.self, id, r.now)
	}
}

func (r *refSched) pending() int { return len(r.evs) }

// kernelSched adapts the real Kernel to the fuzz driver.
type kernelSched struct {
	k    *Kernel
	evs  map[int64]*Event
	drv  *fuzzDriver
	self int
}

func newKernelSched() *kernelSched {
	return &kernelSched{k: New(1), evs: make(map[int64]*Event)}
}

func (s *kernelSched) schedule(id, delay int64) {
	s.evs[id] = s.k.After(time.Duration(delay), "fuzz", func() {
		delete(s.evs, id)
		s.drv.fired(s.self, id, int64(s.k.Now()))
	})
}

func (s *kernelSched) cancel(id int64) {
	if ev, ok := s.evs[id]; ok {
		delete(s.evs, id)
		ev.Cancel()
	}
}

func (s *kernelSched) runUntil(deadline int64) int64 {
	return int64(s.k.RunUntil(time.Duration(deadline)))
}

func (s *kernelSched) pending() int { return s.k.PendingEvents() }

type fuzzSched interface {
	schedule(id, delay int64)
	cancel(id int64)
	runUntil(deadline int64) int64
	pending() int
}

// fuzzDriver replays one deterministic adversarial op sequence against
// a scheduler: events spawn children and cancel peers from inside their
// callbacks (keyed by event id, so both runs derive identical actions),
// while the main loop schedules, cancels and steps RunUntil deadlines
// that land inside bucket spans at every level.
type fuzzDriver struct {
	seed   int64
	scheds []fuzzSched
	live   [][]int64 // per sched: live event ids in creation order
	logs   [][][2]int64
	nextID []int64
}

// delayPalette draws adversarial delays: zero (same-instant), bucket
// boundaries at every wheel level ±1, and random fills.
func delayPalette(rng *rand.Rand) int64 {
	fixed := []int64{0, 0, 1, 2, 255, 256, 257, 1<<16 - 1, 1 << 16, 1<<16 + 1,
		1<<24 - 1, 1 << 24, 1<<24 + 1, 1 << 32, -5}
	switch rng.Intn(4) {
	case 0:
		return fixed[rng.Intn(len(fixed))]
	case 1:
		return rng.Int63n(1000)
	case 2:
		return rng.Int63n(1 << 20)
	default:
		return rng.Int63n(1 << 34)
	}
}

// fired records a dispatch and performs the event's scripted actions:
// sometimes spawn children (subcritical: well under one child per
// dispatch on average, plus a hard id cap, so every run drains),
// sometimes cancel a live peer.
func (d *fuzzDriver) fired(which int, id, at int64) {
	d.logs[which] = append(d.logs[which], [2]int64{id, at})
	d.removeLive(which, id)
	rng := rand.New(rand.NewSource(d.seed<<20 ^ id))
	if rng.Intn(3) == 0 && d.nextID[which] < 4000 {
		for i, n := 0, rng.Intn(3); i < n; i++ {
			d.spawn(which, rng)
		}
	}
	if rng.Intn(3) == 0 && len(d.live[which]) > 0 {
		victim := d.live[which][rng.Intn(len(d.live[which]))]
		d.scheds[which].cancel(victim)
		d.removeLive(which, victim)
	}
}

func (d *fuzzDriver) spawn(which int, rng *rand.Rand) {
	id := d.nextID[which]
	d.nextID[which]++
	d.scheds[which].schedule(id, delayPalette(rng))
	d.live[which] = append(d.live[which], id)
}

func (d *fuzzDriver) removeLive(which int, id int64) {
	l := d.live[which]
	for i, v := range l {
		if v == id {
			d.live[which] = append(l[:i], l[i+1:]...)
			return
		}
	}
}

// TestWheelMatchesReferenceModel is the randomized differential test:
// identical schedule/cancel/RunUntil interleavings against the wheel
// kernel and the reference priority list must produce identical
// dispatch logs, final clocks and pending counts.
func TestWheelMatchesReferenceModel(t *testing.T) {
	for _, seed := range []int64{1, 2, 7, 42, 1234, 98765, 31337} {
		ks := newKernelSched()
		rs := newRefSched()
		d := &fuzzDriver{
			seed:   seed,
			scheds: []fuzzSched{ks, rs},
			live:   make([][]int64, 2),
			logs:   make([][][2]int64, 2),
			nextID: make([]int64, 2),
		}
		ks.drv, ks.self = d, 0
		rs.drv, rs.self = d, 1

		// The driver rng scripts the main loop; per-sched action streams
		// are derived from event ids inside fired().
		mainRng := rand.New(rand.NewSource(seed))
		nows := make([]int64, 2)
		steps := make([]func(which int), 0, 64)
		for i := 0; i < 8; i++ {
			steps = append(steps, func(which int) {
				d.spawn(which, rand.New(rand.NewSource(seed^int64(100+i))))
			})
		}
		for i := 0; i < 48; i++ {
			switch mainRng.Intn(4) {
			case 0:
				i := i
				steps = append(steps, func(which int) {
					d.spawn(which, rand.New(rand.NewSource(seed^int64(1000+i))))
				})
			case 1:
				pick := mainRng.Int63()
				steps = append(steps, func(which int) {
					if len(d.live[which]) == 0 {
						return
					}
					victim := d.live[which][pick%int64(len(d.live[which]))]
					d.scheds[which].cancel(victim)
					d.removeLive(which, victim)
				})
			default:
				delta := delayPalette(mainRng)
				if delta < 0 {
					delta = 0
				}
				steps = append(steps, func(which int) {
					nows[which] = d.scheds[which].runUntil(nows[which] + delta)
				})
			}
		}
		steps = append(steps, func(which int) {
			nows[which] = d.scheds[which].runUntil(1<<63 - 1)
		})

		for _, step := range steps {
			step(0)
			step(1)
		}

		if nows[0] != nows[1] {
			t.Fatalf("seed %d: final clock diverged: wheel %d, reference %d", seed, nows[0], nows[1])
		}
		if ks.pending() != rs.pending() {
			t.Fatalf("seed %d: pending diverged: wheel %d, reference %d", seed, ks.pending(), rs.pending())
		}
		lw, lr := d.logs[0], d.logs[1]
		if len(lw) != len(lr) {
			t.Fatalf("seed %d: dispatch count diverged: wheel %d, reference %d", seed, len(lw), len(lr))
		}
		for i := range lw {
			if lw[i] != lr[i] {
				t.Fatalf("seed %d: dispatch %d diverged: wheel fired id %d at %d, reference id %d at %d",
					seed, i, lw[i][0], lw[i][1], lr[i][0], lr[i][1])
			}
		}
		if len(lw) == 0 {
			t.Fatalf("seed %d: fuzz run dispatched nothing; ops are not reaching the kernel", seed)
		}
		ks.k.Shutdown()
	}
}
