package sim

// abortSignal is panicked inside a process goroutine when the kernel is
// shut down, unwinding the process function so the goroutine can exit.
type abortSignal struct{}

// Shutdown terminates all blocked processes so their goroutines exit.
// It must be called after Run/RunUntil has returned, never from inside
// an event or process. Worlds that create many kernels (tests, sweeps)
// should call Shutdown to avoid accumulating parked goroutines.
func (k *Kernel) Shutdown() {
	k.stopped = true
	for _, p := range k.procs {
		if p.state == procDead || p.state == procRunning {
			continue
		}
		p.aborting = true
		// Resume the goroutine directly; its park() will observe
		// aborting and panic with abortSignal, which the Spawn
		// wrapper recovers.
		k.running = p
		p.resume <- struct{}{}
		<-k.handoff
		k.running = nil
	}
}
