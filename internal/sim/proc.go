package sim

import (
	"fmt"
	"time"
)

type procState uint8

const (
	procNew procState = iota
	procRunning
	procParked  // blocked in Park, waiting for Wake
	procWaiting // blocked in Sleep, timed resume scheduled
	procDead
)

// Proc is a simulated process: a goroutine whose execution is interleaved
// deterministically by the Kernel. All Proc methods except Wake must be
// called from within the process's own goroutine (i.e. from the function
// passed to Spawn). Wake must be called from kernel context — an event
// callback or another running process.
type Proc struct {
	k      *Kernel
	name   string
	state  procState
	resume chan struct{}
	// wakePending coalesces Wake calls that arrive while the process is
	// not parked; the next Park returns immediately.
	wakePending bool
	parkReason  any
	aborting    bool
	// runFn and wakeName are precomputed once so the park/wake hot path
	// schedules events without allocating a closure or a name string.
	runFn    func()
	wakeName string
}

// Spawn creates a process and schedules it to start at the current
// virtual time. fn runs on its own goroutine under the kernel's handoff
// discipline and must use only this package's blocking primitives.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, resume: make(chan struct{})}
	p.runFn = func() { k.runProc(p) }
	p.wakeName = "wake " + name
	k.procs = append(k.procs, p)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(abortSignal); !ok {
					panic(r)
				}
			}
			p.state = procDead
			k.handoff <- struct{}{}
		}()
		<-p.resume
		if p.aborting {
			panic(abortSignal{})
		}
		fn(p)
	}()
	k.After(0, "spawn "+name, p.runFn)
	return p
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.k.now }

// Kernel returns the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// park returns control to the kernel and blocks until resumed.
func (p *Proc) park() {
	p.k.handoff <- struct{}{}
	<-p.resume
	if p.aborting {
		panic(abortSignal{})
	}
	p.state = procRunning
}

// Sleep blocks the process for virtual duration d. Wake calls received
// while sleeping are remembered and cause the next Park to return
// immediately, but do not shorten the sleep.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.state = procWaiting
	p.k.After(d, p.wakeName, p.runFn)
	p.park()
}

// Park blocks until another component calls Wake. The reason — any
// value; typically a string or the wait key the caller is blocked on —
// is retained for debugger inspection and formatted only on demand, so
// the hot path never pays for building a diagnostic string. If a Wake
// arrived since the last Park returned, Park consumes it and returns
// immediately.
func (p *Proc) Park(reason any) {
	if p.wakePending {
		p.wakePending = false
		return
	}
	p.parkReason = reason
	p.state = procParked
	p.park()
}

// Wake makes a parked process runnable at the current virtual time. If
// the process is not parked the wake is remembered (coalesced) and the
// next Park returns immediately. Waking a dead process is a no-op.
// Wake must be called from kernel context, never from the woken
// process itself.
func (p *Proc) Wake() {
	switch p.state {
	case procDead:
	case procParked:
		p.state = procWaiting // resume already scheduled below
		p.k.After(0, p.wakeName, p.runFn)
	default:
		p.wakePending = true
	}
}

// Dead reports whether the process function has returned.
func (p *Proc) Dead() bool { return p.state == procDead }

func (p *Proc) String() string {
	return fmt.Sprintf("proc %q", p.name)
}
