package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	k := New(1)
	var got []int
	k.At(30*time.Millisecond, "c", func() { got = append(got, 3) })
	k.At(10*time.Millisecond, "a", func() { got = append(got, 1) })
	k.At(20*time.Millisecond, "b", func() { got = append(got, 2) })
	end := k.Run()
	if end != 30*time.Millisecond {
		t.Errorf("end time = %v, want 30ms", end)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if got[i] != v {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSameTimeEventsRunInInsertionOrder(t *testing.T) {
	k := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5*time.Millisecond, "e", func() { got = append(got, i) })
	}
	k.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("tie-break order = %v, want ascending", got)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	k := New(1)
	var at time.Duration
	k.At(time.Second, "outer", func() {
		k.After(250*time.Millisecond, "inner", func() { at = k.Now() })
	})
	k.Run()
	if at != 1250*time.Millisecond {
		t.Errorf("inner fired at %v, want 1.25s", at)
	}
}

func TestCancelPreventsRun(t *testing.T) {
	k := New(1)
	ran := false
	ev := k.At(time.Millisecond, "x", func() { ran = true })
	ev.Cancel()
	k.Run()
	if ran {
		t.Error("cancelled event ran")
	}
}

func TestPastEventClampsToNow(t *testing.T) {
	k := New(1)
	var at time.Duration
	k.At(time.Second, "outer", func() {
		k.At(0, "past", func() { at = k.Now() })
	})
	k.Run()
	if at != time.Second {
		t.Errorf("past event fired at %v, want 1s", at)
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	k := New(1)
	ran := false
	k.At(2*time.Second, "late", func() { ran = true })
	end := k.RunUntil(time.Second)
	if ran {
		t.Error("event after deadline ran")
	}
	if end != time.Second {
		t.Errorf("clock = %v, want 1s", end)
	}
	k.Run()
	if !ran {
		t.Error("event did not run after resuming")
	}
}

func TestStopHaltsRun(t *testing.T) {
	k := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		k.At(time.Duration(i)*time.Millisecond, "e", func() {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	k.Run()
	if count != 3 {
		t.Errorf("ran %d events, want 3", count)
	}
	if !k.Stopped() {
		t.Error("Stopped() = false after Stop")
	}
}

func TestProcSleepAdvancesClock(t *testing.T) {
	k := New(1)
	var times []time.Duration
	k.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10 * time.Millisecond)
			times = append(times, p.Now())
		}
	})
	k.Run()
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	if len(times) != len(want) {
		t.Fatalf("got %d wakeups, want %d", len(times), len(want))
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("wake %d at %v, want %v", i, times[i], want[i])
		}
	}
}

func TestParkAndWake(t *testing.T) {
	k := New(1)
	var wokeAt time.Duration
	p := k.Spawn("parker", func(p *Proc) {
		p.Park("test")
		wokeAt = p.Now()
	})
	k.At(50*time.Millisecond, "waker", func() { p.Wake() })
	k.Run()
	if wokeAt != 50*time.Millisecond {
		t.Errorf("woke at %v, want 50ms", wokeAt)
	}
	if !p.Dead() {
		t.Error("proc should be dead after fn returns")
	}
}

func TestWakeBeforeParkIsRemembered(t *testing.T) {
	k := New(1)
	done := false
	var p *Proc
	p = k.Spawn("p", func(pp *Proc) {
		pp.Sleep(20 * time.Millisecond) // wake arrives during this sleep
		pp.Park("should not block")
		done = true
	})
	k.At(5*time.Millisecond, "early wake", func() { p.Wake() })
	k.Run()
	if !done {
		t.Error("pending wake was lost; Park blocked forever")
	}
}

func TestIdleReportsParkedProcs(t *testing.T) {
	k := New(1)
	k.Spawn("stuck", func(p *Proc) { p.Park("waiting for godot") })
	k.Run()
	idle := k.Idle()
	if len(idle) != 1 || idle[0] != "stuck" {
		t.Errorf("Idle() = %v, want [stuck]", idle)
	}
	k.Shutdown()
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		k := New(7)
		var trace []string
		k.Spawn("a", func(p *Proc) {
			for i := 0; i < 3; i++ {
				trace = append(trace, "a")
				p.Sleep(10 * time.Millisecond)
			}
		})
		k.Spawn("b", func(p *Proc) {
			for i := 0; i < 3; i++ {
				trace = append(trace, "b")
				p.Sleep(15 * time.Millisecond)
			}
		})
		k.Run()
		return trace
	}
	first := run()
	for i := 0; i < 5; i++ {
		again := run()
		if len(again) != len(first) {
			t.Fatalf("trace length differs across runs: %v vs %v", first, again)
		}
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("run not deterministic: %v vs %v", first, again)
			}
		}
	}
}

func TestShutdownUnblocksParkedProcs(t *testing.T) {
	k := New(1)
	for i := 0; i < 5; i++ {
		k.Spawn("p", func(p *Proc) {
			for {
				p.Park("forever")
			}
		})
	}
	k.Run()
	k.Shutdown()
	for _, name := range k.Idle() {
		t.Errorf("proc %s still parked after Shutdown", name)
	}
}

func TestDeterministicRand(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed produced different random streams")
		}
	}
}

func TestSpuriousWakeToleratedByConditionLoop(t *testing.T) {
	k := New(1)
	ready := false
	var woke time.Duration
	p := k.Spawn("waiter", func(p *Proc) {
		for !ready {
			p.Park("cond")
		}
		woke = p.Now()
	})
	// A wake with the condition still false, then the real one.
	k.At(10*time.Millisecond, "spurious", func() { p.Wake() })
	k.At(20*time.Millisecond, "real", func() { ready = true; p.Wake() })
	k.Run()
	if woke != 20*time.Millisecond {
		t.Errorf("condition loop exited at %v, want 20ms", woke)
	}
}

// TestEventHeapOrderProperty checks with random timestamp sets that the
// kernel always dispatches in nondecreasing time order.
func TestEventHeapOrderProperty(t *testing.T) {
	prop := func(offsets []uint16) bool {
		k := New(1)
		var fired []time.Duration
		for _, o := range offsets {
			d := time.Duration(o) * time.Microsecond
			k.At(d, "e", func() { fired = append(fired, k.Now()) })
		}
		k.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(offsets)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNestedSpawn(t *testing.T) {
	k := New(1)
	var order []string
	k.Spawn("parent", func(p *Proc) {
		order = append(order, "parent-start")
		k.Spawn("child", func(c *Proc) {
			order = append(order, "child")
		})
		p.Sleep(time.Millisecond)
		order = append(order, "parent-end")
	})
	k.Run()
	want := []string{"parent-start", "child", "parent-end"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Errorf("order = %v, want %v", order, want)
	}
}
