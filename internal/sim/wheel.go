package sim

import "math/bits"

// The hierarchical timing wheel replacing the former container/heap
// event queue. Virtual timestamps are int64 nanoseconds; the wheel has
// eight levels of 256 power-of-two buckets, level L bucket spanning
// 2^(8L) ns, so together the levels cover the full non-negative int64
// range with no overflow list.
//
// Placement rule: an event lands at the level of the highest-order byte
// in which its timestamp differs from the wheel cursor, in the bucket
// indexed by that byte of the timestamp. Because the event shares every
// byte above that level with the cursor, its bucket lies within the
// level's current window and bucket positions never wrap — the cursor
// can jump straight to the next occupied bucket (found by per-level
// occupancy bitmaps) instead of ticking through empty slots.
//
// Determinism argument (why the wheel dispatches in exact (time, seq)
// order, making the refactor virtual-time-neutral):
//
//  1. A level-0 bucket spans a single nanosecond, so every event in it
//     carries the same timestamp; draining it in list order is (time,
//     seq) order provided the list is seq-sorted.
//  2. Every bucket list is seq-sorted at all times: direct schedules
//     append events with strictly increasing seq; a cascade moves a
//     whole bucket in traversal order, preserving relative seq order;
//     and a cascade into a bucket always happens at the instant the
//     cursor enters the enclosing window — before any direct schedule
//     into that window is possible (a direct schedule requires the
//     cursor to already share the window prefix), so cascaded
//     lower-seq events land ahead of later direct higher-seq ones.
//  3. The cursor only moves to a proven-empty boundary or to the exact
//     time of the earliest pending event: the bottom-up scan stops at
//     the first level with an occupied bucket, and any occupied bucket
//     at a higher level starts at or beyond the end of that level's
//     window, so the first hit is the global minimum.
//
// Scheduling and cancellation are O(1) (bucket append / doubly-linked
// unlink); an event is touched again only when its bucket cascades —
// at most once per level — so dispatch cost is bounded by a constant
// regardless of how many events are pending. The randomized
// differential test in wheel_test.go runs the wheel against a
// reference priority list under adversarial schedule/cancel/RunUntil
// interleavings to enforce all of the above.

const (
	wheelLevels = 8
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits
)

// posNone marks an event that is not linked into a wheel bucket (it is
// running, staged in due/runq, free, or cancelled).
const posNone = -1

// wbucket is one doubly-linked, seq-sorted event list.
type wbucket struct {
	head, tail *Event
}

// wheelLevel is one resolution tier: 256 buckets plus an occupancy
// bitmap so the next non-empty bucket is found with four word scans.
type wheelLevel struct {
	occ  [wheelSlots / 64]uint64
	slot [wheelSlots]wbucket
}

func (lv *wheelLevel) setOcc(i int)   { lv.occ[i>>6] |= 1 << (i & 63) }
func (lv *wheelLevel) clearOcc(i int) { lv.occ[i>>6] &^= 1 << (i & 63) }

// nextOcc returns the first occupied bucket index >= from, if any.
func (lv *wheelLevel) nextOcc(from int) (int, bool) {
	w := from >> 6
	word := lv.occ[w] & (^uint64(0) << (from & 63))
	for {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word), true
		}
		w++
		if w == len(lv.occ) {
			return 0, false
		}
		word = lv.occ[w]
	}
}

// wheel is the pending-event store. cur is the cursor: a virtual time
// <= the kernel clock and < every resident event's timestamp, used as
// the reference point for placement. cnt counts resident events.
type wheel struct {
	cur int64
	cnt int
	lvl [wheelLevels]wheelLevel
}

// schedule links ev into the bucket given by the placement rule.
// The caller guarantees ev.at > w.cur (same-instant events go to the
// kernel's run queue, never the wheel).
func (w *wheel) schedule(ev *Event) {
	d := uint64(ev.at) ^ uint64(w.cur)
	level := (bits.Len64(d) - 1) >> 3
	idx := int(uint64(ev.at)>>(level*wheelBits)) & (wheelSlots - 1)
	lv := &w.lvl[level]
	b := &lv.slot[idx]
	ev.next = nil
	ev.prev = b.tail
	if b.tail == nil {
		b.head = ev
		lv.setOcc(idx)
	} else {
		b.tail.next = ev
	}
	b.tail = ev
	ev.pos = int32(level<<wheelBits | idx)
	w.cnt++
}

// unlink removes ev from its bucket in O(1). Relative order of the
// remaining events is untouched, so the seq-sorted invariant holds.
func (w *wheel) unlink(ev *Event) {
	level := int(ev.pos) >> wheelBits
	idx := int(ev.pos) & (wheelSlots - 1)
	b := &w.lvl[level].slot[idx]
	if ev.prev != nil {
		ev.prev.next = ev.next
	} else {
		b.head = ev.next
	}
	if ev.next != nil {
		ev.next.prev = ev.prev
	} else {
		b.tail = ev.prev
	}
	if b.head == nil {
		w.lvl[level].clearOcc(idx)
	}
	ev.next, ev.prev = nil, nil
	ev.pos = posNone
	w.cnt--
}

// advance outcomes.
const (
	advEmpty    = iota // no pending events; cursor and clock untouched
	advDeadline        // next event lies beyond the deadline
	advStaged          // k.due now holds the next instant's events
)

// advance walks the cursor to the next pending event time no later than
// deadline, cascading coarse buckets down as boundaries are crossed,
// and stages that instant's events onto k.due in (time, seq) order.
// On advDeadline the cursor has been moved up to the deadline (never
// backward), which is safe because the scan proved no event lives in
// between; the clock itself is the caller's to set.
func (k *Kernel) advance(deadline int64) int {
	w := &k.wheel
	for {
		if w.cnt == 0 {
			return advEmpty
		}
		level, idx := -1, 0
		var s int64
		for L := 0; L < wheelLevels; L++ {
			iL := int(uint64(w.cur)>>(L*wheelBits)) & (wheelSlots - 1)
			if j, ok := w.lvl[L].nextOcc(iL); ok {
				// Window prefix above level L, then bucket j. The level-7
				// mask wraps to zero in uint64, clearing the whole prefix,
				// which is exactly right.
				prefix := uint64(w.cur) &^ (uint64(wheelSlots)<<(L*wheelBits) - 1)
				level, idx = L, j
				s = int64(prefix | uint64(j)<<(L*wheelBits))
				break
			}
		}
		if level < 0 {
			return advEmpty
		}
		if s > deadline {
			if deadline > w.cur {
				w.cur = deadline
			}
			return advDeadline
		}
		w.cur = s
		lv := &w.lvl[level]
		b := &lv.slot[idx]
		head := b.head
		b.head, b.tail = nil, nil
		lv.clearOcc(idx)
		if level == 0 {
			// Exact instant: the whole bucket shares timestamp s; move it
			// to the due stage in list (= seq) order.
			for ev := head; ev != nil; {
				next := ev.next
				ev.next, ev.prev = nil, nil
				ev.pos = posNone
				k.due = append(k.due, ev)
				w.cnt--
				ev = next
			}
			return advStaged
		}
		// Cascade: refile the bucket at finer resolution. Events landing
		// exactly on the new cursor are due now and skip the wheel.
		for ev := head; ev != nil; {
			next := ev.next
			ev.next, ev.prev = nil, nil
			w.cnt--
			if int64(ev.at) == w.cur {
				ev.pos = posNone
				k.due = append(k.due, ev)
			} else {
				w.schedule(ev)
			}
			ev = next
		}
		if k.dueHead < len(k.due) {
			return advStaged
		}
	}
}
