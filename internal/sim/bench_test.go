package sim

import (
	"testing"
	"time"
)

// BenchmarkKernelDispatch measures heap-path event throughput: every
// event is scheduled a nonzero delay ahead, so each one transits the
// (time, seq) priority queue. This is the simulator's base speed limit.
func BenchmarkKernelDispatch(b *testing.B) {
	k := New(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			k.After(time.Microsecond, "tick", tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	k.After(time.Microsecond, "tick", tick)
	k.Run()
}

// BenchmarkKernelDispatchImmediate measures the After(0) fast path:
// same-instant events that (post-refactor) bypass the heap through the
// FIFO run queue — the shape of wakeups, interrupts and work handoffs,
// the dominant event class in protocol-heavy runs.
func BenchmarkKernelDispatchImmediate(b *testing.B) {
	k := New(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			k.After(0, "tick", tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	k.After(0, "tick", tick)
	k.Run()
}

// BenchmarkKernelDispatchDeep measures dispatch with ~4096 timers
// pending at all times — the cluster-scale shape (per-host retries,
// boosts, sleeps) where a binary heap pays O(log n) sift work per event
// and the timing wheel pays a depth-independent constant.
func BenchmarkKernelDispatchDeep(b *testing.B) {
	const depth = 4096
	k := New(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n+depth <= b.N {
			k.After(depth*time.Microsecond, "tick", tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 1; i <= depth; i++ {
		k.After(time.Duration(i)*time.Microsecond, "tick", tick)
	}
	k.Run()
}

// BenchmarkKernelScheduleCancel measures the schedule-then-cancel churn
// of retry timers: the event never fires but must be queued, cancelled
// (dropping its closure immediately) and reclaimed on pop.
func BenchmarkKernelScheduleCancel(b *testing.B) {
	k := New(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		ev := k.After(time.Millisecond, "retry", func() { panic("cancelled event ran") })
		ev.Cancel()
		if n < b.N {
			k.After(time.Microsecond, "tick", tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	k.After(time.Microsecond, "tick", tick)
	k.Run()
}
