package fabric

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"mether/internal/medium"
	"mether/internal/sim"
)

// poolBalanced fails the test unless every buffer the fabric ever
// allocated is back on its freelist — the invariant that holds whenever
// all receivers have drained and released their rings.
func poolBalanced(t *testing.T, fb *Fabric) {
	t.Helper()
	alloc, free := fb.PoolStats()
	if alloc != free {
		t.Fatalf("pool imbalance: %d allocated, %d free", alloc, free)
	}
}

// drain empties a port's ring, releasing every frame, and returns the
// payload copies in arrival order.
func drain(p medium.Port) [][]byte {
	var out [][]byte
	for {
		f, ok := p.Recv()
		if !ok {
			return out
		}
		out = append(out, append([]byte(nil), f.Payload...))
		p.Release(f)
	}
}

// TestBroadcastFanout: a broadcast on the fabric is a sender-paid
// unicast fan-out — one copy per attached destination, each stamped
// with its actual destination id, all sharing one pooled buffer.
func TestBroadcastFanout(t *testing.T) {
	k := sim.New(1)
	fb := New(k, DefaultParams())
	ports := make([]medium.Port, 4)
	for i := range ports {
		ports[i] = fb.AttachPort("p", nil)
	}
	k.At(0, "send", func() { ports[0].Send(medium.Broadcast, []byte("hello")) })
	k.Run()

	st := fb.Stats()
	if st.FanoutFrames != 3 || st.Frames != 3 {
		t.Fatalf("want 3 fan-out frames, got fanout=%d frames=%d", st.FanoutFrames, st.Frames)
	}
	var shared *medium.Buf
	for i, p := range ports {
		f, ok := p.Recv()
		if i == 0 {
			if ok {
				t.Fatalf("sender received its own broadcast")
			}
			continue
		}
		if !ok {
			t.Fatalf("port %d received nothing", i)
		}
		if f.Dst != i || f.Src != 0 {
			t.Fatalf("port %d: frame stamped %d->%d, want 0->%d", i, f.Src, f.Dst, i)
		}
		if !bytes.Equal(f.Payload, []byte("hello")) {
			t.Fatalf("port %d: payload %q", i, f.Payload)
		}
		if shared == nil {
			shared = f.Buf
		} else if f.Buf != shared {
			t.Fatalf("fan-out copies do not share one buffer")
		}
		p.Release(f)
	}
	poolBalanced(t, fb)
}

// TestLinkQueueOverflow: at most TxQueue frames may be in flight on one
// link; the excess is dropped, counted, and costs no wire time. The
// drops must also release their buffer references.
func TestLinkQueueOverflow(t *testing.T) {
	p := DefaultParams()
	p.TxQueue = 2
	k := sim.New(1)
	fb := New(k, p)
	a := fb.AttachPort("a", nil)
	b := fb.AttachPort("b", nil)
	k.At(0, "blast", func() {
		for i := 0; i < 5; i++ {
			a.Send(b.ID(), []byte{byte(i)})
		}
	})
	k.Run()

	st := fb.Stats()
	if st.LinkOverflows != 3 || st.Frames != 2 {
		t.Fatalf("want 3 overflows and 2 frames, got overflows=%d frames=%d", st.LinkOverflows, st.Frames)
	}
	if st.LinkMaxQueued != 2 {
		t.Fatalf("want link max queue 2, got %d", st.LinkMaxQueued)
	}
	got := drain(b)
	if len(got) != 2 || got[0][0] != 0 || got[1][0] != 1 {
		t.Fatalf("want the first two frames delivered in order, got %v", got)
	}
	poolBalanced(t, fb)
}

// TestLinkFIFOSerialization: frames on one link serialize behind each
// other (bandwidth plus latency, no inter-frame gap), while traffic on
// other links is unaffected — the fabric's defining contrast with the
// shared bus.
func TestLinkFIFOSerialization(t *testing.T) {
	p := DefaultParams() // 1 Gb/s, 64 B min frame => 512ns tx, 2us latency
	k := sim.New(1)
	fb := New(k, p)
	var arrivals []time.Duration
	a := fb.AttachPort("a", nil)
	b := fb.AttachPortWithRing("b", func() { arrivals = append(arrivals, k.Now()) }, 8)
	c := fb.AttachPort("c", nil)
	k.At(0, "sends", func() {
		a.Send(b.ID(), []byte{1}) // same link: serializes
		a.Send(b.ID(), []byte{2})
		c.Send(b.ID(), []byte{3}) // its own link: no queueing
	})
	k.Run()

	tx := 512 * time.Nanosecond
	lat := 2 * time.Microsecond
	want := []time.Duration{tx + lat, tx + lat, 2*tx + lat}
	if !reflect.DeepEqual(arrivals, want) {
		t.Fatalf("arrival times %v, want %v", arrivals, want)
	}
	if got := drain(b); len(got) != 3 {
		t.Fatalf("want 3 frames at b, got %d", len(got))
	}
	poolBalanced(t, fb)
}

// TestPerLinkLoss: loss is rolled per fan-out copy — on a point-to-point
// medium each copy is its own transmission — and lost copies still
// release their buffer references.
func TestPerLinkLoss(t *testing.T) {
	p := DefaultParams()
	p.LossRate = 1
	k := sim.New(1)
	fb := New(k, p)
	a := fb.AttachPort("a", nil)
	for i := 0; i < 3; i++ {
		fb.AttachPort("rx", nil)
	}
	k.At(0, "send", func() { a.Send(medium.Broadcast, []byte("doomed")) })
	k.Run()

	st := fb.Stats()
	if st.WireLost != 3 || st.Frames != 3 {
		t.Fatalf("want every copy lost, got lost=%d frames=%d", st.WireLost, st.Frames)
	}
	for i, port := range fb.ports[1:] {
		if _, ok := port.Recv(); ok {
			t.Fatalf("port %d received a lost frame", i+1)
		}
	}
	poolBalanced(t, fb)
}

// TestDownPortSuppression: a down port neither transmits (counted as
// suppressed, no wire cost, no pool traffic) nor receives (the copy is
// consumed silently, exactly like the Ethernet NIC), and the pool stays
// balanced through both.
func TestDownPortSuppression(t *testing.T) {
	k := sim.New(1)
	fb := New(k, DefaultParams())
	a := fb.AttachPort("a", nil)
	b := fb.AttachPort("b", nil)
	c := fb.AttachPort("c", nil)

	k.At(0, "down sends", func() {
		a.SetDown(true)
		a.Send(b.ID(), []byte{1})
		a.Send(medium.Broadcast, []byte{2})
		a.SetDown(false)
	})
	// A live sender toward a down receiver: the copy pays its wire cost
	// but vanishes at the port, with no ring-drop count.
	k.At(time.Millisecond, "to down port", func() {
		b.SetDown(true)
		a.Send(medium.Broadcast, []byte{3})
	})
	k.Run()

	st := fb.Stats()
	if st.TxSuppressed != 2 {
		t.Fatalf("want 2 suppressed sends, got %d", st.TxSuppressed)
	}
	if a.TxSuppressed() != 2 {
		t.Fatalf("per-port suppression not recorded")
	}
	if st.Frames != 2 || st.FanoutFrames != 2 {
		t.Fatalf("want exactly the live broadcast's 2 copies on the wire, got frames=%d fanout=%d", st.Frames, st.FanoutFrames)
	}
	if st.RingDrops != 0 {
		t.Fatalf("a down port must swallow frames without ring drops, got %d", st.RingDrops)
	}
	if got := drain(b); len(got) != 0 {
		t.Fatalf("down port b queued %d frames", len(got))
	}
	if got := drain(c); len(got) != 1 || got[0][0] != 3 {
		t.Fatalf("live port c got %v, want the tagged broadcast", got)
	}
	poolBalanced(t, fb)
}

// TestBroadcastOverflowGuard is the regression test for fan-out buffer
// lifetime: when an early destination's link is at its transmit bound,
// that copy's drop must not recycle the shared buffer out from under the
// copies still being transmitted to later destinations.
func TestBroadcastOverflowGuard(t *testing.T) {
	p := DefaultParams()
	p.TxQueue = 1
	k := sim.New(1)
	fb := New(k, p)
	a := fb.AttachPort("a", nil)
	b := fb.AttachPort("b", nil)
	c := fb.AttachPort("c", nil)
	k.At(0, "fill then fan out", func() {
		a.Send(b.ID(), []byte("fill")) // a->b link now at its bound
		a.Send(medium.Broadcast, []byte("fan"))
	})
	k.Run()

	st := fb.Stats()
	if st.LinkOverflows != 1 {
		t.Fatalf("want the b copy dropped, got %d overflows", st.LinkOverflows)
	}
	got := drain(c)
	if len(got) != 1 || !bytes.Equal(got[0], []byte("fan")) {
		t.Fatalf("surviving copy corrupted: %q", got)
	}
	if got := drain(b); len(got) != 1 || !bytes.Equal(got[0], []byte("fill")) {
		t.Fatalf("b should hold only the fill frame, got %q", got)
	}
	poolBalanced(t, fb)
}

// TestSeededDeterminism: the same seed must produce byte-identical
// counters across runs, loss rolls included — the property every
// report gate in the tree leans on. Runs under -race in CI.
func TestSeededDeterminism(t *testing.T) {
	run := func(seed int64) medium.Stats {
		p := DefaultParams()
		p.LossRate = 0.3
		p.TxQueue = 2
		k := sim.New(seed)
		fb := New(k, p)
		ports := make([]medium.Port, 5)
		for i := range ports {
			ports[i] = fb.AttachPort("p", nil)
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			at := time.Duration(rng.Intn(5000)) * time.Microsecond
			src := rng.Intn(len(ports))
			dst := rng.Intn(len(ports) + 1)
			if dst == len(ports) {
				dst = medium.Broadcast
			}
			size := 1 + rng.Intn(300)
			k.At(at, "op", func() { ports[src].Send(dst, make([]byte, size)) })
		}
		k.Run()
		for _, p := range ports {
			drain(p)
		}
		return fb.Stats()
	}
	first := run(7)
	if again := run(7); !reflect.DeepEqual(first, again) {
		t.Fatalf("same seed diverged:\n  %+v\n  %+v", first, again)
	}
	if other := run(8); reflect.DeepEqual(first, other) {
		t.Fatalf("different seeds produced identical traffic — loss rolls not seeded?")
	}
}
