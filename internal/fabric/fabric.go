// Package fabric simulates an RDMA-like point-to-point interconnect: the
// second implementation of the medium contract (internal/medium), next
// to the paper's shared broadcast Ethernet. Every ordered pair of ports
// is its own link with independent bandwidth and a fixed link latency;
// frames on one link serialize FIFO behind each other but never contend
// with traffic between other ports. There is no broadcast domain at all:
// a Send to medium.Broadcast is expanded by the fabric into one unicast
// copy per attached destination, each charged full wire cost on its own
// link — the cost inversion modern interconnects impose on Mether's
// broadcast-everything protocol. On the shared bus a broadcast costs one
// transmission no matter how many stations listen; here it costs N-1,
// paid by the sender, while unicasts stop interfering with each other.
// Which of the paper's conclusions survive that inversion is exactly
// what the ethernet-vs-fabric sweep axis measures.
//
// Each link also has a bounded transmit queue: at most Params.TxQueue
// frames may be in flight (queued or serializing) per link, and sends
// beyond the bound are dropped and counted (Stats.LinkOverflows) — the
// fabric's analogue of receive-ring overrun, surfaced separately so a
// sweep can tell sender-side from receiver-side loss. Peak per-link
// occupancy is reported as Stats.LinkMaxQueued.
//
// The data path reuses the shared pooled machinery: refcounted payload
// buffers with the decode-once view cache (a fan-out's copies share one
// buffer and one decoded view), pooled delivery records with prebuilt
// closures, and lazily grown bounded receive rings. Steady-state traffic
// does not allocate, on either medium.
package fabric

import (
	"fmt"
	"time"
	"unsafe"

	"mether/internal/medium"
	"mether/internal/sim"
)

// Params configures the fabric. The zero value is not useful; start from
// DefaultParams.
type Params struct {
	// BandwidthBps is each link's independent signalling rate in bits
	// per second. Links do not share it: ten busy links move ten times
	// the bytes of one.
	BandwidthBps int64
	// LinkLatency is the fixed propagation delay of every link, applied
	// after serialization.
	LinkLatency time.Duration
	// FrameOverhead is the per-frame byte overhead added to the payload
	// on the wire (a lean RDMA-style transport header, not the shared
	// bus's Ethernet+IP+UDP stack).
	FrameOverhead int
	// MinFrameBytes is the minimum wire size of a frame; shorter frames
	// are padded.
	MinFrameBytes int
	// LossRate is the probability that a transmitted frame is corrupted
	// and delivered to no one. Rolled per fan-out copy: on a
	// point-to-point medium each copy is its own transmission.
	LossRate float64
	// RxRing is the per-port receive ring capacity; arrivals beyond it
	// are dropped.
	RxRing int
	// TxQueue bounds the frames in flight (queued or serializing) on one
	// link; sends beyond it are dropped and counted as link overflows.
	TxQueue int
}

// DefaultParams returns a modest RDMA-like fabric: 1 Gb/s per link, 2µs
// link latency, 26 bytes of transport-header overhead, 64-byte minimum
// frames, 32-frame receive rings and 64-frame link transmit queues. The
// receive-ring default matches the Ethernet model so medium comparisons
// vary the wire, not the host's buffering.
func DefaultParams() Params {
	return Params{
		BandwidthBps:  1_000_000_000,
		LinkLatency:   2 * time.Microsecond,
		FrameOverhead: 26,
		MinFrameBytes: 64,
		LossRate:      0,
		RxRing:        32,
		TxQueue:       64,
	}
}

// link is the transmit side of one ordered (src,dst) pair: its own FIFO
// serialization horizon and in-flight bound. Links materialize on first
// use, so an N-port fabric allocates state proportional to the pairs
// that actually talk, not N².
type link struct {
	busyUntil time.Duration
	pending   int // frames queued or serializing, bounded by TxQueue
}

// Fabric is one point-to-point interconnect instance implementing
// medium.Medium. Port ids are dense attach-order indexes, shared with
// the link table.
type Fabric struct {
	k     *sim.Kernel
	p     Params
	ports []*Port
	// links[src][dst] is the (src,dst) transmit link, nil until first
	// used. The per-src rows are also lazy: a port that never sends
	// costs one nil slice.
	links [][]*link

	frames        uint64
	wireBytes     uint64
	payloadBytes  uint64
	wireLost      uint64
	busyTime      time.Duration
	fanoutFrames  uint64
	linkOverflows uint64
	linkMaxQueued int

	pool      medium.Pool // shared payload buffers (refcounted, recycled)
	freeDeliv []*delivery // delivery-event pool
}

var (
	_ medium.Medium = (*Fabric)(nil)
	_ medium.Port   = (*Port)(nil)
)

// delivery is a pooled in-flight transmission on one link: the frame,
// its loss fate, the destination link (for pending accounting) and a
// prebuilt completion closure, so Send schedules without allocating.
type delivery struct {
	fb   *Fabric
	f    medium.Frame
	l    *link
	lost bool
	fn   func()
}

// New creates a fabric driven by kernel k.
func New(k *sim.Kernel, p Params) *Fabric {
	if p.BandwidthBps <= 0 {
		panic("fabric: BandwidthBps must be positive")
	}
	if p.TxQueue <= 0 {
		panic("fabric: TxQueue must be positive")
	}
	return &Fabric{k: k, p: p}
}

// Params returns the fabric's configuration.
func (fb *Fabric) Params() Params { return fb.p }

// AttachPort adds a port with the fabric-default receive-ring capacity.
func (fb *Fabric) AttachPort(name string, intr func()) medium.Port {
	return fb.attach(name, intr, fb.p.RxRing)
}

// AttachPortWithRing adds a port with an explicit receive-ring bound.
func (fb *Fabric) AttachPortWithRing(name string, intr func(), ringCap int) medium.Port {
	return fb.attach(name, intr, ringCap)
}

func (fb *Fabric) attach(name string, intr func(), ringCap int) *Port {
	p := &Port{fab: fb, id: len(fb.ports), name: name, intr: intr, rx: medium.NewRing(ringCap)}
	fb.ports = append(fb.ports, p)
	fb.links = append(fb.links, nil)
	return p
}

// linkTo returns (materializing if needed) the src→dst link.
func (fb *Fabric) linkTo(src, dst int) *link {
	row := fb.links[src]
	if row == nil {
		row = make([]*link, len(fb.ports))
		fb.links[src] = row
	} else if len(row) < len(fb.ports) {
		grown := make([]*link, len(fb.ports))
		copy(grown, row)
		row = grown
		fb.links[src] = row
	}
	l := row[dst]
	if l == nil {
		l = &link{}
		row[dst] = l
	}
	return l
}

// Stats snapshots the fabric-wide counters. Ring drops and suppressed
// transmissions are summed over ports, ring high water by max. BusyTime
// sums serialization over all links, so on a busy fabric it exceeds wall
// time — that surplus is the parallelism a shared bus doesn't have.
func (fb *Fabric) Stats() medium.Stats {
	s := medium.Stats{
		Frames:        fb.frames,
		WireBytes:     fb.wireBytes,
		PayloadBytes:  fb.payloadBytes,
		WireLost:      fb.wireLost,
		BusyTime:      fb.busyTime,
		FanoutFrames:  fb.fanoutFrames,
		LinkOverflows: fb.linkOverflows,
		LinkMaxQueued: fb.linkMaxQueued,
	}
	for _, p := range fb.ports {
		s.RingDrops += p.drops
		s.TxSuppressed += p.txSuppressed
		if hw := p.rx.HighWater(); hw > s.RingHighWater {
			s.RingHighWater = hw
		}
	}
	return s
}

// Utilization reports summed link busy time as a fraction of wall time;
// values above 1 mean more than one link's worth of parallel transfer.
func (fb *Fabric) Utilization(wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return float64(fb.busyTime) / float64(wall)
}

// MemFootprint returns the fabric's structural memory footprint in
// bytes: ports and their rings, the materialized link table, and the
// pooled buffers and delivery records on the freelists. Deterministic by
// construction, like every footprint in the tree.
func (fb *Fabric) MemFootprint() uint64 {
	m := uint64(unsafe.Sizeof(*fb))
	for _, p := range fb.ports {
		m += uint64(unsafe.Sizeof(p)) + p.MemFootprint()
	}
	m += uint64(cap(fb.links)) * uint64(unsafe.Sizeof([]*link(nil)))
	for _, row := range fb.links {
		m += uint64(cap(row)) * uint64(unsafe.Sizeof((*link)(nil)))
		for _, l := range row {
			if l != nil {
				m += uint64(unsafe.Sizeof(*l))
			}
		}
	}
	m += fb.pool.MemFootprint()
	m += uint64(cap(fb.freeDeliv)) * uint64(unsafe.Sizeof((*delivery)(nil)))
	m += uint64(len(fb.freeDeliv)) * uint64(unsafe.Sizeof(delivery{}))
	return m
}

// PoolStats reports payload buffers ever allocated and currently free.
func (fb *Fabric) PoolStats() (allocated, free int) { return fb.pool.Stats() }

// OnViewDrop registers the decode-once view recycler.
func (fb *Fabric) OnViewDrop(fn func(any)) { fb.pool.OnViewDrop(fn) }

// wireBytesFor returns the on-wire size of a payload.
func (fb *Fabric) wireBytesFor(payload int) int {
	w := payload + fb.p.FrameOverhead
	if w < fb.p.MinFrameBytes {
		w = fb.p.MinFrameBytes
	}
	return w
}

// txTime returns the serialization delay for one frame of the given
// on-wire size on one link.
func (fb *Fabric) txTime(wire int) time.Duration {
	bits := int64(wire) * 8
	return time.Duration(bits * int64(time.Second) / fb.p.BandwidthBps)
}

// Port is one station on the fabric; it implements medium.Port.
type Port struct {
	fab   *Fabric
	id    int
	name  string
	rx    medium.Ring
	intr  func()
	drops uint64
	// txSuppressed counts Send calls swallowed because the port was
	// down, mirroring the Ethernet NIC's fault-plane accounting.
	txSuppressed uint64
	down         bool
}

// ID returns the port's address on the fabric.
func (p *Port) ID() int { return p.id }

// Name returns the diagnostic name given at attach.
func (p *Port) Name() string { return p.name }

// SetDown takes the port off the fabric (or back on): while down it
// neither receives nor transmits. Host state is untouched.
func (p *Port) SetDown(down bool) { p.down = down }

// Down reports whether the port is off the fabric.
func (p *Port) Down() bool { return p.down }

// Drops returns frames dropped because this port's receive ring was full.
func (p *Port) Drops() uint64 { return p.drops }

// TxSuppressed returns Send calls swallowed while this port was down.
func (p *Port) TxSuppressed() uint64 { return p.txSuppressed }

// Pending returns the number of frames waiting in the receive ring.
func (p *Port) Pending() int { return p.rx.Pending() }

// RingHighWater returns the peak receive-ring occupancy reached.
func (p *Port) RingHighWater() int { return p.rx.HighWater() }

// RingCap returns the logical receive-ring bound.
func (p *Port) RingCap() int { return p.rx.Bound() }

// MemFootprint returns the port's structural footprint in bytes.
func (p *Port) MemFootprint() uint64 {
	return uint64(unsafe.Sizeof(*p)) + p.rx.MemFootprint()
}

// Recv dequeues the oldest received frame, reporting false if the ring
// is empty.
func (p *Port) Recv() (medium.Frame, bool) { return p.rx.Pop() }

// Release returns a received frame's payload buffer to the fabric's pool.
func (p *Port) Release(f medium.Frame) { p.fab.pool.Release(f.Buf) }

// Send transmits payload to dst (a port id or medium.Broadcast). A
// unicast travels the single src→dst link. A Broadcast has no shared
// wire to ride: the fabric expands it into one copy per attached
// destination (ascending id, sender excluded), each serialized on its
// own link and charged full wire cost — those copies are additionally
// counted in Stats.FanoutFrames. All copies share one pooled payload
// buffer and therefore one decode-once view. A send from a down port is
// suppressed and counted; a unicast to an unattached id or to the
// sender itself reaches no one and costs nothing, exactly as on the
// shared bus.
func (p *Port) Send(dst int, payload []byte) {
	if p.down {
		p.txSuppressed++
		return
	}
	fb := p.fab
	if dst != medium.Broadcast {
		if dst < 0 || dst >= len(fb.ports) || dst == p.id {
			return
		}
		buf := fb.pool.Acquire(len(payload))
		copy(buf.Data, payload)
		// One in-flight reference, dropped when the delivery completes.
		buf.Refs = 1
		fb.transmit(p.id, dst, buf)
		return
	}
	if len(fb.ports) <= 1 {
		return
	}
	buf := fb.pool.Acquire(len(payload))
	copy(buf.Data, payload)
	// One in-flight reference per fan-out copy: each copy's completion
	// releases its own, so the shared buffer (and its decode-once view)
	// lives exactly until the last copy lands or is lost. The extra
	// sender-side reference pins the buffer for the duration of the loop:
	// without it, an overflow on the first link would recycle the buffer
	// while later copies still transmit it.
	buf.Refs = 1
	for dst := 0; dst < len(fb.ports); dst++ {
		if dst == p.id {
			continue
		}
		buf.Refs++
		if fb.transmit(p.id, dst, buf) {
			fb.fanoutFrames++
		}
	}
	fb.pool.Release(buf)
}

// transmit serializes one copy on the src→dst link, reporting whether it
// made it past the link's transmit-queue bound. Overflowed copies are
// dropped on the spot — no wire cost, one overflow count — and release
// their buffer reference immediately.
func (fb *Fabric) transmit(src, dst int, buf *medium.Buf) bool {
	l := fb.linkTo(src, dst)
	if l.pending >= fb.p.TxQueue {
		fb.linkOverflows++
		fb.pool.Release(buf)
		return false
	}
	l.pending++
	if l.pending > fb.linkMaxQueued {
		fb.linkMaxQueued = l.pending
	}

	wire := fb.wireBytesFor(len(buf.Data))
	start := fb.k.Now()
	if l.busyUntil > start {
		start = l.busyUntil
	}
	dur := fb.txTime(wire)
	l.busyUntil = start + dur

	fb.frames++
	fb.wireBytes += uint64(wire)
	fb.payloadBytes += uint64(len(buf.Data))
	fb.busyTime += dur

	d := fb.acquireDeliv()
	d.f = medium.Frame{Src: src, Dst: dst, Payload: buf.Data, Buf: buf}
	d.l = l
	d.lost = fb.p.LossRate > 0 && fb.k.Rand().Float64() < fb.p.LossRate
	fb.k.At(start+dur+fb.p.LinkLatency, "fabric deliver", d.fn)
	return true
}

// acquireDeliv takes a delivery record (with its prebuilt closure) from
// the pool.
func (fb *Fabric) acquireDeliv() *delivery {
	if l := len(fb.freeDeliv); l > 0 {
		d := fb.freeDeliv[l-1]
		fb.freeDeliv[l-1] = nil
		fb.freeDeliv = fb.freeDeliv[:l-1]
		return d
	}
	d := &delivery{fb: fb}
	d.fn = func() { d.run() }
	return d
}

// run completes one link delivery: the frame leaves the link's transmit
// queue, then lands in the destination ring (or is lost, or dropped).
func (d *delivery) run() {
	fb := d.fb
	d.l.pending--
	if d.lost {
		fb.wireLost++
	} else {
		fb.ports[d.f.Dst].deliver(d.f)
	}
	// Drop this copy's in-flight reference and recycle the record.
	fb.pool.Release(d.f.Buf)
	d.f = medium.Frame{}
	d.l = nil
	d.lost = false
	fb.freeDeliv = append(fb.freeDeliv, d)
}

// deliver queues a frame into the receive ring, dropping on overflow.
// Unlike the broadcast bus, the frame arrives stamped with its actual
// destination id, not medium.Broadcast — on a fabric every frame is
// somebody's unicast.
func (p *Port) deliver(f medium.Frame) {
	if p.down {
		return
	}
	if !p.rx.Push(f) {
		p.drops++
		return
	}
	f.Buf.Refs++
	if p.intr != nil {
		p.intr()
	}
}

func (p *Port) String() string {
	return fmt.Sprintf("port %d (%s)", p.id, p.name)
}
