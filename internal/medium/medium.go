// Package medium defines the interconnect contract the Mether layers
// are written against: a Medium carries frames between Ports, charges a
// wire/transmission cost model in virtual time, and surfaces counters —
// without fixing whether the medium is a shared broadcast bus or a
// point-to-point fabric.
//
// Two implementations exist. internal/ethernet is the paper's shared
// 10 Mb/s broadcast segment: one serialized wire, a broadcast reaches
// every station for the price of one transmission. internal/fabric is
// an RDMA-like point-to-point medium: independent per-link queues and
// bandwidth, no broadcast domain at all — a "broadcast" is a sender-paid
// unicast fan-out, charged once per destination. The protocol layers
// (core.Driver and up) run unchanged over either; which 1990 conclusions
// survive the modern medium is a sweep axis, not a rewrite.
//
// The shared data path lives here too: Frame, the refcounted payload
// Buf with its decode-once view slot, the buffer Pool, and the bounded
// receive Ring. They were extracted verbatim from the ethernet package
// (PR 5's decode-once / refcounted-buffer layer was already
// medium-agnostic), so both backends get the allocation-free
// steady-state path and the view cache for free.
package medium

import "time"

// Broadcast is the destination address that delivers a frame to every
// attached port except the sender. On a point-to-point medium there is
// no broadcast domain; the medium fans the frame out link by link and
// charges the sender for every copy.
const Broadcast = -1

// Medium is one interconnect instance: ports attach to it, frames move
// through it at simulated cost, and segment-wide counters come out of
// it. Implementations must be deterministic — same kernel seed and
// attach/send order, same delivery order and counters.
type Medium interface {
	// AttachPort adds a station with the medium-default receive-ring
	// capacity. intr is invoked in kernel event context whenever a frame
	// is queued into the port's receive ring.
	AttachPort(name string, intr func()) Port
	// AttachPortWithRing attaches with an explicit receive-ring bound,
	// overriding the medium default. Rings are logically bounded but
	// physically lazy: the value is a drop threshold, not an allocation.
	AttachPortWithRing(name string, intr func(), ringCap int) Port
	// Stats snapshots the medium-wide counters. Per-port drop and
	// suppression counters are folded in (summed; ring high water by
	// max).
	Stats() Stats
	// Utilization reports busy time as a fraction of the given wall
	// time. On a multi-link medium the busy times of independent links
	// sum, so the value may exceed 1.
	Utilization(wall time.Duration) float64
	// MemFootprint returns the medium's structural memory footprint in
	// bytes (rings, pools, link state) — a deterministic function of
	// simulated behaviour, never of runtime heap state, so it can enter
	// byte-identical reports.
	MemFootprint() uint64
	// PoolStats reports payload buffers ever allocated and buffers
	// currently free. A quiescent medium whose receivers release every
	// frame has the two equal; a gap is a leak. Leak-detecting tests
	// assert exactly that, on every backend.
	PoolStats() (allocated, free int)
	// OnViewDrop registers the recycler handed each buffer's decode-once
	// view as the buffer returns to the pool.
	OnViewDrop(fn func(any))
}

// Port is one station on a medium: the driver-facing send/receive
// surface. The fault plane uses SetDown as its hook — a crashed host's
// port neither receives nor transmits, and suppressed sends are
// counted, never silently lost.
type Port interface {
	// ID is the port's dense address on its medium (attach order).
	ID() int
	// Name is the diagnostic name given at attach.
	Name() string
	// Send transmits payload to dst (a port id or Broadcast). The call
	// returns immediately; delivery happens after the medium's queueing,
	// serialization and propagation model. The payload is copied into a
	// pooled buffer, so the caller's slice is free for reuse.
	Send(dst int, payload []byte)
	// Recv dequeues the oldest received frame, reporting false when the
	// ring is empty. The frame's payload stays valid until Release.
	Recv() (Frame, bool)
	// Release hands a received frame's buffer back to the medium's pool.
	// Optional — non-releasing receivers (taps) merely opt out of
	// recycling — and at most once per received frame.
	Release(f Frame)
	// SetDown takes the station off the wire (or back on). While down it
	// neither receives nor transmits; driver state is untouched.
	SetDown(down bool)
	// Down reports whether the station is off the wire.
	Down() bool
	// Pending returns the number of frames waiting in the receive ring.
	Pending() int
	// Drops returns frames dropped because the receive ring was full.
	Drops() uint64
	// TxSuppressed returns Send calls swallowed while the port was down.
	TxSuppressed() uint64
	// RingHighWater returns the peak receive-ring occupancy reached.
	RingHighWater() int
	// RingCap returns the logical receive-ring bound.
	RingCap() int
	// MemFootprint returns the port's structural footprint in bytes (the
	// physically allocated ring, not the logical bound).
	MemFootprint() uint64
}

// Stats aggregates medium-wide counters. The first block is meaningful
// on every medium; the link-queue block is populated only by
// point-to-point media (a shared bus has no per-link queues) and stays
// zero on ethernet, which keeps pre-fabric reports byte-identical.
type Stats struct {
	Frames       uint64 // frames transmitted (fan-out copies included)
	WireBytes    uint64 // bytes on the wire including overhead and padding
	PayloadBytes uint64 // payload bytes only
	WireLost     uint64 // frames corrupted in transit (loss model)
	RingDrops    uint64 // per-receiver drops due to full rings
	TxSuppressed uint64 // sends swallowed because the sending port was down
	// RingHighWater is the peak receive-ring occupancy of any port on
	// the medium. Aggregated by max, never summed.
	RingHighWater int
	// BusyTime is total serialization time. On a point-to-point medium
	// independent links sum, so BusyTime may exceed wall time.
	BusyTime time.Duration

	// FanoutFrames counts the per-destination unicast copies a
	// point-to-point medium transmitted on behalf of Broadcast sends —
	// the sender-paid fan-out cost a shared bus never charges.
	FanoutFrames uint64
	// LinkOverflows counts frames dropped at a full per-link transmit
	// queue (point-to-point media only).
	LinkOverflows uint64
	// LinkMaxQueued is the peak per-link transmit-queue occupancy over
	// all links (point-to-point media only; aggregated by max).
	LinkMaxQueued int
}
