package medium

import "unsafe"

// Buf is a pooled payload buffer shared by every receiver of one
// transmission. Refs counts ring slots (and in-flight deliveries) still
// holding the buffer; it returns to its Pool's freelist at zero. view
// is the decode-once cache: the first receiver to parse the payload
// attaches its decoded form and every later receiver of the same
// transmission reuses it, so a broadcast is parsed once instead of once
// per station. The view shares the buffer's lifetime exactly — it is
// handed to the pool's view recycler (and detached) at the same instant
// the refcount reaches zero.
type Buf struct {
	Data []byte // full-capacity backing array
	Refs int
	view any
}

// Frame is one datagram on a medium. Payload is valid until the
// receiver calls Release (or indefinitely for receivers that never
// release); the medium copies the sender's bytes on Send, so one buffer
// is shared by all receivers of a broadcast. On a shared bus a
// broadcast frame carries Dst == Broadcast to every receiver; a
// point-to-point medium stamps each fan-out copy with its actual
// destination.
type Frame struct {
	Src     int // sending port id
	Dst     int // receiving port id or Broadcast
	Payload []byte

	Buf *Buf // pool bookkeeping; nil for zero-value Frames
}

// View returns the decode-once view attached to this frame's shared
// payload buffer, or nil when no receiver has decoded it yet (or the
// frame does not come from a pooled buffer). All receivers of one
// transmission see the same view.
func (f Frame) View() any {
	if f.Buf == nil {
		return nil
	}
	return f.Buf.view
}

// SetView attaches a decoded view to the frame's shared payload buffer
// for later receivers of the same transmission to reuse. The view must
// be derived from (and may alias) the payload bytes: it lives exactly
// as long as the buffer's current contents and is handed to the pool's
// OnViewDrop recycler when the buffer is recycled. A no-op for frames
// without a pooled buffer.
func (f Frame) SetView(v any) {
	if f.Buf != nil {
		f.Buf.view = v
	}
}

// Pool recycles payload buffers for one medium. Worlds are
// single-threaded simulations, so the pool needs no locking. The zero
// value is ready to use; media embed it by value.
type Pool struct {
	free []*Buf
	// allocated counts buffers ever created; with every receiver
	// releasing its frames, a quiescent medium has all of them back on
	// the freelist (see Stats).
	allocated int
	// viewDrop, when set, receives each buffer's decode-once view as
	// the buffer is recycled, so the layer that attached the view
	// (which this package knows nothing about) can pool it.
	viewDrop func(any)
}

// Acquire takes a buffer of length n from the pool, growing the backing
// array only when a pooled buffer is too small.
func (p *Pool) Acquire(n int) *Buf {
	if l := len(p.free); l > 0 {
		b := p.free[l-1]
		p.free[l-1] = nil
		p.free = p.free[:l-1]
		if cap(b.Data) < n {
			b.Data = make([]byte, n)
		}
		b.Data = b.Data[:n]
		b.Refs = 0
		return b
	}
	p.allocated++
	return &Buf{Data: make([]byte, n)}
}

// Release drops one reference, recycling the buffer at zero. The
// buffer's decode-once view is detached (and handed to the view
// recycler) at the same instant: the view aliases the payload bytes, so
// it must not outlive the buffer's current contents.
func (p *Pool) Release(b *Buf) {
	if b == nil || b.Refs <= 0 {
		return
	}
	b.Refs--
	if b.Refs == 0 {
		if b.view != nil {
			if p.viewDrop != nil {
				p.viewDrop(b.view)
			}
			b.view = nil
		}
		p.free = append(p.free, b)
	}
}

// OnViewDrop registers the recycler invoked with a buffer's decode-once
// view when the buffer returns to the pool. Typically wired by the
// world builder to the protocol layer's view pool.
func (p *Pool) OnViewDrop(fn func(any)) { p.viewDrop = fn }

// Stats reports buffers ever allocated and buffers currently free; on
// a quiescent medium whose receivers release every frame the two are
// equal, and a gap is a leaked (never-released) buffer.
func (p *Pool) Stats() (allocated, free int) {
	return p.allocated, len(p.free)
}

// MemFootprint returns the pool's structural footprint in bytes: every
// free buffer (header plus backing capacity) and the freelist's own
// backing array. The Pool value itself is counted by the embedding
// medium's sizeof walk.
func (p *Pool) MemFootprint() uint64 {
	var m uint64
	for _, b := range p.free {
		m += uint64(unsafe.Sizeof(*b)) + uint64(cap(b.Data))
	}
	m += uint64(cap(p.free)) * uint64(unsafe.Sizeof((*Buf)(nil)))
	return m
}
