package medium

import "unsafe"

// Ring is a receive ring: a circular buffer bounded by a logical slot
// count. Arrivals beyond the bound are refused exactly as a fixed ring
// of that size would refuse them, but the backing array starts empty
// and doubles with actual occupancy, so an idle or lightly-loaded
// station never pays for its worst case. Both media use it by value, so
// the drop/growth/high-water behaviour — and the differential tests
// that pin it — are shared rather than duplicated.
type Ring struct {
	slots []Frame // circular physical storage; grows up to bound
	bound int     // logical capacity: the drop threshold
	head  int
	count int
	// highWater is the peak occupancy ever reached — the measured
	// fan-in that proves (or disproves) the configured bound was needed.
	highWater int
}

// NewRing returns a ring with the given logical bound (negative bounds
// clamp to zero: a ring that refuses everything).
func NewRing(bound int) Ring {
	if bound < 0 {
		bound = 0
	}
	return Ring{bound: bound}
}

// Push queues a frame, reporting false — without queuing — when the
// ring is at its logical bound. The decision is made against the bound,
// not the physical array, so lazy growth is invisible to the protocol:
// the same frames are refused as with an eagerly allocated ring.
func (r *Ring) Push(f Frame) bool {
	if r.count >= r.bound {
		return false
	}
	if r.count == len(r.slots) {
		r.grow()
	}
	r.slots[(r.head+r.count)%len(r.slots)] = f
	r.count++
	if r.count > r.highWater {
		r.highWater = r.count
	}
	return true
}

// Pop dequeues the oldest frame, reporting false if the ring is empty.
func (r *Ring) Pop() (Frame, bool) {
	if r.count == 0 {
		return Frame{}, false
	}
	f := r.slots[r.head]
	r.slots[r.head] = Frame{}
	r.head = (r.head + 1) % len(r.slots)
	r.count--
	return f, true
}

// grow doubles the ring's physical storage (bounded by the logical
// bound), unwrapping the circular contents into FIFO order at the front
// of the new array.
func (r *Ring) grow() {
	size := 2 * len(r.slots)
	if size < 8 {
		size = 8
	}
	if size > r.bound {
		size = r.bound
	}
	grown := make([]Frame, size)
	for i := 0; i < r.count; i++ {
		grown[i] = r.slots[(r.head+i)%len(r.slots)]
	}
	r.slots = grown
	r.head = 0
}

// Pending returns the number of queued frames.
func (r *Ring) Pending() int { return r.count }

// HighWater returns the peak occupancy ever reached.
func (r *Ring) HighWater() int { return r.highWater }

// Bound returns the logical capacity (the drop threshold).
func (r *Ring) Bound() int { return r.bound }

// MemFootprint returns the physically allocated slot bytes — the lazily
// grown array, not the logical bound. The Ring header itself is counted
// by the embedding port's sizeof walk.
func (r *Ring) MemFootprint() uint64 {
	return uint64(cap(r.slots)) * uint64(unsafe.Sizeof(Frame{}))
}
