package memnet

import (
	"fmt"
	"time"

	"mether/internal/sim"
	"mether/internal/stats"
)

// Shape is a counter-protocol shape, mirroring the Mether study's
// protocols so the cross-system comparison is like for like.
type Shape int

const (
	// SharedChunk mirrors protocol 1/2: both processes increment one
	// chunk; waiting means repeatedly fetching it over the ring.
	SharedChunk Shape = iota + 1
	// DisjointSpin mirrors protocol 3: stationary writers, readers poll
	// the peer's chunk — every poll is a ring transaction (MemNet does
	// not cache remote chunks).
	DisjointSpin
	// DisjointBlocked mirrors the final protocol: stationary writers,
	// readers block until the peer's modification circulates the ring.
	DisjointBlocked
)

func (s Shape) String() string {
	switch s {
	case SharedChunk:
		return "M1-shared-chunk"
	case DisjointSpin:
		return "M3-disjoint-spin"
	case DisjointBlocked:
		return "M5-disjoint-blocked"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// Report carries the measured rows for one MemNet counter run.
type Report struct {
	Shape     Shape
	Target    uint32
	Additions uint32
	DNF       bool
	Wall      time.Duration
	Fetches   uint64
	RingBytes uint64
	Util      float64
	Losses    uint64
	Wins      uint64
	LossWin   float64
}

// Config parameterizes a MemNet counter run.
type Config struct {
	Shape  Shape
	Target uint32
	Seed   int64
	Cap    time.Duration
	Params Params
	// WorkTime is computation performed after each increment. On
	// microsecond-latency hardware two bare counter loops self-
	// synchronize perfectly, so some think time is needed to expose the
	// cost of polling — this mirrors the producer/consumer setting of
	// the MemNet protocol analysis the paper cites. Default 100 µs.
	WorkTime time.Duration
}

// RunCounter executes the cooperative counter on MemNet hardware.
func RunCounter(cfg Config) (Report, error) {
	if cfg.Target == 0 {
		cfg.Target = 1024
	}
	if cfg.Cap == 0 {
		cfg.Cap = 60 * time.Second
	}
	if cfg.Params.Hosts == 0 {
		cfg.Params = DefaultParams(2)
	}
	if cfg.WorkTime == 0 {
		cfg.WorkTime = 100 * time.Microsecond
	}
	k := sim.New(cfg.Seed)
	defer k.Shutdown()
	r := New(k, cfg.Params)

	switch cfg.Shape {
	case SharedChunk:
		r.Create(0, 0)
	case DisjointSpin, DisjointBlocked:
		r.Create(0, 0)
		r.Create(1, 1)
	default:
		return Report{}, fmt.Errorf("memnet: unknown shape %d", cfg.Shape)
	}

	sts := [2]*counterState{{}, {}}
	for i := 0; i < 2; i++ {
		i := i
		r.Spawn(i, fmt.Sprintf("mn%d", i), func(p *Proc) {
			runShape(p, cfg, uint32(i), sts[i])
		})
	}
	k.RunUntil(cfg.Cap)

	rep := Report{Shape: cfg.Shape, Target: cfg.Target}
	var wall time.Duration
	finished := true
	for _, st := range sts {
		rep.Wins += st.wins
		rep.Losses += st.losses
		if !st.done {
			finished = false
		}
		if st.finish > wall {
			wall = st.finish
		}
	}
	rep.DNF = !finished
	if rep.DNF {
		wall = k.Now()
	}
	rep.Wall = wall
	rep.Additions = uint32(rep.Wins)
	rep.LossWin = stats.Ratio(rep.Losses, rep.Wins)
	rep.Fetches = r.Stats().Fetches
	rep.RingBytes = r.Stats().RingBytes
	rep.Util = r.Utilization(wall)
	return rep, nil
}

// counterState tracks one MemNet client's protocol counters.
type counterState struct {
	wins, losses uint64
	done         bool
	finish       time.Duration
}

func runShape(p *Proc, cfg Config, id uint32, st *counterState) {
	switch cfg.Shape {
	case SharedChunk:
		for {
			p.Compute(cfg.Params.CheckCost)
			v := p.Load32(0, 0)
			if v >= cfg.Target {
				break
			}
			if v%2 == id {
				// Produce (think time), then publish the increment.
				p.Compute(cfg.WorkTime)
				p.Compute(cfg.Params.IncCost)
				p.Store32(0, 0, v+1)
				st.wins++
				if v+1 >= cfg.Target {
					break
				}
			} else {
				st.losses++
			}
		}
	case DisjointSpin, DisjointBlocked:
		own, peer := ChunkID(id), ChunkID(1-id)
		myVal := uint32(0)
		for {
			p.Compute(cfg.Params.CheckCost)
			v := p.Load32(peer, 0)
			switch {
			case v >= cfg.Target || myVal >= cfg.Target:
			case v%2 == id && v+1 > myVal:
				// Produce (think time), then publish the increment.
				p.Compute(cfg.WorkTime)
				p.Compute(cfg.Params.IncCost)
				myVal = v + 1
				p.Store32(own, 0, myVal)
				st.wins++
				continue
			default:
				st.losses++
				if cfg.Shape == DisjointBlocked {
					p.WaitUpdate(peer)
				}
				continue
			}
			break
		}
	}
	st.done = true
	st.finish = p.Now()
}
