package memnet

import (
	"testing"
	"time"

	"mether/internal/sim"
)

func TestLocalAccessIsFree(t *testing.T) {
	k := sim.New(1)
	r := New(k, DefaultParams(2))
	r.Create(0, 0)
	var dur time.Duration
	r.Spawn(0, "p", func(p *Proc) {
		start := p.Now()
		p.Store32(0, 0, 7)
		if got := p.Load32(0, 0); got != 7 {
			t.Errorf("load = %d, want 7", got)
		}
		dur = p.Now() - start
	})
	k.Run()
	if r.Stats().Fetches != 0 {
		t.Errorf("local access caused %d fetches", r.Stats().Fetches)
	}
	// Only the write circulation occupies the ring; the CPU never stalls.
	if dur != 0 {
		t.Errorf("local access stalled the CPU for %v", dur)
	}
	k.Shutdown()
}

func TestRemoteLoadStallsMicroseconds(t *testing.T) {
	k := sim.New(1)
	r := New(k, DefaultParams(2))
	r.Create(0, 0)
	var stall time.Duration
	r.Spawn(1, "p", func(p *Proc) {
		start := p.Now()
		_ = p.Load32(0, 0)
		stall = p.Now() - start
	})
	k.Run()
	if stall <= 0 || stall > 50*time.Microsecond {
		t.Errorf("remote fetch stall = %v, want microseconds (hardware)", stall)
	}
	if r.Stats().Fetches != 1 {
		t.Errorf("fetches = %d, want 1", r.Stats().Fetches)
	}
	k.Shutdown()
}

func TestStoreMovesOwnership(t *testing.T) {
	k := sim.New(1)
	r := New(k, DefaultParams(2))
	r.Create(0, 0)
	r.Spawn(1, "w", func(p *Proc) {
		p.Store32(0, 0, 42)
		// Now local: no further fetch.
		before := r.Stats().Fetches
		if got := p.Load32(0, 0); got != 42 {
			t.Errorf("load = %d, want 42", got)
		}
		if r.Stats().Fetches != before {
			t.Error("load after ownership move still fetched")
		}
	})
	k.Run()
	k.Shutdown()
}

func TestWaitUpdateWakesOnStore(t *testing.T) {
	k := sim.New(1)
	r := New(k, DefaultParams(2))
	r.Create(0, 0)
	var woke time.Duration
	var got uint32
	r.Spawn(1, "waiter", func(p *Proc) {
		p.WaitUpdate(0)
		woke = p.Now()
		got = p.Load32(0, 0)
	})
	r.Spawn(0, "writer", func(p *Proc) {
		p.Compute(100 * time.Microsecond)
		p.Store32(0, 0, 5)
	})
	k.Run()
	if woke < 100*time.Microsecond {
		t.Errorf("waiter woke at %v, before the store", woke)
	}
	if got != 5 {
		t.Errorf("post-wake load = %d, want 5", got)
	}
	k.Shutdown()
}

func TestCounterShapesComplete(t *testing.T) {
	for _, s := range []Shape{SharedChunk, DisjointSpin, DisjointBlocked} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			r, err := RunCounter(Config{Shape: s, Target: 256, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if r.DNF {
				t.Fatalf("%v did not finish", s)
			}
			if r.Additions != 256 {
				t.Errorf("additions = %d, want 256", r.Additions)
			}
		})
	}
}

// TestMemNetBestShapeMatchesMether reproduces the cross-system claim: the
// blocked one-way-link protocol is the best shape on the hardware DSM
// too, on every axis the comparison supports.
func TestMemNetBestShapeMatchesMether(t *testing.T) {
	run := func(s Shape) Report {
		r, err := RunCounter(Config{Shape: s, Target: 1024, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if r.DNF {
			t.Fatalf("%v did not finish", s)
		}
		return r
	}
	m1 := run(SharedChunk)
	m3 := run(DisjointSpin)
	m5 := run(DisjointBlocked)

	if m5.LossWin > 3 {
		t.Errorf("M5 loss/win = %f, want tiny", m5.LossWin)
	}
	if m5.LossWin >= m3.LossWin || m5.LossWin >= m1.LossWin {
		t.Errorf("M5 loss/win %f should be least (M1 %f, M3 %f)", m5.LossWin, m1.LossWin, m3.LossWin)
	}
	if m5.RingBytes*2 >= m3.RingBytes {
		t.Errorf("M5 ring bytes %d should be a fraction of the polling shape's %d", m5.RingBytes, m3.RingBytes)
	}
	// Wall is dominated by think time on microsecond hardware, so the
	// blocked shape wins by not being slower while using a fraction of
	// the ring and no polling fetches.
	if m5.Wall > m1.Wall || m5.Wall > m3.Wall*115/100 {
		t.Errorf("M5 wall %v should be at least comparable (M1 %v, M3 %v)", m5.Wall, m1.Wall, m3.Wall)
	}
	if m5.Fetches*2 >= m3.Fetches {
		t.Errorf("M5 fetches %d should be a fraction of M3's %d", m5.Fetches, m3.Fetches)
	}
}

func TestHardwareIsOrdersOfMagnitudeFaster(t *testing.T) {
	// MemNet's whole point: a fault costs microseconds, not the tens of
	// milliseconds of a software DSM over Ethernet.
	r, err := RunCounter(Config{Shape: DisjointBlocked, Target: 1024, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	perAdd := r.Wall / time.Duration(r.Additions)
	if perAdd > time.Millisecond {
		t.Errorf("per-addition = %v, want well under 1ms on hardware", perAdd)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Report {
		r, err := RunCounter(Config{Shape: DisjointSpin, Target: 128, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Wall != b.Wall || a.Fetches != b.Fetches || a.Losses != b.Losses {
		t.Error("identical MemNet runs diverged")
	}
}

func TestRingGeometry(t *testing.T) {
	k := sim.New(1)
	r := New(k, DefaultParams(4))
	if got := r.hops(0, 1); got != 1 {
		t.Errorf("hops(0,1) = %d", got)
	}
	if got := r.hops(3, 0); got != 1 {
		t.Errorf("hops(3,0) = %d (ring wrap)", got)
	}
	if got := r.hops(1, 1); got != 4 {
		t.Errorf("hops(1,1) = %d (full circulation)", got)
	}
	k.Shutdown()
}

func TestMultiHostRingChunks(t *testing.T) {
	// Four interfaces on one ring: chunk fetches cross multiple hops and
	// ownership moves around the ring correctly.
	k := sim.New(4)
	r := New(k, DefaultParams(4))
	r.Create(0, 0)
	order := []int{1, 3, 2, 0}
	var got []uint32
	for idx, h := range order {
		h := h
		idx := idx
		r.Spawn(h, "w", func(p *Proc) {
			// Stagger starts so writes serialize deterministically.
			p.Compute(time.Duration(idx+1) * time.Millisecond)
			v := p.Load32(0, 0)
			got = append(got, v)
			p.Store32(0, 0, v+1)
		})
	}
	k.Run()
	k.Shutdown()
	want := []uint32{0, 1, 2, 3}
	if len(got) != 4 {
		t.Fatalf("observed %d reads", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("read %d = %d, want %d (ownership chain broken)", i, got[i], want[i])
		}
	}
}
