// Package memnet is a behavioural model of MemNet (Delp & Farber), the
// hardware distributed shared memory the paper compares against: a
// 200 Mb/s insertion-modification token ring whose interfaces hold 32-byte
// chunks and satisfy faults entirely in hardware — no operating system,
// no user-level server, microsecond latencies.
//
// The paper's surprising result is that the best user protocol for
// Mether (software, 8 ms+ fault paths) is *identical in shape* to the
// best protocol previously derived for MemNet: keep write capability
// stationary, use pages/chunks as one-way links, and block for updates
// instead of polling. This package exists to reproduce that claim: it
// runs the same three protocol shapes the Mether study runs and reports
// comparable metrics, so the cross-system ordering can be checked.
//
// The model keeps only what the claim needs: ring serialization and hop
// latency, chunk ownership, remote fetches, update broadcasts that
// watchers can block on, and host check costs. Everything is driven by
// the same deterministic simulation kernel as the Mether world.
package memnet

import (
	"fmt"
	"time"

	"mether/internal/sim"
)

// ChunkID names a chunk in the MemNet address space.
type ChunkID uint32

// ChunkSize is the MemNet transfer unit in bytes.
const ChunkSize = 32

// Params is the hardware model. Defaults follow the MemNet prototype:
// 200 Mb/s ring, sub-microsecond hop delay, and a CPU check cost in the
// microseconds (the host still executes a load/compare loop).
type Params struct {
	RingBps   int64
	HopDelay  time.Duration
	Hosts     int
	CheckCost time.Duration // host spin-check cost
	IncCost   time.Duration // host increment cost
}

// DefaultParams returns the MemNet-prototype-class model.
func DefaultParams(hosts int) Params {
	return Params{
		RingBps:   200_000_000,
		HopDelay:  500 * time.Nanosecond,
		Hosts:     hosts,
		CheckCost: 2 * time.Microsecond,
		IncCost:   2 * time.Microsecond,
	}
}

// Stats aggregates ring counters.
type Stats struct {
	Fetches   uint64 // remote chunk reads/ownership moves
	Updates   uint64 // write broadcasts observed by watchers
	RingBytes uint64
	BusyTime  time.Duration
}

// Ring is one MemNet token ring with its chunk store.
type Ring struct {
	k         *sim.Kernel
	p         Params
	busyUntil time.Duration
	chunks    map[ChunkID]*chunk
	stats     Stats
}

type chunk struct {
	owner    int // interface holding the authoritative copy
	data     [ChunkSize]byte
	gen      uint64
	watchers []*sim.Proc // procs blocked until the next update transit
}

// New builds a ring.
func New(k *sim.Kernel, p Params) *Ring {
	if p.Hosts < 1 {
		panic("memnet: need at least one host")
	}
	return &Ring{k: k, p: p, chunks: make(map[ChunkID]*chunk)}
}

// Stats returns the ring counters.
func (r *Ring) Stats() Stats { return r.stats }

// Utilization returns the busy fraction of the ring over wall.
func (r *Ring) Utilization(wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return float64(r.stats.BusyTime) / float64(wall)
}

// Create homes a chunk on an interface.
func (r *Ring) Create(id ChunkID, owner int) {
	if owner < 0 || owner >= r.p.Hosts {
		panic(fmt.Sprintf("memnet: owner %d out of range", owner))
	}
	r.chunks[id] = &chunk{owner: owner}
}

func (r *Ring) chunk(id ChunkID) *chunk {
	c, ok := r.chunks[id]
	if !ok {
		panic(fmt.Sprintf("memnet: chunk %d not created", id))
	}
	return c
}

// hops returns the ring distance from src to dst.
func (r *Ring) hops(src, dst int) int {
	d := dst - src
	if d < 0 {
		d += r.p.Hosts
	}
	if d == 0 {
		d = r.p.Hosts // full circulation
	}
	return d
}

// xferTime models one chunk-sized ring transaction from src to dst:
// serialization at ring bandwidth plus per-hop insertion delay, queued
// behind current ring occupancy.
func (r *Ring) xferTime(src, dst int, bytes int) time.Duration {
	ser := time.Duration(int64(bytes+8) * 8 * int64(time.Second) / r.p.RingBps)
	start := r.k.Now()
	if r.busyUntil > start {
		start = r.busyUntil
	}
	total := ser + time.Duration(r.hops(src, dst))*r.p.HopDelay
	r.busyUntil = start + ser // the ring is occupied for the serialization
	r.stats.RingBytes += uint64(bytes + 8)
	r.stats.BusyTime += ser
	return start + total - r.k.Now()
}

// Proc is a host CPU thread on the ring; hardware fetches stall it.
type Proc struct {
	r    *Ring
	sp   *sim.Proc
	host int
}

// Spawn starts host code on interface host.
func (r *Ring) Spawn(host int, name string, fn func(p *Proc)) {
	r.k.Spawn(name, func(sp *sim.Proc) {
		fn(&Proc{r: r, sp: sp, host: host})
	})
}

// Compute burns host CPU (checks, increments).
func (p *Proc) Compute(d time.Duration) { p.sp.Sleep(d) }

// Now returns virtual time.
func (p *Proc) Now() time.Duration { return p.sp.Now() }

// Load32 reads a word from a chunk. A local chunk costs nothing extra; a
// remote one stalls the CPU for a ring round trip (request + response) —
// MemNet has no caching of remote chunks, which is why spinning on a
// remote chunk floods the ring.
func (p *Proc) Load32(id ChunkID, off int) uint32 {
	c := p.r.chunk(id)
	if c.owner != p.host {
		req := p.r.xferTime(p.host, c.owner, 8)          // request slot
		resp := p.r.xferTime(c.owner, p.host, ChunkSize) // chunk comes back
		p.r.stats.Fetches++
		p.sp.Sleep(req + resp)
	}
	return le32(c.data[off:])
}

// Store32 writes a word. Writing a remote chunk first moves ownership
// (reserved-area modification requires holding the chunk); the write then
// circulates the ring, refreshing watchers — the insertion-modification
// property that makes MemNet broadcasts free.
func (p *Proc) Store32(id ChunkID, off int, v uint32) {
	c := p.r.chunk(id)
	if c.owner != p.host {
		req := p.r.xferTime(p.host, c.owner, 8)
		resp := p.r.xferTime(c.owner, p.host, ChunkSize)
		p.r.stats.Fetches++
		p.sp.Sleep(req + resp)
		c.owner = p.host
	}
	put32(c.data[off:], v)
	c.gen++
	// The modification circulates: every watcher sees it one circulation
	// later.
	circ := p.r.xferTime(p.host, p.host, ChunkSize)
	p.r.stats.Updates += uint64(len(c.watchers))
	watchers := c.watchers
	c.watchers = nil
	p.r.k.After(circ, "memnet update", func() {
		for _, w := range watchers {
			w.Wake()
		}
	})
}

// WaitUpdate blocks until the next modification of the chunk circulates
// the ring — the hardware analogue of Mether's data-driven fault.
func (p *Proc) WaitUpdate(id ChunkID) {
	c := p.r.chunk(id)
	c.watchers = append(c.watchers, p.sp)
	p.sp.Park("memnet wait " + fmt.Sprint(id))
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func put32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}
