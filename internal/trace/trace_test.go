package trace

import (
	"strings"
	"testing"

	"mether/internal/ethernet"
	"mether/internal/proto"
	"mether/internal/sim"
	"mether/internal/vm"
)

func sendPacket(t *testing.T, nic *ethernet.NIC, pkt proto.Packet) {
	t.Helper()
	buf, err := proto.Encode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	nic.Send(ethernet.Broadcast, buf)
}

func TestTapDecodesProtocolExchange(t *testing.T) {
	k := sim.New(1)
	bus := ethernet.NewBus(k, ethernet.DefaultParams())
	a := bus.Attach("a", nil)
	b := bus.Attach("b", nil)
	log := Tap(k, bus, 0)

	sendPacket(t, a, proto.Packet{Type: proto.TypeRequest, Page: 3, Short: true, Consistent: true, From: 0, OwnerTo: proto.NoOwner})
	sendPacket(t, b, proto.Packet{Type: proto.TypeData, Page: 3, Short: true, From: 1, OwnerTo: 0, Gen: 9, Data: make([]byte, vm.ShortSize)})
	k.Run()
	k.Shutdown()

	if log.Len() != 2 {
		t.Fatalf("tap recorded %d entries, want 2", log.Len())
	}
	e0, e1 := log.Entries()[0], log.Entries()[1]
	if e0.Type != proto.TypeRequest || !e0.Consistent || e0.Page != 3 {
		t.Errorf("entry 0 = %+v", e0)
	}
	if e1.Type != proto.TypeData || e1.OwnerTo != 0 || e1.Gen != 9 {
		t.Errorf("entry 1 = %+v", e1)
	}
	if e1.At <= e0.At {
		t.Error("timestamps not ordered")
	}
	if c := log.CountByType(); c[proto.TypeRequest] != 1 || c[proto.TypeData] != 1 {
		t.Errorf("CountByType = %v", c)
	}
}

func TestTapRendering(t *testing.T) {
	k := sim.New(1)
	bus := ethernet.NewBus(k, ethernet.DefaultParams())
	a := bus.Attach("a", nil)
	log := Tap(k, bus, 0)
	sendPacket(t, a, proto.Packet{Type: proto.TypeData, Page: 7, Short: true, From: 0, OwnerTo: 1, Gen: 4, Data: make([]byte, vm.ShortSize)})
	k.Run()
	k.Shutdown()
	s := log.String()
	for _, want := range []string{"DATA", "page 7", "short", "owner->host1", "gen 4"} {
		if !strings.Contains(s, want) {
			t.Errorf("trace %q missing %q", s, want)
		}
	}
}

func TestTapMalformedFrames(t *testing.T) {
	k := sim.New(1)
	bus := ethernet.NewBus(k, ethernet.DefaultParams())
	a := bus.Attach("a", nil)
	log := Tap(k, bus, 0)
	a.Send(ethernet.Broadcast, []byte{1, 2, 3})
	k.Run()
	k.Shutdown()
	if log.Len() != 1 || !log.Entries()[0].Malformed {
		t.Errorf("malformed frame not recorded: %+v", log.Entries())
	}
	if !strings.Contains(log.String(), "MALFORMED") {
		t.Error("rendering misses MALFORMED marker")
	}
}

func TestTapBound(t *testing.T) {
	k := sim.New(1)
	bus := ethernet.NewBus(k, ethernet.DefaultParams())
	a := bus.Attach("a", nil)
	log := Tap(k, bus, 3)
	for i := 0; i < 10; i++ {
		sendPacket(t, a, proto.Packet{Type: proto.TypeRequest, Page: vm.PageID(i), From: 0, OwnerTo: proto.NoOwner})
	}
	k.Run()
	k.Shutdown()
	if log.Len() != 3 {
		t.Errorf("bounded tap holds %d entries, want 3", log.Len())
	}
}

func TestPageHistory(t *testing.T) {
	k := sim.New(1)
	bus := ethernet.NewBus(k, ethernet.DefaultParams())
	a := bus.Attach("a", nil)
	log := Tap(k, bus, 0)
	for _, pg := range []vm.PageID{1, 2, 1, 3, 1} {
		sendPacket(t, a, proto.Packet{Type: proto.TypeRequest, Page: pg, From: 0, OwnerTo: proto.NoOwner})
	}
	k.Run()
	k.Shutdown()
	h := log.PageHistory(1)
	if len(h) != 3 {
		t.Errorf("page 1 history has %d entries, want 3", len(h))
	}
	hNone := log.PageHistory(99)
	if len(hNone) != 0 {
		t.Error("history for untouched page should be empty")
	}
}
