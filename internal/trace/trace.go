// Package trace provides a passive protocol analyzer for a simulated
// interconnect: a tap port that records and decodes every Mether
// datagram it receives, with virtual timestamps. On a broadcast medium
// (ethernet) a passive station sees the complete protocol exchange —
// the simulation's tcpdump. On a point-to-point fabric there is no
// promiscuous mode: the tap sees only broadcast fan-out copies
// addressed to it, never host-to-host unicasts.
package trace

import (
	"fmt"
	"strings"
	"time"

	"mether/internal/medium"
	"mether/internal/proto"
	"mether/internal/sim"
	"mether/internal/vm"
)

// Entry is one decoded datagram observation.
type Entry struct {
	At         time.Duration
	From       int16
	Type       proto.Type
	Page       vm.PageID
	Short      bool
	Consistent bool
	OwnerTo    int16
	Gen        uint32
	PayloadLen int
	Malformed  bool // undecodable frame
}

// String renders one line of the trace.
func (e Entry) String() string {
	if e.Malformed {
		return fmt.Sprintf("%12v  host%d  MALFORMED (%d bytes)", e.At, e.From, e.PayloadLen)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%12v  host%d  %-8s page %d", e.At, e.From, e.Type, e.Page)
	if e.Short {
		b.WriteString(" short")
	} else {
		b.WriteString(" full")
	}
	if e.Consistent {
		b.WriteString(" +consistent")
	}
	if e.OwnerTo != proto.NoOwner {
		fmt.Fprintf(&b, " owner->host%d", e.OwnerTo)
	}
	if e.Type == proto.TypeData || e.Type == proto.TypeRestData {
		fmt.Fprintf(&b, " gen %d (%d bytes)", e.Gen, e.PayloadLen)
	}
	return b.String()
}

// Log accumulates tap observations.
type Log struct {
	entries []Entry
	max     int
}

// Tap attaches a passive analyzer station to the medium. max bounds the
// number of retained entries (0 means unlimited); recording continues
// but old entries are never evicted — the bound simply stops appending,
// keeping memory flat on long runs.
func Tap(k *sim.Kernel, m medium.Medium, max int) *Log {
	l := &Log{max: max}
	var nic medium.Port
	nic = m.AttachPort("trace-tap", func() {
		for {
			f, ok := nic.Recv()
			if !ok {
				return
			}
			l.record(k.Now(), f)
		}
	})
	return l
}

func (l *Log) record(at time.Duration, f medium.Frame) {
	if l.max > 0 && len(l.entries) >= l.max {
		return
	}
	e := Entry{At: at, PayloadLen: len(f.Payload)}
	pkt, err := proto.Decode(f.Payload)
	if err != nil {
		e.Malformed = true
		e.From = int16(f.Src)
	} else {
		e.From = pkt.From
		e.Type = pkt.Type
		e.Page = pkt.Page
		e.Short = pkt.Short
		e.Consistent = pkt.Consistent
		e.OwnerTo = pkt.OwnerTo
		e.Gen = pkt.Gen
		e.PayloadLen = len(pkt.Data)
	}
	l.entries = append(l.entries, e)
}

// Entries returns the recorded observations in wire order.
func (l *Log) Entries() []Entry { return l.entries }

// Len returns the number of recorded observations.
func (l *Log) Len() int { return len(l.entries) }

// CountByType tallies observations per packet kind.
func (l *Log) CountByType() map[proto.Type]int {
	m := make(map[proto.Type]int)
	for _, e := range l.entries {
		if !e.Malformed {
			m[e.Type]++
		}
	}
	return m
}

// PageHistory returns the observations touching one page, in order —
// the lifecycle of that page on the wire.
func (l *Log) PageHistory(page vm.PageID) []Entry {
	var out []Entry
	for _, e := range l.entries {
		if !e.Malformed && e.Page == page {
			out = append(out, e)
		}
	}
	return out
}

// String renders the whole trace, one line per datagram.
func (l *Log) String() string {
	var b strings.Builder
	for _, e := range l.entries {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
