package analysis

import (
	"testing"

	"mether/internal/protocols"
)

// TestPaperAgreement is the reproduction's contract: every documented
// figure cell must land inside its agreement band at full paper scale.
// If calibration or protocol changes push a cell out of band, this test
// names the exact cell and ratio.
func TestPaperAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale paper runs")
	}
	for _, f := range Figures() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			devs, err := Check(f, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range devs {
				t.Error(d)
			}
		})
	}
}

func TestBandContains(t *testing.T) {
	b := Band{0.5, 2}
	for _, tc := range []struct {
		ratio float64
		want  bool
	}{
		{0.49, false}, {0.5, true}, {1, true}, {2, true}, {2.01, false},
	} {
		if got := b.Contains(tc.ratio); got != tc.want {
			t.Errorf("Contains(%f) = %v, want %v", tc.ratio, got, tc.want)
		}
	}
}

func TestCheckReportFlagsOutliers(t *testing.T) {
	f := Figure{
		Name:     "synthetic",
		Protocol: protocols.P5Final,
		Cells: []Cell{
			{"loss/win", 10, func(r protocols.Report) float64 { return r.LossWin }, Band{0.9, 1.1}},
		},
	}
	r := protocols.Report{LossWin: 30} // ratio 3: far out of band
	devs := CheckReport(f, r)
	if len(devs) != 1 {
		t.Fatalf("deviations = %d, want 1", len(devs))
	}
	if devs[0].Ratio != 3 {
		t.Errorf("ratio = %f, want 3", devs[0].Ratio)
	}
	if devs[0].String() == "" {
		t.Error("empty deviation rendering")
	}
}

func TestZeroPaperCellSkipped(t *testing.T) {
	f := Figure{
		Name:     "synthetic",
		Protocol: protocols.P5Final,
		Cells: []Cell{
			{"zero", 0, func(r protocols.Report) float64 { return 5 }, Band{0.9, 1.1}},
		},
	}
	if devs := CheckReport(f, protocols.Report{}); len(devs) != 0 {
		t.Errorf("zero-paper cell produced deviations: %v", devs)
	}
}

func TestFiguresCoverFourProtocols(t *testing.T) {
	seen := map[protocols.Protocol]bool{}
	for _, f := range Figures() {
		seen[f.Protocol] = true
		if len(f.Cells) < 5 {
			t.Errorf("%s has only %d cells", f.Name, len(f.Cells))
		}
	}
	for _, p := range []protocols.Protocol{
		protocols.P1FullPage, protocols.P2ShortPage,
		protocols.P4DataDriven, protocols.P5Final,
	} {
		if !seen[p] {
			t.Errorf("no figure for %v", p)
		}
	}
}
