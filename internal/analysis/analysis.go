// Package analysis encodes the paper's reported evaluation numbers as
// typed data and compares measured reports against them. It is what
// turns "the reproduction matches the paper" from prose into assertions:
// every figure cell carries the paper's value and an agreement band, and
// a test fails if calibration drift pushes a measurement outside its
// band. EXPERIMENTS.md documents the bands; this package enforces them.
package analysis

import (
	"fmt"
	"time"

	"mether/internal/protocols"
)

// Band is an acceptable measured/paper ratio range for one metric cell.
// Bands are deliberately asymmetric where EXPERIMENTS.md documents a
// known deviation (e.g. blocking protocols complete 2-4x fast).
type Band struct {
	Lo, Hi float64
}

// Contains reports whether ratio lies inside the band.
func (b Band) Contains(ratio float64) bool {
	return ratio >= b.Lo && ratio <= b.Hi
}

// Cell is one figure-row entry: the paper's value, how to extract the
// measured value, and the agreement band.
type Cell struct {
	Metric string
	Paper  float64 // in the unit returned by Get
	Get    func(protocols.Report) float64
	Band   Band
}

// Figure couples a protocol run with its paper cells.
type Figure struct {
	Name     string
	Protocol protocols.Protocol
	Cells    []Cell
}

// seconds converts a duration metric to float seconds.
func seconds(d time.Duration) float64 { return d.Seconds() }

// Figures returns the paper's Figures 4, 5, 8 and 9 with the agreement
// bands EXPERIMENTS.md documents. Figures 6 and 7 are asserted
// separately (degeneracy is about orderings, not cell ratios).
func Figures() []Figure {
	wall := func(r protocols.Report) float64 { return seconds(r.Wall) }
	user := func(r protocols.Report) float64 { return seconds(r.User) }
	sys := func(r protocols.Report) float64 { return seconds(r.SysTotal()) }
	lat := func(r protocols.Report) float64 { return seconds(r.AvgLatency) }
	lossWin := func(r protocols.Report) float64 { return r.LossWin }
	ctx := func(r protocols.Report) float64 { return r.CtxPerAdd }

	return []Figure{
		{
			Name:     "Figure 4 (full page)",
			Protocol: protocols.P1FullPage,
			Cells: []Cell{
				{"wall s", 128, wall, Band{0.5, 1.5}},
				{"user s", 10, user, Band{0.5, 2}},
				{"sys s", 30, sys, Band{0.5, 2}},
				{"latency s", 0.120, lat, Band{0.5, 2}},
				{"loss/win", 500, lossWin, Band{0.4, 2.5}},
				{"ctx/add", 4, ctx, Band{0.5, 2}},
			},
		},
		{
			Name:     "Figure 5 (short page)",
			Protocol: protocols.P2ShortPage,
			Cells: []Cell{
				{"wall s", 68, wall, Band{0.25, 1.5}}, // documented: blocking runs fast
				{"user s", 3, user, Band{0.5, 4}},
				{"sys s", 17, sys, Band{0.3, 2}},
				{"latency s", 0.068, lat, Band{0.25, 1.5}},
				{"loss/win", 134, lossWin, Band{0.5, 4}},
				{"ctx/add", 4, ctx, Band{0.5, 2}},
			},
		},
		{
			Name:     "Figure 8 (data driven, one page)",
			Protocol: protocols.P4DataDriven,
			Cells: []Cell{
				{"wall s", 68, wall, Band{0.5, 2}},
				{"sys s", 50, sys, Band{0.2, 1.5}},
				{"latency s", 0.065, lat, Band{0.25, 1.5}},
				{"loss/win", 400, lossWin, Band{0.5, 5}}, // documented overshoot
				{"ctx/add", 10, ctx, Band{0.5, 1.5}},
			},
		},
		{
			Name:     "Figure 9 (final protocol)",
			Protocol: protocols.P5Final,
			Cells: []Cell{
				{"wall s", 57, wall, Band{0.15, 1.5}}, // documented: 4x fast
				{"user s", 0.7, user, Band{0.05, 1.5}},
				{"sys s", 6, sys, Band{0.5, 2.5}},
				{"latency s", 0.020, lat, Band{0.5, 1.5}},
				{"loss/win", 3, lossWin, Band{0.3, 2}},
				{"ctx/add", 5, ctx, Band{0.5, 1.5}},
			},
		},
	}
}

// Deviation describes one out-of-band cell.
type Deviation struct {
	Figure string
	Metric string
	Paper  float64
	Got    float64
	Ratio  float64
	Band   Band
}

func (d Deviation) String() string {
	return fmt.Sprintf("%s %s: measured %.4g vs paper %.4g (ratio %.2f outside [%.2f, %.2f])",
		d.Figure, d.Metric, d.Got, d.Paper, d.Ratio, d.Band.Lo, d.Band.Hi)
}

// Check runs a figure's protocol at full paper scale and returns any
// out-of-band cells.
func Check(f Figure, seed int64) ([]Deviation, error) {
	r, err := protocols.Run(protocols.Config{Protocol: f.Protocol, Target: 1024, Seed: seed})
	if err != nil {
		return nil, err
	}
	if r.DNF {
		return nil, fmt.Errorf("analysis: %s did not finish", f.Name)
	}
	return CheckReport(f, r), nil
}

// CheckReport compares an existing report against a figure's bands.
func CheckReport(f Figure, r protocols.Report) []Deviation {
	var out []Deviation
	for _, c := range f.Cells {
		got := c.Get(r)
		if c.Paper == 0 {
			continue
		}
		ratio := got / c.Paper
		if !c.Band.Contains(ratio) {
			out = append(out, Deviation{
				Figure: f.Name, Metric: c.Metric,
				Paper: c.Paper, Got: got, Ratio: ratio, Band: c.Band,
			})
		}
	}
	return out
}
