package ethernet

import (
	"time"

	"mether/internal/sim"
)

// Bridge connects two segments the way the paper's multi-trunk Ethernet
// does: frames arriving on one segment are queued and re-transmitted on
// the other after a store-and-forward delay that depends on queue depth.
//
// The paper uses exactly this topology to argue that global consistency
// is untenable: "Two hosts on different trunks can issue purges. Which
// purge goes out first depends on the depth of the queues in the hosts
// and the bridges, which in turn depends on background network traffic
// on each branch." The bridge model lets tests demonstrate that hosts on
// different trunks can observe the same pair of purges in opposite
// orders — the impossibility result motivating Mether's design.
type Bridge struct {
	k        *sim.Kernel
	a, b     *Bus
	aPort    *NIC
	bPort    *NIC
	delay    time.Duration
	aBacklog time.Duration // extra queueing toward segment A
	bBacklog time.Duration // extra queueing toward segment B

	forwarded uint64
}

// NewBridge joins segments a and b with the given store-and-forward
// delay. The bridge occupies one NIC address on each segment.
func NewBridge(k *sim.Kernel, a, b *Bus, delay time.Duration) *Bridge {
	br := &Bridge{k: k, a: a, b: b, delay: delay}
	br.aPort = a.Attach("bridge", func() { br.pump(br.aPort, br.bPort, &br.bBacklog) })
	br.bPort = b.Attach("bridge", func() { br.pump(br.bPort, br.aPort, &br.aBacklog) })
	return br
}

// SetBacklog models asymmetric background traffic: frames crossing
// toward segment A (respectively B) are additionally delayed by the
// given amount — the "depth of the queues ... depends on background
// network traffic on each branch".
func (br *Bridge) SetBacklog(towardA, towardB time.Duration) {
	br.aBacklog = towardA
	br.bBacklog = towardB
}

// Forwarded returns the number of frames the bridge has relayed.
func (br *Bridge) Forwarded() uint64 { return br.forwarded }

// pump drains one port's ring onto the other segment.
func (br *Bridge) pump(from, to *NIC, backlog *time.Duration) {
	for {
		f, ok := from.Recv()
		if !ok {
			return
		}
		br.forwarded++
		br.k.After(br.delay+*backlog, "bridge forward", func() {
			// Send copies the payload into the destination segment's
			// pool, so the source buffer can be recycled afterwards.
			to.Send(f.Dst, f.Payload)
			from.Release(f)
		})
	}
}
