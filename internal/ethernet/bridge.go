package ethernet

import (
	"time"

	"mether/internal/sim"
)

// Bridge connects two segments the way the paper's multi-trunk Ethernet
// does: frames arriving on one segment are queued and re-transmitted on
// the other after a store-and-forward delay that depends on queue depth.
//
// The paper uses exactly this topology to argue that global consistency
// is untenable: "Two hosts on different trunks can issue purges. Which
// purge goes out first depends on the depth of the queues in the hosts
// and the bridges, which in turn depends on background network traffic
// on each branch." The bridge model lets tests demonstrate that hosts on
// different trunks can observe the same pair of purges in opposite
// orders — the impossibility result motivating Mether's design.
type Bridge struct {
	k        *sim.Kernel
	a, b     *Bus
	aPort    *NIC
	bPort    *NIC
	delay    time.Duration
	aBacklog time.Duration // extra queueing toward segment A
	bBacklog time.Duration // extra queueing toward segment B
	aLoss    float64       // forwarding loss toward segment A
	bLoss    float64       // forwarding loss toward segment B
	// partitioned marks the bridge as down: both ports stop receiving,
	// and any store-and-forward still in flight is dropped when its
	// timer fires instead of delivering stale pre-partition traffic
	// after a heal.
	partitioned bool

	stats BridgeStats
	// freeFwd pools in-flight forward records (frame + prebuilt closure)
	// so steady-state store-and-forward traffic does not allocate, like
	// the Bus delivery pool.
	freeFwd []*bridgeFwd
}

// bridgeFwd is one pooled store-and-forward in flight.
type bridgeFwd struct {
	br       *Bridge
	from, to *NIC
	f        Frame
	fn       func()
}

// BridgeStats aggregates the store-and-forward counters of one bridge
// (or, via Topology.BridgeStats, of every bridge in a topology). The
// occupancy pair makes the paper's "depth of the queues in the bridges"
// observable rather than assumed.
type BridgeStats struct {
	// Forwarded counts frames relayed onto the other segment.
	Forwarded uint64
	// PortDrops counts frames lost at a bridge port (per-port loss).
	PortDrops uint64
	// Queued is the current store-and-forward occupancy: frames received
	// but not yet re-transmitted.
	Queued int
	// MaxQueued is the peak occupancy observed.
	MaxQueued int
	// PartitionDrops counts frames discarded because the bridge was
	// partitioned: buffered port-ring frames drained at partition time
	// plus in-flight store-and-forwards whose timer fired while down.
	// Without this drain, a heal would replay pre-partition frames with
	// ancient generations.
	PartitionDrops uint64
}

// add accumulates another bridge's counters (topology aggregation).
func (s *BridgeStats) add(o BridgeStats) {
	s.Forwarded += o.Forwarded
	s.PortDrops += o.PortDrops
	s.Queued += o.Queued
	if o.MaxQueued > s.MaxQueued {
		s.MaxQueued = o.MaxQueued
	}
	s.PartitionDrops += o.PartitionDrops
}

// NewBridge joins segments a and b with the given store-and-forward
// delay. The bridge occupies one NIC address on each segment.
func NewBridge(k *sim.Kernel, a, b *Bus, delay time.Duration) *Bridge {
	br := &Bridge{k: k, a: a, b: b, delay: delay}
	br.aPort = a.Attach("bridge", func() { br.pump(br.aPort, br.bPort, &br.bBacklog, &br.bLoss) })
	br.bPort = b.Attach("bridge", func() { br.pump(br.bPort, br.aPort, &br.aBacklog, &br.aLoss) })
	return br
}

// SetBacklog models asymmetric background traffic: frames crossing
// toward segment A (respectively B) are additionally delayed by the
// given amount — the "depth of the queues ... depends on background
// network traffic on each branch".
func (br *Bridge) SetBacklog(towardA, towardB time.Duration) {
	br.aBacklog = towardA
	br.bBacklog = towardB
}

// SetPortLoss models lossy bridge ports: a frame crossing toward
// segment A (respectively B) is dropped at the port with the given
// probability instead of being forwarded. Drops are counted in
// Stats().PortDrops. Draws come from the simulation kernel's seeded
// RNG, so lossy bridged runs stay deterministic.
func (br *Bridge) SetPortLoss(towardA, towardB float64) {
	br.aLoss = towardA
	br.bLoss = towardB
}

// SetPartitioned takes the bridge down (or back up): both ports go
// down, so neither segment's traffic crosses. Going down also drains
// the frames already buffered in the port rings — a real bridge's
// store buffer does not survive a power cycle, and replaying
// pre-partition frames after a heal would deliver ancient generations.
// Drained and in-flight frames are refcount-released and counted as
// PartitionDrops. Healing (down=false) only re-enables the ports;
// traffic resumes with the next frame transmitted on either segment.
func (br *Bridge) SetPartitioned(down bool) {
	br.partitioned = down
	br.aPort.SetDown(down)
	br.bPort.SetDown(down)
	if down {
		br.drainPort(br.aPort)
		br.drainPort(br.bPort)
	}
}

// Partitioned reports whether the bridge is currently down.
func (br *Bridge) Partitioned() bool { return br.partitioned }

// drainPort discards everything buffered in one port's receive ring.
func (br *Bridge) drainPort(p *NIC) {
	for {
		f, ok := p.Recv()
		if !ok {
			return
		}
		br.stats.PartitionDrops++
		p.Release(f)
	}
}

// Forwarded returns the number of frames the bridge has relayed.
func (br *Bridge) Forwarded() uint64 { return br.stats.Forwarded }

// Stats returns a snapshot of the bridge counters.
func (br *Bridge) Stats() BridgeStats { return br.stats }

// pump drains one port's ring onto the other segment.
func (br *Bridge) pump(from, to *NIC, backlog *time.Duration, loss *float64) {
	for {
		f, ok := from.Recv()
		if !ok {
			return
		}
		if *loss > 0 && br.k.Rand().Float64() < *loss {
			br.stats.PortDrops++
			from.Release(f)
			continue
		}
		br.stats.Forwarded++
		br.stats.Queued++
		if br.stats.Queued > br.stats.MaxQueued {
			br.stats.MaxQueued = br.stats.Queued
		}
		fw := br.acquireFwd()
		fw.from, fw.to, fw.f = from, to, f
		br.k.After(br.delay+*backlog, "bridge forward", fw.fn)
	}
}

// acquireFwd takes a forward record (with its prebuilt closure) from the
// pool.
func (br *Bridge) acquireFwd() *bridgeFwd {
	if l := len(br.freeFwd); l > 0 {
		fw := br.freeFwd[l-1]
		br.freeFwd[l-1] = nil
		br.freeFwd = br.freeFwd[:l-1]
		return fw
	}
	fw := &bridgeFwd{br: br}
	fw.fn = func() { fw.run() }
	return fw
}

// run completes one store-and-forward: re-transmit on the far segment,
// release the source buffer, recycle the record. Send copies the payload
// into the destination segment's pool, so the source buffer can be
// recycled immediately afterwards — and because forwarding re-enters
// Send with the original destination, the far segment applies the same
// split dispatch as a local transmission: indexed O(1) lookup for a
// unicast Dst, fan-out only for Broadcast. A bridge port adds no
// delivery cost of its own beyond the store-and-forward delay.
func (fw *bridgeFwd) run() {
	br := fw.br
	br.stats.Queued--
	if br.partitioned {
		// The partition hit while this forward was in its
		// store-and-forward delay: drop it like the drained ring frames,
		// so nothing transmitted before the partition crosses after it.
		br.stats.PartitionDrops++
		fw.from.Release(fw.f)
		fw.f = Frame{}
		fw.from, fw.to = nil, nil
		br.freeFwd = append(br.freeFwd, fw)
		return
	}
	fw.to.Send(fw.f.Dst, fw.f.Payload)
	fw.from.Release(fw.f)
	fw.f = Frame{}
	fw.from, fw.to = nil, nil
	br.freeFwd = append(br.freeFwd, fw)
}
