package ethernet

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"mether/internal/medium"
	"mether/internal/sim"
)

// TestMediumInterfaceDifferential drives the Bus strictly through the
// medium.Medium / medium.Port interfaces — the only view the rest of
// the system has after the pluggable-media refactor — and requires the
// observation stream and counters to match refSegment, the from-scratch
// reimplementation of the pre-refactor semantics.
// TestDeliveryDifferential proves the concrete Bus against the
// reference; this test proves the interface seam neither adds nor loses
// behaviour: same rings, same interrupt order, same counters, same RNG
// consumption.
func TestMediumInterfaceDifferential(t *testing.T) {
	const (
		nics      = 5
		ops       = 150
		intrDelay = 300 * time.Microsecond
	)
	params := DefaultParams()
	params.RxRing = 4
	params.LossRate = 0.25

	script := func(seed int64) []diffOp {
		rng := rand.New(rand.NewSource(seed * 31))
		var sc []diffOp
		at := time.Duration(0)
		for i := 0; i < ops; i++ {
			at += time.Duration(rng.Intn(1500)) * time.Microsecond
			op := diffOp{at: at, nic: rng.Intn(nics), tag: byte(i)}
			switch r := rng.Intn(10); {
			case r < 6:
				op.kind = 0
				switch rng.Intn(4) {
				case 0:
					op.dst = medium.Broadcast
				case 1:
					op.dst = op.nic
				default:
					op.dst = rng.Intn(nics)
				}
				op.size = 1 + rng.Intn(300)
			case r < 7:
				op.kind = 1
			case r < 9:
				op.kind = 2
			default:
				op.kind = 3
			}
			sc = append(sc, op)
		}
		return sc
	}

	runMedium := func(seed int64, sc []diffOp) ([]obs, []uint64) {
		k := sim.New(seed)
		var m medium.Medium = NewBus(k, params)
		var stream []obs
		rx := make([]medium.Port, nics)
		for i := 0; i < nics; i++ {
			i := i
			fire := func() { stream = append(stream, obs{k.Now(), fmt.Sprintf("intr %d", i)}) }
			rx[i] = m.AttachPort("n", func() { k.AfterCoalesced(intrDelay, "intr", fire) })
		}
		drain := func(i int) {
			for {
				f, ok := rx[i].Recv()
				if !ok {
					return
				}
				stream = append(stream, obs{k.Now(), fmt.Sprintf("rx %d: %d->%d tag %d len %d", i, f.Src, f.Dst, f.Payload[0], len(f.Payload))})
				rx[i].Release(f)
			}
		}
		for _, op := range sc {
			op := op
			k.At(op.at, "op", func() {
				switch op.kind {
				case 0:
					buf := make([]byte, op.size)
					buf[0] = op.tag
					rx[op.nic].Send(op.dst, buf)
				case 1:
					rx[op.nic].SetDown(true)
				case 2:
					rx[op.nic].SetDown(false)
				case 3:
					drain(op.nic)
				}
			})
		}
		k.Run()
		for i := 0; i < nics; i++ {
			drain(i)
		}
		st := m.Stats()
		return stream, []uint64{st.Frames, st.WireLost, st.RingDrops, st.TxSuppressed}
	}

	runRef := func(seed int64, sc []diffOp) ([]obs, []uint64) {
		k := sim.New(seed)
		s := newRefSegment(k, params)
		var stream []obs
		rx := make([]*refNIC, nics)
		for i := 0; i < nics; i++ {
			i := i
			fire := func() { stream = append(stream, obs{k.Now(), fmt.Sprintf("intr %d", i)}) }
			rx[i] = s.attach(func() { k.After(intrDelay, "intr", fire) })
		}
		drain := func(i int) {
			for {
				f, ok := rx[i].recv()
				if !ok {
					return
				}
				stream = append(stream, obs{k.Now(), fmt.Sprintf("rx %d: %d->%d tag %d len %d", i, f.src, f.dst, f.payload[0], len(f.payload))})
			}
		}
		for _, op := range sc {
			op := op
			k.At(op.at, "op", func() {
				switch op.kind {
				case 0:
					buf := make([]byte, op.size)
					buf[0] = op.tag
					rx[op.nic].send(op.dst, buf)
				case 1:
					rx[op.nic].down = true
				case 2:
					rx[op.nic].down = false
				case 3:
					drain(op.nic)
				}
			})
		}
		k.Run()
		for i := 0; i < nics; i++ {
			drain(i)
		}
		var drops, sup uint64
		for _, n := range rx {
			drops += n.drops
			sup += n.txSuppressed
		}
		return stream, []uint64{s.frames, s.wireLost, drops, sup}
	}

	for seed := int64(1); seed <= 20; seed++ {
		sc := script(seed)
		gotLog, gotStats := runMedium(seed, sc)
		wantLog, wantStats := runRef(seed, sc)
		if !reflect.DeepEqual(gotStats, wantStats) {
			t.Fatalf("seed %d: counters diverge: interface %v, reference %v", seed, gotStats, wantStats)
		}
		if !reflect.DeepEqual(gotLog, wantLog) {
			max := len(gotLog)
			if len(wantLog) < max {
				max = len(wantLog)
			}
			for i := 0; i < max; i++ {
				if gotLog[i] != wantLog[i] {
					t.Fatalf("seed %d: observation %d diverges:\n interface %v %s\n       ref %v %s",
						seed, i, gotLog[i].at, gotLog[i].what, wantLog[i].at, wantLog[i].what)
				}
			}
			t.Fatalf("seed %d: stream lengths diverge: interface %d, reference %d", seed, len(gotLog), len(wantLog))
		}
	}
}
