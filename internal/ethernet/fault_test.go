package ethernet

import (
	"testing"
	"time"

	"mether/internal/sim"
)

// A NIC taken down mid-broadcast must neither receive the in-flight
// frame nor leak its share of the refcounted payload buffer: the
// delivery path skips down NICs without taking a reference, so the
// buffer drains back to the pool once the live receivers release.
func TestSetDownMidBroadcastReleasesSharedBuffer(t *testing.T) {
	k := sim.New(1)
	b := NewBus(k, DefaultParams())
	nics := make([]*NIC, 4)
	for i := range nics {
		nics[i] = b.Attach("n", nil)
	}
	// Take one receiver down after the send is queued but before the
	// frame propagates: the broadcast is in flight when the NIC dies.
	nics[0].Send(Broadcast, []byte("in-flight"))
	nics[2].SetDown(true)
	k.Run()

	if nics[2].Pending() != 0 {
		t.Errorf("down NIC buffered %d frame(s), want 0", nics[2].Pending())
	}
	for _, i := range []int{1, 3} {
		f, ok := nics[i].Recv()
		if !ok || string(f.Payload) != "in-flight" {
			t.Fatalf("live NIC %d got %q ok=%v, want in-flight", i, f.Payload, ok)
		}
		nics[i].Release(f)
	}
	alloc, free := b.PoolStats()
	if alloc != free {
		t.Errorf("pool: allocated %d != free %d — down receiver leaked a reference", alloc, free)
	}
	k.Shutdown()
}

// A down NIC's sends are suppressed (counted, not transmitted), and
// bringing it back up resumes both directions.
func TestSetDownSuppressesSends(t *testing.T) {
	k := sim.New(1)
	b := NewBus(k, DefaultParams())
	tx := b.Attach("tx", nil)
	rx := b.Attach("rx", nil)

	tx.SetDown(true)
	tx.Send(Broadcast, []byte("lost"))
	k.Run()
	if rx.Pending() != 0 {
		t.Error("down NIC's send reached the wire")
	}

	tx.SetDown(false)
	tx.Send(Broadcast, []byte("back"))
	k.Run()
	f, ok := rx.Recv()
	if !ok || string(f.Payload) != "back" {
		t.Errorf("post-recovery send got %q ok=%v, want back", f.Payload, ok)
	}
	rx.Release(f)
	alloc, free := b.PoolStats()
	if alloc != free {
		t.Errorf("pool: allocated %d != free %d", alloc, free)
	}
	k.Shutdown()
}

// Partitioning a bridge mid-transfer drains its queued frames (counted
// as PartitionDrops, never replayed after the heal) and releases their
// buffer references; traffic flows again after SetPartitioned(false).
func TestBridgePartitionDrainsQueuedFrames(t *testing.T) {
	k := sim.New(1)
	a := NewBus(k, DefaultParams())
	bb := NewBus(k, DefaultParams())
	br := NewBridge(k, a, bb, 10*time.Millisecond)

	hostA := a.Attach("hostA", nil)
	hostB := bb.Attach("hostB", nil)

	// Queue a burst into the bridge, then partition before the 10 ms
	// store-and-forward delay elapses: every queued frame must be
	// dropped, not delivered after the heal.
	for i := 0; i < 4; i++ {
		hostA.Send(Broadcast, []byte{byte(i)})
	}
	k.After(time.Millisecond, "partition", func() { br.SetPartitioned(true) })
	k.After(50*time.Millisecond, "heal", func() { br.SetPartitioned(false) })
	k.Run()

	if hostB.Pending() != 0 {
		t.Errorf("partitioned bridge delivered %d frame(s) cross-trunk", hostB.Pending())
	}
	if br.Stats().PartitionDrops == 0 {
		t.Error("partition drained no frames; want PartitionDrops > 0")
	}

	// Post-heal traffic crosses again.
	hostA.Send(Broadcast, []byte("after-heal"))
	k.Run()
	f, ok := hostB.Recv()
	if !ok || string(f.Payload) != "after-heal" {
		t.Errorf("post-heal frame got %q ok=%v, want after-heal", f.Payload, ok)
	}
	hostB.Release(f)

	// Drain hostA's own copy-back traffic (bridge echoes nothing, but
	// hostB's buses share no pool; check both pools balance).
	for {
		f, ok := hostA.Recv()
		if !ok {
			break
		}
		hostA.Release(f)
	}
	if alloc, free := a.PoolStats(); alloc != free {
		t.Errorf("trunk A pool: allocated %d != free %d", alloc, free)
	}
	if alloc, free := bb.PoolStats(); alloc != free {
		t.Errorf("trunk B pool: allocated %d != free %d", alloc, free)
	}
	k.Shutdown()
}
