// Multi-trunk topologies: the paper's Mether ran on "an Ethernet" that
// was really several trunks joined by store-and-forward bridges, and its
// host/network-load argument leans on that structure — broadcasts cross
// bridges late (and in environment-dependent order), so protocols that
// assume a single global broadcast medium quietly stop being what they
// claim. Topology builds N buses joined by Bridges in the two loop-free
// arrangements worth measuring: a star around a backbone trunk and a
// linear chain. Both are trees, so flooding is storm-free and every
// trunk pair has exactly one path.
package ethernet

import (
	"fmt"
	"time"

	"mether/internal/sim"
)

// Shape selects how a multi-trunk topology arranges its bridges.
type Shape int

const (
	// Star joins every other trunk to trunk 0 (the backbone) with one
	// bridge each: any cross-trunk frame takes at most two hops.
	Star Shape = iota
	// Linear chains trunk i to trunk i+1: the worst case, where a frame
	// between the end trunks crosses every bridge.
	Linear
)

// String returns the shape mnemonic used in scenario names.
func (s Shape) String() string {
	switch s {
	case Star:
		return "star"
	case Linear:
		return "linear"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// ShapeByName parses a shape mnemonic ("star", "linear"); empty selects
// Star.
func ShapeByName(name string) (Shape, error) {
	switch name {
	case "", "star":
		return Star, nil
	case "linear":
		return Linear, nil
	default:
		return 0, fmt.Errorf("ethernet: unknown topology shape %q (want star or linear)", name)
	}
}

// TopologyConfig parameterizes the bridges of a multi-trunk topology.
// The zero value gets a 1 ms store-and-forward delay, symmetric empty
// backlogs and loss-free ports.
type TopologyConfig struct {
	// Shape arranges the trunks (default Star).
	Shape Shape
	// BridgeDelay is each bridge's store-and-forward delay (default 1 ms,
	// an era-plausible latency for a two-port Ethernet bridge).
	BridgeDelay time.Duration
	// BacklogDown and BacklogUp model asymmetric background traffic on
	// every bridge: frames crossing toward the lower-numbered trunk
	// (respectively higher) are additionally delayed by the given amount.
	BacklogDown time.Duration
	BacklogUp   time.Duration
	// PortLoss is the probability that a frame is dropped at a bridge
	// port instead of being forwarded (applied in both directions).
	PortLoss float64
}

func (tc TopologyConfig) withDefaults() TopologyConfig {
	if tc.BridgeDelay == 0 {
		tc.BridgeDelay = time.Millisecond
	}
	return tc
}

// Topology is a set of trunks (buses) joined by bridges into a loop-free
// tree. Attach NICs to individual trunks with Bus(i).Attach.
type Topology struct {
	shape   Shape
	buses   []*Bus
	bridges []*Bridge
}

// NewTopology builds trunks buses with the shared segment parameters p,
// joined per tc. trunks must be at least 1; a single trunk builds no
// bridges and behaves exactly like a lone NewBus segment.
func NewTopology(k *sim.Kernel, trunks int, p Params, tc TopologyConfig) *Topology {
	if trunks < 1 {
		panic(fmt.Sprintf("ethernet: topology needs at least 1 trunk, got %d", trunks))
	}
	tc = tc.withDefaults()
	t := &Topology{shape: tc.Shape}
	for i := 0; i < trunks; i++ {
		t.buses = append(t.buses, NewBus(k, p))
	}
	link := func(lo, hi int) {
		br := NewBridge(k, t.buses[lo], t.buses[hi], tc.BridgeDelay)
		br.SetBacklog(tc.BacklogDown, tc.BacklogUp)
		br.SetPortLoss(tc.PortLoss, tc.PortLoss)
		t.bridges = append(t.bridges, br)
	}
	switch tc.Shape {
	case Star:
		for i := 1; i < trunks; i++ {
			link(0, i)
		}
	case Linear:
		for i := 0; i < trunks-1; i++ {
			link(i, i+1)
		}
	default:
		panic(fmt.Sprintf("ethernet: unknown topology shape %d", tc.Shape))
	}
	return t
}

// Trunks returns the number of buses.
func (t *Topology) Trunks() int { return len(t.buses) }

// Bus returns trunk i's segment.
func (t *Topology) Bus(i int) *Bus { return t.buses[i] }

// Bridges returns the bridges in construction order (advanced use:
// per-bridge backlog or loss overrides before a run).
func (t *Topology) Bridges() []*Bridge { return t.bridges }

// Hops returns the number of bridges a frame crosses between trunks a
// and b — the tree distance, used by nearest-first orderings (the
// redundant-fetch target selection prefers same-trunk replicas, then
// ever-farther ones). Both shapes are trees, so the path is unique.
func (t *Topology) Hops(a, b int) int {
	if a == b {
		return 0
	}
	switch t.shape {
	case Linear:
		if a > b {
			a, b = b, a
		}
		return b - a
	default: // Star: via the backbone unless one end is the backbone
		if a == 0 || b == 0 {
			return 1
		}
		return 2
	}
}

// Stats sums the segment counters over every trunk. A frame forwarded
// across k bridges is counted on each trunk it crosses — cross-trunk
// traffic really does occupy every wire it transits, which is exactly
// the redundancy-vs-load cost the topology axis measures.
func (t *Topology) Stats() Stats {
	var s Stats
	for _, b := range t.buses {
		bs := b.Stats()
		s.Frames += bs.Frames
		s.WireBytes += bs.WireBytes
		s.PayloadBytes += bs.PayloadBytes
		s.WireLost += bs.WireLost
		s.RingDrops += bs.RingDrops
		s.TxSuppressed += bs.TxSuppressed
		if bs.RingHighWater > s.RingHighWater {
			s.RingHighWater = bs.RingHighWater
		}
		s.BusyTime += bs.BusyTime
	}
	return s
}

// MemFootprint sums the structural memory footprint of every trunk.
func (t *Topology) MemFootprint() uint64 {
	var b uint64
	for _, bus := range t.buses {
		b += bus.MemFootprint()
	}
	return b
}

// BridgeStats sums the bridge counters over every bridge.
func (t *Topology) BridgeStats() BridgeStats {
	var s BridgeStats
	for _, br := range t.bridges {
		s.add(br.Stats())
	}
	return s
}
