package ethernet

import (
	"testing"
	"time"

	"mether/internal/sim"
)

// countersOn attaches a counting NIC to every trunk of a topology.
func countersOn(t *Topology) []*int {
	got := make([]*int, t.Trunks())
	for i := 0; i < t.Trunks(); i++ {
		n := new(int)
		got[i] = n
		t.Bus(i).Attach("counter", func() { *n++ })
	}
	return got
}

func TestStarTopologyFloodsEveryTrunkOnce(t *testing.T) {
	k := sim.New(1)
	topo := NewTopology(k, 4, DefaultParams(), TopologyConfig{Shape: Star})
	got := countersOn(topo)
	src := topo.Bus(2).Attach("src", nil)

	src.Send(Broadcast, []byte("hello"))
	k.Run()
	for i, n := range got {
		if *n != 1 {
			t.Errorf("trunk %d saw %d deliveries, want exactly 1 (loop-free star)", i, *n)
		}
	}
	// Trunk 2's frame crosses bridge 2-0 once, then bridges 0-1 and 0-3
	// fan it out: three forwards total.
	if f := topo.BridgeStats().Forwarded; f != 3 {
		t.Errorf("forwarded = %d, want 3", f)
	}
	k.Shutdown()
}

func TestLinearTopologyChainsEndToEnd(t *testing.T) {
	k := sim.New(1)
	topo := NewTopology(k, 4, DefaultParams(), TopologyConfig{Shape: Linear, BridgeDelay: time.Millisecond})
	got := countersOn(topo)
	var lastAt time.Duration
	topo.Bus(3).Attach("far", func() { lastAt = k.Now() })
	src := topo.Bus(0).Attach("src", nil)

	src.Send(Broadcast, []byte("x"))
	k.Run()
	for i, n := range got {
		if *n != 1 {
			t.Errorf("trunk %d saw %d deliveries, want exactly 1 (loop-free chain)", i, *n)
		}
	}
	if lastAt < 3*time.Millisecond {
		t.Errorf("end-to-end delivery at %v should pay 3 bridge hops of 1ms", lastAt)
	}
	if f := topo.BridgeStats().Forwarded; f != 3 {
		t.Errorf("forwarded = %d, want 3 (once per chain bridge)", f)
	}
	k.Shutdown()
}

func TestTopologyStatsCountCrossTrunkFramesPerWire(t *testing.T) {
	k := sim.New(1)
	topo := NewTopology(k, 2, DefaultParams(), TopologyConfig{})
	topo.Bus(1).Attach("rx", nil)
	src := topo.Bus(0).Attach("src", nil)

	src.Send(Broadcast, []byte("cross"))
	k.Run()
	// One logical broadcast occupies both wires: once sent on trunk 0,
	// once re-transmitted on trunk 1.
	if s := topo.Stats(); s.Frames != 2 {
		t.Errorf("aggregated frames = %d, want 2 (the frame crossed one bridge)", s.Frames)
	}
	k.Shutdown()
}

func TestBridgePortLossDropsAndCounts(t *testing.T) {
	k := sim.New(1)
	a, b := NewBus(k, DefaultParams()), NewBus(k, DefaultParams())
	br := NewBridge(k, a, b, time.Millisecond)
	br.SetPortLoss(0, 1) // everything toward B is lost
	src := a.Attach("src", nil)
	got := 0
	b.Attach("rx", func() { got++ })

	for i := 0; i < 5; i++ {
		src.Send(Broadcast, []byte("doomed"))
	}
	k.Run()
	if got != 0 {
		t.Errorf("lossy port delivered %d frames, want 0", got)
	}
	s := br.Stats()
	if s.PortDrops != 5 || s.Forwarded != 0 {
		t.Errorf("stats = %+v, want 5 port drops and 0 forwarded", s)
	}
	k.Shutdown()
}

func TestBridgePortLossDeterministicAcrossRuns(t *testing.T) {
	run := func() (BridgeStats, int) {
		k := sim.New(99)
		defer k.Shutdown()
		topo := NewTopology(k, 2, DefaultParams(), TopologyConfig{PortLoss: 0.3})
		got := 0
		topo.Bus(1).Attach("rx", func() { got++ })
		src := topo.Bus(0).Attach("src", nil)
		for i := 0; i < 64; i++ {
			src.Send(Broadcast, []byte{byte(i)})
		}
		k.Run()
		return topo.BridgeStats(), got
	}
	s1, g1 := run()
	s2, g2 := run()
	if s1 != s2 || g1 != g2 {
		t.Errorf("seeded port loss diverged: %+v/%d vs %+v/%d", s1, g1, s2, g2)
	}
	if s1.PortDrops == 0 || g1 == 0 {
		t.Errorf("PortLoss 0.3 over 64 frames should both drop and deliver (drops=%d delivered=%d)", s1.PortDrops, g1)
	}
	if s1.Forwarded+s1.PortDrops != 64 {
		t.Errorf("forwarded %d + drops %d != 64 sent", s1.Forwarded, s1.PortDrops)
	}
}

func TestBridgeOccupancyTracksStoreAndForwardQueue(t *testing.T) {
	k := sim.New(1)
	a, b := NewBus(k, DefaultParams()), NewBus(k, DefaultParams())
	br := NewBridge(k, a, b, 100*time.Millisecond) // long queue dwell
	src := a.Attach("src", nil)
	b.Attach("rx", nil)

	for i := 0; i < 4; i++ {
		src.Send(Broadcast, []byte("queued"))
	}
	k.Run()
	s := br.Stats()
	if s.MaxQueued < 2 {
		t.Errorf("MaxQueued = %d, want >= 2 (burst dwells in the 100ms store-and-forward)", s.MaxQueued)
	}
	if s.Queued != 0 {
		t.Errorf("Queued = %d after quiesce, want 0", s.Queued)
	}
	if s.Forwarded != 4 {
		t.Errorf("Forwarded = %d, want 4", s.Forwarded)
	}
	k.Shutdown()
}

// TestTopologyStatsSumTxSuppressed: a down NIC's swallowed sends must
// survive the topology-level aggregation, not just the per-bus stats —
// down-NIC debugging on a bridged world reads World.NetStats.
func TestTopologyStatsSumTxSuppressed(t *testing.T) {
	k := sim.New(1)
	topo := NewTopology(k, 2, DefaultParams(), TopologyConfig{})
	n := topo.Bus(1).Attach("station", nil)
	n.SetDown(true)
	n.Send(Broadcast, []byte("swallowed"))
	k.Run()
	if got := topo.Bus(1).Stats().TxSuppressed; got != 1 {
		t.Errorf("trunk Stats().TxSuppressed = %d, want 1", got)
	}
	if got := topo.Stats().TxSuppressed; got != 1 {
		t.Errorf("Topology.Stats().TxSuppressed = %d, want 1", got)
	}
	k.Shutdown()
}

func TestShapeByName(t *testing.T) {
	for _, tc := range []struct {
		name string
		want Shape
		ok   bool
	}{
		{"", Star, true},
		{"star", Star, true},
		{"linear", Linear, true},
		{"ring", 0, false},
	} {
		got, err := ShapeByName(tc.name)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("ShapeByName(%q) = %v, %v; want %v, ok=%v", tc.name, got, err, tc.want, tc.ok)
		}
	}
}
