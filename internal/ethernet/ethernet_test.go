package ethernet

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"mether/internal/sim"
)

func newTestBus(t *testing.T, p Params) (*sim.Kernel, *Bus) {
	t.Helper()
	k := sim.New(1)
	return k, NewBus(k, p)
}

func TestBroadcastReachesAllButSender(t *testing.T) {
	k, b := newTestBus(t, DefaultParams())
	var got [3]int
	nics := make([]*NIC, 3)
	for i := 0; i < 3; i++ {
		i := i
		nics[i] = b.Attach("n", func() { got[i]++ })
	}
	nics[0].Send(Broadcast, []byte("hello"))
	k.Run()
	if got[0] != 0 {
		t.Error("sender received its own broadcast")
	}
	if got[1] != 1 || got[2] != 1 {
		t.Errorf("receivers got %v interrupts, want 1 each", got)
	}
	f, ok := nics[1].Recv()
	if !ok || !bytes.Equal(f.Payload, []byte("hello")) {
		t.Errorf("frame = %+v, ok=%v", f, ok)
	}
	if f.Src != 0 || f.Dst != Broadcast {
		t.Errorf("frame addressing = src %d dst %d", f.Src, f.Dst)
	}
}

func TestUnicastReachesOnlyTarget(t *testing.T) {
	k, b := newTestBus(t, DefaultParams())
	n0 := b.Attach("a", nil)
	n1 := b.Attach("b", nil)
	n2 := b.Attach("c", nil)
	n0.Send(n2.ID(), []byte{1, 2, 3})
	k.Run()
	if n1.Pending() != 0 {
		t.Error("bystander received unicast frame")
	}
	if n2.Pending() != 1 {
		t.Error("target did not receive unicast frame")
	}
}

func TestSerializationTiming(t *testing.T) {
	p := DefaultParams()
	p.PropDelay = 0
	p.InterFrameGap = 0
	k, b := newTestBus(t, p)
	n0 := b.Attach("tx", nil)
	var arrival time.Duration
	rx := b.Attach("rx", func() { arrival = k.Now() })
	// 8192-byte payload + 46 overhead = 8238 bytes = 65904 bits at 10 Mb/s
	// = 6.5904 ms.
	n0.Send(rx.ID(), make([]byte, 8192))
	k.Run()
	want := time.Duration(8238*8) * time.Second / 10_000_000
	if arrival != want {
		t.Errorf("arrival = %v, want %v", arrival, want)
	}
}

func TestBackToBackFramesSerialize(t *testing.T) {
	p := DefaultParams()
	p.PropDelay = 0
	k, b := newTestBus(t, p)
	n0 := b.Attach("tx", nil)
	var arrivals []time.Duration
	rx := b.Attach("rx", func() { arrivals = append(arrivals, k.Now()) })
	n0.Send(rx.ID(), make([]byte, 1000))
	n0.Send(rx.ID(), make([]byte, 1000))
	k.Run()
	if len(arrivals) != 2 {
		t.Fatalf("got %d arrivals, want 2", len(arrivals))
	}
	per := b.txTime(b.wireBytes(1000))
	if arrivals[0] != per {
		t.Errorf("first arrival %v, want %v", arrivals[0], per)
	}
	wantSecond := 2*per + p.InterFrameGap
	if arrivals[1] != wantSecond {
		t.Errorf("second arrival %v, want %v (serialized)", arrivals[1], wantSecond)
	}
}

func TestMinFramePadding(t *testing.T) {
	k, b := newTestBus(t, DefaultParams())
	n0 := b.Attach("tx", nil)
	b.Attach("rx", nil)
	n0.Send(Broadcast, []byte{1}) // 1+46 = 47 < 64 → padded
	k.Run()
	if got := b.Stats().WireBytes; got != 64 {
		t.Errorf("wire bytes = %d, want 64 (min frame)", got)
	}
	if got := b.Stats().PayloadBytes; got != 1 {
		t.Errorf("payload bytes = %d, want 1", got)
	}
}

func TestRxRingOverflowDrops(t *testing.T) {
	p := DefaultParams()
	p.RxRing = 4
	k, b := newTestBus(t, p)
	n0 := b.Attach("tx", nil)
	rx := b.Attach("rx", nil) // nobody drains the ring
	for i := 0; i < 10; i++ {
		n0.Send(rx.ID(), []byte{byte(i)})
	}
	k.Run()
	if rx.Pending() != 4 {
		t.Errorf("ring holds %d, want 4", rx.Pending())
	}
	if rx.Drops() != 6 {
		t.Errorf("drops = %d, want 6", rx.Drops())
	}
	if b.Stats().RingDrops != 6 {
		t.Errorf("stats drops = %d, want 6", b.Stats().RingDrops)
	}
}

func TestWireLossDropsFrameEverywhere(t *testing.T) {
	p := DefaultParams()
	p.LossRate = 1.0
	k, b := newTestBus(t, p)
	n0 := b.Attach("tx", nil)
	r1 := b.Attach("rx1", nil)
	r2 := b.Attach("rx2", nil)
	n0.Send(Broadcast, []byte("doomed"))
	k.Run()
	if r1.Pending() != 0 || r2.Pending() != 0 {
		t.Error("lost frame was delivered")
	}
	if b.Stats().WireLost != 1 {
		t.Errorf("WireLost = %d, want 1", b.Stats().WireLost)
	}
}

func TestLossIsDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) uint64 {
		k := sim.New(seed)
		p := DefaultParams()
		p.LossRate = 0.5
		b := NewBus(k, p)
		tx := b.Attach("tx", nil)
		b.Attach("rx", nil)
		for i := 0; i < 100; i++ {
			tx.Send(Broadcast, []byte{byte(i)})
		}
		k.Run()
		return b.Stats().WireLost
	}
	if run(7) != run(7) {
		t.Error("same seed gave different loss patterns")
	}
}

func TestPayloadIsCopied(t *testing.T) {
	k, b := newTestBus(t, DefaultParams())
	n0 := b.Attach("tx", nil)
	rx := b.Attach("rx", nil)
	buf := []byte{1, 2, 3}
	n0.Send(rx.ID(), buf)
	buf[0] = 99 // mutate after send
	k.Run()
	f, _ := rx.Recv()
	if f.Payload[0] != 1 {
		t.Error("bus aliased the caller's payload buffer")
	}
}

func TestRecvEmptyRing(t *testing.T) {
	_, b := newTestBus(t, DefaultParams())
	n := b.Attach("n", nil)
	if _, ok := n.Recv(); ok {
		t.Error("Recv on empty ring reported a frame")
	}
}

func TestFIFODeliveryOrder(t *testing.T) {
	k, b := newTestBus(t, DefaultParams())
	n0 := b.Attach("tx", nil)
	rx := b.Attach("rx", nil)
	for i := 0; i < 10; i++ {
		n0.Send(rx.ID(), []byte{byte(i)})
	}
	k.Run()
	for i := 0; i < 10; i++ {
		f, ok := rx.Recv()
		if !ok || f.Payload[0] != byte(i) {
			t.Fatalf("frame %d out of order: %+v ok=%v", i, f, ok)
		}
	}
}

func TestUtilization(t *testing.T) {
	p := DefaultParams()
	p.PropDelay = 0
	p.InterFrameGap = 0
	k, b := newTestBus(t, p)
	n0 := b.Attach("tx", nil)
	rx := b.Attach("rx", nil)
	n0.Send(rx.ID(), make([]byte, 1204)) // 1250 wire bytes = 1ms at 10Mb/s
	end := k.Run()
	if end != time.Millisecond {
		t.Fatalf("run ended at %v, want 1ms", end)
	}
	if u := b.Utilization(end); u < 0.99 || u > 1.01 {
		t.Errorf("utilization = %f, want ~1.0", u)
	}
}

// TestWireBytesProperty: wire size is always >= max(min frame, payload)
// and payload accounting is exact.
func TestWireBytesProperty(t *testing.T) {
	p := DefaultParams()
	prop := func(sz uint16) bool {
		k := sim.New(1)
		b := NewBus(k, p)
		tx := b.Attach("tx", nil)
		b.Attach("rx", nil)
		payload := make([]byte, int(sz)%9000)
		tx.Send(Broadcast, payload)
		k.Run()
		st := b.Stats()
		if st.PayloadBytes != uint64(len(payload)) {
			return false
		}
		want := len(payload) + p.FrameOverhead
		if want < p.MinFrameBytes {
			want = p.MinFrameBytes
		}
		return st.WireBytes == uint64(want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNICDownDropsTraffic(t *testing.T) {
	k, b := newTestBus(t, DefaultParams())
	tx := b.Attach("tx", nil)
	rx := b.Attach("rx", nil)
	rx.SetDown(true)
	tx.Send(Broadcast, []byte("lost"))
	k.RunUntil(100 * time.Millisecond)
	if rx.Pending() != 0 {
		t.Error("down NIC received a frame")
	}
	rx.SetDown(false)
	if rx.Down() {
		t.Error("Down() stuck true")
	}
	tx.Send(Broadcast, []byte("arrives"))
	k.Run()
	if f, ok := rx.Recv(); !ok || string(f.Payload) != "arrives" {
		t.Errorf("after recovery got %q, ok=%v", f.Payload, ok)
	}
}

func TestDownNICCannotTransmit(t *testing.T) {
	k, b := newTestBus(t, DefaultParams())
	tx := b.Attach("tx", nil)
	rx := b.Attach("rx", nil)
	tx.SetDown(true)
	tx.Send(Broadcast, []byte("nope"))
	k.Run()
	if rx.Pending() != 0 {
		t.Error("down NIC transmitted")
	}
	if b.Stats().Frames != 0 {
		t.Error("down NIC's frame hit the wire stats")
	}
}

// TestDownNICCountsSuppressedSends: a swallowed send must leave a
// counter trail — per NIC and in the segment stats — instead of
// vanishing, and recovery must stop the counting.
func TestDownNICCountsSuppressedSends(t *testing.T) {
	k, b := newTestBus(t, DefaultParams())
	tx := b.Attach("tx", nil)
	other := b.Attach("other", nil)
	tx.SetDown(true)
	tx.Send(Broadcast, []byte("one"))
	tx.Send(other.ID(), []byte("two"))
	if got := tx.TxSuppressed(); got != 2 {
		t.Errorf("NIC TxSuppressed = %d, want 2", got)
	}
	if got := b.Stats().TxSuppressed; got != 2 {
		t.Errorf("Stats().TxSuppressed = %d, want 2", got)
	}
	if got := other.TxSuppressed(); got != 0 {
		t.Errorf("bystander TxSuppressed = %d, want 0", got)
	}
	tx.SetDown(false)
	tx.Send(Broadcast, []byte("three"))
	k.Run()
	if got := b.Stats().TxSuppressed; got != 2 {
		t.Errorf("after recovery Stats().TxSuppressed = %d, want 2", got)
	}
	if f, ok := other.Recv(); !ok || string(f.Payload) != "three" {
		t.Errorf("recovered send got %q, ok=%v", f.Payload, ok)
	}
}

// TestUnicastEdgeAddresses: frames to the sender itself or to an
// unattached id reach no one — the indexed lookup must decide these
// exactly as the former all-stations scan did, without panicking.
func TestUnicastEdgeAddresses(t *testing.T) {
	k, b := newTestBus(t, DefaultParams())
	n0 := b.Attach("a", nil)
	n1 := b.Attach("b", nil)
	n0.Send(n0.ID(), []byte("self"))
	n0.Send(99, []byte("nobody"))
	n0.Send(-7, []byte("negative"))
	k.Run()
	if n0.Pending() != 0 || n1.Pending() != 0 {
		t.Errorf("edge-addressed unicasts delivered: pending %d/%d, want 0/0",
			n0.Pending(), n1.Pending())
	}
	if got := b.Stats().Frames; got != 3 {
		t.Errorf("frames transmitted = %d, want 3 (they occupy the wire regardless)", got)
	}
}

// TestViewSharedAndRecycled: a view attached by one receiver is visible
// to the other receivers of the same transmission, handed to the
// OnViewDrop recycler exactly once when the buffer recycles, and never
// leaks into the buffer's next transmission.
func TestViewSharedAndRecycled(t *testing.T) {
	k, b := newTestBus(t, DefaultParams())
	var dropped []any
	b.OnViewDrop(func(v any) { dropped = append(dropped, v) })
	tx := b.Attach("tx", nil)
	r1 := b.Attach("r1", nil)
	r2 := b.Attach("r2", nil)
	tx.Send(Broadcast, []byte("payload"))
	k.Run()

	f1, _ := r1.Recv()
	f2, _ := r2.Recv()
	if f1.View() != nil {
		t.Fatal("fresh frame already has a view")
	}
	view := "decoded"
	f1.SetView(&view)
	if got := f2.View(); got != &view {
		t.Fatalf("second receiver sees view %v, want the one attached by the first", got)
	}
	r1.Release(f1)
	if len(dropped) != 0 {
		t.Fatal("view dropped while a receiver still held the buffer")
	}
	r2.Release(f2)
	if len(dropped) != 1 || dropped[0] != &view {
		t.Fatalf("dropped = %v, want exactly the attached view", dropped)
	}

	// The recycled buffer's next transmission starts view-free.
	tx.Send(Broadcast, []byte("next"))
	k.Run()
	g1, _ := r1.Recv()
	if g1.View() != nil {
		t.Error("recycled buffer leaked the previous transmission's view")
	}
	if len(dropped) != 1 {
		t.Errorf("recycler ran %d times, want 1", len(dropped))
	}
}
