package ethernet

import (
	"testing"
	"time"

	"mether/internal/sim"
)

func TestBridgeForwardsBothWays(t *testing.T) {
	k := sim.New(1)
	a := NewBus(k, DefaultParams())
	b := NewBus(k, DefaultParams())
	br := NewBridge(k, a, b, time.Millisecond)

	hostA := a.Attach("hostA", nil)
	hostB := b.Attach("hostB", nil)

	hostA.Send(Broadcast, []byte("from-a"))
	hostB.Send(Broadcast, []byte("from-b"))
	k.Run()

	fa, ok := hostA.Recv()
	if !ok || string(fa.Payload) != "from-b" {
		t.Errorf("hostA got %q, want from-b", fa.Payload)
	}
	fb, ok := hostB.Recv()
	if !ok || string(fb.Payload) != "from-a" {
		t.Errorf("hostB got %q, want from-a", fb.Payload)
	}
	if br.Forwarded() != 2 {
		t.Errorf("forwarded = %d, want 2", br.Forwarded())
	}
	k.Shutdown()
}

func TestBridgeAddsDelay(t *testing.T) {
	k := sim.New(1)
	a := NewBus(k, DefaultParams())
	b := NewBus(k, DefaultParams())
	NewBridge(k, a, b, 5*time.Millisecond)

	local := a.Attach("local", nil)
	var localAt, remoteAt time.Duration
	a.Attach("sameTrunk", func() { localAt = k.Now() })
	b.Attach("otherTrunk", func() { remoteAt = k.Now() })

	local.Send(Broadcast, []byte("x"))
	k.Run()
	if remoteAt <= localAt {
		t.Errorf("cross-bridge delivery (%v) should lag same-trunk (%v)", remoteAt, localAt)
	}
	if remoteAt-localAt < 5*time.Millisecond {
		t.Errorf("bridge delay not applied: gap %v", remoteAt-localAt)
	}
	k.Shutdown()
}

// TestPurgeOrderingDiffersAcrossTrunks reproduces the paper's argument
// against conventional cache-invalidate protocols on bridged Ethernets:
// two hosts on different trunks broadcast "purges" near-simultaneously,
// and observers on the two trunks see them in opposite orders. With no
// global purge ordering, ownership races cannot be resolved the way
// hardware cache buses resolve them, which is why Mether keeps a single
// consistent copy and abandons global consistency.
func TestPurgeOrderingDiffersAcrossTrunks(t *testing.T) {
	k := sim.New(1)
	a := NewBus(k, DefaultParams())
	b := NewBus(k, DefaultParams())
	br := NewBridge(k, a, b, time.Millisecond)
	// Background traffic piles up toward trunk A.
	br.SetBacklog(4*time.Millisecond, 0)

	hostA := a.Attach("hostA", nil) // issues purge "A"
	hostB := b.Attach("hostB", nil) // issues purge "B"

	var seenOnA, seenOnB []string
	a.Attach("observerA", nil)
	b.Attach("observerB", nil)
	drain := func(n *NIC, into *[]string) {
		for {
			f, ok := n.Recv()
			if !ok {
				return
			}
			*into = append(*into, string(f.Payload))
		}
	}

	// Both purges issued within a microsecond of each other.
	k.At(time.Millisecond, "purgeA", func() { hostA.Send(Broadcast, []byte("purge-A")) })
	k.At(time.Millisecond+time.Microsecond, "purgeB", func() { hostB.Send(Broadcast, []byte("purge-B")) })
	k.Run()

	for _, n := range a.nics {
		if n.Name() == "observerA" {
			drain(n, &seenOnA)
		}
	}
	for _, n := range b.nics {
		if n.Name() == "observerB" {
			drain(n, &seenOnB)
		}
	}

	if len(seenOnA) != 2 || len(seenOnB) != 2 {
		t.Fatalf("observers saw %v / %v, want both purges each", seenOnA, seenOnB)
	}
	if seenOnA[0] == seenOnB[0] {
		t.Errorf("both trunks agreed on purge order (%v vs %v); expected disagreement under asymmetric queueing",
			seenOnA, seenOnB)
	}
	if seenOnA[0] != "purge-A" {
		t.Errorf("trunk A should see its local purge first, got %v", seenOnA)
	}
	if seenOnB[0] != "purge-B" {
		t.Errorf("trunk B should see its local purge first, got %v", seenOnB)
	}
	k.Shutdown()
}

func TestBridgeLoopFreeTopology(t *testing.T) {
	// A chain of three segments forwards end to end (no flooding storms
	// in a loop-free topology).
	k := sim.New(1)
	a := NewBus(k, DefaultParams())
	b := NewBus(k, DefaultParams())
	c := NewBus(k, DefaultParams())
	NewBridge(k, a, b, time.Millisecond)
	NewBridge(k, b, c, time.Millisecond)

	src := a.Attach("src", nil)
	got := 0
	c.Attach("dst", func() { got++ })
	src.Send(Broadcast, []byte("end-to-end"))
	k.Run()
	if got != 1 {
		t.Errorf("end-to-end deliveries = %d, want exactly 1", got)
	}
	k.Shutdown()
}
