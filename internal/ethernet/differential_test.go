package ethernet

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"mether/internal/sim"
)

// The delivery fast path's proof obligation: indexed unicast dispatch
// plus coalesced interrupt wakeups must be observation-identical to the
// original implementation — an O(stations) receiver scan per frame and
// one kernel event per receiver interrupt. This file pits the real Bus
// against refSegment, a from-scratch reimplementation of those original
// semantics, under adversarial random interleavings of unicast,
// broadcast, down/up transitions, wire loss and ring drains, and
// requires identical receive rings, interrupt dispatch order and
// counters.

// refSegment replays the pre-index semantics: every delivery scans all
// stations, every payload is a fresh copy, every interrupt is its own
// kernel event.
type refSegment struct {
	k         *sim.Kernel
	p         Params
	nics      []*refNIC
	busyUntil time.Duration
	frames    uint64
	wireLost  uint64
}

type refNIC struct {
	seg          *refSegment
	id           int
	ring         []refFrame
	head, count  int
	intr         func()
	down         bool
	drops        uint64
	txSuppressed uint64
}

type refFrame struct {
	src, dst int
	payload  []byte
}

func newRefSegment(k *sim.Kernel, p Params) *refSegment {
	return &refSegment{k: k, p: p}
}

func (s *refSegment) attach(intr func()) *refNIC {
	n := &refNIC{seg: s, id: len(s.nics), intr: intr, ring: make([]refFrame, s.p.RxRing)}
	s.nics = append(s.nics, n)
	return n
}

func (n *refNIC) send(dst int, payload []byte) {
	if n.down {
		n.txSuppressed++
		return
	}
	s := n.seg
	buf := append([]byte(nil), payload...)
	wire := len(payload) + s.p.FrameOverhead
	if wire < s.p.MinFrameBytes {
		wire = s.p.MinFrameBytes
	}
	start := s.k.Now()
	if s.busyUntil > start {
		start = s.busyUntil
	}
	dur := time.Duration(int64(wire) * 8 * int64(time.Second) / s.p.BandwidthBps)
	s.busyUntil = start + dur + s.p.InterFrameGap
	s.frames++
	lost := s.p.LossRate > 0 && s.k.Rand().Float64() < s.p.LossRate
	f := refFrame{src: n.id, dst: dst, payload: buf}
	s.k.At(start+dur+s.p.PropDelay, "ref deliver", func() {
		if lost {
			s.wireLost++
			return
		}
		// The original shape: scan every station for every frame.
		for _, rx := range s.nics {
			if rx.id == f.src {
				continue
			}
			if f.dst != Broadcast && f.dst != rx.id {
				continue
			}
			rx.deliver(f)
		}
	})
}

func (n *refNIC) deliver(f refFrame) {
	if n.down {
		return
	}
	if n.count >= len(n.ring) {
		n.drops++
		return
	}
	n.ring[(n.head+n.count)%len(n.ring)] = f
	n.count++
	if n.intr != nil {
		n.intr()
	}
}

func (n *refNIC) recv() (refFrame, bool) {
	if n.count == 0 {
		return refFrame{}, false
	}
	f := n.ring[n.head]
	n.ring[n.head] = refFrame{}
	n.head = (n.head + 1) % len(n.ring)
	n.count--
	return f, true
}

// diffOp is one scripted action, applied identically to both worlds.
type diffOp struct {
	at   time.Duration
	kind int // 0 send, 1 down, 2 up, 3 drain
	nic  int
	dst  int
	size int
	tag  byte
}

// obs is one observable: an interrupt firing or a drained frame.
type obs struct {
	at   time.Duration
	what string
}

// TestDeliveryDifferential scripts random op sequences and requires the
// real Bus (indexed unicast, coalesced wakeups) and the reference
// (scan everything, one event per interrupt) to produce identical
// observation streams and counters.
func TestDeliveryDifferential(t *testing.T) {
	const (
		nics      = 6
		ops       = 120
		intrDelay = 300 * time.Microsecond
	)
	params := DefaultParams()
	params.RxRing = 4      // small enough that overflow drops happen
	params.LossRate = 0.25 // wire loss consumes RNG draws on both sides

	script := func(seed int64) []diffOp {
		rng := rand.New(rand.NewSource(seed))
		var sc []diffOp
		at := time.Duration(0)
		for i := 0; i < ops; i++ {
			at += time.Duration(rng.Intn(2000)) * time.Microsecond
			op := diffOp{at: at, nic: rng.Intn(nics), tag: byte(i)}
			switch r := rng.Intn(10); {
			case r < 5: // send: broadcast, unicast, self, or unattached id
				op.kind = 0
				switch rng.Intn(5) {
				case 0:
					op.dst = Broadcast
				case 1:
					op.dst = op.nic // self: reaches no one
				case 2:
					op.dst = nics + rng.Intn(3) // unattached id
				default:
					op.dst = rng.Intn(nics)
				}
				op.size = 1 + rng.Intn(200)
			case r < 7:
				op.kind = 1 // down
			case r < 9:
				op.kind = 2 // up
			default:
				op.kind = 3 // drain
			}
			sc = append(sc, op)
		}
		return sc
	}

	runReal := func(seed int64, sc []diffOp) ([]obs, []uint64) {
		k := sim.New(seed)
		b := NewBus(k, params)
		var log []obs
		rx := make([]*NIC, nics)
		for i := 0; i < nics; i++ {
			i := i
			fire := func() { log = append(log, obs{k.Now(), fmt.Sprintf("intr %d", i)}) }
			// The driver shape: the NIC interrupt arms a fixed-latency
			// coalescible wakeup with a prebuilt closure.
			rx[i] = b.Attach("n", func() { k.AfterCoalesced(intrDelay, "intr", fire) })
		}
		drain := func(i int) {
			for {
				f, ok := rx[i].Recv()
				if !ok {
					return
				}
				log = append(log, obs{k.Now(), fmt.Sprintf("rx %d: %d->%d tag %d len %d", i, f.Src, f.Dst, f.Payload[0], len(f.Payload))})
				rx[i].Release(f)
			}
		}
		for _, op := range sc {
			op := op
			k.At(op.at, "op", func() {
				switch op.kind {
				case 0:
					buf := make([]byte, op.size)
					buf[0] = op.tag
					rx[op.nic].Send(op.dst, buf)
				case 1:
					rx[op.nic].SetDown(true)
				case 2:
					rx[op.nic].SetDown(false)
				case 3:
					drain(op.nic)
				}
			})
		}
		k.Run()
		for i := 0; i < nics; i++ {
			drain(i) // final ring contents become part of the stream
		}
		st := b.Stats()
		return log, []uint64{st.Frames, st.WireLost, st.RingDrops, st.TxSuppressed}
	}

	runRef := func(seed int64, sc []diffOp) ([]obs, []uint64) {
		k := sim.New(seed)
		s := newRefSegment(k, params)
		var log []obs
		rx := make([]*refNIC, nics)
		for i := 0; i < nics; i++ {
			i := i
			fire := func() { log = append(log, obs{k.Now(), fmt.Sprintf("intr %d", i)}) }
			rx[i] = s.attach(func() { k.After(intrDelay, "intr", fire) })
		}
		drain := func(i int) {
			for {
				f, ok := rx[i].recv()
				if !ok {
					return
				}
				log = append(log, obs{k.Now(), fmt.Sprintf("rx %d: %d->%d tag %d len %d", i, f.src, f.dst, f.payload[0], len(f.payload))})
			}
		}
		for _, op := range sc {
			op := op
			k.At(op.at, "op", func() {
				switch op.kind {
				case 0:
					buf := make([]byte, op.size)
					buf[0] = op.tag
					rx[op.nic].send(op.dst, buf)
				case 1:
					rx[op.nic].down = true
				case 2:
					rx[op.nic].down = false
				case 3:
					drain(op.nic)
				}
			})
		}
		k.Run()
		for i := 0; i < nics; i++ {
			drain(i)
		}
		var drops, sup uint64
		for _, n := range rx {
			drops += n.drops
			sup += n.txSuppressed
		}
		return log, []uint64{s.frames, s.wireLost, drops, sup}
	}

	for seed := int64(1); seed <= 25; seed++ {
		sc := script(seed)
		gotLog, gotStats := runReal(seed, sc)
		wantLog, wantStats := runRef(seed, sc)
		if !reflect.DeepEqual(gotStats, wantStats) {
			t.Fatalf("seed %d: counters diverge: real %v, reference %v", seed, gotStats, wantStats)
		}
		if !reflect.DeepEqual(gotLog, wantLog) {
			max := len(gotLog)
			if len(wantLog) < max {
				max = len(wantLog)
			}
			for i := 0; i < max; i++ {
				if gotLog[i] != wantLog[i] {
					t.Fatalf("seed %d: observation %d diverges:\n real %v %s\n  ref %v %s",
						seed, i, gotLog[i].at, gotLog[i].what, wantLog[i].at, wantLog[i].what)
				}
			}
			t.Fatalf("seed %d: stream lengths diverge: real %d, reference %d", seed, len(gotLog), len(wantLog))
		}
	}
}
