package ethernet

import (
	"testing"

	"mether/internal/sim"
)

// benchBroadcast drives one broadcast frame per iteration through a
// segment with nics stations, each receiver draining (and releasing) its
// ring from the interrupt callback — the Mether server's receive shape.
func benchBroadcast(b *testing.B, nics, payload int) {
	b.Helper()
	k := sim.New(1)
	bus := NewBus(k, DefaultParams())
	rx := make([]*NIC, nics)
	for i := 0; i < nics; i++ {
		i := i
		var n *NIC
		n = bus.Attach("rx", func() {
			for {
				f, ok := n.Recv()
				if !ok {
					return
				}
				n.Release(f)
			}
		})
		rx[i] = n
	}
	tx := bus.Attach("tx", nil)
	buf := make([]byte, payload)
	// Pace sends at the wire's drain rate so in-flight frames stay
	// bounded and the pool reaches steady state (a faster pump would
	// measure queue growth, not the data path).
	pace := bus.txTime(bus.wireBytes(payload)) + bus.p.InterFrameGap + bus.p.PropDelay
	sent := 0
	var pump func()
	pump = func() {
		tx.Send(Broadcast, buf)
		sent++
		if sent < b.N {
			k.After(pace, "pump", pump)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	k.After(0, "pump", pump)
	k.Run()
}

// BenchmarkBusBroadcastShort is the hot packet of the good protocols: a
// 48-byte datagram fanning out to a small cluster.
func BenchmarkBusBroadcastShort(b *testing.B) { benchBroadcast(b, 4, 48) }

// BenchmarkBusBroadcastFull is the 8 KiB full-page transfer fan-out.
func BenchmarkBusBroadcastFull(b *testing.B) { benchBroadcast(b, 4, 8208) }

// BenchmarkBusBroadcastWide fans a short frame out to a 64-NIC segment,
// the large-cluster delivery shape.
func BenchmarkBusBroadcastWide(b *testing.B) { benchBroadcast(b, 64, 48) }
