package ethernet

import (
	"testing"
	"time"

	"mether/internal/sim"
)

// fill sends count minimal frames from tx and runs the kernel so they
// all arrive.
func fill(k *sim.Kernel, tx *NIC, count int) {
	for i := 0; i < count; i++ {
		tx.Send(Broadcast, []byte{byte(i)})
	}
	k.Run()
}

// TestRxRingDropsAtExactCapacity pins the overrun boundary: a ring of
// capacity C accepts exactly C frames; frame C+1 is dropped, the drop
// counter increments, and nothing past the ring is ever delivered.
func TestRxRingDropsAtExactCapacity(t *testing.T) {
	p := DefaultParams()
	p.RxRing = 4
	k := sim.New(1)
	bus := NewBus(k, p)
	rx := bus.Attach("rx", nil) // no interrupt: nothing drains the ring
	tx := bus.Attach("tx", nil)

	fill(k, tx, p.RxRing)
	if got := rx.Pending(); got != p.RxRing {
		t.Fatalf("ring holds %d frames at capacity, want %d", got, p.RxRing)
	}
	if rx.Drops() != 0 {
		t.Fatalf("drops = %d before overrun, want 0", rx.Drops())
	}

	// One past capacity: dropped, counted, not delivered.
	fill(k, tx, 1)
	if got := rx.Pending(); got != p.RxRing {
		t.Errorf("ring grew past capacity: %d frames", got)
	}
	if rx.Drops() != 1 {
		t.Errorf("drops = %d after one overrun, want 1", rx.Drops())
	}

	// A burst far past capacity: every excess frame is one drop.
	fill(k, tx, 10)
	if rx.Drops() != 11 {
		t.Errorf("drops = %d after burst, want 11", rx.Drops())
	}

	// The ring's contents are the first C frames, in order; the dropped
	// ones left no trace.
	for i := 0; i < p.RxRing; i++ {
		f, ok := rx.Recv()
		if !ok {
			t.Fatalf("ring empty after %d frames, want %d", i, p.RxRing)
		}
		if f.Payload[0] != byte(i) {
			t.Errorf("frame %d payload = %d, want %d (FIFO violated)", i, f.Payload[0], i)
		}
		rx.Release(f)
	}
	if _, ok := rx.Recv(); ok {
		t.Error("frame delivered past ring capacity")
	}
}

// TestRxRingDrainReopensRing proves the ring is circular, not one-shot:
// after an overrun, draining frames makes room again and wraparound
// preserves FIFO order.
func TestRxRingDrainReopensRing(t *testing.T) {
	p := DefaultParams()
	p.RxRing = 3
	k := sim.New(1)
	bus := NewBus(k, p)
	rx := bus.Attach("rx", nil)
	tx := bus.Attach("tx", nil)

	fill(k, tx, 5) // 3 delivered, 2 dropped
	if rx.Drops() != 2 {
		t.Fatalf("drops = %d, want 2", rx.Drops())
	}
	// Drain two slots, then refill: the wrapped slots must accept frames.
	for i := 0; i < 2; i++ {
		f, ok := rx.Recv()
		if !ok {
			t.Fatal("ring underflow")
		}
		if f.Payload[0] != byte(i) {
			t.Errorf("frame %d payload = %d, want %d", i, f.Payload[0], i)
		}
		rx.Release(f)
	}
	fill(k, tx, 2)
	if got := rx.Pending(); got != 3 {
		t.Fatalf("ring holds %d after refill, want 3", got)
	}
	want := []byte{2, 0, 1} // frame 2 survived; the refill (0, 1) wrapped in
	for i, w := range want {
		f, ok := rx.Recv()
		if !ok {
			t.Fatal("ring underflow")
		}
		if f.Payload[0] != w {
			t.Errorf("frame %d payload = %d, want %d", i, f.Payload[0], w)
		}
		rx.Release(f)
	}
}

// TestRxRingZeroCapacityDropsEverything covers the degenerate ring.
func TestRxRingZeroCapacityDropsEverything(t *testing.T) {
	p := DefaultParams()
	p.RxRing = 0
	k := sim.New(1)
	bus := NewBus(k, p)
	rx := bus.Attach("rx", nil)
	tx := bus.Attach("tx", nil)
	fill(k, tx, 3)
	if rx.Pending() != 0 || rx.Drops() != 3 {
		t.Errorf("pending=%d drops=%d, want 0 and 3", rx.Pending(), rx.Drops())
	}
}

// TestReleasedBuffersAreRecycled proves the pooled data path reuses
// payload buffers once every receiver has released them, and that the
// recycled buffer carries the new payload (no aliasing of live frames).
func TestReleasedBuffersAreRecycled(t *testing.T) {
	p := DefaultParams()
	k := sim.New(1)
	bus := NewBus(k, p)
	rx := bus.Attach("rx", nil)
	tx := bus.Attach("tx", nil)

	tx.Send(rx.ID(), []byte{0xAA, 0xBB})
	k.Run()
	f1, ok := rx.Recv()
	if !ok {
		t.Fatal("frame not delivered")
	}
	first := &f1.Payload[0]
	rx.Release(f1)
	if len(bus.free) != 1 {
		t.Fatalf("pool holds %d buffers after release, want 1", len(bus.free))
	}

	tx.Send(rx.ID(), []byte{0x11, 0x22})
	k.Run()
	f2, ok := rx.Recv()
	if !ok {
		t.Fatal("second frame not delivered")
	}
	if &f2.Payload[0] != first {
		t.Error("released buffer was not recycled for the next send")
	}
	if f2.Payload[0] != 0x11 || f2.Payload[1] != 0x22 {
		t.Errorf("recycled buffer carries stale bytes % x", f2.Payload)
	}
}

// TestBroadcastBufferSharedUntilAllRelease proves a broadcast's buffer
// is shared by every receiver and only returns to the pool when the
// last one releases it.
func TestBroadcastBufferSharedUntilAllRelease(t *testing.T) {
	p := DefaultParams()
	k := sim.New(1)
	bus := NewBus(k, p)
	a := bus.Attach("a", nil)
	b := bus.Attach("b", nil)
	tx := bus.Attach("tx", nil)

	tx.Send(Broadcast, []byte{7})
	k.Run()
	fa, _ := a.Recv()
	fb, _ := b.Recv()
	if &fa.Payload[0] != &fb.Payload[0] {
		t.Fatal("broadcast receivers should share one payload buffer")
	}
	a.Release(fa)
	if len(bus.free) != 0 {
		t.Fatal("buffer recycled while another receiver still holds it")
	}
	b.Release(fb)
	if len(bus.free) != 1 {
		t.Fatalf("pool holds %d buffers after final release, want 1", len(bus.free))
	}
}

// TestBridgeForwardingUnderOverflow floods a bridge port past its ring
// capacity: the bridge must forward exactly the frames its ring
// accepted, count the rest as drops, and keep forwarding afterwards.
func TestBridgeForwardingUnderOverflow(t *testing.T) {
	p := DefaultParams()
	p.RxRing = 2
	k := sim.New(1)
	segA := NewBus(k, p)
	segB := NewBus(k, p)
	br := NewBridge(k, segA, segB, 100*time.Microsecond)

	sink := segB.Attach("sink", nil)

	// The bridge drains its port ring from the interrupt callback, so a
	// burst serialized on the shared medium cannot overrun it — but the
	// far side can: the bridge re-transmits onto segment B whose sink
	// never drains. Send a burst and verify both properties.
	burst := 6
	txs := make([]*NIC, burst)
	for i := range txs {
		txs[i] = segA.Attach("tx", nil)
	}
	for i, tx := range txs {
		tx.Send(Broadcast, []byte{byte(i)})
	}
	k.Run()
	if got := br.Forwarded(); got != uint64(burst) {
		t.Fatalf("bridge forwarded %d frames, want %d", got, burst)
	}
	got := 0
	for {
		f, ok := sink.Recv()
		if !ok {
			break
		}
		if int(f.Payload[0]) != got {
			t.Errorf("forwarded frame %d carries payload %d", got, f.Payload[0])
		}
		sink.Release(f)
		got++
	}
	// The sink's own ring capacity (2) bounds what survives the far
	// side: the bridge re-serializes frames onto segment B faster than
	// the sink drains (it never drains), so exactly RxRing survive and
	// the rest are sink-side ring drops.
	if got != p.RxRing {
		t.Errorf("sink received %d frames, want %d (ring-bounded)", got, p.RxRing)
	}
	if sink.Drops() != uint64(burst-p.RxRing) {
		t.Errorf("sink drops = %d, want %d", sink.Drops(), burst-p.RxRing)
	}
}
