package ethernet

import (
	"testing"
	"time"

	"mether/internal/sim"
)

// fill sends count minimal frames from tx and runs the kernel so they
// all arrive.
func fill(k *sim.Kernel, tx *NIC, count int) {
	for i := 0; i < count; i++ {
		tx.Send(Broadcast, []byte{byte(i)})
	}
	k.Run()
}

// TestRxRingDropsAtExactCapacity pins the overrun boundary: a ring of
// capacity C accepts exactly C frames; frame C+1 is dropped, the drop
// counter increments, and nothing past the ring is ever delivered.
func TestRxRingDropsAtExactCapacity(t *testing.T) {
	p := DefaultParams()
	p.RxRing = 4
	k := sim.New(1)
	bus := NewBus(k, p)
	rx := bus.Attach("rx", nil) // no interrupt: nothing drains the ring
	tx := bus.Attach("tx", nil)

	fill(k, tx, p.RxRing)
	if got := rx.Pending(); got != p.RxRing {
		t.Fatalf("ring holds %d frames at capacity, want %d", got, p.RxRing)
	}
	if rx.Drops() != 0 {
		t.Fatalf("drops = %d before overrun, want 0", rx.Drops())
	}

	// One past capacity: dropped, counted, not delivered.
	fill(k, tx, 1)
	if got := rx.Pending(); got != p.RxRing {
		t.Errorf("ring grew past capacity: %d frames", got)
	}
	if rx.Drops() != 1 {
		t.Errorf("drops = %d after one overrun, want 1", rx.Drops())
	}

	// A burst far past capacity: every excess frame is one drop.
	fill(k, tx, 10)
	if rx.Drops() != 11 {
		t.Errorf("drops = %d after burst, want 11", rx.Drops())
	}

	// The ring's contents are the first C frames, in order; the dropped
	// ones left no trace.
	for i := 0; i < p.RxRing; i++ {
		f, ok := rx.Recv()
		if !ok {
			t.Fatalf("ring empty after %d frames, want %d", i, p.RxRing)
		}
		if f.Payload[0] != byte(i) {
			t.Errorf("frame %d payload = %d, want %d (FIFO violated)", i, f.Payload[0], i)
		}
		rx.Release(f)
	}
	if _, ok := rx.Recv(); ok {
		t.Error("frame delivered past ring capacity")
	}
}

// TestRxRingDrainReopensRing proves the ring is circular, not one-shot:
// after an overrun, draining frames makes room again and wraparound
// preserves FIFO order.
func TestRxRingDrainReopensRing(t *testing.T) {
	p := DefaultParams()
	p.RxRing = 3
	k := sim.New(1)
	bus := NewBus(k, p)
	rx := bus.Attach("rx", nil)
	tx := bus.Attach("tx", nil)

	fill(k, tx, 5) // 3 delivered, 2 dropped
	if rx.Drops() != 2 {
		t.Fatalf("drops = %d, want 2", rx.Drops())
	}
	// Drain two slots, then refill: the wrapped slots must accept frames.
	for i := 0; i < 2; i++ {
		f, ok := rx.Recv()
		if !ok {
			t.Fatal("ring underflow")
		}
		if f.Payload[0] != byte(i) {
			t.Errorf("frame %d payload = %d, want %d", i, f.Payload[0], i)
		}
		rx.Release(f)
	}
	fill(k, tx, 2)
	if got := rx.Pending(); got != 3 {
		t.Fatalf("ring holds %d after refill, want 3", got)
	}
	want := []byte{2, 0, 1} // frame 2 survived; the refill (0, 1) wrapped in
	for i, w := range want {
		f, ok := rx.Recv()
		if !ok {
			t.Fatal("ring underflow")
		}
		if f.Payload[0] != w {
			t.Errorf("frame %d payload = %d, want %d", i, f.Payload[0], w)
		}
		rx.Release(f)
	}
}

// TestRxRingZeroCapacityDropsEverything covers the degenerate ring.
func TestRxRingZeroCapacityDropsEverything(t *testing.T) {
	p := DefaultParams()
	p.RxRing = 0
	k := sim.New(1)
	bus := NewBus(k, p)
	rx := bus.Attach("rx", nil)
	tx := bus.Attach("tx", nil)
	fill(k, tx, 3)
	if rx.Pending() != 0 || rx.Drops() != 3 {
		t.Errorf("pending=%d drops=%d, want 0 and 3", rx.Pending(), rx.Drops())
	}
}

// TestReleasedBuffersAreRecycled proves the pooled data path reuses
// payload buffers once every receiver has released them, and that the
// recycled buffer carries the new payload (no aliasing of live frames).
func TestReleasedBuffersAreRecycled(t *testing.T) {
	p := DefaultParams()
	k := sim.New(1)
	bus := NewBus(k, p)
	rx := bus.Attach("rx", nil)
	tx := bus.Attach("tx", nil)

	tx.Send(rx.ID(), []byte{0xAA, 0xBB})
	k.Run()
	f1, ok := rx.Recv()
	if !ok {
		t.Fatal("frame not delivered")
	}
	first := &f1.Payload[0]
	rx.Release(f1)
	if _, free := bus.PoolStats(); free != 1 {
		t.Fatalf("pool holds %d buffers after release, want 1", free)
	}

	tx.Send(rx.ID(), []byte{0x11, 0x22})
	k.Run()
	f2, ok := rx.Recv()
	if !ok {
		t.Fatal("second frame not delivered")
	}
	if &f2.Payload[0] != first {
		t.Error("released buffer was not recycled for the next send")
	}
	if f2.Payload[0] != 0x11 || f2.Payload[1] != 0x22 {
		t.Errorf("recycled buffer carries stale bytes % x", f2.Payload)
	}
}

// TestBroadcastBufferSharedUntilAllRelease proves a broadcast's buffer
// is shared by every receiver and only returns to the pool when the
// last one releases it.
func TestBroadcastBufferSharedUntilAllRelease(t *testing.T) {
	p := DefaultParams()
	k := sim.New(1)
	bus := NewBus(k, p)
	a := bus.Attach("a", nil)
	b := bus.Attach("b", nil)
	tx := bus.Attach("tx", nil)

	tx.Send(Broadcast, []byte{7})
	k.Run()
	fa, _ := a.Recv()
	fb, _ := b.Recv()
	if &fa.Payload[0] != &fb.Payload[0] {
		t.Fatal("broadcast receivers should share one payload buffer")
	}
	a.Release(fa)
	if _, free := bus.PoolStats(); free != 0 {
		t.Fatal("buffer recycled while another receiver still holds it")
	}
	b.Release(fb)
	if _, free := bus.PoolStats(); free != 1 {
		t.Fatalf("pool holds %d buffers after final release, want 1", free)
	}
}

// TestBridgeForwardingUnderOverflow floods a bridge port past its ring
// capacity: the bridge must forward exactly the frames its ring
// accepted, count the rest as drops, and keep forwarding afterwards.
func TestBridgeForwardingUnderOverflow(t *testing.T) {
	p := DefaultParams()
	p.RxRing = 2
	k := sim.New(1)
	segA := NewBus(k, p)
	segB := NewBus(k, p)
	br := NewBridge(k, segA, segB, 100*time.Microsecond)

	sink := segB.Attach("sink", nil)

	// The bridge drains its port ring from the interrupt callback, so a
	// burst serialized on the shared medium cannot overrun it — but the
	// far side can: the bridge re-transmits onto segment B whose sink
	// never drains. Send a burst and verify both properties.
	burst := 6
	txs := make([]*NIC, burst)
	for i := range txs {
		txs[i] = segA.Attach("tx", nil)
	}
	for i, tx := range txs {
		tx.Send(Broadcast, []byte{byte(i)})
	}
	k.Run()
	if got := br.Forwarded(); got != uint64(burst) {
		t.Fatalf("bridge forwarded %d frames, want %d", got, burst)
	}
	got := 0
	for {
		f, ok := sink.Recv()
		if !ok {
			break
		}
		if int(f.Payload[0]) != got {
			t.Errorf("forwarded frame %d carries payload %d", got, f.Payload[0])
		}
		sink.Release(f)
		got++
	}
	// The sink's own ring capacity (2) bounds what survives the far
	// side: the bridge re-serializes frames onto segment B faster than
	// the sink drains (it never drains), so exactly RxRing survive and
	// the rest are sink-side ring drops.
	if got != p.RxRing {
		t.Errorf("sink received %d frames, want %d (ring-bounded)", got, p.RxRing)
	}
	if sink.Drops() != uint64(burst-p.RxRing) {
		t.Errorf("sink drops = %d, want %d", sink.Drops(), burst-p.RxRing)
	}
}

// TestLazyRingGrowsOnDemand pins the physically-lazy ring: a deep drop
// bound costs nothing until frames actually queue, the backing array
// doubles as occupancy grows, FIFO order survives every growth unwrap,
// and the logical capacity still bounds drops exactly.
func TestLazyRingGrowsOnDemand(t *testing.T) {
	p := DefaultParams()
	k := sim.New(1)
	bus := NewBus(k, p)
	rx := bus.AttachWithRing("rx", nil, 1024)
	tx := bus.Attach("tx", nil)

	// The bound is logical: nothing is allocated for an idle ring.
	if rx.RingCap() != 1024 {
		t.Fatalf("ring cap = %d, want 1024", rx.RingCap())
	}
	if got := rx.MemFootprint(); got > 512 {
		t.Errorf("idle 1024-slot ring costs %d bytes, want O(struct) only", got)
	}

	// Fill past several doublings; count and order must be exact.
	fill(k, tx, 100)
	if rx.Pending() != 100 {
		t.Fatalf("pending = %d, want 100", rx.Pending())
	}
	if rx.Drops() != 0 {
		t.Fatalf("drops = %d below the bound, want 0", rx.Drops())
	}
	for i := 0; i < 100; i++ {
		f, ok := rx.Recv()
		if !ok {
			t.Fatalf("ring underflow at %d", i)
		}
		if f.Payload[0] != byte(i) {
			t.Fatalf("frame %d payload = %d, want %d (FIFO broken by growth)", i, f.Payload[0], i)
		}
		rx.Release(f)
	}
}

// TestLazyRingGrowthUnwrapsWrappedFIFO drives the nastiest growth case:
// the ring grows while its contents wrap around the physical array, so
// the copy must unwrap head..tail into the new array in order.
func TestLazyRingGrowthUnwrapsWrappedFIFO(t *testing.T) {
	p := DefaultParams()
	k := sim.New(1)
	bus := NewBus(k, p)
	rx := bus.AttachWithRing("rx", nil, 64)
	tx := bus.Attach("tx", nil)

	// Fill to the initial physical size (8), drain a few so head > 0,
	// refill so the occupancy wraps, then overflow the physical array.
	fill(k, tx, 8)
	for i := 0; i < 5; i++ {
		f, ok := rx.Recv()
		if !ok || f.Payload[0] != byte(i) {
			t.Fatalf("prefill drain %d: ok=%v", i, ok)
		}
		rx.Release(f)
	}
	fill(k, tx, 20) // wraps within 8 slots, then forces growth mid-wrap
	// Expected FIFO: the three survivors of the first burst (5, 6, 7),
	// then the second burst's 0..19 in send order.
	want := []byte{5, 6, 7}
	for i := byte(0); i < 20; i++ {
		want = append(want, i)
	}
	for i, w := range want {
		f, ok := rx.Recv()
		if !ok {
			t.Fatalf("ring underflow at %d", i)
		}
		if f.Payload[0] != w {
			t.Fatalf("frame %d payload = %d, want %d (unwrap order broken)", i, f.Payload[0], w)
		}
		rx.Release(f)
	}
	if rx.Pending() != 0 {
		t.Errorf("ring holds %d leftovers", rx.Pending())
	}
}

// TestRingHighWaterTracksPeakOccupancy pins the fan-in measurement the
// windowed tiers size their rings by: high water is the peak pending
// count, monotone, capped by the logical capacity, and surfaced through
// Bus.Stats as a max across NICs (never a sum).
func TestRingHighWaterTracksPeakOccupancy(t *testing.T) {
	p := DefaultParams()
	k := sim.New(1)
	bus := NewBus(k, p)
	rx := bus.AttachWithRing("rx", nil, 16)
	quiet := bus.AttachWithRing("quiet", nil, 16)
	tx := bus.Attach("tx", nil)

	fill(k, tx, 10)
	if hw := rx.RingHighWater(); hw != 10 {
		t.Errorf("high water = %d after 10 queued, want 10", hw)
	}
	// Draining must not lower it; modest refills must not raise it.
	for rx.Pending() > 0 {
		f, _ := rx.Recv()
		rx.Release(f)
	}
	for quiet.Pending() > 0 {
		f, _ := quiet.Recv()
		quiet.Release(f)
	}
	fill(k, tx, 3)
	if hw := rx.RingHighWater(); hw != 10 {
		t.Errorf("high water = %d after drain+3, want 10 (monotone peak)", hw)
	}
	// Overflow: occupancy can never exceed the bound, so neither can the
	// peak.
	fill(k, tx, 40)
	if hw := rx.RingHighWater(); hw != 16 {
		t.Errorf("high water = %d after overflow, want cap 16", hw)
	}
	if got := bus.Stats().RingHighWater; got != 16 {
		t.Errorf("Stats().RingHighWater = %d, want max 16, not a sum", got)
	}
}

// TestAttachWithRingRoleAwareSizing proves per-NIC bounds coexist on
// one bus: a server with a deep ring absorbs a burst that a default
// client ring drops, drop accounting stays per-NIC, and Attach remains
// exactly AttachWithRing(default).
func TestAttachWithRingRoleAwareSizing(t *testing.T) {
	p := DefaultParams()
	p.RxRing = 4
	k := sim.New(1)
	bus := NewBus(k, p)
	server := bus.AttachWithRing("server", nil, 64)
	client := bus.Attach("client", nil)
	tx := bus.Attach("tx", nil)

	if client.RingCap() != 4 {
		t.Fatalf("Attach ring cap = %d, want params default 4", client.RingCap())
	}
	fill(k, tx, 20)
	if server.Pending() != 20 || server.Drops() != 0 {
		t.Errorf("server pending=%d drops=%d, want 20 and 0", server.Pending(), server.Drops())
	}
	if client.Pending() != 4 || client.Drops() != 16 {
		t.Errorf("client pending=%d drops=%d, want 4 and 16", client.Pending(), client.Drops())
	}
}
