// Package ethernet simulates a shared 10 Mb/s broadcast Ethernet segment
// of the kind Mether ran on: a single serialized medium with per-frame
// framing overhead, propagation delay, optional random frame loss, and
// finite per-NIC receive rings whose overflow silently drops frames.
//
// The model is deliberately simple — frames are serialized in FIFO order
// rather than via CSMA/CD contention — because the paper's protocols are
// sensitive to bandwidth, per-packet cost, broadcast fan-out and loss,
// not to collision micro-behaviour.
//
// The data path is pooled: payload buffers are refcounted and recycled
// through a per-bus freelist, and each NIC's receive ring is a fixed
// circular buffer sized at attach time, so steady-state traffic does not
// allocate. Receivers that are done with a frame should hand it back
// with NIC.Release; receivers that never release (taps, tests) merely
// opt out of recycling — the shared buffer is garbage collected once
// every holder drops it.
package ethernet

import (
	"fmt"
	"time"
	"unsafe"

	"mether/internal/sim"
)

// Broadcast is the destination address that delivers a frame to every
// attached NIC except the sender.
const Broadcast = -1

// Params configures the simulated segment. The zero value is not useful;
// start from DefaultParams.
type Params struct {
	// BandwidthBps is the raw signalling rate in bits per second.
	BandwidthBps int64
	// PropDelay is the propagation delay from transmitter to every
	// receiver.
	PropDelay time.Duration
	// FrameOverhead is the per-frame byte overhead added to the payload
	// on the wire (Ethernet header+FCS plus IP/UDP headers: Mether used
	// UDP/IP datagrams).
	FrameOverhead int
	// MinFrameBytes is the minimum wire size of a frame; shorter frames
	// are padded (affects timing and wire-byte accounting).
	MinFrameBytes int
	// InterFrameGap is idle time enforced between frames.
	InterFrameGap time.Duration
	// LossRate is the probability that a transmitted frame is corrupted
	// and delivered to no receiver.
	LossRate float64
	// RxRing is the per-NIC receive ring capacity; arrivals beyond it
	// are dropped (receiver overrun, the era's common loss mode).
	RxRing int
}

// DefaultParams returns the 10 Mb/s Ethernet + UDP/IP model used for the
// paper reproduction: 46 bytes of header overhead (18 Ethernet + 20 IP +
// 8 UDP), 64-byte minimum frames and a 32-frame receive ring.
func DefaultParams() Params {
	return Params{
		BandwidthBps:  10_000_000,
		PropDelay:     50 * time.Microsecond,
		FrameOverhead: 46,
		MinFrameBytes: 64,
		InterFrameGap: 10 * time.Microsecond,
		LossRate:      0,
		RxRing:        32,
	}
}

// frameBuf is a pooled payload buffer shared by every receiver of one
// transmission. refs counts ring slots (and in-flight deliveries) still
// holding the buffer; it returns to the freelist at zero. view is the
// decode-once cache: the first receiver to parse the payload attaches
// its decoded form here and every later receiver of the same
// transmission reuses it, so a broadcast is parsed once instead of once
// per station. The view shares the buffer's lifetime exactly — it is
// handed to the bus's view recycler (and detached) at the same instant
// the buffer's refcount reaches zero.
type frameBuf struct {
	data []byte // full-capacity backing array
	refs int
	view any
}

// Frame is one datagram on the segment. Payload is valid until the
// receiver calls Release (or indefinitely for receivers that never
// release); the bus copies the sender's bytes on Send, so one buffer is
// shared by all receivers of a broadcast.
type Frame struct {
	Src     int // sending NIC id
	Dst     int // receiving NIC id or Broadcast
	Payload []byte

	buf *frameBuf // pool bookkeeping; nil for zero-value Frames
}

// Stats aggregates segment-wide counters.
type Stats struct {
	Frames       uint64 // frames transmitted
	WireBytes    uint64 // bytes on the wire including overhead and padding
	PayloadBytes uint64 // payload bytes only
	WireLost     uint64 // frames corrupted on the wire (LossRate)
	RingDrops    uint64 // per-receiver drops due to full rings
	TxSuppressed uint64 // sends swallowed because the transmitting NIC was down
	// RingHighWater is the peak receive-ring occupancy of any NIC on the
	// segment: the evidence that a ring's configured capacity was (or was
	// not) actually needed. Aggregated by max, never summed.
	RingHighWater int
	BusyTime      time.Duration
}

// Bus is one shared segment. Attach NICs before sending. NIC ids are
// dense indexes into the attach order, so the id→NIC lookup that makes
// unicast delivery O(1) is the nics slice itself.
type Bus struct {
	k         *sim.Kernel
	p         Params
	nics      []*NIC
	busyUntil time.Duration
	stats     Stats
	free      []*frameBuf // payload buffer pool
	freeDeliv []*delivery // delivery-event pool
	// allocated counts payload buffers ever created for this bus; with
	// every receiver releasing its frames, a quiescent bus has all of
	// them back on the freelist (see PoolStats).
	allocated int
	// viewDrop, when set, receives each payload buffer's decode-once
	// view as the buffer is recycled, so the layer that attached the
	// view (which this package knows nothing about) can pool it.
	viewDrop func(any)
}

// delivery is a pooled in-flight transmission: the frame plus two
// pre-built event closures — one per delivery shape — so Send schedules
// either path without allocating. Unicast resolves its single receiver
// by indexed lookup; only broadcast still walks the stations.
type delivery struct {
	b    *Bus
	f    Frame
	lost bool
	// fnU completes a unicast (single indexed receiver); fnB completes a
	// broadcast (fan-out over every attached NIC).
	fnU func()
	fnB func()
}

// NewBus creates a segment driven by kernel k.
func NewBus(k *sim.Kernel, p Params) *Bus {
	if p.BandwidthBps <= 0 {
		panic("ethernet: BandwidthBps must be positive")
	}
	return &Bus{k: k, p: p}
}

// Params returns the segment's configuration.
func (b *Bus) Params() Params { return b.p }

// Stats returns a snapshot of the segment counters. Ring drops and
// suppressed transmissions are summed over all NICs; the ring high-water
// mark is the max.
func (b *Bus) Stats() Stats {
	s := b.stats
	for _, n := range b.nics {
		s.RingDrops += n.drops
		s.TxSuppressed += n.txSuppressed
		if n.highWater > s.RingHighWater {
			s.RingHighWater = n.highWater
		}
	}
	return s
}

// Utilization returns the fraction of wall time the wire was busy.
func (b *Bus) Utilization(wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return float64(b.stats.BusyTime) / float64(wall)
}

// acquire takes a payload buffer of length n from the pool.
func (b *Bus) acquire(n int) *frameBuf {
	if l := len(b.free); l > 0 {
		fb := b.free[l-1]
		b.free[l-1] = nil
		b.free = b.free[:l-1]
		if cap(fb.data) < n {
			fb.data = make([]byte, n)
		}
		fb.data = fb.data[:n]
		fb.refs = 0
		return fb
	}
	b.allocated++
	return &frameBuf{data: make([]byte, n)}
}

// MemFootprint returns the segment's structural memory footprint in
// bytes: every NIC's physically allocated ring plus the pooled payload
// buffers and delivery records currently on the freelists. Like the
// driver's footprint walk it is a deterministic function of simulated
// behaviour, never of runtime heap state.
func (b *Bus) MemFootprint() uint64 {
	m := uint64(unsafe.Sizeof(*b))
	for _, n := range b.nics {
		m += uint64(unsafe.Sizeof(n)) + n.MemFootprint()
	}
	for _, fb := range b.free {
		m += uint64(unsafe.Sizeof(*fb)) + uint64(cap(fb.data))
	}
	m += uint64(cap(b.free)) * uint64(unsafe.Sizeof((*frameBuf)(nil)))
	m += uint64(cap(b.freeDeliv)) * uint64(unsafe.Sizeof((*delivery)(nil)))
	m += uint64(len(b.freeDeliv)) * uint64(unsafe.Sizeof(delivery{}))
	return m
}

// PoolStats reports the payload-buffer pool's bookkeeping: buffers ever
// allocated and buffers currently on the freelist. On a quiescent bus
// whose receivers release every frame they consume the two are equal;
// a gap is a leaked (never-released) buffer. Leak-detecting tests
// assert exactly that across protocol exchanges.
func (b *Bus) PoolStats() (allocated, free int) {
	return b.allocated, len(b.free)
}

// releaseBuf drops one reference, recycling the buffer at zero. The
// buffer's decode-once view is detached (and handed to the view
// recycler) at the same instant: the view aliases the payload bytes, so
// it must not outlive the buffer's current contents.
func (b *Bus) releaseBuf(fb *frameBuf) {
	if fb == nil || fb.refs <= 0 {
		return
	}
	fb.refs--
	if fb.refs == 0 {
		if fb.view != nil {
			if b.viewDrop != nil {
				b.viewDrop(fb.view)
			}
			fb.view = nil
		}
		b.free = append(b.free, fb)
	}
}

// OnViewDrop registers the recycler invoked with a buffer's decode-once
// view when the buffer returns to the pool. Typically wired by the world
// builder to the protocol layer's view pool.
func (b *Bus) OnViewDrop(fn func(any)) { b.viewDrop = fn }

// Attach adds a NIC to the segment with the segment-default ring
// capacity (Params.RxRing). intr is invoked in kernel event context
// whenever a frame is queued into the NIC's receive ring; it is
// typically wired to a host interrupt that wakes the Mether server.
func (b *Bus) Attach(name string, intr func()) *NIC {
	return b.AttachWithRing(name, intr, b.p.RxRing)
}

// AttachWithRing adds a NIC with an explicit receive-ring capacity,
// overriding the segment default. Only hosts that see fan-in bursts
// (owners and servers at the large tiers) need deep rings; sizing by
// role keeps a world's ring memory proportional to its real fan-in
// instead of hosts × uniform-worst-case.
func (b *Bus) AttachWithRing(name string, intr func(), ringCap int) *NIC {
	if ringCap < 0 {
		ringCap = 0
	}
	n := &NIC{bus: b, id: len(b.nics), name: name, intr: intr, ringCap: ringCap}
	b.nics = append(b.nics, n)
	return n
}

// NIC is one station on the segment. Its receive ring is a circular
// buffer bounded by ringCap logical slots: arrivals beyond the bound
// are dropped exactly as a fixed ring of that size would, but the
// backing array starts empty and doubles with actual occupancy, so an
// idle or lightly-loaded station never pays for its worst case.
type NIC struct {
	bus     *Bus
	id      int
	name    string
	ring    []Frame // circular physical storage; grows up to ringCap
	ringCap int     // logical capacity: the drop threshold
	head    int
	count   int
	// highWater is the peak occupancy ever reached — the measured fan-in
	// that proves (or disproves) the configured capacity was needed.
	highWater int
	intr      func()
	drops     uint64
	// txSuppressed counts Send calls swallowed because the station was
	// down. Before the counter existed these vanished without a trace,
	// which made down-NIC scenarios undebuggable: the sender's protocol
	// counters said a request went out, the wire counters said nothing
	// did, and no counter explained the difference.
	txSuppressed uint64
	down         bool
}

// SetDown takes the station off the wire (or back on): while down it
// neither receives nor transmits, modelling the paper's "hosts may
// become unreachable for a period of time and yet still have a copy of
// the page". State held in the host is untouched.
func (n *NIC) SetDown(down bool) { n.down = down }

// Down reports whether the station is off the wire.
func (n *NIC) Down() bool { return n.down }

// ID returns the NIC's address on the segment.
func (n *NIC) ID() int { return n.id }

// Name returns the diagnostic name given at Attach.
func (n *NIC) Name() string { return n.name }

// Drops returns the number of frames dropped because this NIC's receive
// ring was full.
func (n *NIC) Drops() uint64 { return n.drops }

// TxSuppressed returns the number of Send calls swallowed because this
// NIC was down at the time.
func (n *NIC) TxSuppressed() uint64 { return n.txSuppressed }

// Pending returns the number of frames waiting in the receive ring.
func (n *NIC) Pending() int { return n.count }

// RingHighWater returns the peak receive-ring occupancy this NIC ever
// reached.
func (n *NIC) RingHighWater() int { return n.highWater }

// RingCap returns the logical receive-ring capacity (the drop bound).
func (n *NIC) RingCap() int { return n.ringCap }

// MemFootprint returns the NIC's structural memory footprint in bytes
// (the physically allocated ring slots — the lazily grown array, not
// the logical bound).
func (n *NIC) MemFootprint() uint64 {
	return uint64(unsafe.Sizeof(*n)) + uint64(cap(n.ring))*uint64(unsafe.Sizeof(Frame{}))
}

// Recv dequeues the oldest received frame, reporting false if the ring
// is empty. The frame's payload remains valid until Release.
func (n *NIC) Recv() (Frame, bool) {
	if n.count == 0 {
		return Frame{}, false
	}
	f := n.ring[n.head]
	n.ring[n.head] = Frame{}
	n.head = (n.head + 1) % len(n.ring)
	n.count--
	return f, true
}

// Release returns a received frame's payload buffer to the segment's
// pool once this receiver is done with it. Calling it is optional —
// receivers that retain payloads (taps, bridges mid-forward) simply
// leave the buffer to the garbage collector — but the Mether server
// releases every frame it consumes, which is what makes the receive
// path allocation-free. Release must be called at most once per
// received frame, after which the payload must not be touched.
func (n *NIC) Release(f Frame) {
	n.bus.releaseBuf(f.buf)
}

// View returns the decode-once view attached to this frame's shared
// payload buffer, or nil when no receiver has decoded it yet (or the
// frame does not come from a pooled buffer). All receivers of one
// transmission see the same view.
func (f Frame) View() any {
	if f.buf == nil {
		return nil
	}
	return f.buf.view
}

// SetView attaches a decoded view to the frame's shared payload buffer
// for later receivers of the same transmission to reuse. The view must
// be derived from (and may alias) the payload bytes: it lives exactly as
// long as the buffer's current contents and is handed to the bus's
// OnViewDrop recycler when the buffer is recycled. A no-op for frames
// without a pooled buffer.
func (f Frame) SetView(v any) {
	if f.buf != nil {
		f.buf.view = v
	}
}

// wireBytes returns the on-wire size of a payload.
func (b *Bus) wireBytes(payload int) int {
	w := payload + b.p.FrameOverhead
	if w < b.p.MinFrameBytes {
		w = b.p.MinFrameBytes
	}
	return w
}

// txTime returns the serialization delay for one frame of the given
// on-wire size.
func (b *Bus) txTime(wire int) time.Duration {
	bits := int64(wire) * 8
	return time.Duration(bits * int64(time.Second) / b.p.BandwidthBps)
}

// Send transmits payload from this NIC to dst (a NIC id or Broadcast).
// The call returns immediately; delivery happens after the medium frees
// up, serialization and propagation. The payload is copied into a pooled
// buffer shared by all receivers. A send from a down station is
// suppressed (nothing reaches the wire) and counted in TxSuppressed.
func (n *NIC) Send(dst int, payload []byte) {
	if n.down {
		n.txSuppressed++
		return
	}
	b := n.bus
	fb := b.acquire(len(payload))
	copy(fb.data, payload)
	// The in-flight transmission itself holds one reference until the
	// delivery fan-out completes, so an interrupt-context receiver that
	// drains and releases mid-fan-out cannot recycle the buffer under
	// the remaining receivers.
	fb.refs = 1
	f := Frame{Src: n.id, Dst: dst, Payload: fb.data, buf: fb}

	wire := b.wireBytes(len(payload))
	start := b.k.Now()
	if b.busyUntil > start {
		start = b.busyUntil
	}
	dur := b.txTime(wire)
	b.busyUntil = start + dur + b.p.InterFrameGap

	b.stats.Frames++
	b.stats.WireBytes += uint64(wire)
	b.stats.PayloadBytes += uint64(len(payload))
	b.stats.BusyTime += dur

	d := b.acquireDeliv()
	d.f = f
	d.lost = b.p.LossRate > 0 && b.k.Rand().Float64() < b.p.LossRate
	fn := d.fnU
	if dst == Broadcast {
		fn = d.fnB
	}
	b.k.At(start+dur+b.p.PropDelay, "eth deliver", fn)
}

// acquireDeliv takes a delivery record (with its prebuilt closures) from
// the pool.
func (b *Bus) acquireDeliv() *delivery {
	if l := len(b.freeDeliv); l > 0 {
		d := b.freeDeliv[l-1]
		b.freeDeliv[l-1] = nil
		b.freeDeliv = b.freeDeliv[:l-1]
		return d
	}
	d := &delivery{b: b}
	d.fnU = func() { d.runUnicast() }
	d.fnB = func() { d.runBroadcast() }
	return d
}

// runUnicast completes a unicast transmission: one indexed receiver
// lookup, independent of how many stations share the segment. A frame
// addressed to an unattached id or to the sender itself reaches no one,
// exactly as the former all-stations scan decided.
func (d *delivery) runUnicast() {
	b := d.b
	if d.lost {
		b.stats.WireLost++
	} else if dst := d.f.Dst; dst >= 0 && dst < len(b.nics) && dst != d.f.Src {
		b.nics[dst].deliver(d.f)
	}
	d.finish()
}

// runBroadcast completes a broadcast transmission: fan the frame out to
// every attached station except the sender, in attach order.
func (d *delivery) runBroadcast() {
	b := d.b
	if d.lost {
		b.stats.WireLost++
	} else {
		for _, rx := range b.nics {
			if rx.id != d.f.Src {
				rx.deliver(d.f)
			}
		}
	}
	d.finish()
}

// finish recycles the buffer if nobody kept it and the delivery record
// itself.
func (d *delivery) finish() {
	b := d.b
	b.releaseBuf(d.f.buf) // drop the in-flight reference
	d.f = Frame{}
	d.lost = false
	b.freeDeliv = append(b.freeDeliv, d)
}

// deliver queues a frame into the receive ring, dropping on overflow.
// The drop decision is made against the logical capacity, so lazy
// physical growth is invisible to the protocol: the same frames are
// dropped as with an eagerly allocated ring of ringCap slots.
func (rx *NIC) deliver(f Frame) {
	if rx.down {
		return
	}
	if rx.count >= rx.ringCap {
		rx.drops++
		return
	}
	if rx.count == len(rx.ring) {
		rx.grow()
	}
	rx.ring[(rx.head+rx.count)%len(rx.ring)] = f
	rx.count++
	if rx.count > rx.highWater {
		rx.highWater = rx.count
	}
	f.buf.refs++
	if rx.intr != nil {
		rx.intr()
	}
}

// grow doubles the ring's physical storage (bounded by ringCap),
// unwrapping the circular contents into FIFO order at the front of the
// new array.
func (rx *NIC) grow() {
	size := 2 * len(rx.ring)
	if size < 8 {
		size = 8
	}
	if size > rx.ringCap {
		size = rx.ringCap
	}
	grown := make([]Frame, size)
	for i := 0; i < rx.count; i++ {
		grown[i] = rx.ring[(rx.head+i)%len(rx.ring)]
	}
	rx.ring = grown
	rx.head = 0
}

func (n *NIC) String() string {
	return fmt.Sprintf("nic %d (%s)", n.id, n.name)
}
