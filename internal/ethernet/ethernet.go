// Package ethernet simulates a shared 10 Mb/s broadcast Ethernet segment
// of the kind Mether ran on: a single serialized medium with per-frame
// framing overhead, propagation delay, optional random frame loss, and
// finite per-NIC receive rings whose overflow silently drops frames. It
// is the first implementation of the medium contract (internal/medium):
// core.Driver and the world builder talk to it through medium.Medium and
// medium.Port, never through the concrete types.
//
// The model is deliberately simple — frames are serialized in FIFO order
// rather than via CSMA/CD contention — because the paper's protocols are
// sensitive to bandwidth, per-packet cost, broadcast fan-out and loss,
// not to collision micro-behaviour.
//
// The data path is pooled: payload buffers are refcounted and recycled
// through a per-bus freelist (medium.Pool), and each NIC's receive ring
// is a bounded circular buffer (medium.Ring), so steady-state traffic
// does not allocate. Receivers that are done with a frame should hand it
// back with NIC.Release; receivers that never release (taps, tests)
// merely opt out of recycling — the shared buffer is garbage collected
// once every holder drops it.
package ethernet

import (
	"fmt"
	"time"
	"unsafe"

	"mether/internal/medium"
	"mether/internal/sim"
)

// Broadcast is the destination address that delivers a frame to every
// attached NIC except the sender.
const Broadcast = medium.Broadcast

// Frame and Stats are the medium-contract types; the aliases keep this
// package's historical API (ethernet.Frame, ethernet.Stats) intact for
// the layers that name them.
type (
	Frame = medium.Frame
	Stats = medium.Stats
)

// Params configures the simulated segment. The zero value is not useful;
// start from DefaultParams.
type Params struct {
	// BandwidthBps is the raw signalling rate in bits per second.
	BandwidthBps int64
	// PropDelay is the propagation delay from transmitter to every
	// receiver.
	PropDelay time.Duration
	// FrameOverhead is the per-frame byte overhead added to the payload
	// on the wire (Ethernet header+FCS plus IP/UDP headers: Mether used
	// UDP/IP datagrams).
	FrameOverhead int
	// MinFrameBytes is the minimum wire size of a frame; shorter frames
	// are padded (affects timing and wire-byte accounting).
	MinFrameBytes int
	// InterFrameGap is idle time enforced between frames.
	InterFrameGap time.Duration
	// LossRate is the probability that a transmitted frame is corrupted
	// and delivered to no receiver.
	LossRate float64
	// RxRing is the per-NIC receive ring capacity; arrivals beyond it
	// are dropped (receiver overrun, the era's common loss mode).
	RxRing int
}

// DefaultParams returns the 10 Mb/s Ethernet + UDP/IP model used for the
// paper reproduction: 46 bytes of header overhead (18 Ethernet + 20 IP +
// 8 UDP), 64-byte minimum frames and a 32-frame receive ring.
func DefaultParams() Params {
	return Params{
		BandwidthBps:  10_000_000,
		PropDelay:     50 * time.Microsecond,
		FrameOverhead: 46,
		MinFrameBytes: 64,
		InterFrameGap: 10 * time.Microsecond,
		LossRate:      0,
		RxRing:        32,
	}
}

// wireStats is the segment's own counter block. It deliberately holds
// only the fields a shared bus produces — the medium.Stats link-queue
// block exists for point-to-point media and stays zero here — so the
// Bus struct (whose size enters MemFootprint and therefore gated
// reports) does not grow when the shared Stats type does.
type wireStats struct {
	Frames        uint64
	WireBytes     uint64
	PayloadBytes  uint64
	WireLost      uint64
	RingDrops     uint64
	TxSuppressed  uint64
	RingHighWater int
	BusyTime      time.Duration
}

// Bus is one shared segment. Attach NICs before sending. NIC ids are
// dense indexes into the attach order, so the id→NIC lookup that makes
// unicast delivery O(1) is the nics slice itself.
type Bus struct {
	k         *sim.Kernel
	p         Params
	nics      []*NIC
	busyUntil time.Duration
	stats     wireStats
	pool      medium.Pool // shared payload buffers (refcounted, recycled)
	freeDeliv []*delivery // delivery-event pool
}

// Bus and NIC implement the medium contract.
var (
	_ medium.Medium = (*Bus)(nil)
	_ medium.Port   = (*NIC)(nil)
)

// delivery is a pooled in-flight transmission: the frame plus two
// pre-built event closures — one per delivery shape — so Send schedules
// either path without allocating. Unicast resolves its single receiver
// by indexed lookup; only broadcast still walks the stations.
type delivery struct {
	b    *Bus
	f    Frame
	lost bool
	// fnU completes a unicast (single indexed receiver); fnB completes a
	// broadcast (fan-out over every attached NIC).
	fnU func()
	fnB func()
}

// NewBus creates a segment driven by kernel k.
func NewBus(k *sim.Kernel, p Params) *Bus {
	if p.BandwidthBps <= 0 {
		panic("ethernet: BandwidthBps must be positive")
	}
	return &Bus{k: k, p: p}
}

// Params returns the segment's configuration.
func (b *Bus) Params() Params { return b.p }

// Stats returns a snapshot of the segment counters. Ring drops and
// suppressed transmissions are summed over all NICs; the ring high-water
// mark is the max. The link-queue fields of medium.Stats are always
// zero: a shared bus has no per-link queues and pays no fan-out.
func (b *Bus) Stats() Stats {
	s := Stats{
		Frames:        b.stats.Frames,
		WireBytes:     b.stats.WireBytes,
		PayloadBytes:  b.stats.PayloadBytes,
		WireLost:      b.stats.WireLost,
		RingDrops:     b.stats.RingDrops,
		TxSuppressed:  b.stats.TxSuppressed,
		RingHighWater: b.stats.RingHighWater,
		BusyTime:      b.stats.BusyTime,
	}
	for _, n := range b.nics {
		s.RingDrops += n.drops
		s.TxSuppressed += n.txSuppressed
		if hw := n.rx.HighWater(); hw > s.RingHighWater {
			s.RingHighWater = hw
		}
	}
	return s
}

// Utilization returns the fraction of wall time the wire was busy.
func (b *Bus) Utilization(wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return float64(b.stats.BusyTime) / float64(wall)
}

// MemFootprint returns the segment's structural memory footprint in
// bytes: every NIC's physically allocated ring plus the pooled payload
// buffers and delivery records currently on the freelists. Like the
// driver's footprint walk it is a deterministic function of simulated
// behaviour, never of runtime heap state.
func (b *Bus) MemFootprint() uint64 {
	m := uint64(unsafe.Sizeof(*b))
	for _, n := range b.nics {
		m += uint64(unsafe.Sizeof(n)) + n.MemFootprint()
	}
	m += b.pool.MemFootprint()
	m += uint64(cap(b.freeDeliv)) * uint64(unsafe.Sizeof((*delivery)(nil)))
	m += uint64(len(b.freeDeliv)) * uint64(unsafe.Sizeof(delivery{}))
	return m
}

// PoolStats reports the payload-buffer pool's bookkeeping: buffers ever
// allocated and buffers currently on the freelist. On a quiescent bus
// whose receivers release every frame they consume the two are equal;
// a gap is a leaked (never-released) buffer. Leak-detecting tests
// assert exactly that across protocol exchanges.
func (b *Bus) PoolStats() (allocated, free int) {
	return b.pool.Stats()
}

// OnViewDrop registers the recycler invoked with a buffer's decode-once
// view when the buffer returns to the pool. Typically wired by the world
// builder to the protocol layer's view pool.
func (b *Bus) OnViewDrop(fn func(any)) { b.pool.OnViewDrop(fn) }

// Attach adds a NIC to the segment with the segment-default ring
// capacity (Params.RxRing). intr is invoked in kernel event context
// whenever a frame is queued into the NIC's receive ring; it is
// typically wired to a host interrupt that wakes the Mether server.
func (b *Bus) Attach(name string, intr func()) *NIC {
	return b.AttachWithRing(name, intr, b.p.RxRing)
}

// AttachWithRing adds a NIC with an explicit receive-ring capacity,
// overriding the segment default. Only hosts that see fan-in bursts
// (owners and servers at the large tiers) need deep rings; sizing by
// role keeps a world's ring memory proportional to its real fan-in
// instead of hosts × uniform-worst-case.
func (b *Bus) AttachWithRing(name string, intr func(), ringCap int) *NIC {
	n := &NIC{bus: b, id: len(b.nics), name: name, intr: intr, rx: medium.NewRing(ringCap)}
	b.nics = append(b.nics, n)
	return n
}

// AttachPort and AttachPortWithRing are the medium-contract attach
// surface: identical to Attach/AttachWithRing, returning the NIC as a
// medium.Port. (Separate methods only because the concrete returns
// above predate the contract and the bridge/topology layers use them.)
func (b *Bus) AttachPort(name string, intr func()) medium.Port {
	return b.Attach(name, intr)
}

// AttachPortWithRing attaches with an explicit ring bound; see AttachPort.
func (b *Bus) AttachPortWithRing(name string, intr func(), ringCap int) medium.Port {
	return b.AttachWithRing(name, intr, ringCap)
}

// NIC is one station on the segment; it implements medium.Port. Its
// receive ring is bounded by a logical slot count with lazily grown
// physical storage (medium.Ring).
type NIC struct {
	bus   *Bus
	id    int
	name  string
	rx    medium.Ring
	intr  func()
	drops uint64
	// txSuppressed counts Send calls swallowed because the station was
	// down. Before the counter existed these vanished without a trace,
	// which made down-NIC scenarios undebuggable: the sender's protocol
	// counters said a request went out, the wire counters said nothing
	// did, and no counter explained the difference.
	txSuppressed uint64
	down         bool
}

// SetDown takes the station off the wire (or back on): while down it
// neither receives nor transmits, modelling the paper's "hosts may
// become unreachable for a period of time and yet still have a copy of
// the page". State held in the host is untouched.
func (n *NIC) SetDown(down bool) { n.down = down }

// Down reports whether the station is off the wire.
func (n *NIC) Down() bool { return n.down }

// ID returns the NIC's address on the segment.
func (n *NIC) ID() int { return n.id }

// Name returns the diagnostic name given at Attach.
func (n *NIC) Name() string { return n.name }

// Drops returns the number of frames dropped because this NIC's receive
// ring was full.
func (n *NIC) Drops() uint64 { return n.drops }

// TxSuppressed returns the number of Send calls swallowed because this
// NIC was down at the time.
func (n *NIC) TxSuppressed() uint64 { return n.txSuppressed }

// Pending returns the number of frames waiting in the receive ring.
func (n *NIC) Pending() int { return n.rx.Pending() }

// RingHighWater returns the peak receive-ring occupancy this NIC ever
// reached.
func (n *NIC) RingHighWater() int { return n.rx.HighWater() }

// RingCap returns the logical receive-ring capacity (the drop bound).
func (n *NIC) RingCap() int { return n.rx.Bound() }

// MemFootprint returns the NIC's structural memory footprint in bytes
// (the physically allocated ring slots — the lazily grown array, not
// the logical bound).
func (n *NIC) MemFootprint() uint64 {
	return uint64(unsafe.Sizeof(*n)) + n.rx.MemFootprint()
}

// Recv dequeues the oldest received frame, reporting false if the ring
// is empty. The frame's payload remains valid until Release.
func (n *NIC) Recv() (Frame, bool) {
	return n.rx.Pop()
}

// Release returns a received frame's payload buffer to the segment's
// pool once this receiver is done with it. Calling it is optional —
// receivers that retain payloads (taps, bridges mid-forward) simply
// leave the buffer to the garbage collector — but the Mether server
// releases every frame it consumes, which is what makes the receive
// path allocation-free. Release must be called at most once per
// received frame, after which the payload must not be touched.
func (n *NIC) Release(f Frame) {
	n.bus.pool.Release(f.Buf)
}

// wireBytes returns the on-wire size of a payload.
func (b *Bus) wireBytes(payload int) int {
	w := payload + b.p.FrameOverhead
	if w < b.p.MinFrameBytes {
		w = b.p.MinFrameBytes
	}
	return w
}

// txTime returns the serialization delay for one frame of the given
// on-wire size.
func (b *Bus) txTime(wire int) time.Duration {
	bits := int64(wire) * 8
	return time.Duration(bits * int64(time.Second) / b.p.BandwidthBps)
}

// Send transmits payload from this NIC to dst (a NIC id or Broadcast).
// The call returns immediately; delivery happens after the medium frees
// up, serialization and propagation. The payload is copied into a pooled
// buffer shared by all receivers. A send from a down station is
// suppressed (nothing reaches the wire) and counted in TxSuppressed.
func (n *NIC) Send(dst int, payload []byte) {
	if n.down {
		n.txSuppressed++
		return
	}
	b := n.bus
	fb := b.pool.Acquire(len(payload))
	copy(fb.Data, payload)
	// The in-flight transmission itself holds one reference until the
	// delivery fan-out completes, so an interrupt-context receiver that
	// drains and releases mid-fan-out cannot recycle the buffer under
	// the remaining receivers.
	fb.Refs = 1
	f := Frame{Src: n.id, Dst: dst, Payload: fb.Data, Buf: fb}

	wire := b.wireBytes(len(payload))
	start := b.k.Now()
	if b.busyUntil > start {
		start = b.busyUntil
	}
	dur := b.txTime(wire)
	b.busyUntil = start + dur + b.p.InterFrameGap

	b.stats.Frames++
	b.stats.WireBytes += uint64(wire)
	b.stats.PayloadBytes += uint64(len(payload))
	b.stats.BusyTime += dur

	d := b.acquireDeliv()
	d.f = f
	d.lost = b.p.LossRate > 0 && b.k.Rand().Float64() < b.p.LossRate
	fn := d.fnU
	if dst == Broadcast {
		fn = d.fnB
	}
	b.k.At(start+dur+b.p.PropDelay, "eth deliver", fn)
}

// acquireDeliv takes a delivery record (with its prebuilt closures) from
// the pool.
func (b *Bus) acquireDeliv() *delivery {
	if l := len(b.freeDeliv); l > 0 {
		d := b.freeDeliv[l-1]
		b.freeDeliv[l-1] = nil
		b.freeDeliv = b.freeDeliv[:l-1]
		return d
	}
	d := &delivery{b: b}
	d.fnU = func() { d.runUnicast() }
	d.fnB = func() { d.runBroadcast() }
	return d
}

// runUnicast completes a unicast transmission: one indexed receiver
// lookup, independent of how many stations share the segment. A frame
// addressed to an unattached id or to the sender itself reaches no one,
// exactly as the former all-stations scan decided.
func (d *delivery) runUnicast() {
	b := d.b
	if d.lost {
		b.stats.WireLost++
	} else if dst := d.f.Dst; dst >= 0 && dst < len(b.nics) && dst != d.f.Src {
		b.nics[dst].deliver(d.f)
	}
	d.finish()
}

// runBroadcast completes a broadcast transmission: fan the frame out to
// every attached station except the sender, in attach order.
func (d *delivery) runBroadcast() {
	b := d.b
	if d.lost {
		b.stats.WireLost++
	} else {
		for _, rx := range b.nics {
			if rx.id != d.f.Src {
				rx.deliver(d.f)
			}
		}
	}
	d.finish()
}

// finish recycles the buffer if nobody kept it and the delivery record
// itself.
func (d *delivery) finish() {
	b := d.b
	b.pool.Release(d.f.Buf) // drop the in-flight reference
	d.f = Frame{}
	d.lost = false
	b.freeDeliv = append(b.freeDeliv, d)
}

// deliver queues a frame into the receive ring, dropping on overflow.
// The drop decision is made against the logical capacity, so lazy
// physical growth is invisible to the protocol: the same frames are
// dropped as with an eagerly allocated ring of ringCap slots.
func (rx *NIC) deliver(f Frame) {
	if rx.down {
		return
	}
	if !rx.rx.Push(f) {
		rx.drops++
		return
	}
	f.Buf.Refs++
	if rx.intr != nil {
		rx.intr()
	}
}

func (n *NIC) String() string {
	return fmt.Sprintf("nic %d (%s)", n.id, n.name)
}
