package fault

import (
	"reflect"
	"testing"
	"time"
)

func TestParseRoundTrip(t *testing.T) {
	spec := "crash@150ms:h3;recover@400ms:h3;partition@200ms:b0;heal@350ms:b0;migrate@100ms:h3>h5"
	s, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 5 {
		t.Fatalf("parsed %d events, want 5", len(s.Events))
	}
	again, err := Parse(s.String())
	if err != nil {
		t.Fatalf("re-parse of String(): %v", err)
	}
	if !reflect.DeepEqual(s, again) {
		t.Errorf("String/Parse round trip changed the schedule:\n%v\nvs\n%v", s, again)
	}
}

func TestParseEmptyAndErrors(t *testing.T) {
	if s, err := Parse(""); err != nil || !s.Empty() {
		t.Errorf("Parse(\"\") = %v, %v; want empty schedule", s, err)
	}
	for _, bad := range []string{
		"crash:h3", "crash@150ms", "crash@nope:h3", "crash@1s:b0",
		"partition@1s:h0", "migrate@1s:h1", "explode@1s:h1",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestValidateRanges(t *testing.T) {
	s := Schedule{}.Crash(time.Second, 3).Partition(2*time.Second, 0)
	if err := s.Validate(4, 1); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	if err := s.Validate(3, 1); err == nil {
		t.Error("host out of range accepted")
	}
	if err := s.Validate(4, 0); err == nil {
		t.Error("bridge out of range accepted")
	}
	if err := (Schedule{}.Migrate(0, 2, 2)).Validate(4, 0); err == nil {
		t.Error("migrate source == dest accepted")
	}
	if err := (Schedule{}.Crash(-time.Second, 1)).Validate(4, 0); err == nil {
		t.Error("negative time accepted")
	}
}

func TestSortedStableOnTies(t *testing.T) {
	s := Schedule{}.Recover(time.Second, 1).Crash(time.Second, 2).Crash(500*time.Millisecond, 3)
	got := s.Sorted()
	if got[0].Host != 3 || got[1].Kind != Recover || got[2].Kind != Crash {
		t.Errorf("sorted order wrong: %v", got)
	}
}

// Churn is a pure function of its arguments: same seed, same schedule;
// different seed, different victims. Host 0 is never picked and every
// crash has a matching recovery.
func TestChurnDeterministicAndPaired(t *testing.T) {
	a := Churn(7, 64, 0.05, time.Second, time.Second, 100*time.Millisecond, 3)
	b := Churn(7, 64, 0.05, time.Second, time.Second, 100*time.Millisecond, 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same-seed churn schedules differ")
	}
	c := Churn(8, 64, 0.05, time.Second, time.Second, 100*time.Millisecond, 3)
	if reflect.DeepEqual(a, c) {
		t.Error("different-seed churn schedules identical")
	}
	// ceil(0.05*64) = 4 hosts per round, 3 rounds, crash+recover pairs.
	if len(a.Events) != 4*3*2 {
		t.Fatalf("churn has %d events, want 24", len(a.Events))
	}
	down := map[int]time.Duration{}
	for _, e := range a.Events {
		switch e.Kind {
		case Crash:
			if e.Host == 0 {
				t.Error("churn crashed host 0 (the coordinator)")
			}
			down[e.Host] = e.At
		case Recover:
			at, ok := down[e.Host]
			if !ok || e.At != at+100*time.Millisecond {
				t.Errorf("recovery of h%d at %v not paired with its crash", e.Host, e.At)
			}
			delete(down, e.Host)
		default:
			t.Errorf("unexpected kind %v in churn schedule", e.Kind)
		}
	}
	if err := a.Validate(64, 0); err != nil {
		t.Errorf("churn schedule invalid: %v", err)
	}
}
