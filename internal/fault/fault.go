// Package fault defines deterministic, virtual-time fault schedules
// for a simulated Mether cluster: host crashes and recoveries, bridge
// partitions and heals, and owner migration. A Schedule is pure data —
// a sorted list of (time, kind, target) events — that the world layer
// installs as first-class kernel events before a run starts, so a
// faulted run is exactly as deterministic as a healthy one: same seed,
// same schedule, byte-identical report across runs and worker counts.
//
// Randomized schedules (Churn) are pre-drawn at build time from a
// seeded generator, never from the kernel's run-time stream, so adding
// churn to a world does not perturb any other random draw.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the fault event types a World can execute.
type Kind uint8

const (
	// Crash takes a host's NIC down and wipes its driver state (page
	// directory, pending requests, seed ranges) — the model of a power
	// failure. Client processes on the host keep their mappings and
	// simply re-fault after recovery.
	Crash Kind = iota + 1
	// Recover brings a crashed host's NIC back up; the host re-joins
	// cold through the lazy directory attach path.
	Recover
	// Partition takes both ports of a bridge down, splitting the
	// extended LAN into two broadcast domains. Buffered and in-flight
	// frames on the bridge are dropped (counted as PartitionDrops), so
	// a heal never replays pre-partition traffic.
	Partition
	// Heal brings a partitioned bridge's ports back up.
	Heal
	// Migrate re-homes every page authority resident on Host to Dest,
	// shipping the owner's resident working set MOSIX-style. The
	// source keeps non-authoritative replicas.
	Migrate
)

var kindNames = map[Kind]string{
	Crash:     "crash",
	Recover:   "recover",
	Partition: "partition",
	Heal:      "heal",
	Migrate:   "migrate",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("fault.Kind(%d)", uint8(k))
}

// Event is one scheduled fault. Host/Dest index the world's hosts;
// Bridge indexes Topology.Bridges(). Only the fields the Kind uses are
// meaningful (Bridge for Partition/Heal, Host for the rest, Dest only
// for Migrate).
type Event struct {
	At     time.Duration
	Kind   Kind
	Host   int
	Dest   int
	Bridge int
}

func (e Event) String() string {
	switch e.Kind {
	case Partition, Heal:
		return fmt.Sprintf("%s@%v:b%d", e.Kind, e.At, e.Bridge)
	case Migrate:
		return fmt.Sprintf("%s@%v:h%d>h%d", e.Kind, e.At, e.Host, e.Dest)
	default:
		return fmt.Sprintf("%s@%v:h%d", e.Kind, e.At, e.Host)
	}
}

// Schedule is an ordered fault plan. The zero value is the empty
// schedule, which a World must execute as a byte-identical no-op.
type Schedule struct {
	Events []Event
}

// Empty reports whether the schedule injects nothing.
func (s Schedule) Empty() bool { return len(s.Events) == 0 }

// Crash appends a host-crash event and returns the schedule for
// chaining.
func (s Schedule) Crash(at time.Duration, host int) Schedule {
	s.Events = append(s.Events, Event{At: at, Kind: Crash, Host: host})
	return s
}

// Recover appends a host-recovery event.
func (s Schedule) Recover(at time.Duration, host int) Schedule {
	s.Events = append(s.Events, Event{At: at, Kind: Recover, Host: host})
	return s
}

// Partition appends a bridge-partition event.
func (s Schedule) Partition(at time.Duration, bridge int) Schedule {
	s.Events = append(s.Events, Event{At: at, Kind: Partition, Bridge: bridge})
	return s
}

// Heal appends a bridge-heal event.
func (s Schedule) Heal(at time.Duration, bridge int) Schedule {
	s.Events = append(s.Events, Event{At: at, Kind: Heal, Bridge: bridge})
	return s
}

// Migrate appends an owner-migration event re-homing host's resident
// authorities to dest.
func (s Schedule) Migrate(at time.Duration, host, dest int) Schedule {
	s.Events = append(s.Events, Event{At: at, Kind: Migrate, Host: host, Dest: dest})
	return s
}

// Sorted returns the events in execution order (time, then insertion
// order for ties — sort.SliceStable keeps same-time events in the
// order the schedule listed them, which is part of the determinism
// contract).
func (s Schedule) Sorted() []Event {
	out := make([]Event, len(s.Events))
	copy(out, s.Events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Validate checks every event against the world's shape: host indexes
// in [0, hosts), bridge indexes in [0, bridges), non-negative times,
// migrate source != dest. It does not check semantic ordering (e.g. a
// Recover without a prior Crash) — the world treats those as no-ops.
func (s Schedule) Validate(hosts, bridges int) error {
	for i, e := range s.Events {
		if e.At < 0 {
			return fmt.Errorf("fault %d (%s): negative time", i, e)
		}
		switch e.Kind {
		case Crash, Recover:
			if e.Host < 0 || e.Host >= hosts {
				return fmt.Errorf("fault %d (%s): host %d out of range (0..%d)", i, e, e.Host, hosts-1)
			}
		case Partition, Heal:
			if e.Bridge < 0 || e.Bridge >= bridges {
				return fmt.Errorf("fault %d (%s): bridge %d out of range (%d bridges)", i, e, e.Bridge, bridges)
			}
		case Migrate:
			if e.Host < 0 || e.Host >= hosts {
				return fmt.Errorf("fault %d (%s): host %d out of range (0..%d)", i, e, e.Host, hosts-1)
			}
			if e.Dest < 0 || e.Dest >= hosts {
				return fmt.Errorf("fault %d (%s): dest %d out of range (0..%d)", i, e, e.Dest, hosts-1)
			}
			if e.Host == e.Dest {
				return fmt.Errorf("fault %d (%s): migrate source == dest", i, e)
			}
		default:
			return fmt.Errorf("fault %d: unknown kind %d", i, e.Kind)
		}
	}
	return nil
}

// Churn builds a randomized crash/recover schedule: every `every`
// interval starting at `start`, for `rounds` rounds, a fresh draw of
// ceil(fraction*hosts) distinct hosts (never host 0, which workloads
// use as the coordinator/segment creator) crashes and recovers
// `downFor` later. The draw is pre-computed from its own seeded
// generator so the schedule is a pure function of the arguments.
func Churn(seed int64, hosts int, fraction float64, start, every, downFor time.Duration, rounds int) Schedule {
	rng := rand.New(rand.NewSource(seed))
	perRound := int(float64(hosts)*fraction + 0.999999)
	if perRound < 1 {
		perRound = 1
	}
	if perRound > hosts-1 {
		perRound = hosts - 1
	}
	var s Schedule
	for r := 0; r < rounds; r++ {
		at := start + time.Duration(r)*every
		picked := make(map[int]bool, perRound)
		for len(picked) < perRound {
			h := 1 + rng.Intn(hosts-1)
			if picked[h] {
				continue
			}
			picked[h] = true
			s = s.Crash(at, h).Recover(at+downFor, h)
		}
	}
	return s
}

// Parse decodes the -faults CLI spec: semicolon-separated events of
// the form kind@time:target, e.g.
//
//	crash@150ms:h3;recover@400ms:h3;partition@200ms:b0;heal@350ms:b0;migrate@100ms:h3>h5
//
// Times use Go duration syntax; targets are hN (host index), bN
// (bridge index), or hN>hM for migrate.
func Parse(spec string) (Schedule, error) {
	var s Schedule
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		at := strings.IndexByte(part, '@')
		colon := strings.IndexByte(part, ':')
		if at < 0 || colon < at {
			return Schedule{}, fmt.Errorf("fault spec %q: want kind@time:target", part)
		}
		kindStr, timeStr, tgt := part[:at], part[at+1:colon], part[colon+1:]
		when, err := time.ParseDuration(timeStr)
		if err != nil {
			return Schedule{}, fmt.Errorf("fault spec %q: bad time: %v", part, err)
		}
		switch kindStr {
		case "crash", "recover":
			h, err := parseTarget(tgt, 'h')
			if err != nil {
				return Schedule{}, fmt.Errorf("fault spec %q: %v", part, err)
			}
			if kindStr == "crash" {
				s = s.Crash(when, h)
			} else {
				s = s.Recover(when, h)
			}
		case "partition", "heal":
			b, err := parseTarget(tgt, 'b')
			if err != nil {
				return Schedule{}, fmt.Errorf("fault spec %q: %v", part, err)
			}
			if kindStr == "partition" {
				s = s.Partition(when, b)
			} else {
				s = s.Heal(when, b)
			}
		case "migrate":
			gt := strings.IndexByte(tgt, '>')
			if gt < 0 {
				return Schedule{}, fmt.Errorf("fault spec %q: migrate wants hN>hM", part)
			}
			src, err := parseTarget(tgt[:gt], 'h')
			if err != nil {
				return Schedule{}, fmt.Errorf("fault spec %q: %v", part, err)
			}
			dst, err := parseTarget(tgt[gt+1:], 'h')
			if err != nil {
				return Schedule{}, fmt.Errorf("fault spec %q: %v", part, err)
			}
			s = s.Migrate(when, src, dst)
		default:
			return Schedule{}, fmt.Errorf("fault spec %q: unknown kind %q", part, kindStr)
		}
	}
	return s, nil
}

func parseTarget(tgt string, prefix byte) (int, error) {
	if len(tgt) < 2 || tgt[0] != prefix {
		return 0, fmt.Errorf("target %q: want %c<index>", tgt, prefix)
	}
	n, err := strconv.Atoi(tgt[1:])
	if err != nil {
		return 0, fmt.Errorf("target %q: %v", tgt, err)
	}
	return n, nil
}

// String renders the schedule back in Parse's spec syntax (events in
// listed order, not sorted).
func (s Schedule) String() string {
	parts := make([]string, len(s.Events))
	for i, e := range s.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, ";")
}
