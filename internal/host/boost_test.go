package host

import (
	"testing"
	"time"

	"mether/internal/sim"
)

func boostParams(delay time.Duration) Params {
	p := testParams()
	p.Quantum = 70 * time.Millisecond
	p.WakeBoostDelay = delay
	return p
}

func TestWakeBoostPreemptsSpinner(t *testing.T) {
	k := sim.New(1)
	h := New(k, 0, "a", boostParams(15*time.Millisecond))
	var served time.Duration
	h.Spawn("server", func(p *Proc) {
		p.SleepOn("work")
		served = p.Now()
	})
	h.Spawn("spinner", func(p *Proc) {
		for p.Now() < 200*time.Millisecond {
			p.UseUser(50 * time.Microsecond)
		}
	})
	k.At(30*time.Millisecond, "wake", func() { h.Wakeup("work") })
	k.Run()
	// Without the boost the server would wait for the spinner's quantum
	// (~70ms); with it, dispatch happens ~15ms + switch after the wake.
	if served == 0 {
		t.Fatal("server never ran")
	}
	if served > 50*time.Millisecond {
		t.Errorf("server dispatched at %v; boost should cap the wait near 45ms", served)
	}
	if served < 45*time.Millisecond {
		t.Errorf("server dispatched at %v, before the boost delay elapsed", served)
	}
}

// TestStaleBoostDoesNotPreemptForDispatchedProc is the regression test
// for a real bug: a boost armed for process X must be discarded if X got
// the CPU (and was preempted again) before the boost fired — otherwise
// the boost would kick whoever runs later (typically the server) off the
// CPU in favour of a process that already had its turn.
func TestStaleBoostDoesNotPreemptForDispatchedProc(t *testing.T) {
	k := sim.New(1)
	pr := boostParams(15 * time.Millisecond)
	h := New(k, 0, "a", pr)

	var serverRuns []time.Duration
	h.Spawn("server", func(p *Proc) {
		for {
			p.SleepOn("work")
			serverRuns = append(serverRuns, p.Now())
			p.UseSys(30 * time.Millisecond) // long kernel work
		}
	})
	// A client that blocks briefly, is woken (arming a boost), runs
	// almost immediately, and then spins.
	h.Spawn("client", func(p *Proc) {
		p.SleepOn("client-wait")
		for p.Now() < 300*time.Millisecond {
			p.UseUser(50 * time.Microsecond)
		}
	})
	k.At(5*time.Millisecond, "wake client", func() { h.Wakeup("client-wait") })
	// Wake the server after the client is running: the server's own
	// boost should preempt the client; the client's stale boost must NOT
	// then bounce the server off the CPU mid-work.
	k.At(10*time.Millisecond, "wake server", func() { h.Wakeup("work") })
	k.RunUntil(400 * time.Millisecond)
	k.Shutdown()

	if len(serverRuns) == 0 {
		t.Fatal("server never ran")
	}
	// The server, once dispatched (~25ms), must complete its 30ms work
	// in one stretch: if the stale boost fired, it would be preempted and
	// wait behind the spinner's full quantum, pushing its completion far
	// out. We detect that via the spinner-vs-server interleaving: the
	// server's work window [start, start+30ms] must not contain a gap.
	// Proxy check: its second wakeup (none here) — instead assert the
	// busy accounting shows the 30ms consumed within 40ms of dispatch.
	start := serverRuns[0]
	var server *Proc
	for _, p := range h.Procs() {
		if p.Name() == "server" {
			server = p
		}
	}
	if server.Sys() < 30*time.Millisecond {
		t.Fatalf("server consumed %v, want >= 30ms", server.Sys())
	}
	// With the stale-boost bug the server's 30ms stretch was split by a
	// ~70ms quantum of the spinner; dispatch+work should fit in ~45ms.
	if start > 60*time.Millisecond {
		t.Errorf("server started at %v; stale boost starved it", start)
	}
}

func TestBoostDoesNotAffectPureSpinners(t *testing.T) {
	// Two processes that never sleep must still alternate whole quanta —
	// the boost only helps processes woken from a sleep. This preserves
	// the paper's 81-second local-pair baseline.
	run := func(boost time.Duration) uint64 {
		k := sim.New(1)
		pr := boostParams(boost)
		h := New(k, 0, "a", pr)
		for i := 0; i < 2; i++ {
			h.Spawn("spin", func(p *Proc) {
				for p.Now() < 500*time.Millisecond {
					p.UseUser(50 * time.Microsecond)
				}
			})
		}
		k.Run()
		k.Shutdown()
		return h.ContextSwitches()
	}
	without := run(0)
	with := run(15 * time.Millisecond)
	if without != with {
		t.Errorf("boost changed pure-spinner scheduling: %d vs %d switches", without, with)
	}
}

func TestAccountingConservation(t *testing.T) {
	// Sum of all processes' user+sys time equals the host's busy time:
	// no CPU time is created or lost by dispatches, boosts or sleeps.
	k := sim.New(9)
	h := New(k, 0, "a", boostParams(10*time.Millisecond))
	for i := 0; i < 3; i++ {
		i := i
		h.Spawn("w", func(p *Proc) {
			for j := 0; j < 50; j++ {
				p.UseUser(time.Duration(i+1) * 300 * time.Microsecond)
				if j%7 == 0 {
					p.SleepFor(2 * time.Millisecond)
				}
				p.UseSys(100 * time.Microsecond)
			}
		})
	}
	k.Run()
	k.Shutdown()
	var total time.Duration
	for _, p := range h.Procs() {
		total += p.User() + p.Sys()
	}
	if total != h.BusyTime() {
		t.Errorf("proc time sum %v != host busy %v", total, h.BusyTime())
	}
}

func TestTraceHookReceivesEvents(t *testing.T) {
	var events []string
	Trace = func(format string, args ...any) {
		events = append(events, format)
	}
	defer func() { Trace = nil }()

	k := sim.New(1)
	h := New(k, 0, "a", testParams())
	h.Spawn("p", func(p *Proc) { p.UseUser(time.Millisecond) })
	k.Run()
	k.Shutdown()
	if len(events) == 0 {
		t.Error("trace hook saw no scheduling events")
	}
}
