package host

import (
	"testing"
	"time"

	"mether/internal/sim"
)

func testParams() Params {
	return Params{
		Quantum:         10 * time.Millisecond,
		CtxSwitch:       time.Millisecond,
		DispatchLatency: 0,
		TrapCost:        time.Millisecond,
		SyscallCost:     time.Millisecond,
		InterruptCost:   time.Millisecond,
	}
}

func TestSingleProcUsesCPUUninterrupted(t *testing.T) {
	k := sim.New(1)
	h := New(k, 0, "a", testParams())
	var done time.Duration
	h.Spawn("p", func(p *Proc) {
		p.UseUser(35 * time.Millisecond)
		done = p.Now()
	})
	k.Run()
	// One initial dispatch (1ms), then 35ms of work with no competitors:
	// no further context switches even across quantum boundaries.
	if done != 36*time.Millisecond {
		t.Errorf("finished at %v, want 36ms", done)
	}
	if h.ContextSwitches() != 1 {
		t.Errorf("context switches = %d, want 1", h.ContextSwitches())
	}
}

func TestUserSysAccounting(t *testing.T) {
	k := sim.New(1)
	h := New(k, 0, "a", testParams())
	var pr *Proc
	pr = h.Spawn("p", func(p *Proc) {
		p.UseUser(5 * time.Millisecond)
		p.UseSys(3 * time.Millisecond)
	})
	k.Run()
	// 1ms dispatch ctx cost is charged as sys.
	if pr.User() != 5*time.Millisecond {
		t.Errorf("user = %v, want 5ms", pr.User())
	}
	if pr.Sys() != 4*time.Millisecond {
		t.Errorf("sys = %v, want 4ms (3ms work + 1ms switch)", pr.Sys())
	}
}

func TestRoundRobinPreemption(t *testing.T) {
	k := sim.New(1)
	h := New(k, 0, "a", testParams())
	var order []string
	mark := func(s string) { order = append(order, s) }
	h.Spawn("a", func(p *Proc) {
		p.UseUser(15 * time.Millisecond) // spans one quantum boundary
		mark("a")
	})
	h.Spawn("b", func(p *Proc) {
		p.UseUser(15 * time.Millisecond)
		mark("b")
	})
	k.Run()
	// a runs 10ms, preempted; b runs 10ms, preempted; a finishes its 5ms,
	// then b. So completion order is a then b.
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Errorf("completion order = %v, want [a b]", order)
	}
	// Dispatches: a, b, a, b = 4.
	if h.ContextSwitches() != 4 {
		t.Errorf("context switches = %d, want 4", h.ContextSwitches())
	}
}

func TestSpinnerDelaysWokenProcessUntilQuantumEnd(t *testing.T) {
	// The paper's starvation effect: a blocked process woken mid-quantum
	// must wait for the spinner's quantum to expire.
	k := sim.New(1)
	p := testParams()
	h := New(k, 0, "a", p)
	var served time.Duration
	server := h.Spawn("server", func(p *Proc) {
		p.SleepOn("work")
		served = p.Now()
		p.UseSys(time.Millisecond)
	})
	_ = server
	h.Spawn("spinner", func(p *Proc) {
		for p.Now() < 40*time.Millisecond {
			p.UseUser(50 * time.Microsecond)
		}
	})
	// Wake the server 2ms into the spinner's quantum.
	k.At(4*time.Millisecond, "wake", func() { h.Wakeup("work") })
	k.Run()
	// Server was dispatched only at the spinner's quantum boundary.
	// Spinner dispatched at 1ms (after server's initial dispatch+block at
	// ~0), quantum ends ~11ms, plus 1ms switch.
	if served < 10*time.Millisecond {
		t.Errorf("server ran at %v; expected to be starved past 10ms", served)
	}
	if served > 15*time.Millisecond {
		t.Errorf("server ran at %v; expected dispatch near quantum end", served)
	}
}

func TestWakeupWithIdleCPUDispatchesQuickly(t *testing.T) {
	k := sim.New(1)
	h := New(k, 0, "a", testParams())
	var served time.Duration
	h.Spawn("server", func(p *Proc) {
		p.SleepOn("work")
		served = p.Now()
	})
	k.At(20*time.Millisecond, "wake", func() { h.Wakeup("work") })
	k.Run()
	// Idle CPU: dispatch after just the context-switch cost.
	if served != 21*time.Millisecond {
		t.Errorf("served at %v, want 21ms", served)
	}
}

func TestSleepOnWakeupRendezvous(t *testing.T) {
	k := sim.New(1)
	h := New(k, 0, "a", testParams())
	var got []int
	h.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.SleepOn("data")
			got = append(got, i)
		}
	})
	h.Spawn("producer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.UseUser(2 * time.Millisecond)
			h.Wakeup("data")
			// Yield so the consumer can run and re-sleep; wakeups do not
			// queue (SunOS sleep/wakeup semantics).
			p.SleepFor(10 * time.Millisecond)
		}
	})
	k.Run()
	if len(got) != 3 {
		t.Errorf("consumer woke %d times, want 3", len(got))
	}
}

func TestWakeupNoSleepersIsNoop(t *testing.T) {
	k := sim.New(1)
	h := New(k, 0, "a", testParams())
	h.Wakeup("nothing")
	k.Run()
	if h.ContextSwitches() != 0 {
		t.Error("wakeup with no sleepers caused a dispatch")
	}
}

func TestSleepForDuration(t *testing.T) {
	k := sim.New(1)
	h := New(k, 0, "a", testParams())
	var woke time.Duration
	h.Spawn("p", func(p *Proc) {
		p.SleepFor(25 * time.Millisecond)
		woke = p.Now()
	})
	k.Run()
	// 1ms initial dispatch + 25ms sleep + 1ms redispatch.
	if woke != 27*time.Millisecond {
		t.Errorf("woke at %v, want 27ms", woke)
	}
}

func TestSleepersCountAndMultipleWake(t *testing.T) {
	k := sim.New(1)
	h := New(k, 0, "a", testParams())
	woken := 0
	for i := 0; i < 4; i++ {
		h.Spawn("w", func(p *Proc) {
			p.SleepOn("gate")
			woken++
		})
	}
	k.At(5*time.Millisecond, "check", func() {
		if n := h.Sleeping("gate"); n != 4 {
			t.Errorf("Sleeping = %d, want 4", n)
		}
		h.Wakeup("gate")
	})
	k.Run()
	if woken != 4 {
		t.Errorf("woken = %d, want 4", woken)
	}
	if h.Sleeping("gate") != 0 {
		t.Error("sleepers not cleared after wakeup")
	}
}

func TestInterruptDelaysHandler(t *testing.T) {
	k := sim.New(1)
	h := New(k, 0, "a", testParams())
	var at time.Duration
	k.At(10*time.Millisecond, "nic", func() {
		h.Interrupt(func() { at = k.Now() })
	})
	k.Run()
	if at != 11*time.Millisecond {
		t.Errorf("interrupt handler at %v, want 11ms", at)
	}
}

func TestPreemptOnWake(t *testing.T) {
	k := sim.New(1)
	p := testParams()
	p.PreemptOnWake = true
	h := New(k, 0, "a", p)
	var served time.Duration
	h.Spawn("server", func(p *Proc) {
		p.SleepOn("work")
		served = p.Now()
	})
	h.Spawn("spinner", func(p *Proc) {
		for p.Now() < 30*time.Millisecond {
			p.UseUser(50 * time.Microsecond)
		}
	})
	k.At(4*time.Millisecond, "wake", func() { h.Wakeup("work") })
	k.Run()
	// With the boost the server preempts the spinner almost immediately
	// rather than waiting ~11ms for quantum end.
	if served > 7*time.Millisecond {
		t.Errorf("served at %v; want fast preemption with PreemptOnWake", served)
	}
}

func TestTwoHostsAreIndependent(t *testing.T) {
	k := sim.New(1)
	h0 := New(k, 0, "a", testParams())
	h1 := New(k, 1, "b", testParams())
	var doneA, doneB time.Duration
	h0.Spawn("pa", func(p *Proc) { p.UseUser(20 * time.Millisecond); doneA = p.Now() })
	h1.Spawn("pb", func(p *Proc) { p.UseUser(20 * time.Millisecond); doneB = p.Now() })
	k.Run()
	if doneA != 21*time.Millisecond || doneB != 21*time.Millisecond {
		t.Errorf("doneA=%v doneB=%v; hosts should not contend", doneA, doneB)
	}
}

func TestBusyTimeAccounting(t *testing.T) {
	k := sim.New(1)
	h := New(k, 0, "a", testParams())
	h.Spawn("p", func(p *Proc) { p.UseUser(10 * time.Millisecond) })
	k.Run()
	want := 11 * time.Millisecond // 1ms switch + 10ms work
	if h.BusyTime() != want {
		t.Errorf("busy = %v, want %v", h.BusyTime(), want)
	}
}

func TestDeterministicScheduling(t *testing.T) {
	run := func() uint64 {
		k := sim.New(3)
		h := New(k, 0, "a", testParams())
		for i := 0; i < 3; i++ {
			h.Spawn("w", func(p *Proc) {
				for j := 0; j < 100; j++ {
					p.UseUser(500 * time.Microsecond)
				}
			})
		}
		k.Run()
		return h.ContextSwitches()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("context switches differ across identical runs: %d vs %d", a, b)
	}
}

func TestProcDeathReleasesCPU(t *testing.T) {
	k := sim.New(1)
	h := New(k, 0, "a", testParams())
	var second time.Duration
	h.Spawn("short", func(p *Proc) { p.UseUser(2 * time.Millisecond) })
	h.Spawn("next", func(p *Proc) { second = p.Now(); p.UseUser(time.Millisecond) })
	k.Run()
	// short: dispatch 1ms + 2ms work; next dispatched at 3ms + 1ms switch.
	if second != 4*time.Millisecond {
		t.Errorf("second proc ran at %v, want 4ms", second)
	}
}
