// Package host simulates a SunOS-4.0-era workstation: one CPU, a
// round-robin time-slice scheduler, context-switch and trap costs, and
// per-process user/system CPU accounting.
//
// The scheduler model is the load-bearing part of the Mether reproduction.
// The paper's central performance phenomenon is that a client process
// spinning on memory starves the user-level Mether server of CPU: a
// runnable server must wait for the spinner's quantum to expire, which is
// what stretches page-fault latencies to tens of milliseconds and what the
// later protocols avoid by blocking instead of spinning. Processes here
// are preempted only at quantum expiry (no wakeup priority boost), which
// matches the behaviour the paper observed for compute-bound processes.
package host

import (
	"fmt"
	"time"

	"mether/internal/sim"
)

// CPUKind selects the accounting bucket that a slice of CPU time is
// charged to, mirroring the user/sys split the paper reports.
type CPUKind uint8

const (
	// CPUUser is time spent in application code (spins, increments).
	CPUUser CPUKind = iota + 1
	// CPUSys is time spent in the kernel or the Mether user-level server
	// on the process's behalf (traps, syscalls, packet handling).
	CPUSys
)

// Params holds the host cost model. All constants were calibrated against
// the paper's Figures 4-9; see EXPERIMENTS.md for the calibration notes.
type Params struct {
	// Quantum is the round-robin time slice. A runnable process must wait
	// for the current process's quantum to expire before it is dispatched
	// (unless the CPU is idle).
	Quantum time.Duration
	// CtxSwitch is the direct cost of a context switch, charged as system
	// time to the incoming process.
	CtxSwitch time.Duration
	// DispatchLatency is extra scheduler latency on every dispatch.
	DispatchLatency time.Duration
	// TrapCost is the kernel entry/exit cost of a page-fault trap.
	TrapCost time.Duration
	// SyscallCost is the kernel entry/exit cost of a system call.
	SyscallCost time.Duration
	// InterruptCost is the delay between a NIC receive and the wakeup of
	// the process sleeping on it (interrupt + protocol input processing).
	InterruptCost time.Duration
	// PreemptOnWake, when true, lets a woken process preempt the current
	// one at once instead of waiting for quantum expiry. SunOS 4.0 did
	// not do this for compute-bound timesharing processes; the flag
	// exists for ablation experiments.
	PreemptOnWake bool
	// WakeBoostDelay models the SunOS wakeup priority boost: a process
	// woken from a sleep preempts a CPU-bound process after roughly this
	// delay (priority recomputation at clock ticks), rather than waiting
	// for full quantum expiry. Two processes that never sleep (mutual
	// spinners) still alternate whole quanta. Zero disables the boost.
	WakeBoostDelay time.Duration
}

// DefaultParams returns the calibrated Sun-3/50-class cost model. The
// quantum and context-switch costs are fitted to the paper's two-process
// local baseline (81 s wall, ~37 s CPU per process for 1024 additions:
// one quantum plus one switch per addition) and its remark that a context
// switch "as a rule of thumb takes a few milliseconds".
func DefaultParams() Params {
	return Params{
		Quantum:         70 * time.Millisecond,
		CtxSwitch:       3 * time.Millisecond,
		DispatchLatency: 300 * time.Microsecond,
		TrapCost:        800 * time.Microsecond,
		SyscallCost:     400 * time.Microsecond,
		InterruptCost:   300 * time.Microsecond,
		WakeBoostDelay:  15 * time.Millisecond,
	}
}

type procState uint8

const (
	stateRunnable procState = iota + 1
	stateRunning
	stateBlocked
	stateDead
)

// Trace, when set, receives one line per scheduling event (dispatches,
// quantum expiries, boost preemptions). Intended for debugging and tests;
// nil disables tracing. Call sites guard with `if Trace != nil` before
// invoking tracef: a bare variadic call boxes its arguments even when
// tracing is off, which was the host layer's last per-dispatch
// allocation.
var Trace func(format string, args ...any)

func tracef(format string, args ...any) {
	if Trace != nil {
		Trace(format, args...)
	}
}

// Host is one simulated workstation.
type Host struct {
	k    *sim.Kernel
	id   int
	name string
	pr   Params

	cur *Proc
	// runq is drained via runqHead instead of re-slicing so the backing
	// array is reused once the queue empties (an advancing-front slice
	// sheds capacity and reallocates on every wrap).
	runq        []*Proc
	runqHead    int
	dispatching bool
	ctxSwitches uint64
	// sleepers keys wait slices by the caller's wait key. Emptied slices
	// keep their entry (and backing array) instead of being deleted, so a
	// sleep/wake cycle on a recurring key never reallocates; the map is
	// bounded by the world's distinct key population (pages × 2 + hosts).
	sleepers map[any][]*Proc
	procs    []*Proc
	busy     time.Duration // total CPU busy time

	// boostFree recycles wake-boost timers: each carries a prebuilt
	// closure, so arming a boost on the wake hot path allocates nothing
	// in steady state.
	boostFree []*boostTimer

	// Precomputed event names (hot paths must not concatenate strings).
	boostName string
	intrName  string
}

// New creates a host scheduled by kernel k.
func New(k *sim.Kernel, id int, name string, pr Params) *Host {
	if pr.Quantum <= 0 {
		panic("host: Quantum must be positive")
	}
	return &Host{
		k: k, id: id, name: name, pr: pr,
		sleepers:  make(map[any][]*Proc),
		boostName: "wake boost " + name,
		intrName:  "interrupt " + name,
	}
}

// Kernel returns the simulation kernel driving this host.
func (h *Host) Kernel() *sim.Kernel { return h.k }

// ID returns the host's cluster-unique id.
func (h *Host) ID() int { return h.id }

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// Params returns the host's cost model.
func (h *Host) Params() Params { return h.pr }

// ContextSwitches returns the number of dispatches performed so far.
func (h *Host) ContextSwitches() uint64 { return h.ctxSwitches }

// BusyTime returns total CPU time consumed by all processes.
func (h *Host) BusyTime() time.Duration { return h.busy }

// Procs returns all processes ever spawned on this host.
func (h *Host) Procs() []*Proc { return h.procs }

// Proc is a simulated OS process. Methods other than accessors must be
// called only from the process's own goroutine (inside its Spawn
// function); Wakeup-style operations go through the Host.
type Proc struct {
	h     *Host
	sp    *sim.Proc
	name  string
	state procState

	user time.Duration
	sys  time.Duration

	quantumUsed time.Duration
	inRunq      bool
	// dispatchSeq counts dispatches; wake-boost events capture it to
	// detect staleness.
	dispatchSeq uint64

	// blocked bookkeeping
	sleepKey any

	// Precomputed event names and closures so the dispatch/sleep hot
	// paths schedule kernel events without per-call allocations.
	dispatchName string
	dispatchFn   func()
	timerName    string
	timerFn      func()
}

// Spawn creates a process and makes it runnable. fn runs under the
// simulation's handoff discipline and should express all CPU consumption
// through Use/UseUser/UseSys and all blocking through the Sleep methods.
func (h *Host) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{h: h, name: name, state: stateRunnable}
	p.dispatchName = "dispatch " + name
	p.dispatchFn = func() { h.finishDispatch(p) }
	p.timerName = "timer " + name
	p.timerFn = func() { h.timerFire(p) }
	h.procs = append(h.procs, p)
	p.sp = h.k.Spawn(fmt.Sprintf("%s/%s", h.name, name), func(sp *sim.Proc) {
		// Wait to be dispatched for the first time.
		p.acquireCPU()
		fn(p)
		p.state = stateDead
		if h.cur == p {
			h.cur = nil
			h.maybeDispatch()
		}
	})
	h.enqueue(p)
	h.maybeDispatch()
	return p
}

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// Host returns the process's host.
func (p *Proc) Host() *Host { return p.h }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.h.k.Now() }

// User returns accumulated user-mode CPU time.
func (p *Proc) User() time.Duration { return p.user }

// Sys returns accumulated system-mode CPU time.
func (p *Proc) Sys() time.Duration { return p.sys }

// enqueue appends p to the run queue if it is not already there.
func (h *Host) enqueue(p *Proc) {
	if p.inRunq || p.state == stateDead {
		return
	}
	p.state = stateRunnable
	p.inRunq = true
	if h.runqHead > 0 && len(h.runq) == cap(h.runq) {
		// Compact the live region over the consumed prefix instead of
		// letting append reallocate: a host whose queue never fully
		// drains (two spinners alternating quanta) would otherwise grow
		// the backing array by one slot per context switch forever.
		n := copy(h.runq, h.runq[h.runqHead:])
		for i := n; i < len(h.runq); i++ {
			h.runq[i] = nil
		}
		h.runq = h.runq[:n]
		h.runqHead = 0
	}
	h.runq = append(h.runq, p)
}

// runnable returns the number of processes waiting in the run queue.
func (h *Host) runnable() int { return len(h.runq) - h.runqHead }

// maybeDispatch starts a context switch to the head of the run queue if
// the CPU is idle. Safe to call from kernel event context.
func (h *Host) maybeDispatch() {
	if h.cur != nil || h.dispatching || h.runnable() == 0 {
		return
	}
	h.dispatching = true
	next := h.runq[h.runqHead]
	h.runq[h.runqHead] = nil
	h.runqHead++
	if h.runqHead == len(h.runq) {
		h.runq = h.runq[:0]
		h.runqHead = 0
	}
	next.inRunq = false
	h.ctxSwitches++
	delay := h.pr.CtxSwitch + h.pr.DispatchLatency
	h.k.After(delay, next.dispatchName, next.dispatchFn)
}

// finishDispatch completes a context switch armed by maybeDispatch.
func (h *Host) finishDispatch(next *Proc) {
	h.dispatching = false
	if next.state == stateDead {
		h.maybeDispatch()
		return
	}
	h.cur = next
	next.state = stateRunning
	next.dispatchSeq++
	next.quantumUsed = 0
	next.sys += h.pr.CtxSwitch
	h.busy += h.pr.CtxSwitch
	if Trace != nil {
		tracef("%v %s: dispatch %s", h.k.Now(), h.name, next.name)
	}
	next.sp.Wake()
}

// acquireCPU blocks until this process is the one running on the CPU.
func (p *Proc) acquireCPU() {
	for p.h.cur != p {
		p.sp.Park("cpu wait")
	}
}

// releaseCPU gives up the CPU voluntarily (block or exit path).
func (p *Proc) releaseCPU() {
	if p.h.cur == p {
		p.h.cur = nil
		p.h.maybeDispatch()
	}
}

// Use consumes d of CPU time charged to the given bucket, yielding the
// CPU at quantum boundaries if other processes are runnable. It is the
// only way simulated computation passes time.
func (p *Proc) Use(d time.Duration, kind CPUKind) {
	for d > 0 {
		p.acquireCPU()
		slice := d
		if rem := p.h.pr.Quantum - p.quantumUsed; slice > rem {
			slice = rem
		}
		if slice > 0 {
			p.sp.Sleep(slice)
			p.charge(slice, kind)
			p.quantumUsed += slice
			d -= slice
		}
		if p.quantumUsed >= p.h.pr.Quantum {
			p.quantumExpire()
		}
	}
}

// UseUser charges d as user time.
func (p *Proc) UseUser(d time.Duration) { p.Use(d, CPUUser) }

// UseSys charges d as system time.
func (p *Proc) UseSys(d time.Duration) { p.Use(d, CPUSys) }

func (p *Proc) charge(d time.Duration, kind CPUKind) {
	switch kind {
	case CPUSys:
		p.sys += d
	default:
		p.user += d
	}
	p.h.busy += d
}

// quantumExpire rotates the CPU to the next runnable process, if any.
func (p *Proc) quantumExpire() {
	h := p.h
	if h.runnable() == 0 {
		p.quantumUsed = 0 // alone: keep running, fresh quantum
		return
	}
	if Trace != nil {
		tracef("%v %s: quantum expire %s (runq %d)", h.k.Now(), h.name, p.name, h.runnable())
	}
	h.cur = nil
	h.enqueue(p)
	h.maybeDispatch()
	p.acquireCPU()
}

// Preempt forces the current process off the CPU at its next scheduling
// point by exhausting its quantum. Used with Params.PreemptOnWake.
func (h *Host) preemptCurrent() {
	if h.cur != nil {
		h.cur.quantumUsed = h.pr.Quantum
	}
}

// SleepOn blocks the process until Host.Wakeup is called with the same
// key, giving up the CPU. Spurious wakeups do not occur at this layer:
// the process returns only after a matching Wakeup (callers that share a
// key among conditions should still re-check them).
func (p *Proc) SleepOn(key any) {
	h := p.h
	p.state = stateBlocked
	p.sleepKey = key
	h.sleepers[key] = append(h.sleepers[key], p)
	p.releaseCPU()
	for p.state == stateBlocked {
		// The key is already boxed, so parking on it costs nothing and
		// keeps the blocked-on condition inspectable in a debugger.
		p.sp.Park(key)
	}
	p.acquireCPU()
}

// SleepFor blocks the process for virtual duration d (a timed kernel
// sleep, not CPU consumption).
func (p *Proc) SleepFor(d time.Duration) {
	h := p.h
	p.state = stateBlocked
	p.releaseCPU()
	h.k.After(d, p.timerName, p.timerFn)
	for p.state == stateBlocked {
		p.sp.Park("timed sleep")
	}
	p.acquireCPU()
}

// timerFire completes a SleepFor armed on p.
func (h *Host) timerFire(p *Proc) {
	if p.state == stateBlocked {
		p.state = stateRunnable
		h.enqueue(p)
		h.maybeDispatch()
		if h.pr.PreemptOnWake {
			h.preemptCurrent()
		}
		h.armWakeBoost(p)
		p.sp.Wake()
	}
}

// Wakeup makes every process sleeping on key runnable. It may be called
// from kernel event context (e.g. a NIC interrupt) or from another
// process.
func (h *Host) Wakeup(key any) {
	ps := h.sleepers[key]
	if len(ps) == 0 {
		return
	}
	// Retain the entry with its capacity; ps stays a stable snapshot
	// because no process can re-sleep on the key until this event
	// callback has returned control to the kernel.
	h.sleepers[key] = ps[:0]
	for _, p := range ps {
		if p.state != stateBlocked {
			continue
		}
		p.state = stateRunnable
		p.sleepKey = nil
		h.enqueue(p)
		p.sp.Wake()
	}
	h.maybeDispatch()
	if h.pr.PreemptOnWake {
		h.preemptCurrent()
	}
	for _, p := range ps {
		h.armWakeBoost(p)
	}
}

// boostTimer is one in-flight wake-boost: the woken process, the
// dispatch epoch captured at arm time, and a closure built once (when
// the timer is first allocated) so re-arming from the pool is
// allocation-free. Timers return to the host's pool when they fire.
type boostTimer struct {
	h     *Host
	woken *Proc
	epoch uint64
	fn    func()
}

// fire applies the boost if it is still fresh, then recycles the timer.
func (bt *boostTimer) fire() {
	h, woken := bt.h, bt.woken
	if woken.dispatchSeq == bt.epoch && woken.state == stateRunnable && woken.inRunq && h.cur != nil {
		if Trace != nil {
			tracef("%v %s: boost preempts %s for %s", h.k.Now(), h.name, h.cur.name, woken.name)
		}
		h.cur.quantumUsed = h.pr.Quantum
	}
	bt.woken = nil
	h.boostFree = append(h.boostFree, bt)
}

// armWakeBoost schedules the wakeup priority boost for a just-woken
// process: if it is still waiting for the CPU after WakeBoostDelay, the
// current runner's quantum is exhausted so it yields at its next
// scheduling point (for a spinning client that is its next 50 µs check; a
// server mid-copy yields at the end of the copy). A process that got the
// CPU before the boost fires consumes no preemption — this matches the
// SunOS behaviour where only still-starved woken processes outrank the
// running one at priority recomputation.
func (h *Host) armWakeBoost(woken *Proc) {
	if h.pr.WakeBoostDelay <= 0 {
		return
	}
	var bt *boostTimer
	if n := len(h.boostFree); n > 0 {
		bt = h.boostFree[n-1]
		h.boostFree[n-1] = nil
		h.boostFree = h.boostFree[:n-1]
	} else {
		bt = &boostTimer{h: h}
		bt.fn = bt.fire
	}
	bt.woken = woken
	// Capture the dispatch epoch: if the woken process runs (is
	// dispatched) before the boost fires, the boost is stale and must be
	// discarded — otherwise it would preempt whoever runs later (often
	// the server) in favour of a process that already had its turn.
	bt.epoch = woken.dispatchSeq
	h.k.After(h.pr.WakeBoostDelay, h.boostName, bt.fn)
}

// Interrupt models a hardware interrupt: after the configured interrupt
// cost, fn runs in kernel event context (typically a Wakeup). Interrupts
// raised back-to-back by one cause — a broadcast delivery raising the
// same fixed-latency interrupt on every receiving host — are coalesced
// into a single kernel event (sim.Kernel.AfterCoalesced), which merges
// only when dispatch order is provably unaffected; interrupt handlers
// cannot be cancelled, so nothing is lost by not getting an Event back.
func (h *Host) Interrupt(fn func()) {
	h.k.AfterCoalesced(h.pr.InterruptCost, h.intrName, fn)
}

// Sleeping reports how many processes are blocked on key.
func (h *Host) Sleeping(key any) int { return len(h.sleepers[key]) }

func (h *Host) String() string { return fmt.Sprintf("host %d (%s)", h.id, h.name) }
