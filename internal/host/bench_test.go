package host

import (
	"testing"
	"time"

	"mether/internal/sim"
)

// BenchmarkHostSleepWake measures the sleep/wake round trip — the shape
// of every fault wait and server doze in the Mether protocols: a
// process blocks on a wait key, a kernel event wakes it, the scheduler
// dispatches it with a wake boost armed. Steady state must not
// allocate: the wait key is boxed once, the sleeper slice keeps its
// capacity across cycles, and boost timers are pooled.
func BenchmarkHostSleepWake(b *testing.B) {
	k := sim.New(1)
	h := New(k, 0, "bench", DefaultParams())
	var key any = "benchkey"
	n := 0
	var wake func()
	wake = func() {
		h.Wakeup(key)
		if n < b.N {
			k.After(50*time.Microsecond, "waker", wake)
		}
	}
	h.Spawn("sleeper", func(p *Proc) {
		for n < b.N {
			n++
			p.SleepOn(key)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	k.After(50*time.Microsecond, "waker", wake)
	k.Run()
	b.StopTimer()
	k.Shutdown()
}

// BenchmarkHostQuantumRotation measures two compute-bound processes
// alternating whole quanta — the paper's mutual-spinner baseline. Every
// quantum expiry re-enqueues, context-switches and dispatches through
// precomputed closures, so steady state must not allocate.
func BenchmarkHostQuantumRotation(b *testing.B) {
	k := sim.New(1)
	h := New(k, 0, "bench", DefaultParams())
	per := h.Params().Quantum * time.Duration(b.N/2+1)
	for i := 0; i < 2; i++ {
		h.Spawn("spinner", func(p *Proc) { p.UseUser(per) })
	}
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
	b.StopTimer()
	k.Shutdown()
}
