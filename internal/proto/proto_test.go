package proto

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"mether/internal/vm"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		pkt  Packet
	}{
		{
			name: "short request",
			pkt:  Packet{Type: TypeRequest, Page: 7, Short: true, Consistent: true, From: 2, OwnerTo: NoOwner, ReqID: 99},
		},
		{
			name: "full request",
			pkt:  Packet{Type: TypeRequest, Page: MaxPages - 1, From: 1, OwnerTo: NoOwner},
		},
		{
			name: "large-cluster host ids",
			pkt:  Packet{Type: TypeRequest, Page: 2, From: 255, OwnerTo: MaxHostID, ReqID: 7},
		},
		{
			name: "short data with ownership",
			pkt:  Packet{Type: TypeData, Page: 3, Short: true, From: 0, OwnerTo: 1, Gen: 42, Data: make([]byte, vm.ShortSize)},
		},
		{
			name: "full data broadcast",
			pkt:  Packet{Type: TypeData, Page: 5, From: 1, OwnerTo: NoOwner, Gen: 7, Data: bytes.Repeat([]byte{0xAA}, vm.PageSize)},
		},
		{
			name: "rest request",
			pkt:  Packet{Type: TypeRestRequest, Page: 9, From: 3, OwnerTo: NoOwner, ReqID: 5},
		},
		{
			name: "rest data",
			pkt:  Packet{Type: TypeRestData, Page: 9, From: 0, OwnerTo: NoOwner, Gen: 1, Data: make([]byte, RestLen)},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			enc, err := Encode(tt.pkt)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			got, err := Decode(enc)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if got.Type != tt.pkt.Type || got.Page != tt.pkt.Page ||
				got.Short != tt.pkt.Short || got.Consistent != tt.pkt.Consistent ||
				got.From != tt.pkt.From || got.OwnerTo != tt.pkt.OwnerTo ||
				got.ReqID != tt.pkt.ReqID || got.Gen != tt.pkt.Gen {
				t.Errorf("header mismatch:\n got %+v\nwant %+v", got, tt.pkt)
			}
			if !bytes.Equal(got.Data, tt.pkt.Data) {
				t.Error("payload mismatch")
			}
		})
	}
}

func TestEncodedSizes(t *testing.T) {
	// The calibration in EXPERIMENTS.md depends on these wire sizes.
	req, err := Encode(Packet{Type: TypeRequest, OwnerTo: NoOwner})
	if err != nil {
		t.Fatal(err)
	}
	if len(req) != HeaderLen {
		t.Errorf("request size %d, want %d", len(req), HeaderLen)
	}
	short, err := Encode(Packet{Type: TypeData, Short: true, OwnerTo: NoOwner, Data: make([]byte, vm.ShortSize)})
	if err != nil {
		t.Fatal(err)
	}
	if len(short) != HeaderLen+vm.ShortSize {
		t.Errorf("short data size %d, want %d", len(short), HeaderLen+vm.ShortSize)
	}
	full, err := Encode(Packet{Type: TypeData, OwnerTo: NoOwner, Data: make([]byte, vm.PageSize)})
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != HeaderLen+vm.PageSize {
		t.Errorf("full data size %d, want %d", len(full), HeaderLen+vm.PageSize)
	}
}

func TestEncodeRejectsBadPayloads(t *testing.T) {
	cases := []Packet{
		{Type: TypeData, Short: true, Data: make([]byte, 31)},
		{Type: TypeData, Data: make([]byte, 100)},
		{Type: TypeRequest, Data: []byte{1}},
		{Type: TypeRestData, Data: make([]byte, 10)},
		{Type: Type(99)},
		// Page ids beyond the 16-bit wire field must be rejected, not
		// silently truncated onto another page.
		{Type: TypeRequest, Page: MaxPages},
		{Type: TypeRequest, Page: 1 << 20},
	}
	for _, p := range cases {
		if _, err := Encode(p); !errors.Is(err, ErrMalformed) {
			t.Errorf("Encode(%v) err = %v, want ErrMalformed", p.Type, err)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		bytes.Repeat([]byte{0}, HeaderLen), // bad magic
		append([]byte{magic, 9}, make([]byte, 14)...),           // bad version
		append([]byte{magic, version, 99}, make([]byte, 13)...), // bad type
	}
	for i, b := range cases {
		if _, err := Decode(b); !errors.Is(err, ErrMalformed) {
			t.Errorf("case %d: err = %v, want ErrMalformed", i, err)
		}
	}
}

func TestDecodeRejectsTruncatedPayload(t *testing.T) {
	enc, err := Encode(Packet{Type: TypeData, Short: true, OwnerTo: NoOwner, Data: make([]byte, vm.ShortSize)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(enc[:len(enc)-5]); !errors.Is(err, ErrMalformed) {
		t.Errorf("truncated decode err = %v, want ErrMalformed", err)
	}
}

func TestNoOwnerRoundTrip(t *testing.T) {
	enc, err := Encode(Packet{Type: TypeData, Short: true, OwnerTo: NoOwner, Data: make([]byte, vm.ShortSize)})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.OwnerTo != NoOwner {
		t.Errorf("OwnerTo = %d, want NoOwner", got.OwnerTo)
	}
}

// Property: any header field combination survives an encode/decode cycle.
func TestHeaderRoundTripProperty(t *testing.T) {
	prop := func(page uint16, from, ownerTo int16, reqID uint16, gen uint32, short, consistent, isReq bool) bool {
		p := Packet{
			Page: vm.PageID(page), From: from, OwnerTo: ownerTo,
			ReqID: reqID, Short: short, Consistent: consistent,
		}
		if isReq {
			p.Type = TypeRequest
		} else {
			p.Type = TypeData
			p.Gen = gen
			if short {
				p.Data = make([]byte, vm.ShortSize)
			} else {
				p.Data = make([]byte, vm.PageSize)
			}
		}
		enc, err := Encode(p)
		if err != nil {
			return false
		}
		got, err := Decode(enc)
		if err != nil {
			return false
		}
		return got.Page == p.Page && got.From == p.From && got.OwnerTo == p.OwnerTo &&
			got.ReqID == p.ReqID && got.Short == p.Short && got.Consistent == p.Consistent &&
			got.Gen == p.Gen
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestDecodeMalformedTable walks every malformed-input class with the
// reason each should fail: bad magic, wrong version, unknown type,
// truncated header, and payload length mismatches for every packet type.
func TestDecodeMalformedTable(t *testing.T) {
	goodShort, err := Encode(Packet{Type: TypeData, Short: true, OwnerTo: NoOwner, Data: make([]byte, vm.ShortSize)})
	if err != nil {
		t.Fatal(err)
	}
	goodReq, err := Encode(Packet{Type: TypeRequest, OwnerTo: NoOwner})
	if err != nil {
		t.Fatal(err)
	}
	goodRest, err := Encode(Packet{Type: TypeRestData, OwnerTo: NoOwner, Data: make([]byte, RestLen)})
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(b []byte, off int, v byte) []byte {
		out := append([]byte(nil), b...)
		out[off] = v
		return out
	}
	tests := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"one byte", []byte{magic}},
		{"bad magic", corrupt(goodReq, 0, 0x00)},
		{"bad version", corrupt(goodReq, 1, version+1)},
		{"unknown type zero", corrupt(goodReq, 2, 0)},
		{"unknown type high", corrupt(goodReq, 2, 200)},
		{"request with payload", append(append([]byte(nil), goodReq...), 0xFF)},
		{"short data truncated payload", goodShort[:len(goodShort)-1]},
		{"short data extra payload", append(append([]byte(nil), goodShort...), 0)},
		{"short flag cleared on short payload", corrupt(goodShort, 3, 0)},
		{"rest data truncated", goodRest[:len(goodRest)-7]},
		{"rest request with payload", corrupt(goodRest, 2, byte(TypeRestRequest))},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Decode(tt.b); !errors.Is(err, ErrMalformed) {
				t.Errorf("Decode(%q) err = %v, want ErrMalformed", tt.name, err)
			}
		})
	}
}

// TestDecodeTruncatedHeaderEveryLength rejects every sub-header prefix
// of a valid packet.
func TestDecodeTruncatedHeaderEveryLength(t *testing.T) {
	enc, err := Encode(Packet{Type: TypeData, Short: true, OwnerTo: NoOwner, Data: make([]byte, vm.ShortSize)})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < HeaderLen; n++ {
		if _, err := Decode(enc[:n]); !errors.Is(err, ErrMalformed) {
			t.Errorf("Decode of %d-byte prefix: err = %v, want ErrMalformed", n, err)
		}
	}
}

// TestGoldenHeaderLayout pins the wire layout byte for byte; the header
// format is a compatibility surface for traces and calibration.
func TestGoldenHeaderLayout(t *testing.T) {
	enc, err := Encode(Packet{
		Type: TypeRequest, Page: 0x0102, Short: true, Consistent: true,
		From: 0x0304, OwnerTo: NoOwner, ReqID: 0xBEEF, Gen: 0x0A0B0C0D,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{
		magic, version, byte(TypeRequest), flagShort | flagConsist,
		0x02, 0x01, // page, little-endian (16-bit since v2)
		0x04, 0x03, // from, little-endian (16-bit since v2)
		0xFF, 0xFF, // ownerTo (NoOwner = -1, 16-bit since v2)
		0xEF, 0xBE, // reqID, little-endian
		0x0D, 0x0C, 0x0B, 0x0A, // gen, little-endian
	}
	if !bytes.Equal(enc, want) {
		t.Errorf("header layout drifted:\n got %x\nwant %x", enc, want)
	}
}

// TestAppendEncodeReusesScratch pins the zero-allocation encode path:
// encoding into a scratch buffer's capacity matches Encode byte for byte
// and keeps the same backing array.
func TestAppendEncodeReusesScratch(t *testing.T) {
	pkt := Packet{Type: TypeData, Page: 9, Short: true, From: 1, OwnerTo: NoOwner, Gen: 3, Data: make([]byte, vm.ShortSize)}
	fresh, err := Encode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	scratch := make([]byte, 0, HeaderLen+vm.PageSize)
	out, err := AppendEncode(scratch[:0], pkt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, fresh) {
		t.Errorf("AppendEncode differs from Encode:\n got %x\nwant %x", out, fresh)
	}
	if &out[0] != &scratch[:1][0] {
		t.Error("AppendEncode reallocated despite sufficient scratch capacity")
	}
}

// Property: Decode never panics on random input.
func TestDecodeNeverPanics(t *testing.T) {
	prop := func(b []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Decode(b)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
