// Package proto defines the Mether wire protocol: the datagrams the
// user-level servers exchange over the broadcast Ethernet. There are four
// packet kinds — page requests, page data (which doubles as the PURGE
// propagation broadcast), and the rest-fetch pair used when ownership
// moved via a short transfer and a full view is needed later.
//
// All packets share one fixed 16-byte header followed by an optional
// payload. Encoding is little-endian via encoding/binary. Version 2
// repacked the header for large clusters: host ids (From, OwnerTo) are
// 16-bit so a segment can carry more than 127 stations, paid for by
// narrowing the page id to 16 bits (worlds are bounded by
// Config.NumPages, far below 65536). The header length — and therefore
// every frame's wire size and timing — is unchanged from version 1.
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"

	"mether/internal/vm"
)

// Type discriminates packet kinds.
type Type uint8

const (
	// TypeRequest asks the page's owner to broadcast a copy. Flags select
	// short/full and whether the requester wants the consistent copy
	// (ownership).
	TypeRequest Type = iota + 1
	// TypeData carries page bytes. Every TypeData is broadcast, so it
	// both answers requests and snoopily refreshes resident copies; a
	// PURGE of a writable page manifests as a TypeData with no owner
	// transfer.
	TypeData
	// TypeRestRequest asks the rest-owner for the superset remainder
	// [ShortSize, PageSize) of a page.
	TypeRestRequest
	// TypeRestData carries the superset remainder.
	TypeRestData
)

// String returns the packet kind mnemonic.
func (t Type) String() string {
	switch t {
	case TypeRequest:
		return "REQ"
	case TypeData:
		return "DATA"
	case TypeRestRequest:
		return "RESTREQ"
	case TypeRestData:
		return "RESTDATA"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// NoOwner marks a TypeData packet that transfers no ownership (a pure
// refresh/purge broadcast).
const NoOwner = -1

const (
	magic       = 0x4D // 'M'
	version     = 2
	flagShort   = 1 << 0
	flagConsist = 1 << 1

	// HeaderLen is the fixed header size in bytes.
	HeaderLen = 16
	// RestLen is the superset remainder payload size.
	RestLen = vm.PageSize - vm.ShortSize
	// MaxPages bounds the page ids the 16-bit wire field can carry.
	MaxPages = 1 << 16
	// MaxHostID bounds the host ids the 16-bit signed wire fields can
	// carry (NoOwner takes -1).
	MaxHostID = 1<<15 - 1
	// MaxRedundantTargets bounds the extra hosts a redundant TypeRequest
	// may name in its payload (see AppendTargets). A classic request
	// carries no payload, so k=1 stays byte-identical to version 2's
	// original wire format.
	MaxRedundantTargets = 8
)

// ErrMalformed reports an undecodable packet.
var ErrMalformed = errors.New("proto: malformed packet")

// Packet is the decoded form of every Mether datagram. Fields not used
// by a given Type are zero.
type Packet struct {
	Type       Type
	Page       vm.PageID
	Short      bool  // request: short view; data: payload is the short region
	Consistent bool  // request: ownership wanted
	From       int16 // sending host id
	OwnerTo    int16 // data: host receiving ownership, or NoOwner
	ReqID      uint16
	Gen        uint32 // data: content generation
	Data       []byte // TypeData / TypeRestData payload
}

// payloadLen returns the required payload length for the packet type, or
// -1 when any length is invalid. TypeRequest is variable-length (see
// validateTargets) and handled separately by Validate.
func (p Packet) payloadLen() int {
	switch p.Type {
	case TypeRestRequest:
		return 0
	case TypeData:
		if p.Short {
			return vm.ShortSize
		}
		return vm.PageSize
	case TypeRestData:
		return RestLen
	default:
		return -1
	}
}

// Validate checks internal consistency without encoding.
func (p Packet) Validate() error {
	if p.Type == TypeRequest {
		if err := validateTargets(p.Data); err != nil {
			return err
		}
	} else {
		want := p.payloadLen()
		if want < 0 {
			return fmt.Errorf("%w: unknown type %d", ErrMalformed, p.Type)
		}
		if len(p.Data) != want {
			return fmt.Errorf("%w: %s payload %d bytes, want %d", ErrMalformed, p.Type, len(p.Data), want)
		}
	}
	if p.Page >= MaxPages {
		return fmt.Errorf("%w: page %d beyond the 16-bit wire field", ErrMalformed, p.Page)
	}
	return nil
}

// validateTargets checks a TypeRequest's optional redundant-fetch target
// list: little-endian uint16 host ids, at most MaxRedundantTargets of
// them, each a valid host id. An empty payload is the classic request.
func validateTargets(data []byte) error {
	if len(data)%2 != 0 {
		return fmt.Errorf("%w: REQ target payload %d bytes (odd)", ErrMalformed, len(data))
	}
	if len(data) > 2*MaxRedundantTargets {
		return fmt.Errorf("%w: REQ names %d targets, max %d", ErrMalformed, len(data)/2, MaxRedundantTargets)
	}
	for i := 0; i < len(data); i += 2 {
		if id := binary.LittleEndian.Uint16(data[i:]); id > MaxHostID {
			return fmt.Errorf("%w: REQ target %d beyond host id space", ErrMalformed, id)
		}
	}
	return nil
}

// AppendTargets encodes extra redundant-fetch target host ids onto dst
// as a TypeRequest payload. A request with no targets (classic k=1)
// encodes no payload and is byte-identical to the pre-redundancy wire
// format.
func AppendTargets(dst []byte, ids []int16) []byte {
	for _, id := range ids {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(id))
	}
	return dst
}

// HasTarget reports whether a TypeRequest target payload names host id.
func HasTarget(data []byte, id int16) bool {
	for i := 0; i+2 <= len(data); i += 2 {
		if int16(binary.LittleEndian.Uint16(data[i:])) == id {
			return true
		}
	}
	return false
}

// Encode serializes the packet into a fresh buffer. Invalid type/payload
// combinations return an error.
func Encode(p Packet) ([]byte, error) {
	return AppendEncode(make([]byte, 0, HeaderLen+len(p.Data)), p)
}

// AppendEncode serializes the packet onto dst (reusing its capacity) and
// returns the extended slice. Hot paths keep a scratch buffer and call
// AppendEncode(scratch[:0], p) to encode without allocating.
func AppendEncode(dst []byte, p Packet) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var flags byte
	if p.Short {
		flags |= flagShort
	}
	if p.Consistent {
		flags |= flagConsist
	}
	dst = append(dst, magic, version, byte(p.Type), flags)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(p.Page))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(p.From))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(p.OwnerTo))
	dst = binary.LittleEndian.AppendUint16(dst, p.ReqID)
	dst = binary.LittleEndian.AppendUint32(dst, p.Gen)
	return append(dst, p.Data...), nil
}

// Decode parses a datagram, validating header fields and payload length.
// The returned packet's Data aliases b's storage.
func Decode(b []byte) (Packet, error) {
	if len(b) < HeaderLen {
		return Packet{}, fmt.Errorf("%w: %d bytes", ErrMalformed, len(b))
	}
	if b[0] != magic {
		return Packet{}, fmt.Errorf("%w: bad magic %#x", ErrMalformed, b[0])
	}
	if b[1] != version {
		return Packet{}, fmt.Errorf("%w: version %d", ErrMalformed, b[1])
	}
	p := Packet{
		Type:       Type(b[2]),
		Short:      b[3]&flagShort != 0,
		Consistent: b[3]&flagConsist != 0,
		Page:       vm.PageID(binary.LittleEndian.Uint16(b[4:])),
		From:       int16(binary.LittleEndian.Uint16(b[6:])),
		OwnerTo:    int16(binary.LittleEndian.Uint16(b[8:])),
		ReqID:      binary.LittleEndian.Uint16(b[10:]),
		Gen:        binary.LittleEndian.Uint32(b[12:]),
	}
	if len(b) > HeaderLen {
		p.Data = b[HeaderLen:]
	}
	if err := p.Validate(); err != nil {
		return Packet{}, err
	}
	return p, nil
}
