// Package sweep is the reproduction's scenario-sweep engine: it defines
// grids of independent simulation scenarios (protocol × page mode ×
// fault semantics × server placement × loss rate × workload mix × host
// count), runs each scenario's World on its own goroutine under a
// bounded worker pool, and aggregates the results into deterministic
// reports.
//
// Determinism is the load-bearing property: every scenario is a sealed
// deterministic simulation keyed by its seed, and a Report contains only
// virtual-time measurements, so the same grid and seed produce
// byte-identical JSON/CSV output whether the sweep runs on one core or
// all of them. Real-time measurements (how long the sweep itself took,
// the parallel speedup) are returned separately in Timing and never
// enter the Report.
package sweep

import (
	"fmt"
	"time"

	"mether/internal/analysis"
	"mether/internal/core"
	"mether/internal/ethernet"
	"mether/internal/fault"
	"mether/internal/protocols"
	"mether/internal/workload"
)

// Kind discriminates what a scenario runs.
type Kind string

// Scenario kinds.
const (
	// KindCounter is the paper's two-host synchronization counter
	// (Figures 4-9); Protocol selects page mode and fault semantics.
	KindCounter Kind = "counter"
	// KindFanout is the one-writer/N-reader broadcast-scaling run.
	KindFanout Kind = "fanout"
	// KindPipe is the single-pipe message-mix throughput run.
	KindPipe Kind = "pipe"
	// KindHotspot is N hosts contending for one shared page.
	KindHotspot Kind = "hotspot"
	// KindBarrier is the N-host bulk-synchronous barrier-phase run.
	KindBarrier Kind = "barrier"
	// KindPipeline is the producer-consumer pipeline over Mether pipes.
	KindPipeline Kind = "pipeline"
	// KindStationary is the P5-style stationary-owner counter at cluster
	// scale: every host updates its own page and passively samples a
	// neighbour.
	KindStationary Kind = "stationary"
)

// Scenario is one point of a sweep grid: a named, fully parameterized,
// independently runnable simulation. Zero-valued fields take the
// underlying runner's defaults.
type Scenario struct {
	Name string
	Kind Kind
	Seed int64
	// Cap bounds the simulated run (scenario-kind default when zero).
	Cap time.Duration

	// Counter parameters (KindCounter).
	Protocol    protocols.Protocol
	Target      uint32
	HysteresisN int
	SleepHyst   time.Duration
	// Figure names an analysis figure whose paper bands the result is
	// checked against ("" = no check). Checks only apply at the paper's
	// full scale (Target 1024).
	Figure string

	// Fanout parameters (KindFanout).
	FanoutMode protocols.FanoutMode
	Readers    int
	Updates    int

	// Pipe-mix parameters (KindPipe).
	Dist     workload.SizeDist
	Messages int

	// Hotspot / barrier / pipeline / stationary parameters.
	Hosts     int
	Iters     int
	ShortPage bool
	Phases    int
	Stages    int
	MsgSize   int
	// MinResidency overrides the hotspot anti-thrash holdoff (zero =
	// driver default); cluster cells scale it with host count.
	MinResidency time.Duration
	// RetryTimeout overrides the hotspot demand-retransmit interval
	// (zero = driver default); the 1024-host tier scales it with host
	// count so redundant request re-broadcasts stay bounded.
	RetryTimeout time.Duration
	// CheckEvery overrides the barrier waiter's spin-check interval
	// (zero = workload default); the 1024-host tier scales it with host
	// count so waiters poll no faster than the broadcast backlog drains.
	CheckEvery time.Duration
	// Writers bounds the hotspot's active writer set (zero = all hosts);
	// the 1024-host tier bounds it so the cell stays tractable.
	Writers int
	// WarmStart seeds resident replicas before the run (1024-host tier:
	// cold attach is an O(hosts³) request storm).
	WarmStart bool
	// The windowed-tier knobs (stationary only; the 4096/10000-host cells
	// set all four, classic cells leave them zero): Windowed maps only
	// each host's working set instead of the whole segment, Stagger
	// offsets host i's start by i×Stagger so first purges don't collide
	// at t=0, Lazy enables the driver's memory-lazy receive path
	// (core.Config.LazyReplicas), and RingSlots replaces the uniform rx
	// ring with a small fan-in-derived constant per NIC.
	Windowed  bool
	Stagger   time.Duration
	Lazy      bool
	RingSlots int

	// Shared cost-model axes. KernelServer applies to counter, hotspot,
	// barrier and stationary scenarios.
	LossRate     float64
	KernelServer bool
	// Topology axes (counter, hotspot, barrier, stationary). Trunks
	// partitions the hosts across bridged Ethernet trunks (0/1 = the
	// classic single bus); TrunkShape is "star" (default) or "linear";
	// OwnerTrunk places the hotspot segment owner's trunk (hotspot
	// only — the other kinds' page layouts are fixed by the workload);
	// PortLoss is the per-port bridge forwarding loss probability.
	// Other bridge parameters stay at the model defaults (1 ms
	// store-and-forward).
	Trunks     int
	TrunkShape string
	OwnerTrunk int
	PortLoss   float64
	// MayDNF marks cells whose failure to finish is part of the
	// measurement (the paper's "Never finished" rows: Figure 6, the
	// hysteresis extremes, lossy passive protocols). methersweep treats
	// a DNF on any cell *not* so marked as a gate failure.
	MayDNF bool
	// RxRing overrides the per-NIC receive ring capacity (zero = model
	// default, 32 frames). A 1024-host broadcast burst arrives at wire
	// speed but drains at server speed; the era-accurate 32-slot ring
	// drops almost all of it, so the large tier scales the ring with
	// cluster fan-in.
	RxRing int
	// Redundancy is the redundant-fetch fan-out k (counter, hotspot,
	// barrier, stationary): read faults name the k-1 nearest replicas as
	// extra targets and the first response wins. 0/1 is the classic
	// owner-only protocol and leaves reports byte-identical.
	Redundancy int
	// BacklogUp / BacklogDown model asymmetric background traffic on
	// every bridge: extra forwarding delay toward the higher- and
	// lower-numbered trunk respectively. Zero on classic cells.
	BacklogUp   time.Duration
	BacklogDown time.Duration
	// Faults is a deterministic fault schedule in fault.Parse syntax
	// ("crash@150ms:h3;partition@200ms:b0;..."), kept as a string so a
	// Scenario stays pure data. Empty means a healthy world — provably
	// identical to a schedule-free run. Applies to hotspot and stationary
	// kinds.
	Faults string
	// Medium selects the interconnect backend for counter, hotspot,
	// barrier and stationary cells: "" / "ethernet" is the paper's
	// shared broadcast bus, "fabric" the RDMA-like point-to-point medium
	// where a broadcast is a sender-paid unicast fan-out. Fabric cells
	// must not combine with Trunks > 1 (no broadcast domains to bridge)
	// or bridge-dependent axes (backlogs, partitions).
	Medium string
	// ClaimRetries arms orphaned-ownership recovery (stationary only):
	// after this many consecutive unanswered demand retries a requester
	// claims the page itself. Zero disables claiming; partition cells
	// must leave it zero (a claim across a partition mints a second
	// owner).
	ClaimRetries int
}

// Result is one scenario's aggregated measurements. Every field is a
// pure function of the scenario definition and seed: durations are
// virtual nanoseconds, never wall time. Fields irrelevant to a
// scenario's kind are zero.
type Result struct {
	Name string `json:"name"`
	Kind Kind   `json:"kind"`
	Seed int64  `json:"seed"`
	Err  string `json:"err,omitempty"`
	DNF  bool   `json:"dnf,omitempty"`

	WallNS    int64   `json:"wall_ns"`
	Ops       uint64  `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	LossWin   float64 `json:"loss_win,omitempty"`

	UserNS      int64  `json:"user_ns"`
	SysNS       int64  `json:"sys_ns"`
	ServerNS    int64  `json:"server_ns"`
	CtxSwitches uint64 `json:"ctx_switches"`

	WireBytes      uint64  `json:"wire_bytes"`
	Packets        uint64  `json:"packets"`
	NetBytesPerSec float64 `json:"net_bytes_per_sec"`

	LatMeanNS int64 `json:"lat_mean_ns"`
	LatP50NS  int64 `json:"lat_p50_ns"`
	LatP90NS  int64 `json:"lat_p90_ns"`
	// LatP99NS / LatP999NS are the tail-latency columns the redundancy
	// axis is measured by: the mean barely moves when a lost reply costs
	// one cell a 250 ms retry, but the p99/p999 jump an order of
	// magnitude.
	LatP99NS  int64  `json:"lat_p99_ns"`
	LatP999NS int64  `json:"lat_p999_ns"`
	LatMaxNS  int64  `json:"lat_max_ns"`
	LatCount  uint64 `json:"lat_count"`

	// Events is the number of simulation-kernel events the scenario
	// dispatched — deterministic like every other field; the engine
	// throughput denominator for BENCH_sweep.json records.
	Events uint64 `json:"events,omitempty"`

	// MemBytes is the world's structural memory footprint (see
	// World.MemFootprint): a deterministic walk of driver directories,
	// frames, queues and NIC rings, not runtime heap statistics.
	// BytesPerHost divides it by the cluster size — the scaling headline
	// the flyweight tiers are measured by. RingHighWater is the deepest
	// any NIC rx ring got (max over hosts), proving configured ring
	// bounds out. All omitted when zero, keeping pre-existing baselines'
	// gated metrics comparable.
	MemBytes      uint64  `json:"mem_bytes,omitempty"`
	BytesPerHost  float64 `json:"bytes_per_host,omitempty"`
	RingHighWater int     `json:"ring_high_water,omitempty"`

	// Fabric measurements, zero (and omitted, keeping Ethernet reports
	// byte-identical to pre-fabric baselines) on the shared bus: the
	// per-destination unicast copies transmitted on behalf of broadcasts
	// (the sender-paid fan-out wire cost), frames dropped at full
	// per-link transmit queues, and the peak per-link queue occupancy.
	FanoutFrames  uint64 `json:"fanout_frames,omitempty"`
	LinkOverflows uint64 `json:"link_overflows,omitempty"`
	LinkMaxQueued int    `json:"link_max_queued,omitempty"`

	// Topology measurements, all zero (and omitted, keeping single-trunk
	// reports byte-identical to pre-topology baselines) on a single
	// trunk: bridge forwarded/drop/occupancy counters and the
	// cross-trunk staleness hazard (broadcasts reordered by bridge
	// queues so an old copy arrived after a newer one).
	BridgeForwarded uint64 `json:"bridge_forwarded,omitempty"`
	BridgePortDrops uint64 `json:"bridge_port_drops,omitempty"`
	BridgeMaxQueued int    `json:"bridge_max_queued,omitempty"`
	CrossTrunkStale uint64 `json:"cross_trunk_stale,omitempty"`
	// TrunkUtil and TrunkFrames are the per-trunk wire utilization and
	// frame counts in trunk order, so multi-trunk cells show which trunk
	// saturates (the summed wire_bytes cannot). Omitted — keeping
	// single-trunk reports byte-identical — on classic cells.
	TrunkUtil   []float64 `json:"trunk_util,omitempty"`
	TrunkFrames []uint64  `json:"trunk_frames,omitempty"`

	// Redundant-fetch counters, zero (and omitted) at the classic k=1:
	// replica answers sent on behalf of owners, replica answers
	// suppressed because the winner's reply landed first, and
	// late/duplicate grants dropped by explicit generation comparison.
	RedundantServes     uint64 `json:"redundant_serves,omitempty"`
	RedundantSuppressed uint64 `json:"redundant_suppressed,omitempty"`
	LateDrops           uint64 `json:"late_drops,omitempty"`

	// Fault-plane measurements, zero (and omitted, keeping healthy-world
	// reports byte-identical) without a fault schedule: authorities
	// re-claimed after a crash orphaned them, pre-crash grants refused by
	// the recovered host's ghost fence, authorities shipped by owner
	// migrations, total host-down time, total recovery-to-first-
	// reinstall time, frames a partitioned bridge dropped, and pages
	// still ownerless at end of run (a gate: fault cells must end with
	// zero).
	OrphanRecoveries uint64 `json:"orphan_recoveries,omitempty"`
	GhostDrops       uint64 `json:"ghost_drops,omitempty"`
	MigratedPages    uint64 `json:"migrated_pages,omitempty"`
	UnavailNS        int64  `json:"unavail_ns,omitempty"`
	RejoinNS         int64  `json:"rejoin_ns,omitempty"`
	PartitionDrops   uint64 `json:"partition_drops,omitempty"`
	Orphaned         int    `json:"orphaned,omitempty"`

	// Deviations lists paper-band violations when the scenario carries a
	// Figure reference; empty means all checked cells agree.
	Deviations []string `json:"deviations,omitempty"`
}

// estCost is a deterministic work estimate (hosts × per-host duration
// proxy) used only to order scenarios largest-first before they are
// handed to the worker pool, so a long-pole cell starts early instead of
// serializing the tail of the sweep. Broadcast-bound kinds (hotspot,
// barrier) grow quadratically in host count: every op is a broadcast
// that every host must ingest. The estimate never influences results —
// reports are indexed by grid position, not completion order.
func (s Scenario) estCost() int64 {
	hosts := int64(s.Hosts)
	if hosts < 2 {
		hosts = 2
	}
	var work int64
	switch s.Kind {
	case KindCounter:
		work = int64(s.Target)
		if work == 0 {
			work = 1024
		}
	case KindHotspot:
		work = int64(s.Iters) * hosts
	case KindBarrier:
		work = int64(s.Phases) * hosts
	case KindStationary:
		// Linear in wire bytes, but every update broadcast is still
		// ingested by all hosts, so simulation work is quadratic too.
		work = int64(s.Iters) * hosts
	case KindPipeline:
		work = int64(s.Messages) * int64(s.Stages)
	case KindFanout:
		work = int64(s.Updates) * int64(s.Readers)
	case KindPipe:
		work = int64(s.Messages)
	}
	if work < 1 {
		work = 1
	}
	return hosts * work
}

// netParams builds the Ethernet model for a scenario's loss-rate and
// ring-capacity axes.
func (s Scenario) netParams() ethernet.Params {
	np := ethernet.DefaultParams()
	np.LossRate = s.LossRate
	if s.RxRing > 0 {
		np.RxRing = s.RxRing
	}
	return np
}

// coreConfig builds the driver model for the server-placement and
// redundancy axes.
func (s Scenario) coreConfig() core.Config {
	cc := core.DefaultConfig(8)
	cc.KernelServer = s.KernelServer
	cc.Redundancy = s.Redundancy
	return cc
}

// shape resolves the scenario's TrunkShape mnemonic, panicking on an
// unknown name; Run pre-validates so sweep cells fail softly instead.
func (s Scenario) shape() ethernet.Shape {
	sh, err := ethernet.ShapeByName(s.TrunkShape)
	if err != nil {
		panic(err)
	}
	return sh
}

// CounterConfig assembles the protocols.Config a KindCounter scenario
// runs; exported so benches and cmd/metherbench drive the exact same
// configuration the sweep engine does. An invalid TrunkShape panics
// (programmer error in a bench definition); sweep cells go through
// Run, which pre-validates and fails the cell softly instead.
func (s Scenario) CounterConfig() protocols.Config {
	return s.counterConfig(s.shape())
}

// counterConfig is CounterConfig with the trunk shape already resolved.
func (s Scenario) counterConfig(shape ethernet.Shape) protocols.Config {
	return protocols.Config{
		Protocol:        s.Protocol,
		Target:          s.Target,
		HysteresisN:     s.HysteresisN,
		SleepHysteresis: s.SleepHyst,
		Cap:             s.Cap,
		Seed:            s.Seed,
		NetParams:       s.netParams(),
		Core:            s.coreConfig(),
		Trunks:          s.Trunks,
		Medium:          s.Medium,
		Topology: ethernet.TopologyConfig{
			Shape: shape, PortLoss: s.PortLoss,
			BacklogUp: s.BacklogUp, BacklogDown: s.BacklogDown,
		},
	}
}

// Run executes one scenario to completion and aggregates its Result.
// Errors are folded into Result.Err so one failing cell never aborts a
// whole sweep.
func (s Scenario) Run() Result {
	res := Result{Name: s.Name, Kind: s.Kind, Seed: s.Seed}
	trunkShape, err := ethernet.ShapeByName(s.TrunkShape)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	faults, err := fault.Parse(s.Faults)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	switch s.Kind {
	case KindCounter:
		r, err := protocols.Run(s.counterConfig(trunkShape))
		if err != nil {
			res.Err = err.Error()
			return res
		}
		res.DNF = r.DNF
		res.WallNS = int64(r.Wall)
		res.Ops = uint64(r.Additions)
		res.LossWin = r.LossWin
		res.UserNS = int64(r.User)
		res.SysNS = int64(r.Sys)
		res.ServerNS = int64(r.SysServer)
		res.CtxSwitches = r.CtxSwitches
		res.WireBytes = r.NetBytes
		res.Packets = r.Packets
		res.NetBytesPerSec = r.NetBytesPerSec
		res.LatMeanNS = int64(r.AvgLatency)
		res.LatP50NS = int64(r.LatP50)
		res.LatP90NS = int64(r.LatP90)
		res.LatP99NS = int64(r.LatP99)
		res.LatP999NS = int64(r.LatP999)
		res.LatMaxNS = int64(r.LatMax)
		res.LatCount = r.LatCount
		res.Events = r.Events
		res.MemBytes = r.MemBytes
		res.RingHighWater = r.RingHighWater
		res.RedundantServes = r.RedundantServes
		res.RedundantSuppressed = r.RedundantSuppressed
		res.LateDrops = r.LateDrops
		res.BridgeForwarded = r.BridgeForwarded
		res.BridgePortDrops = r.BridgePortDrops
		res.BridgeMaxQueued = r.BridgeMaxQueued
		res.CrossTrunkStale = r.CrossTrunkStale
		res.TrunkUtil = r.TrunkUtil
		res.TrunkFrames = r.TrunkFrames
		res.FanoutFrames = r.FanoutFrames
		res.LinkOverflows = r.LinkOverflows
		res.LinkMaxQueued = r.LinkMaxQueued
		if r.Wall > 0 {
			res.OpsPerSec = float64(r.Additions) / r.Wall.Seconds()
		}
		if s.Figure != "" && s.Target == 1024 {
			res.Deviations = bandCheck(s.Figure, r)
		}
	case KindFanout:
		r, err := protocols.RunFanout(protocols.FanoutConfig{
			Mode: s.FanoutMode, Readers: s.Readers, Updates: s.Updates,
			Seed: s.Seed, Cap: s.Cap,
		})
		if err != nil {
			res.Err = err.Error()
			return res
		}
		res.WallNS = int64(r.Wall)
		res.Ops = uint64(r.Updates)
		res.UserNS = int64(r.WriterCPU)
		res.WireBytes = r.NetBytes
		res.Packets = r.Packets
		if r.Wall > 0 {
			res.OpsPerSec = float64(r.Updates) / r.Wall.Seconds()
			res.NetBytesPerSec = float64(r.NetBytes) / r.Wall.Seconds()
		}
	case KindPipe:
		r, err := workload.Run(workload.Config{
			Dist: s.Dist, Messages: s.Messages, Seed: s.Seed, Cap: s.Cap,
		})
		if err != nil {
			res.Err = err.Error()
			return res
		}
		res.WallNS = int64(r.Wall)
		res.Ops = uint64(r.Messages)
		res.OpsPerSec = r.MsgsPerSec
		res.WireBytes = r.WireBytes
		res.Packets = r.Packets
		if r.Wall > 0 {
			res.NetBytesPerSec = float64(r.WireBytes) / r.Wall.Seconds()
		}
	case KindHotspot:
		r, err := workload.RunHotspot(workload.HotspotConfig{
			Hosts: s.Hosts, Iters: s.Iters, ShortPage: s.ShortPage,
			Writers: s.Writers, WarmStart: s.WarmStart,
			MinResidency: s.MinResidency, RetryTimeout: s.RetryTimeout,
			KernelServer: s.KernelServer,
			Trunks:       s.Trunks, TrunkShape: trunkShape, OwnerTrunk: s.OwnerTrunk, PortLoss: s.PortLoss,
			BacklogUp: s.BacklogUp, BacklogDown: s.BacklogDown, Redundancy: s.Redundancy,
			Medium: s.Medium,
			Faults: faults,
			Seed:   s.Seed, Cap: s.Cap, NetParams: s.netParams(),
		})
		if err != nil {
			res.Err = err.Error()
			return res
		}
		res.DNF = r.DNF
		res.Ops = r.Updates
		res.fillCluster(r.ClusterStats, s.Hosts)
		res.noteOrphans(s, r.Orphaned)
	case KindBarrier:
		// HysteresisN doubles as the barrier waiter's purge hysteresis:
		// large clusters need a high value so waiters ride the snoopy
		// refreshes instead of flooding the wire with demand fetches.
		r, err := workload.RunBarrier(workload.BarrierConfig{
			Hosts: s.Hosts, Phases: s.Phases, HysteresisPurge: s.HysteresisN,
			CheckEvery: s.CheckEvery, WarmStart: s.WarmStart,
			KernelServer: s.KernelServer,
			Trunks:       s.Trunks, TrunkShape: trunkShape, PortLoss: s.PortLoss,
			BacklogUp: s.BacklogUp, BacklogDown: s.BacklogDown, Redundancy: s.Redundancy,
			Medium: s.Medium,
			Seed:   s.Seed, Cap: s.Cap, NetParams: s.netParams(),
		})
		if err != nil {
			res.Err = err.Error()
			return res
		}
		res.DNF = r.DNF
		res.Ops = uint64(r.Phases)
		res.fillCluster(r.ClusterStats, s.Hosts)
	case KindPipeline:
		r, err := workload.RunPipeline(workload.PipelineConfig{
			Stages: s.Stages, Messages: s.Messages, Size: s.MsgSize,
			Seed: s.Seed, Cap: s.Cap, NetParams: s.netParams(),
		})
		if err != nil {
			res.Err = err.Error()
			return res
		}
		res.DNF = r.DNF
		res.Ops = uint64(r.Delivered)
		res.OpsPerSec = r.MsgsPerSec
		res.fillCluster(r.ClusterStats, r.Stages)
	case KindStationary:
		r, err := workload.RunStationary(workload.StationaryConfig{
			Hosts: s.Hosts, Iters: s.Iters, WarmStart: s.WarmStart,
			KernelServer: s.KernelServer,
			Trunks:       s.Trunks, TrunkShape: trunkShape, PortLoss: s.PortLoss,
			BacklogUp: s.BacklogUp, BacklogDown: s.BacklogDown, Redundancy: s.Redundancy,
			Medium:         s.Medium,
			WindowedAttach: s.Windowed, StaggerStart: s.Stagger,
			LazyReplicas: s.Lazy, RingSlots: s.RingSlots, RetryTimeout: s.RetryTimeout,
			Faults: faults, ClaimRetries: s.ClaimRetries,
			Seed: s.Seed, Cap: s.Cap, NetParams: s.netParams(),
		})
		if err != nil {
			res.Err = err.Error()
			return res
		}
		res.DNF = r.DNF
		res.Ops = r.Updates
		res.fillCluster(r.ClusterStats, s.Hosts)
		res.noteOrphans(s, r.Orphaned)
	default:
		res.Err = fmt.Sprintf("sweep: unknown scenario kind %q", s.Kind)
	}
	return res
}

// fillCluster copies the shared cluster measurements into the result;
// hosts is the cluster size for the bytes-per-host division (the
// pipeline kind passes its stage count — one host per stage).
func (r *Result) fillCluster(cs workload.ClusterStats, hosts int) {
	r.WallNS = int64(cs.Wall)
	r.UserNS = int64(cs.UserCPU)
	r.SysNS = int64(cs.SysCPU)
	r.ServerNS = int64(cs.ServerCPU)
	r.CtxSwitches = cs.CtxSwitches
	r.WireBytes = cs.WireBytes
	r.Packets = cs.Packets
	r.LatMeanNS = int64(cs.LatMean)
	r.LatP50NS = int64(cs.LatP50)
	r.LatP90NS = int64(cs.LatP90)
	r.LatP99NS = int64(cs.LatP99)
	r.LatP999NS = int64(cs.LatP999)
	r.LatMaxNS = int64(cs.LatMax)
	r.LatCount = cs.LatCount
	r.Events = cs.Events
	r.MemBytes = cs.MemBytes
	r.RingHighWater = cs.RingHighWater
	r.FanoutFrames = cs.FanoutFrames
	r.LinkOverflows = cs.LinkOverflows
	r.LinkMaxQueued = cs.LinkMaxQueued
	if hosts > 0 && cs.MemBytes > 0 {
		r.BytesPerHost = float64(cs.MemBytes) / float64(hosts)
	}
	r.RedundantServes = cs.RedundantServes
	r.RedundantSuppressed = cs.RedundantSuppressed
	r.LateDrops = cs.LateDrops
	r.BridgeForwarded = cs.BridgeForwarded
	r.BridgePortDrops = cs.BridgePortDrops
	r.BridgeMaxQueued = cs.BridgeMaxQueued
	r.CrossTrunkStale = cs.CrossTrunkStale
	r.OrphanRecoveries = cs.OrphanRecoveries
	r.GhostDrops = cs.GhostDrops
	r.MigratedPages = cs.MigratedPages
	r.UnavailNS = int64(cs.UnavailNS)
	r.RejoinNS = int64(cs.RejoinNS)
	r.PartitionDrops = cs.BridgePartitionDrops
	r.TrunkUtil = cs.TrunkUtil
	r.TrunkFrames = cs.TrunkFrames
	if cs.Wall > 0 {
		if r.Ops > 0 && r.OpsPerSec == 0 {
			r.OpsPerSec = float64(r.Ops) / cs.Wall.Seconds()
		}
		r.NetBytesPerSec = float64(cs.WireBytes) / cs.Wall.Seconds()
	}
}

// noteOrphans records the end-of-run orphan count on a faulted cell and
// turns a nonzero count into a deviation: a fault schedule must leave
// every page with a live owner (crashed authorities re-claimed), so an
// orphan surviving to the end is a recovery failure, gated exactly like
// a paper-band violation.
func (r *Result) noteOrphans(s Scenario, orphaned int) {
	if s.Faults == "" {
		return
	}
	r.Orphaned = orphaned
	if orphaned > 0 {
		r.Deviations = append(r.Deviations,
			fmt.Sprintf("%d page(s) still orphaned at end of run", orphaned))
	}
}

// bandCheck compares a full-scale counter report against the named
// paper figure's agreement bands.
func bandCheck(figure string, r protocols.Report) []string {
	for _, f := range analysis.Figures() {
		if f.Name != figure {
			continue
		}
		var out []string
		for _, d := range analysis.CheckReport(f, r) {
			out = append(out, d.String())
		}
		return out
	}
	return []string{fmt.Sprintf("unknown figure %q", figure)}
}
