package sweep

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"mether/internal/fault"
	"mether/internal/protocols"
	"mether/internal/workload"
)

// Options scales a named grid. Zero values take the grid defaults.
type Options struct {
	// Target is the counter target for protocol scenarios (default 1024,
	// the paper's scale; smoke grids use their own smaller targets).
	Target uint32
	// Seed drives every scenario (default 1).
	Seed int64
	// Hosts restricts host-count grids (cluster) to one size; zero runs
	// every size. CI smoke uses Hosts=16 so the fast cell gates every
	// push while the 64/256 cells stay on demand.
	Hosts int
	// Trunks restricts the cluster grid's topology axis. Zero runs the
	// full grid: the classic single-trunk cells plus the explicit
	// 2-/4-trunk and broadcast-loss cells. One runs only the classic
	// cells — the exact pre-topology grid, kept reproducible so
	// -baseline comparisons against older reports show zero deltas.
	// N > 1 instead runs every base cell on N star-joined trunks.
	Trunks int
	// Redundancy forces the redundant-fetch fan-out k onto every cluster
	// cell (suffixing names with /kN) instead of adding the explicit
	// k2/k3 cells; zero keeps the default grid. 1 is the classic
	// owner-only protocol under its sweep-axis name.
	Redundancy int
	// Faults controls the cluster grid's fault-injection cells. ""/"on"
	// includes them (the default grid); "off" drops them — the exact
	// healthy grid, kept reproducible so -baseline comparisons against
	// pre-fault reports show zero deltas. Any other value is a
	// fault.Parse spec ("crash@150ms:h3;...") run as one extra custom
	// stationary cell on top of the healthy grid.
	Faults string
	// Medium selects the cluster grid's interconnect axis. "" runs the
	// default grid: every cell on the shared Ethernet plus the explicit
	// /fab fabric cells at 64 and 256 hosts. "ethernet" drops the fabric
	// cells — the exact pre-fabric grid, kept reproducible so -baseline
	// comparisons against older reports show zero deltas. "fabric"
	// instead forces the point-to-point fabric onto every compatible
	// cell (suffixing names with /fab), mirroring the forced-trunks
	// axis; cells built on bridge machinery — trunk topologies, bridge
	// backlog, bridge partitions — have no fabric analogue and are
	// dropped.
	Medium string
}

func (o Options) withDefaults() Options {
	if o.Target == 0 {
		o.Target = 1024
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// FigureScenarios returns the paper's Figure 4-9 configurations as
// sweep scenarios, in figure order. At Target 1024 the four figures
// with published agreement bands carry band checks.
func FigureScenarios(o Options) []Scenario {
	o = o.withDefaults()
	figCap := 240 * time.Second
	return []Scenario{
		{Name: "fig4-full-page", Kind: KindCounter, Protocol: protocols.P1FullPage,
			Target: o.Target, Seed: o.Seed, Figure: "Figure 4 (full page)"},
		{Name: "fig5-short-page", Kind: KindCounter, Protocol: protocols.P2ShortPage,
			Target: o.Target, Seed: o.Seed, Figure: "Figure 5 (short page)"},
		// The paper killed the Figure 6 run; with era datagram loss the
		// passive spin protocol genuinely never finishes, so it runs
		// against a cap.
		{Name: "fig6-disjoint-ro", Kind: KindCounter, Protocol: protocols.P3DisjointRO,
			Target: o.Target, Seed: o.Seed, LossRate: 0.002, Cap: figCap, MayDNF: true},
		{Name: "fig7-hysteresis", Kind: KindCounter, Protocol: protocols.P3Hysteresis,
			Target: o.Target, Seed: o.Seed, HysteresisN: 100},
		{Name: "fig8-data-driven", Kind: KindCounter, Protocol: protocols.P4DataDriven,
			Target: o.Target, Seed: o.Seed, Figure: "Figure 8 (data driven, one page)"},
		{Name: "fig9-final", Kind: KindCounter, Protocol: protocols.P5Final,
			Target: o.Target, Seed: o.Seed, Figure: "Figure 9 (final protocol)"},
	}
}

// KernelAblation crosses the paper's two good protocols with the
// user-level vs in-kernel server placement (the paper's proposed fix).
func KernelAblation(o Options) []Scenario {
	o = o.withDefaults()
	var out []Scenario
	for _, p := range []protocols.Protocol{protocols.P2ShortPage, protocols.P5Final} {
		for _, kernel := range []bool{false, true} {
			mode := "user"
			if kernel {
				mode = "kernel"
			}
			out = append(out, Scenario{
				Name: fmt.Sprintf("kernel/%v/%s", p, mode), Kind: KindCounter,
				Protocol: p, Target: o.Target, Seed: o.Seed, KernelServer: kernel,
			})
		}
	}
	return out
}

// LossAblation crosses protocols with datagram loss rates: the
// reliability discussion (the passive Figure-6 protocol has no recovery
// path; hysteresis and demand protocols do).
func LossAblation(o Options) []Scenario {
	o = o.withDefaults()
	cap := 240 * time.Second
	var out []Scenario
	for _, tc := range []struct {
		p    protocols.Protocol
		loss float64
	}{
		{protocols.P3DisjointRO, 0},
		{protocols.P3DisjointRO, 0.002},
		{protocols.P3Hysteresis, 0.002},
		{protocols.P2ShortPage, 0.002},
		{protocols.P5Final, 0.002},
	} {
		out = append(out, Scenario{
			Name: fmt.Sprintf("loss/%v/%.1f%%", tc.p, tc.loss*100), Kind: KindCounter,
			Protocol: tc.p, Target: o.Target, Seed: o.Seed,
			HysteresisN: 100, LossRate: tc.loss, Cap: cap,
			// The passive paths have no recovery: P3-disjoint-ro trusts
			// snoopy refresh outright, and P5's data-driven block never
			// retransmits — one lost release broadcast under loss can
			// strand both waiters. Whether these finish under loss is
			// the measurement (the paper's reliability discussion).
			MayDNF: tc.loss > 0 && (tc.p == protocols.P3DisjointRO || tc.p == protocols.P5Final),
		})
	}
	return out
}

// HysteresisSweep sweeps the Figure-7 purge period — including the
// boundary cells N=1 (purge on every loss, the flood variant) and
// N=10000 (nearly no recovery) — plus the paper's rejected sleep-based
// fix. The extreme cells run against a cap; whether they finish is part
// of the measurement.
func HysteresisSweep(o Options) []Scenario {
	o = o.withDefaults()
	cap := 300 * time.Second
	var out []Scenario
	for _, n := range []int{1, 10, 100, 1000, 10000} {
		out = append(out, Scenario{
			Name: fmt.Sprintf("hysteresis/N=%d", n), Kind: KindCounter,
			Protocol: protocols.P3Hysteresis, Target: o.Target, Seed: o.Seed,
			HysteresisN: n, Cap: cap,
			// Only the boundary cells are "whether it finishes is the
			// measurement" runs; a mid-range cell hitting its cap is
			// exactly the correctness drift the DNF gate must catch.
			MayDNF: n == 1 || n == 10000,
		})
	}
	out = append(out, Scenario{
		Name: "hysteresis/sleep-5ms", Kind: KindCounter,
		Protocol: protocols.P3Hysteresis, Target: o.Target, Seed: o.Seed,
		SleepHyst: 5 * time.Millisecond, Cap: cap,
	})
	return out
}

// HotspotGrid crosses cluster size with the page-mode axis on the
// hot-page contention workload.
func HotspotGrid(o Options) []Scenario {
	o = o.withDefaults()
	var out []Scenario
	for _, hosts := range []int{2, 4, 8} {
		for _, short := range []bool{true, false} {
			mode := "full"
			if short {
				mode = "short"
			}
			out = append(out, Scenario{
				Name: fmt.Sprintf("hotspot/h%d/%s", hosts, mode), Kind: KindHotspot,
				Hosts: hosts, Iters: 32, ShortPage: short, Seed: o.Seed,
			})
		}
	}
	return out
}

// BarrierGrid scales the bulk-synchronous barrier workload in host
// count, with one lossy cell.
func BarrierGrid(o Options) []Scenario {
	o = o.withDefaults()
	var out []Scenario
	for _, hosts := range []int{2, 4, 8} {
		out = append(out, Scenario{
			Name: fmt.Sprintf("barrier/h%d", hosts), Kind: KindBarrier,
			Hosts: hosts, Phases: 8, Seed: o.Seed,
		})
	}
	out = append(out, Scenario{
		Name: "barrier/h4/loss-0.2%", Kind: KindBarrier,
		Hosts: 4, Phases: 8, Seed: o.Seed, LossRate: 0.002,
	})
	return out
}

// PipelineGrid crosses chain depth with the message-size axis on the
// producer-consumer pipeline.
func PipelineGrid(o Options) []Scenario {
	o = o.withDefaults()
	var out []Scenario
	for _, stages := range []int{2, 3, 4} {
		for _, size := range []int{8, 2048} {
			out = append(out, Scenario{
				Name: fmt.Sprintf("pipeline/s%d/%dB", stages, size), Kind: KindPipeline,
				Stages: stages, Messages: 16, MsgSize: size, Seed: o.Seed,
			})
		}
	}
	return out
}

// PipeMixGrid runs the single-pipe throughput workload across the
// paper's message mixes, with and without datagram loss.
func PipeMixGrid(o Options) []Scenario {
	o = o.withDefaults()
	dists := []workload.SizeDist{
		workload.Fixed{Size: 8},
		workload.Fixed{Size: 7000},
		workload.Bimodal{Small: 8, Large: 7000, LargeEvery: 8},
	}
	var out []Scenario
	for _, d := range dists {
		out = append(out, Scenario{
			Name: "pipes/" + d.Name(), Kind: KindPipe,
			Dist: d, Messages: 24, Seed: o.Seed,
		})
	}
	return out
}

// FanoutGrid crosses broadcast vs demand reader refresh with reader
// count (the paper's cache-invalidate scaling argument).
func FanoutGrid(o Options) []Scenario {
	o = o.withDefaults()
	var out []Scenario
	for _, mode := range []protocols.FanoutMode{protocols.FanoutDataDriven, protocols.FanoutDemand} {
		for _, readers := range []int{2, 8} {
			out = append(out, Scenario{
				Name: fmt.Sprintf("fanout/%v/r%d", mode, readers), Kind: KindFanout,
				FanoutMode: mode, Readers: readers, Updates: 16, Seed: o.Seed,
			})
		}
	}
	return out
}

// ClusterGrid scales the three cluster workloads — hotspot contention
// (worst case: one page bouncing between every host), barrier phases
// (all-to-all synchronization) and the stationary-owner counter (the
// paper's P5 discipline, the linear-load baseline) — to 16, 64 and 256
// hosts by default. Work per host shrinks as the cluster grows so every
// cell stays tractable; what the grid measures is how load and latency
// scale with fan-out, not raw op counts. At 256 hosts and beyond the
// grid adds the loss-rate and kernel-server axes: datagram loss tests
// the retry path at scale (on the broadcast-bound barrier and hotspot
// kinds as well as the linear stationary baseline), and interrupt-level
// protocol processing (the paper's proposed fix) is exactly the
// placement whose payoff grows with broadcast fan-in. At 64 and 256
// hosts the grid adds the topology axis: 2-trunk star, 4-trunk star and
// 4-trunk linear-chain cells split the cluster across bridged Ethernet
// trunks (the paper's real network), and the 2-trunk hotspot cell
// additionally homes the hot segment on the far trunk. Options.Hosts
// restricts the grid to one size: the CI smoke cell runs -hosts 16, and
// `make cluster-large` runs the 1024-host tier via -hosts 1024 (kept
// out of the default sizes so `make cluster` and bench records stay
// comparable across PRs). Options.Trunks restricts the topology axis —
// see its doc. At 64 and 256 hosts the grid also adds the medium axis:
// the /fab cells rerun the three base workloads over the point-to-point
// fabric, where broadcast is a sender-paid unicast fan-out; see
// Options.Medium.
func ClusterGrid(o Options) []Scenario {
	o = o.withDefaults()
	sizes := []int{16, 64, 256}
	if o.Hosts != 0 {
		sizes = []int{o.Hosts}
	}
	// -trunks N forces every base cell onto N star-joined trunks instead
	// of adding the explicit topology cells.
	forcedTrunks, suffix := 0, ""
	if o.Trunks > 1 {
		forcedTrunks = o.Trunks
		suffix = fmt.Sprintf("/t%d-star", o.Trunks)
	}
	var out []Scenario
	for _, h := range sizes {
		// The 4096/10000-host windowed tier (reached via -hosts, e.g.
		// `make cluster-xl`; never part of the default sizes, so bench
		// records and -baseline grids stay comparable). Past ~4k hosts
		// only the stationary workload's linear wire load stays tractable,
		// and only with the flyweight knobs stacked: windowed working-set
		// attach, lazy replica materialization, warm seeding, a staggered
		// start so the first purges don't collide at t=0, and rx rings
		// sized from the real fan-in (one sampler per owner plus reply and
		// snoop slack — 64 slots, not 4×hosts). Iters=4 gives each host
		// one forced neighbour sample (n%SampleEvery==SampleEvery-1 at
		// n=3); the 500 ms retry lets a sample request dropped in a
		// saturated owner's ring retry after the burst drains rather than
		// the h-scaled formula's 20 s wait.
		if h >= 4096 {
			out = append(out, Scenario{
				Name: "cluster/stationary/h" + fmt.Sprint(h) + suffix, Kind: KindStationary,
				Hosts: h, Iters: 4, WarmStart: true, Windowed: true, Lazy: true,
				Stagger: 200 * time.Microsecond, RingSlots: 64,
				RetryTimeout: 500 * time.Millisecond,
				Trunks:       forcedTrunks, Seed: o.Seed,
			})
			continue
		}
		// Per-host work scales down with cluster size; totals stay
		// comparable across cells.
		iters, phases := 16, 4
		switch {
		case h >= 1024:
			iters, phases = 1, 1
		case h >= 256:
			iters, phases = 4, 1
		case h >= 64:
			iters, phases = 8, 2
		}
		// Barrier waiters at scale must ride snoopy refreshes rather
		// than purge-flood the wire; see Scenario.HysteresisN reuse.
		hyst := 16 * h
		// The hotspot anti-thrash residency scales with fan-out: every
		// grant broadcast costs each receiving server per-byte handling
		// time, and the grantee's client must outlive that backlog.
		res := time.Duration(h) * 500 * time.Microsecond
		if res < 10*time.Millisecond {
			res = 10 * time.Millisecond
		}
		// The 1024-host tier scales the knobs that would otherwise swamp
		// the simulation with redundant events, the same way the smaller
		// rungs scale residency and hysteresis: the hotspot demand retry
		// must outlast the residency window (deferred requests are
		// served without retries when nothing is lost), barrier waiters
		// must not poll faster than the arrival-broadcast backlog can
		// drain, worlds start with warm resident replicas (a cold attach
		// is an O(hosts³) request storm that would be the entire
		// measurement), and the hotspot bounds its active writer set —
		// every broadcast still fans out to all 1024 hosts, which is the
		// load being measured.
		var retry, check time.Duration
		warm := false
		hotIters, writers, ring := iters, 0, 0
		if h >= 1024 {
			retry = time.Duration(h) * 2 * time.Millisecond
			check = time.Duration(h) * 2 * time.Microsecond
			warm = true
			hotIters, writers = 4, 64
			// A phase burst is one broadcast per host arriving at wire
			// speed and draining at server speed; the era 32-slot ring
			// would drop nearly all of it.
			ring = 4 * h
		}
		out = append(out,
			Scenario{Name: "cluster/stationary/h" + fmt.Sprint(h) + suffix, Kind: KindStationary,
				Hosts: h, Iters: iters * 2, WarmStart: warm, RxRing: ring,
				Trunks: forcedTrunks, Seed: o.Seed},
			Scenario{Name: "cluster/barrier/h" + fmt.Sprint(h) + suffix, Kind: KindBarrier,
				Hosts: h, Phases: phases, HysteresisN: hyst, CheckEvery: check,
				WarmStart: warm, RxRing: ring, Trunks: forcedTrunks, Seed: o.Seed},
			Scenario{Name: "cluster/hotspot/h" + fmt.Sprint(h) + suffix, Kind: KindHotspot,
				Hosts: h, Iters: hotIters, Writers: writers, MinResidency: res,
				RetryTimeout: retry, WarmStart: warm, RxRing: ring,
				Trunks: forcedTrunks, Seed: o.Seed},
		)
		if h >= 256 {
			out = append(out,
				Scenario{Name: fmt.Sprintf("cluster/stationary/h%d/loss-0.2%%", h) + suffix, Kind: KindStationary,
					Hosts: h, Iters: iters * 2, LossRate: 0.002, WarmStart: warm, RxRing: ring,
					Trunks: forcedTrunks, Seed: o.Seed},
				Scenario{Name: fmt.Sprintf("cluster/stationary/h%d/kernel", h) + suffix, Kind: KindStationary,
					Hosts: h, Iters: iters * 2, KernelServer: true, WarmStart: warm, RxRing: ring,
					Trunks: forcedTrunks, Seed: o.Seed},
				Scenario{Name: fmt.Sprintf("cluster/hotspot/h%d/kernel", h) + suffix, Kind: KindHotspot,
					Hosts: h, Iters: hotIters, Writers: writers, MinResidency: res,
					RetryTimeout: retry, KernelServer: true, WarmStart: warm, RxRing: ring,
					Trunks: forcedTrunks, Seed: o.Seed},
			)
		}
		if forcedTrunks != 0 || o.Trunks == 1 {
			continue
		}
		// The topology axis (default grid only): split the 64- and
		// 256-host clusters across bridged trunks. The stationary cells
		// measure the linear-load baseline under both shapes (a 4-trunk
		// linear chain is the worst case: end-to-end frames cross every
		// bridge); the barrier cell makes every arrival broadcast pay the
		// forwarding hop before its cross-trunk waiters release; the
		// hotspot cell additionally homes the hot segment on trunk 1, so
		// trunk 0's writers steal it across the bridge first.
		// The fault-injection cells (dropped by -faults off, which
		// restores the exact healthy grid). Crash-owner kills one
		// stationary owner mid-run and recovers it 4 s later: its page is
		// orphaned until the recovered host's own demand retries go
		// unanswered ClaimRetries times and it re-claims (generation-
		// bumped, broadcast-arbitrated); the cell must end with zero
		// orphans. Partition-heal splits the 2-trunk hotspot's bridge for
		// 5 s mid-contention: far-trunk steals retry across the outage and
		// drain after the heal — ClaimRetries stays 0, since a claim
		// across a partition would mint a second owner. Churn (at the
		// 1024-host rung below) crashes a random 1% of hosts per round.
		if h == 256 && (o.Faults == "" || o.Faults == "on") {
			out = append(out,
				// ClaimRetries is calibrated above the healthy cell's
				// longest consecutive-retry streak (the h256 broadcast
				// backlog can stall a live owner's answer past 1 s), so
				// the only claim fired is the recovered host re-claiming
				// its own orphaned page.
				Scenario{Name: fmt.Sprintf("cluster/stationary/h%d/crash-owner", h), Kind: KindStationary,
					Hosts: h, Iters: iters * 2, Seed: o.Seed,
					Faults: "crash@8s:h17;recover@12s:h17", ClaimRetries: 8},
				Scenario{Name: fmt.Sprintf("cluster/hotspot/h%d/t2-star/partition-heal", h), Kind: KindHotspot,
					Hosts: h, Iters: hotIters, MinResidency: res,
					Trunks: 2, OwnerTrunk: 1, Seed: o.Seed,
					Faults: "partition@20s:b0;heal@25s:b0"},
			)
		}
		if h >= 1024 && (o.Faults == "" || o.Faults == "on") {
			// 1% of hosts crash per round, three rounds, each victim down
			// 200 ms. Iters is raised above the tier's 2 so every client
			// is still mid-run through the churn window — a finished
			// client would leave its crashed page orphaned with no demand
			// traffic left to trigger a re-claim.
			out = append(out, Scenario{
				Name: fmt.Sprintf("cluster/stationary/h%d/churn-1%%", h), Kind: KindStationary,
				Hosts: h, Iters: 8, WarmStart: warm, RxRing: ring, Seed: o.Seed,
				Faults: fault.Churn(o.Seed, h, 0.01, time.Second,
					1500*time.Millisecond, 200*time.Millisecond, 3).String(),
				ClaimRetries: 8})
		}
		if h == 64 || h == 256 {
			out = append(out,
				Scenario{Name: fmt.Sprintf("cluster/stationary/h%d/t2-star", h), Kind: KindStationary,
					Hosts: h, Iters: iters * 2, Trunks: 2, Seed: o.Seed},
				Scenario{Name: fmt.Sprintf("cluster/stationary/h%d/t4-linear", h), Kind: KindStationary,
					Hosts: h, Iters: iters * 2, Trunks: 4, TrunkShape: "linear", Seed: o.Seed},
				Scenario{Name: fmt.Sprintf("cluster/barrier/h%d/t2-star", h), Kind: KindBarrier,
					Hosts: h, Phases: phases, HysteresisN: hyst, Trunks: 2, Seed: o.Seed},
				Scenario{Name: fmt.Sprintf("cluster/hotspot/h%d/t2-star", h), Kind: KindHotspot,
					Hosts: h, Iters: hotIters, MinResidency: res,
					Trunks: 2, OwnerTrunk: 1, Seed: o.Seed},
			)
			// The medium axis (dropped by -medium ethernet, which restores
			// the exact pre-fabric grid): the three base workloads over the
			// point-to-point fabric, where every broadcast is a sender-paid
			// unicast fan-out serialized per destination link instead of one
			// shared-wire transmission every station snoops. The stationary
			// cell measures the linear baseline's fan-out wire cost, the
			// barrier cell makes each arrival broadcast pay h-1 link
			// transmissions back to back, and the hotspot cell puts the
			// grant broadcasts — the paper's invalidate traffic — on the
			// per-link meter.
			if o.Medium == "" {
				out = append(out,
					Scenario{Name: fmt.Sprintf("cluster/stationary/h%d/fab", h), Kind: KindStationary,
						Hosts: h, Iters: iters * 2, Medium: "fabric", Seed: o.Seed},
					Scenario{Name: fmt.Sprintf("cluster/barrier/h%d/fab", h), Kind: KindBarrier,
						Hosts: h, Phases: phases, HysteresisN: hyst, Medium: "fabric", Seed: o.Seed},
					Scenario{Name: fmt.Sprintf("cluster/hotspot/h%d/fab", h), Kind: KindHotspot,
						Hosts: h, Iters: hotIters, MinResidency: res, Medium: "fabric", Seed: o.Seed},
				)
			}
		}
		// The redundancy axis (k > 1 read faults ask the owner plus the
		// k-1 nearest replicas; first response wins) on the two cells
		// where a replica answer should pay: the cross-trunk stationary
		// cell, where the border hosts' ring samples otherwise wait out a
		// bridge round trip the same-trunk replica skips.
		if h == 64 && o.Redundancy == 0 {
			for _, k := range []int{2, 3} {
				out = append(out, Scenario{
					Name: fmt.Sprintf("cluster/stationary/h%d/t2-star/k%d", h, k), Kind: KindStationary,
					Hosts: h, Iters: iters * 2, Trunks: 2, Redundancy: k, Seed: o.Seed})
			}
		}
		// The asymmetric-backlog cells drive Bridge.SetBacklog: the same
		// 2-trunk stationary split with 5 ms of background traffic queued
		// on one forwarding direction only — a congested uplink (toward
		// trunk 1) vs a roomy downlink, and the mirror image.
		if h == 64 {
			out = append(out,
				Scenario{Name: fmt.Sprintf("cluster/stationary/h%d/t2-star/backlog-up", h), Kind: KindStationary,
					Hosts: h, Iters: iters * 2, Trunks: 2, BacklogUp: 5 * time.Millisecond, Seed: o.Seed},
				Scenario{Name: fmt.Sprintf("cluster/stationary/h%d/t2-star/backlog-down", h), Kind: KindStationary,
					Hosts: h, Iters: iters * 2, Trunks: 2, BacklogDown: 5 * time.Millisecond, Seed: o.Seed},
			)
		}
		// The 1024-host topology rung (make cluster-large): the tier that
		// used to be intractable when every frame cost an O(hosts)
		// receiver scan and every broadcast was parsed per receiver. The
		// knobs extend the tier's existing scaling to the ~ms bridge
		// latencies at this fan-in: warm replicas, the widened rx ring
		// (which also sizes the bridge ports' rings — a cross-trunk phase
		// burst lands on the bridge at wire speed and drains at the 1 ms
		// store-and-forward rate), the host-count-scaled retry/residency
		// windows, and for the hotspot the far-trunk owner placement so
		// every steal and every grant pays the bridge hop being measured.
		if h >= 1024 {
			out = append(out,
				Scenario{Name: fmt.Sprintf("cluster/stationary/h%d/t2-star", h), Kind: KindStationary,
					Hosts: h, Iters: iters * 2, Trunks: 2, WarmStart: warm, RxRing: ring, Seed: o.Seed},
				Scenario{Name: fmt.Sprintf("cluster/hotspot/h%d/t4-star", h), Kind: KindHotspot,
					Hosts: h, Iters: hotIters, Writers: writers, MinResidency: res,
					RetryTimeout: retry, Trunks: 4, OwnerTrunk: 1, WarmStart: warm,
					RxRing: ring, Seed: o.Seed},
			)
		}
		if h == 256 {
			out = append(out,
				Scenario{Name: fmt.Sprintf("cluster/stationary/h%d/t4-star", h), Kind: KindStationary,
					Hosts: h, Iters: iters * 2, Trunks: 4, Seed: o.Seed},
				// The loss axis on the broadcast-bound kinds: the
				// stationary baseline had a loss cell from PR 2; these
				// stress the retry/hysteresis recovery paths where every
				// op is a cluster-wide broadcast.
				Scenario{Name: fmt.Sprintf("cluster/barrier/h%d/loss-0.2%%", h), Kind: KindBarrier,
					Hosts: h, Phases: phases, HysteresisN: hyst, LossRate: 0.002, Seed: o.Seed},
				Scenario{Name: fmt.Sprintf("cluster/hotspot/h%d/loss-0.2%%", h), Kind: KindHotspot,
					Hosts: h, Iters: hotIters, MinResidency: res, LossRate: 0.002, Seed: o.Seed},
			)
			// The redundancy axis crossed with loss: when the owner's
			// answer is the datagram that got dropped, any replica's copy
			// beats the 250 ms demand retry — the tail-latency cells.
			if o.Redundancy == 0 {
				for _, k := range []int{2, 3} {
					out = append(out, Scenario{
						Name: fmt.Sprintf("cluster/stationary/h%d/loss-0.2%%/k%d", h, k), Kind: KindStationary,
						Hosts: h, Iters: iters * 2, LossRate: 0.002, Redundancy: k, Seed: o.Seed})
				}
			}
		}
	}
	// -redundancy N forces the fan-out onto every cell instead of adding
	// the explicit k cells, mirroring the forced-trunks axis.
	if o.Redundancy > 1 {
		for i := range out {
			out[i].Redundancy = o.Redundancy
			out[i].Name += fmt.Sprintf("/k%d", o.Redundancy)
		}
	}
	// A custom -faults spec replaces the built-in fault cells with one
	// extra stationary cell running the given schedule (on the smallest
	// grid size, or the -hosts restriction).
	if o.Faults != "" && o.Faults != "on" && o.Faults != "off" {
		h := sizes[0]
		out = append(out, Scenario{
			Name: fmt.Sprintf("cluster/stationary/h%d/faults-custom", h), Kind: KindStationary,
			Hosts: h, Iters: 16, Seed: o.Seed, Faults: o.Faults, ClaimRetries: 3})
	}
	// -medium fabric forces the point-to-point fabric onto every
	// compatible cell (suffixing names with /fab), mirroring the
	// forced-trunks axis. Cells that exercise bridge machinery — trunk
	// topologies, asymmetric bridge backlog, bridge partitions — have no
	// fabric analogue and are dropped rather than silently run on the
	// wrong wire.
	if o.Medium == "fabric" {
		kept := out[:0]
		for _, s := range out {
			if s.Trunks > 1 || s.BacklogUp != 0 || s.BacklogDown != 0 ||
				strings.Contains(s.Faults, "partition@") {
				continue
			}
			if s.Medium == "" {
				s.Medium = "fabric"
				s.Name += "/fab"
			}
			kept = append(kept, s)
		}
		out = kept
	}
	return out
}

// SmokeGrid is the fast cross-section used by CI: one small scenario of
// every kind plus both server placements, finishing in seconds.
func SmokeGrid(o Options) []Scenario {
	o = o.withDefaults()
	return []Scenario{
		{Name: "smoke/counter-short", Kind: KindCounter, Protocol: protocols.P2ShortPage,
			Target: 64, Seed: o.Seed},
		{Name: "smoke/counter-final", Kind: KindCounter, Protocol: protocols.P5Final,
			Target: 64, Seed: o.Seed},
		{Name: "smoke/counter-final-kernel", Kind: KindCounter, Protocol: protocols.P5Final,
			Target: 64, Seed: o.Seed, KernelServer: true},
		{Name: "smoke/fanout-dd", Kind: KindFanout, FanoutMode: protocols.FanoutDataDriven,
			Readers: 2, Updates: 8, Seed: o.Seed},
		{Name: "smoke/pipes-control", Kind: KindPipe, Dist: workload.Fixed{Size: 8},
			Messages: 12, Seed: o.Seed},
		{Name: "smoke/hotspot", Kind: KindHotspot, Hosts: 2, Iters: 8, ShortPage: true, Seed: o.Seed},
		{Name: "smoke/barrier", Kind: KindBarrier, Hosts: 2, Phases: 4, Seed: o.Seed},
		{Name: "smoke/pipeline", Kind: KindPipeline, Stages: 3, Messages: 8, MsgSize: 8, Seed: o.Seed},
		{Name: "smoke/stationary-t2", Kind: KindStationary, Hosts: 4, Iters: 8, Trunks: 2, Seed: o.Seed},
		// The fabric smoke cell: the stationary workload over the
		// point-to-point fabric medium, proving the Medium seam (per-link
		// FIFO serialization, sender-paid broadcast fan-out, link-queue
		// accounting) builds and runs on every push.
		{Name: "smoke/stationary-fab", Kind: KindStationary, Hosts: 4, Iters: 8,
			Medium: "fabric", Seed: o.Seed},
		{Name: "smoke/stationary-t2-k3", Kind: KindStationary, Hosts: 4, Iters: 8, Trunks: 2,
			Redundancy: 3, Seed: o.Seed},
		// The windowed-tier smoke cell: the cluster grid's 4096-host
		// flyweight configuration at Iters=1 (updates and purges, no
		// forced samples), proving the sharded-directory + lazy-replica +
		// windowed-attach path builds and runs a 4096-host world on every
		// push. Same knobs as the cluster-xl tier, minus the work.
		{Name: "smoke/stationary-h4096", Kind: KindStationary, Hosts: 4096, Iters: 1,
			WarmStart: true, Windowed: true, Lazy: true, Stagger: 200 * time.Microsecond,
			RingSlots: 64, RetryTimeout: 500 * time.Millisecond, Seed: o.Seed},
		// The fault-plane smoke cell: crash one stationary owner early,
		// recover it 1 ms later, and require the orphaned page to be
		// re-claimed (the noteOrphans gate) on every push. Small enough
		// that the claim retries dominate the virtual wall — the real
		// cost stays milliseconds.
		{Name: "smoke/stationary-crash-owner", Kind: KindStationary, Hosts: 4, Iters: 8,
			Faults: "crash@1ms:h1;recover@2ms:h1", ClaimRetries: 2, Seed: o.Seed},
	}
}

// grids maps every named grid to its builder.
var grids = map[string]func(Options) []Scenario{
	"figures":    FigureScenarios,
	"kernel":     KernelAblation,
	"loss":       LossAblation,
	"hysteresis": HysteresisSweep,
	"hotspot":    HotspotGrid,
	"barrier":    BarrierGrid,
	"pipeline":   PipelineGrid,
	"pipes":      PipeMixGrid,
	"fanout":     FanoutGrid,
	"cluster":    ClusterGrid,
	"smoke":      SmokeGrid,
	"ablation": func(o Options) []Scenario {
		return concat(KernelAblation(o), LossAblation(o), HysteresisSweep(o))
	},
	"paper": func(o Options) []Scenario {
		return concat(FigureScenarios(o), KernelAblation(o), LossAblation(o), HysteresisSweep(o), FanoutGrid(o))
	},
	"workloads": func(o Options) []Scenario {
		return concat(HotspotGrid(o), BarrierGrid(o), PipelineGrid(o), PipeMixGrid(o))
	},
	"all": func(o Options) []Scenario {
		return concat(
			FigureScenarios(o), KernelAblation(o), LossAblation(o), HysteresisSweep(o),
			FanoutGrid(o), HotspotGrid(o), BarrierGrid(o), PipelineGrid(o), PipeMixGrid(o),
		)
	},
}

func concat(lists ...[]Scenario) []Scenario {
	var out []Scenario
	for _, l := range lists {
		out = append(out, l...)
	}
	return out
}

// GridNames lists every named grid, sorted.
func GridNames() []string {
	names := make([]string, 0, len(grids))
	for n := range grids {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Grid builds a named grid. Unknown names list the alternatives.
func Grid(name string, o Options) ([]Scenario, error) {
	build, ok := grids[name]
	if !ok {
		return nil, fmt.Errorf("sweep: unknown grid %q (have %v)", name, GridNames())
	}
	return build(o), nil
}
