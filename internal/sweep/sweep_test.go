package sweep

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"mether/internal/protocols"
)

func TestGridNamesAllBuild(t *testing.T) {
	for _, name := range GridNames() {
		scs, err := Grid(name, Options{Target: 64})
		if err != nil {
			t.Fatalf("Grid(%q): %v", name, err)
		}
		if len(scs) == 0 {
			t.Errorf("grid %q is empty", name)
		}
		seen := make(map[string]bool)
		for _, s := range scs {
			if s.Name == "" || s.Kind == "" {
				t.Errorf("grid %q has an unnamed scenario: %+v", name, s)
			}
			if seen[s.Name] {
				t.Errorf("grid %q duplicates scenario name %q", name, s.Name)
			}
			seen[s.Name] = true
		}
	}
}

func TestGridUnknownName(t *testing.T) {
	if _, err := Grid("no-such-grid", Options{}); err == nil {
		t.Error("unknown grid should error")
	}
}

func TestPaperGridIsLargeEnough(t *testing.T) {
	// The sweep's reason to exist: many-scenario grids. "paper" and
	// "all" must both exceed a dozen scenarios.
	for _, name := range []string{"paper", "all"} {
		scs, err := Grid(name, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(scs) < 12 {
			t.Errorf("grid %q has %d scenarios, want >= 12", name, len(scs))
		}
	}
}

func TestRunnerRunsAllScenarios(t *testing.T) {
	scs, err := Grid("smoke", Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, tm := Runner{Workers: 4}.Run("smoke", scs)
	if len(rep.Scenarios) != len(scs) {
		t.Fatalf("got %d results for %d scenarios", len(rep.Scenarios), len(scs))
	}
	for i, r := range rep.Scenarios {
		if r.Name != scs[i].Name {
			t.Errorf("result %d is %q, want grid order %q", i, r.Name, scs[i].Name)
		}
		if r.Err != "" {
			t.Errorf("%s failed: %s", r.Name, r.Err)
		}
		if r.WallNS <= 0 || r.Ops == 0 {
			t.Errorf("%s: implausible result %+v", r.Name, r)
		}
	}
	if tm.Workers < 1 || tm.Elapsed <= 0 || tm.Serial <= 0 {
		t.Errorf("implausible timing %+v", tm)
	}
	if len(tm.PerScenario) != len(scs) {
		t.Errorf("timing has %d per-scenario entries, want %d", len(tm.PerScenario), len(scs))
	}
}

func TestRunnerFoldsScenarioErrors(t *testing.T) {
	scs := []Scenario{
		{Name: "bad-kind", Kind: Kind("nope")},
		{Name: "bad-hotspot", Kind: KindHotspot, Hosts: 1, Iters: 1},
		{Name: "good", Kind: KindCounter, Protocol: protocols.P5Final, Target: 16, Seed: 1},
	}
	rep, _ := Runner{Workers: 2}.Run("errs", scs)
	if rep.Scenarios[0].Err == "" || rep.Scenarios[1].Err == "" {
		t.Error("bad scenarios should carry errors")
	}
	if rep.Scenarios[2].Err != "" {
		t.Errorf("good scenario failed: %s", rep.Scenarios[2].Err)
	}
}

func TestCounterConfigCarriesAxes(t *testing.T) {
	s := Scenario{
		Kind: KindCounter, Protocol: protocols.P2ShortPage, Target: 128,
		Seed: 9, LossRate: 0.01, KernelServer: true, HysteresisN: 7,
		Cap: 3 * time.Second,
	}
	cfg := s.CounterConfig()
	if cfg.Protocol != protocols.P2ShortPage || cfg.Target != 128 || cfg.Seed != 9 {
		t.Errorf("basic fields lost: %+v", cfg)
	}
	if cfg.NetParams.LossRate != 0.01 {
		t.Errorf("loss axis lost: %v", cfg.NetParams.LossRate)
	}
	if !cfg.Core.KernelServer {
		t.Error("kernel-server axis lost")
	}
	if cfg.HysteresisN != 7 || cfg.Cap != 3*time.Second {
		t.Errorf("tuning lost: %+v", cfg)
	}
}

func TestBandCheckUnknownFigure(t *testing.T) {
	devs := bandCheck("Figure 99", protocols.Report{})
	if len(devs) != 1 || !strings.Contains(devs[0], "unknown figure") {
		t.Errorf("devs = %v", devs)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep := Report{Grid: "g", Scenarios: []Result{
		{Name: "a", Kind: KindCounter, Seed: 1, WallNS: 10, Ops: 2, Deviations: []string{"x"}},
	}}
	b, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseJSON(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Grid != "g" || len(got.Scenarios) != 1 || got.Scenarios[0].Name != "a" {
		t.Errorf("round trip lost data: %+v", got)
	}
	if !json.Valid(b) {
		t.Error("JSON() produced invalid JSON")
	}
}

func TestParseJSONRejectsGarbage(t *testing.T) {
	if _, err := ParseJSON([]byte("{nope")); err == nil {
		t.Error("garbage baseline should error")
	}
}

func TestReportCSVShape(t *testing.T) {
	rep := Report{Grid: "g", Scenarios: []Result{
		{Name: "with,comma", Kind: KindPipe, Seed: 1},
		{Name: "plain", Kind: KindCounter, Seed: 2, Err: "boom"},
	}}
	lines := strings.Split(strings.TrimRight(string(rep.CSV()), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2 rows", len(lines))
	}
	wantCols := len(strings.Split(lines[0], ","))
	if !strings.HasPrefix(lines[1], "\"with,comma\"") {
		t.Errorf("comma name not quoted: %s", lines[1])
	}
	if got := len(strings.Split(lines[2], ",")); got != wantCols {
		t.Errorf("row has %d cols, header %d", got, wantCols)
	}
}

func TestCSVQuoteRFC4180(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{"a,b", `"a,b"`},
		{`say "hi"`, `"say ""hi"""`},
		{"two\nlines", "\"two\nlines\""},
	}
	for _, c := range cases {
		if got := csvQuote(c.in); got != c.want {
			t.Errorf("csvQuote(%q) = %s, want %s", c.in, got, c.want)
		}
	}
	// A deviation containing %q-style quotes must survive a CSV parse:
	// quotes are doubled, not backslash-escaped.
	rep := Report{Scenarios: []Result{{Name: "x", Deviations: []string{`unknown figure "F"`}}}}
	csv := string(rep.CSV())
	if !strings.Contains(csv, `"unknown figure ""F"""`) {
		t.Errorf("deviation not RFC-4180 quoted:\n%s", csv)
	}
}

func TestCompare(t *testing.T) {
	base := Report{Scenarios: []Result{
		{Name: "a", WallNS: 100, WireBytes: 50},
		{Name: "gone", WallNS: 1},
	}}
	cur := Report{Scenarios: []Result{
		{Name: "a", WallNS: 150, WireBytes: 50},
		{Name: "new", WallNS: 1},
	}}
	deltas := Compare(base, cur, 0)
	var metrics []string
	for _, d := range deltas {
		metrics = append(metrics, d.Name+"/"+d.Metric)
	}
	joined := strings.Join(metrics, " ")
	for _, want := range []string{"a/wall_ns", "new/missing-in-baseline", "gone/missing-in-report"} {
		if !strings.Contains(joined, want) {
			t.Errorf("deltas %v missing %s", metrics, want)
		}
	}
	for _, d := range deltas {
		if d.Metric == "wall_ns" && d.Ratio != 1.5 {
			t.Errorf("wall ratio = %v, want 1.5", d.Ratio)
		}
		if d.Metric == "wire_bytes" {
			t.Error("unchanged metric reported")
		}
	}
	// Within tolerance: the 1.5x wall change is suppressed at 60%.
	if ds := Compare(base, cur, 0.6); len(ds) != 2 {
		t.Errorf("tolerant compare = %v, want only the missing pair", ds)
	}
}

func TestFigureScenariosBandCheckedAtPaperScale(t *testing.T) {
	full := FigureScenarios(Options{Target: 1024})
	banded := 0
	for _, s := range full {
		if s.Figure != "" {
			banded++
		}
	}
	if banded != 4 {
		t.Errorf("%d banded figures, want 4 (Figs 4, 5, 8, 9)", banded)
	}
}
