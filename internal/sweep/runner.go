package sweep

import (
	"runtime"
	"sort"
	"sync"
	"time"
)

// Runner executes a grid of scenarios on a bounded worker pool. The
// zero value uses one worker per available core.
type Runner struct {
	// Workers bounds concurrent scenarios (default GOMAXPROCS).
	Workers int
}

// Timing carries the real-time measurements of a sweep execution. These
// describe the sweep engine itself (how well it saturated the machine)
// and are deliberately kept out of Report so reports stay deterministic.
type Timing struct {
	Workers int
	// Elapsed is the real wall-clock time of the whole sweep.
	Elapsed time.Duration
	// Serial is the sum of per-scenario real run times — the wall time a
	// one-worker execution would have needed.
	Serial time.Duration
	// Speedup is Serial / Elapsed: >1 means the pool overlapped work.
	Speedup float64
	// PerScenario holds each scenario's real run time, in grid order.
	PerScenario []time.Duration
}

// Run executes every scenario and returns the deterministic Report
// (results in grid order) plus the real-time Timing. Each scenario is a
// sealed World on its own goroutine, so nothing about pool scheduling
// can leak into the results.
//
// Scenarios are handed to the pool largest-estimated-first (a
// longest-processing-time heuristic): heterogeneous grids like cluster
// mix cells whose runtimes differ by orders of magnitude, and starting
// the long poles first keeps the pool balanced instead of letting a
// giant cell picked up last serialize the whole tail. Dispatch order is
// invisible in the Report, which stays in grid order.
func (r Runner) Run(grid string, scs []Scenario) (Report, Timing) {
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scs) {
		workers = len(scs)
	}
	if workers < 1 {
		workers = 1
	}

	results := make([]Result, len(scs))
	times := make([]time.Duration, len(scs))
	idx := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				t0 := time.Now()
				results[i] = scs[i].Run()
				times[i] = time.Since(t0)
			}
		}()
	}
	order := make([]int, len(scs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return scs[order[a]].estCost() > scs[order[b]].estCost()
	})
	for _, i := range order {
		idx <- i
	}
	close(idx)
	wg.Wait()

	tm := Timing{Workers: workers, Elapsed: time.Since(start), PerScenario: times}
	for _, d := range times {
		tm.Serial += d
	}
	if tm.Elapsed > 0 {
		tm.Speedup = tm.Serial.Seconds() / tm.Elapsed.Seconds()
	}
	return Report{Grid: grid, Scenarios: results}, tm
}
