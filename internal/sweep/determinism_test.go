package sweep

import (
	"bytes"
	"runtime"
	"testing"
)

// runSmokeBytes runs the smoke grid with the given worker count and
// returns the marshalled JSON report.
func runSmokeBytes(t *testing.T, workers int) []byte {
	t.Helper()
	scs, err := Grid("smoke", Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	rep, _ := Runner{Workers: workers}.Run("smoke", scs)
	b, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestReportDeterministicAcrossRuns proves the same grid and seed yield
// byte-identical reports on repeated runs.
func TestReportDeterministicAcrossRuns(t *testing.T) {
	a := runSmokeBytes(t, 2)
	b := runSmokeBytes(t, 2)
	if !bytes.Equal(a, b) {
		t.Fatalf("two identical sweeps produced different reports:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}

// TestReportDeterministicAcrossWorkerCounts proves pool scheduling never
// leaks into results: one worker and many workers agree byte-for-byte.
func TestReportDeterministicAcrossWorkerCounts(t *testing.T) {
	serial := runSmokeBytes(t, 1)
	parallel := runSmokeBytes(t, 8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("worker count changed the report:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestReportDeterministicAcrossGOMAXPROCS proves the parallel runner
// never leaks real-scheduler nondeterminism into a simulated World:
// GOMAXPROCS=1 and GOMAXPROCS=NumCPU produce byte-identical reports.
func TestReportDeterministicAcrossGOMAXPROCS(t *testing.T) {
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)

	runtime.GOMAXPROCS(1)
	single := runSmokeBytes(t, 0) // 0 = one worker per GOMAXPROCS
	runtime.GOMAXPROCS(runtime.NumCPU())
	multi := runSmokeBytes(t, 0)
	if !bytes.Equal(single, multi) {
		t.Fatalf("GOMAXPROCS changed the report:\n--- 1 ---\n%s\n--- NumCPU ---\n%s", single, multi)
	}
}

// TestOrderedPoolMatchesUnorderedSerial pins down the long-pole
// scheduling satellite: the pool hands scenarios to workers
// largest-estimated-first, and this must be invisible — the report must
// stay byte-identical to a plain unordered serial loop over the grid
// (no Runner involved at all).
func TestOrderedPoolMatchesUnorderedSerial(t *testing.T) {
	scs, err := Grid("smoke", Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	serial := Report{Grid: "smoke", Scenarios: make([]Result, len(scs))}
	for i, s := range scs {
		serial.Scenarios[i] = s.Run()
	}
	want, err := serial.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got := runSmokeBytes(t, 4)
	if !bytes.Equal(want, got) {
		t.Fatalf("largest-first pool changed the report:\n--- unordered serial ---\n%s\n--- ordered pool ---\n%s", want, got)
	}
}

// TestEstCostOrdersClusterLongPolesFirst sanity-checks the estimate the
// pool sorts by: in the cluster grid the 256-host broadcast-bound cells
// must rank ahead of every 16-host cell.
func TestEstCostOrdersClusterLongPolesFirst(t *testing.T) {
	scs, err := Grid("cluster", Options{})
	if err != nil {
		t.Fatal(err)
	}
	var max16, min256 int64
	min256 = 1 << 62
	for _, s := range scs {
		switch s.Hosts {
		case 16:
			if c := s.estCost(); c > max16 {
				max16 = c
			}
		case 256:
			if c := s.estCost(); c < min256 {
				min256 = c
			}
		}
	}
	if min256 <= max16 {
		t.Errorf("estCost ranks a 256-host cell (%d) at or below a 16-host cell (%d)", min256, max16)
	}
}

// bridgedLossGrid is a small topology grid with every nondeterminism
// hazard at once: seeded datagram loss on the wire, per-port loss at the
// bridges, both shapes, and owner placement across trunks.
func bridgedLossGrid() []Scenario {
	return []Scenario{
		{Name: "topo/stationary/t2-loss", Kind: KindStationary, Hosts: 8, Iters: 8,
			Trunks: 2, LossRate: 0.01, Seed: 5},
		{Name: "topo/stationary/t2-portloss", Kind: KindStationary, Hosts: 8, Iters: 8,
			Trunks: 2, PortLoss: 0.05, Seed: 5},
		{Name: "topo/hotspot/t2-loss", Kind: KindHotspot, Hosts: 4, Iters: 8,
			Trunks: 2, OwnerTrunk: 1, LossRate: 0.01, Seed: 5},
		{Name: "topo/barrier/t4-linear-loss", Kind: KindBarrier, Hosts: 8, Phases: 3,
			Trunks: 4, TrunkShape: "linear", LossRate: 0.01, Seed: 5},
	}
}

// TestBridgedLossReportDeterministic proves the topology axis keeps the
// engine's core property: a bridged multi-trunk world with seeded wire
// and bridge-port loss yields byte-identical reports across repeated
// runs and across worker counts.
func TestBridgedLossReportDeterministic(t *testing.T) {
	render := func(workers int) []byte {
		rep, _ := Runner{Workers: workers}.Run("topo", bridgedLossGrid())
		b, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := render(1)
	if again := render(1); !bytes.Equal(serial, again) {
		t.Fatalf("two identical bridged lossy sweeps diverged:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", serial, again)
	}
	if parallel := render(8); !bytes.Equal(serial, parallel) {
		t.Fatalf("worker count changed the bridged lossy report:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	// The grid must actually exercise the hazards it claims to cover.
	rep, _ := Runner{Workers: 2}.Run("topo", bridgedLossGrid())
	for _, r := range rep.Scenarios {
		if r.Err != "" {
			t.Errorf("%s failed: %s", r.Name, r.Err)
		}
		if r.BridgeForwarded == 0 {
			t.Errorf("%s forwarded no frames across bridges", r.Name)
		}
	}
	if rep.Scenarios[1].BridgePortDrops == 0 {
		t.Errorf("port-loss cell dropped nothing at the bridge")
	}
}

// TestSeedChangesReport guards against the opposite failure: if two
// different seeds produced identical reports the determinism tests above
// would be vacuous.
func TestSeedChangesReport(t *testing.T) {
	scs1, err := Grid("smoke", Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	scs2, err := Grid("smoke", Options{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := Runner{Workers: 2}.Run("smoke", scs1)
	r2, _ := Runner{Workers: 2}.Run("smoke", scs2)
	b1, err := r1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := r2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(b1, b2) {
		t.Error("different seeds produced byte-identical reports; seeds are not reaching the worlds")
	}
}
