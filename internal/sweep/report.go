package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Report is a sweep's deterministic output: the grid name and one
// Result per scenario, in grid order. It contains no real-time or
// environment-dependent values, so equal grids and seeds marshal to
// byte-identical JSON and CSV on any machine.
type Report struct {
	Grid      string   `json:"grid"`
	Scenarios []Result `json:"scenarios"`
}

// JSON renders the report as indented JSON with a trailing newline.
func (r Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// csvColumns is the fixed CSV column order.
var csvColumns = []string{
	"name", "kind", "seed", "err", "dnf",
	"wall_ns", "ops", "ops_per_sec", "loss_win",
	"user_ns", "sys_ns", "server_ns", "ctx_switches",
	"wire_bytes", "packets", "net_bytes_per_sec",
	"lat_mean_ns", "lat_p50_ns", "lat_p90_ns", "lat_p99_ns", "lat_p999_ns",
	"lat_max_ns", "lat_count",
	"events",
	"mem_bytes", "bytes_per_host", "ring_high_water",
	"bridge_forwarded", "bridge_port_drops", "bridge_max_queued", "cross_trunk_stale",
	"fanout_frames", "link_overflows", "link_max_queued",
	"redundant_serves", "redundant_suppressed", "late_drops",
	"orphan_recoveries", "ghost_drops", "migrated_pages",
	"unavail_ns", "rejoin_ns", "partition_drops", "orphaned",
	"deviations",
}

// CSV renders the report as one header row plus one row per scenario.
// When any scenario carries per-trunk measurements, trunk_util_i and
// trunk_frames_i column pairs are appended for the widest trunk count
// in the report (cells with fewer trunks leave the excess blank); a
// report with no multi-trunk cells keeps the classic column set, and
// its exact bytes, unchanged.
func (r Report) CSV() []byte {
	trunks := 0
	for _, s := range r.Scenarios {
		if len(s.TrunkUtil) > trunks {
			trunks = len(s.TrunkUtil)
		}
	}
	var buf bytes.Buffer
	for i, c := range csvColumns {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteString(c)
	}
	for t := 0; t < trunks; t++ {
		fmt.Fprintf(&buf, ",trunk_util_%d,trunk_frames_%d", t, t)
	}
	buf.WriteByte('\n')
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, s := range r.Scenarios {
		row := []string{
			csvQuote(s.Name), string(s.Kind), strconv.FormatInt(s.Seed, 10),
			csvQuote(s.Err), strconv.FormatBool(s.DNF),
			strconv.FormatInt(s.WallNS, 10), strconv.FormatUint(s.Ops, 10),
			f(s.OpsPerSec), f(s.LossWin),
			strconv.FormatInt(s.UserNS, 10), strconv.FormatInt(s.SysNS, 10),
			strconv.FormatInt(s.ServerNS, 10), strconv.FormatUint(s.CtxSwitches, 10),
			strconv.FormatUint(s.WireBytes, 10), strconv.FormatUint(s.Packets, 10),
			f(s.NetBytesPerSec),
			strconv.FormatInt(s.LatMeanNS, 10), strconv.FormatInt(s.LatP50NS, 10),
			strconv.FormatInt(s.LatP90NS, 10), strconv.FormatInt(s.LatP99NS, 10),
			strconv.FormatInt(s.LatP999NS, 10), strconv.FormatInt(s.LatMaxNS, 10),
			strconv.FormatUint(s.LatCount, 10),
			strconv.FormatUint(s.Events, 10),
			strconv.FormatUint(s.MemBytes, 10),
			f(s.BytesPerHost),
			strconv.Itoa(s.RingHighWater),
			strconv.FormatUint(s.BridgeForwarded, 10),
			strconv.FormatUint(s.BridgePortDrops, 10),
			strconv.Itoa(s.BridgeMaxQueued),
			strconv.FormatUint(s.CrossTrunkStale, 10),
			strconv.FormatUint(s.FanoutFrames, 10),
			strconv.FormatUint(s.LinkOverflows, 10),
			strconv.Itoa(s.LinkMaxQueued),
			strconv.FormatUint(s.RedundantServes, 10),
			strconv.FormatUint(s.RedundantSuppressed, 10),
			strconv.FormatUint(s.LateDrops, 10),
			strconv.FormatUint(s.OrphanRecoveries, 10),
			strconv.FormatUint(s.GhostDrops, 10),
			strconv.FormatUint(s.MigratedPages, 10),
			strconv.FormatInt(s.UnavailNS, 10),
			strconv.FormatInt(s.RejoinNS, 10),
			strconv.FormatUint(s.PartitionDrops, 10),
			strconv.Itoa(s.Orphaned),
			csvQuote(strings.Join(s.Deviations, "; ")),
		}
		for i, c := range row {
			if i > 0 {
				buf.WriteByte(',')
			}
			buf.WriteString(c)
		}
		for t := 0; t < trunks; t++ {
			buf.WriteByte(',')
			if t < len(s.TrunkUtil) {
				buf.WriteString(f(s.TrunkUtil[t]))
			}
			buf.WriteByte(',')
			if t < len(s.TrunkFrames) {
				buf.WriteString(strconv.FormatUint(s.TrunkFrames[t], 10))
			}
		}
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// csvQuote quotes a field per RFC 4180 when it contains CSV
// metacharacters: wrapped in double quotes with inner quotes doubled.
func csvQuote(s string) string {
	if !strings.ContainsAny(s, ",\"\n\r") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// ParseJSON restores a report written by JSON (baseline comparison).
func ParseJSON(b []byte) (Report, error) {
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return Report{}, fmt.Errorf("sweep: bad baseline report: %w", err)
	}
	return r, nil
}

// Delta is one metric's change against a baseline report.
type Delta struct {
	Name   string
	Metric string
	Base   float64
	New    float64
	Ratio  float64 // New / Base
}

func (d Delta) String() string {
	return fmt.Sprintf("%s %s: %.4g -> %.4g (x%.3f)", d.Name, d.Metric, d.Base, d.New, d.Ratio)
}

// compareMetrics are the metrics Compare tracks, in report order.
var compareMetrics = []struct {
	name string
	get  func(Result) float64
}{
	{"wall_ns", func(r Result) float64 { return float64(r.WallNS) }},
	{"lat_mean_ns", func(r Result) float64 { return float64(r.LatMeanNS) }},
	{"wire_bytes", func(r Result) float64 { return float64(r.WireBytes) }},
	{"ctx_switches", func(r Result) float64 { return float64(r.CtxSwitches) }},
	{"ops_per_sec", func(r Result) float64 { return r.OpsPerSec }},
	{"bridge_forwarded", func(r Result) float64 { return float64(r.BridgeForwarded) }},
	{"cross_trunk_stale", func(r Result) float64 { return float64(r.CrossTrunkStale) }},
	// Zero on every Ethernet cell and absent from pre-fabric baselines:
	// Compare skips equal values, so old reports gate cleanly.
	{"fanout_frames", func(r Result) float64 { return float64(r.FanoutFrames) }},
}

// Compare reports per-scenario metric changes of r against a baseline,
// matching scenarios by name. Only metrics whose relative change exceeds
// tolerance are returned (tolerance 0 reports every changed metric).
// Scenarios present in only one report are reported with Metric
// "missing" and a zero Ratio.
func Compare(baseline, r Report, tolerance float64) []Delta {
	base := make(map[string]Result, len(baseline.Scenarios))
	for _, s := range baseline.Scenarios {
		base[s.Name] = s
	}
	var out []Delta
	seen := make(map[string]bool, len(r.Scenarios))
	for _, s := range r.Scenarios {
		seen[s.Name] = true
		b, ok := base[s.Name]
		if !ok {
			out = append(out, Delta{Name: s.Name, Metric: "missing-in-baseline"})
			continue
		}
		for _, m := range compareMetrics {
			bv, nv := m.get(b), m.get(s)
			if bv == nv {
				continue
			}
			ratio := 0.0
			if bv != 0 {
				ratio = nv / bv
			}
			rel := ratio - 1
			if rel < 0 {
				rel = -rel
			}
			if bv == 0 || rel > tolerance {
				out = append(out, Delta{Name: s.Name, Metric: m.name, Base: bv, New: nv, Ratio: ratio})
			}
		}
	}
	for _, s := range baseline.Scenarios {
		if !seen[s.Name] {
			out = append(out, Delta{Name: s.Name, Metric: "missing-in-report"})
		}
	}
	return out
}

// Summary renders a short human-readable table of the report (one line
// per scenario) for terminals; the machine formats are JSON and CSV.
func (r Report) Summary() string {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "grid %s: %d scenarios\n", r.Grid, len(r.Scenarios))
	for _, s := range r.Scenarios {
		status := "ok"
		switch {
		case s.Err != "":
			status = "ERR " + s.Err
		case s.DNF:
			status = "DNF"
		case len(s.Deviations) > 0:
			status = fmt.Sprintf("%d band deviation(s)", len(s.Deviations))
		}
		fmt.Fprintf(&buf, "  %-36s wall=%-10v ops=%-6d lat=%-10v wire=%-8d %s\n",
			s.Name, time.Duration(s.WallNS), s.Ops, time.Duration(s.LatMeanNS), s.WireBytes, status)
	}
	return buf.String()
}
