// Package vm provides the memory substrate for the Mether simulation:
// page frames with generation counters, page geometry constants, and
// access validation. Page state (presence, ownership, protections) lives
// in the Mether driver (internal/core); this package only manages bytes.
package vm

import (
	"encoding/binary"
	"errors"
	"fmt"
)

const (
	// PageSize is the full Mether page size, matching the Sun-4 8 KB page
	// the paper uses.
	PageSize = 8192
	// ShortSize is the short-page size: the first 32 bytes of a page,
	// transferred on short-view faults.
	ShortSize = 32
)

// PageID identifies a page within the global Mether address space.
type PageID uint32

// ErrBadAccess reports an out-of-range or misaligned memory access.
var ErrBadAccess = errors.New("vm: bad access")

// CheckRange validates an access of size bytes at off within a page of
// the given limit (PageSize or ShortSize for short views).
func CheckRange(off, size, limit int) error {
	if size <= 0 || off < 0 || off+size > limit {
		return fmt.Errorf("%w: off=%d size=%d limit=%d", ErrBadAccess, off, size, limit)
	}
	return nil
}

// Frame is the backing store for one page on one host. The first
// ShortSize bytes are the short page; the rest is the "superset"
// remainder. Gen is a logical version that increases with every mutation
// and rides along on the wire so receivers can discard stale refreshes.
type Frame struct {
	data [PageSize]byte
	gen  uint64
}

// Gen returns the frame's current generation.
func (f *Frame) Gen() uint64 { return f.gen }

// SetGen sets the generation, used when installing received copies.
func (f *Frame) SetGen(g uint64) { f.gen = g }

// Load reads an unsigned little-endian integer of size 1, 2, 4 or 8
// bytes at off.
func (f *Frame) Load(off, size int) (uint64, error) {
	if err := CheckRange(off, size, PageSize); err != nil {
		return 0, err
	}
	switch size {
	case 1:
		return uint64(f.data[off]), nil
	case 2:
		return uint64(binary.LittleEndian.Uint16(f.data[off:])), nil
	case 4:
		return uint64(binary.LittleEndian.Uint32(f.data[off:])), nil
	case 8:
		return binary.LittleEndian.Uint64(f.data[off:]), nil
	default:
		return 0, fmt.Errorf("%w: unsupported size %d", ErrBadAccess, size)
	}
}

// Store writes an unsigned little-endian integer of size 1, 2, 4 or 8
// bytes at off and bumps the generation.
func (f *Frame) Store(off, size int, v uint64) error {
	if err := CheckRange(off, size, PageSize); err != nil {
		return err
	}
	switch size {
	case 1:
		f.data[off] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(f.data[off:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(f.data[off:], uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(f.data[off:], v)
	default:
		return fmt.Errorf("%w: unsupported size %d", ErrBadAccess, size)
	}
	f.gen++
	return nil
}

// ReadBytes copies len(dst) bytes starting at off into dst.
func (f *Frame) ReadBytes(off int, dst []byte) error {
	if err := CheckRange(off, len(dst), PageSize); err != nil {
		return err
	}
	copy(dst, f.data[off:])
	return nil
}

// WriteBytes copies src into the frame at off and bumps the generation.
func (f *Frame) WriteBytes(off int, src []byte) error {
	if err := CheckRange(off, len(src), PageSize); err != nil {
		return err
	}
	copy(f.data[off:], src)
	f.gen++
	return nil
}

// Region returns the frame contents without copying: the short region
// if short is true, otherwise the whole page. The slice aliases the
// frame's storage — callers must copy (or encode) it before the frame
// can next be mutated; use Snapshot when a durable copy is needed.
func (f *Frame) Region(short bool) []byte {
	if short {
		return f.data[:ShortSize]
	}
	return f.data[:]
}

// RestRegion returns the superset remainder [ShortSize, PageSize)
// without copying; the same aliasing caveat as Region applies.
func (f *Frame) RestRegion() []byte { return f.data[ShortSize:] }

// Snapshot returns a copy of the frame contents: the short region if
// short is true, otherwise the whole page.
func (f *Frame) Snapshot(short bool) []byte {
	n := PageSize
	if short {
		n = ShortSize
	}
	out := make([]byte, n)
	copy(out, f.data[:n])
	return out
}

// SnapshotRest returns a copy of the superset remainder
// [ShortSize, PageSize).
func (f *Frame) SnapshotRest() []byte {
	out := make([]byte, PageSize-ShortSize)
	copy(out, f.data[ShortSize:])
	return out
}

// Install overwrites the region covered by data (ShortSize or PageSize
// bytes, from Snapshot) and adopts generation gen.
func (f *Frame) Install(data []byte, gen uint64) error {
	if len(data) != ShortSize && len(data) != PageSize {
		return fmt.Errorf("%w: install length %d", ErrBadAccess, len(data))
	}
	copy(f.data[:len(data)], data)
	f.gen = gen
	return nil
}

// InstallRest overwrites the superset remainder with data (from
// SnapshotRest) without touching the short region or generation.
func (f *Frame) InstallRest(data []byte) error {
	if len(data) != PageSize-ShortSize {
		return fmt.Errorf("%w: rest length %d", ErrBadAccess, len(data))
	}
	copy(f.data[ShortSize:], data)
	return nil
}
