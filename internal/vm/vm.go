// Package vm provides the memory substrate for the Mether simulation:
// page frames with generation counters, page geometry constants, and
// access validation. Page state (presence, ownership, protections) lives
// in the Mether driver (internal/core); this package only manages bytes.
package vm

import (
	"encoding/binary"
	"errors"
	"fmt"
)

const (
	// PageSize is the full Mether page size, matching the Sun-4 8 KB page
	// the paper uses.
	PageSize = 8192
	// ShortSize is the short-page size: the first 32 bytes of a page,
	// transferred on short-view faults.
	ShortSize = 32
)

// PageID identifies a page within the global Mether address space.
type PageID uint32

// ErrBadAccess reports an out-of-range or misaligned memory access.
var ErrBadAccess = errors.New("vm: bad access")

// CheckRange validates an access of size bytes at off within a page of
// the given limit (PageSize or ShortSize for short views).
func CheckRange(off, size, limit int) error {
	if size <= 0 || off < 0 || off+size > limit {
		return fmt.Errorf("%w: off=%d size=%d limit=%d", ErrBadAccess, off, size, limit)
	}
	return nil
}

// zeroPage is the canonical all-zero page every untouched Frame shares.
// Region and RestRegion alias it for frames whose backing tier does not
// cover the requested range yet; callers honour the Region contract
// (read/encode only, never write through the slice), so one page serves
// every zero replica in the world.
var zeroPage [PageSize]byte

// Frame is the backing store for one page on one host. The first
// ShortSize bytes are the short page; the rest is the "superset"
// remainder. Gen is a logical version that increases with every mutation
// and rides along on the wire so receivers can discard stale refreshes.
//
// Storage is a flyweight: data holds one of three tiers — nil (the page
// has never been written here; every byte reads as zero), ShortSize
// (only the short region has been touched), or PageSize (full page).
// Reads beyond the current tier zero-extend without allocating; writes
// grow the tier to cover the touched range, at most twice over a
// frame's lifetime. A replica seeded but never written therefore costs
// zero page bytes, which is what lets 10k-host worlds fit in memory.
type Frame struct {
	data []byte // len 0, ShortSize or PageSize
	gen  uint64
}

// ensure grows the backing store to at least n bytes (ShortSize or
// PageSize), preserving contents and zero-filling the extension.
func (f *Frame) ensure(n int) {
	if len(f.data) >= n {
		return
	}
	grown := make([]byte, n)
	copy(grown, f.data)
	f.data = grown
}

// tierFor returns the smallest tier covering bytes [0, end).
func tierFor(end int) int {
	if end <= ShortSize {
		return ShortSize
	}
	return PageSize
}

// Tier returns the frame's current backing size in bytes: 0, ShortSize
// or PageSize. Diagnostic (memory accounting); not part of the paging
// protocol.
func (f *Frame) Tier() int { return len(f.data) }

// Gen returns the frame's current generation.
func (f *Frame) Gen() uint64 { return f.gen }

// SetGen sets the generation, used when installing received copies.
func (f *Frame) SetGen(g uint64) { f.gen = g }

// Load reads an unsigned little-endian integer of size 1, 2, 4 or 8
// bytes at off. Bytes beyond the current backing tier read as zero.
func (f *Frame) Load(off, size int) (uint64, error) {
	if err := CheckRange(off, size, PageSize); err != nil {
		return 0, err
	}
	src := f.data
	if off+size > len(src) {
		// The access reaches past the backing tier: assemble from the
		// stored prefix (possibly empty) plus implicit zeros.
		var buf [8]byte
		if off < len(src) {
			copy(buf[:], src[off:])
		}
		src = buf[:]
		off = 0
	}
	switch size {
	case 1:
		return uint64(src[off]), nil
	case 2:
		return uint64(binary.LittleEndian.Uint16(src[off:])), nil
	case 4:
		return uint64(binary.LittleEndian.Uint32(src[off:])), nil
	case 8:
		return binary.LittleEndian.Uint64(src[off:]), nil
	default:
		return 0, fmt.Errorf("%w: unsupported size %d", ErrBadAccess, size)
	}
}

// Store writes an unsigned little-endian integer of size 1, 2, 4 or 8
// bytes at off and bumps the generation.
func (f *Frame) Store(off, size int, v uint64) error {
	if err := CheckRange(off, size, PageSize); err != nil {
		return err
	}
	switch size {
	case 1, 2, 4, 8:
	default:
		return fmt.Errorf("%w: unsupported size %d", ErrBadAccess, size)
	}
	f.ensure(tierFor(off + size))
	switch size {
	case 1:
		f.data[off] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(f.data[off:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(f.data[off:], uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(f.data[off:], v)
	}
	f.gen++
	return nil
}

// ReadBytes copies len(dst) bytes starting at off into dst; bytes beyond
// the current backing tier read as zero.
func (f *Frame) ReadBytes(off int, dst []byte) error {
	if err := CheckRange(off, len(dst), PageSize); err != nil {
		return err
	}
	n := 0
	if off < len(f.data) {
		n = copy(dst, f.data[off:])
	}
	for i := n; i < len(dst); i++ {
		dst[i] = 0
	}
	return nil
}

// WriteBytes copies src into the frame at off and bumps the generation.
func (f *Frame) WriteBytes(off int, src []byte) error {
	if err := CheckRange(off, len(src), PageSize); err != nil {
		return err
	}
	f.ensure(tierFor(off + len(src)))
	copy(f.data[off:], src)
	f.gen++
	return nil
}

// Region returns the frame contents without copying: the short region
// if short is true, otherwise the whole page. The slice aliases the
// frame's storage — callers must copy (or encode) it before the frame
// can next be mutated, and must never write through it; use Snapshot
// when a durable copy is needed. When the backing tier does not cover
// the requested region the frame is untouched there, so the canonical
// zero page is aliased instead of growing the tier: sending a zero
// replica's contents costs no allocation.
func (f *Frame) Region(short bool) []byte {
	if short {
		if len(f.data) >= ShortSize {
			return f.data[:ShortSize]
		}
		return zeroPage[:ShortSize]
	}
	if len(f.data) == PageSize {
		return f.data
	}
	if len(f.data) == 0 {
		return zeroPage[:]
	}
	// Short tier with a full-page region requested: the stored short
	// bytes and the zero remainder live in different arrays, so this is
	// the one case that must materialize the full tier.
	f.ensure(PageSize)
	return f.data
}

// RestRegion returns the superset remainder [ShortSize, PageSize)
// without copying; the same aliasing caveats as Region apply. A frame
// whose tier stops at or before the short region aliases the canonical
// zero page.
func (f *Frame) RestRegion() []byte {
	if len(f.data) == PageSize {
		return f.data[ShortSize:]
	}
	return zeroPage[ShortSize:]
}

// Snapshot returns a copy of the frame contents: the short region if
// short is true, otherwise the whole page.
func (f *Frame) Snapshot(short bool) []byte {
	n := PageSize
	if short {
		n = ShortSize
	}
	out := make([]byte, n)
	copy(out, f.data)
	return out
}

// SnapshotRest returns a copy of the superset remainder
// [ShortSize, PageSize).
func (f *Frame) SnapshotRest() []byte {
	out := make([]byte, PageSize-ShortSize)
	if len(f.data) > ShortSize {
		copy(out, f.data[ShortSize:])
	}
	return out
}

// Install overwrites the region covered by data (ShortSize or PageSize
// bytes, from Snapshot) and adopts generation gen.
func (f *Frame) Install(data []byte, gen uint64) error {
	if len(data) != ShortSize && len(data) != PageSize {
		return fmt.Errorf("%w: install length %d", ErrBadAccess, len(data))
	}
	f.ensure(len(data))
	copy(f.data, data)
	f.gen = gen
	return nil
}

// InstallRest overwrites the superset remainder with data (from
// SnapshotRest) without touching the short region or generation.
func (f *Frame) InstallRest(data []byte) error {
	if len(data) != PageSize-ShortSize {
		return fmt.Errorf("%w: rest length %d", ErrBadAccess, len(data))
	}
	f.ensure(PageSize)
	copy(f.data[ShortSize:], data)
	return nil
}
