package vm

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestLoadStoreRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		off  int
		size int
		val  uint64
	}{
		{"byte", 0, 1, 0xAB},
		{"word16", 2, 2, 0xBEEF},
		{"word32", 4, 4, 0xDEADBEEF},
		{"word64", 8, 8, 0x0123456789ABCDEF},
		{"word32 high", PageSize - 4, 4, 42},
		{"short boundary", ShortSize - 4, 4, 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var f Frame
			if err := f.Store(tt.off, tt.size, tt.val); err != nil {
				t.Fatalf("Store: %v", err)
			}
			got, err := f.Load(tt.off, tt.size)
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			if got != tt.val {
				t.Errorf("got %#x, want %#x", got, tt.val)
			}
		})
	}
}

func TestStoreBumpsGeneration(t *testing.T) {
	var f Frame
	g0 := f.Gen()
	if err := f.Store(0, 4, 1); err != nil {
		t.Fatal(err)
	}
	if f.Gen() != g0+1 {
		t.Errorf("gen = %d, want %d", f.Gen(), g0+1)
	}
	if err := f.WriteBytes(100, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if f.Gen() != g0+2 {
		t.Errorf("gen = %d after WriteBytes, want %d", f.Gen(), g0+2)
	}
}

func TestOutOfRangeAccess(t *testing.T) {
	var f Frame
	cases := []struct {
		off, size int
	}{
		{-1, 4}, {PageSize, 1}, {PageSize - 3, 4}, {0, 0}, {0, -4},
	}
	for _, c := range cases {
		if _, err := f.Load(c.off, c.size); !errors.Is(err, ErrBadAccess) && c.size != 3 {
			t.Errorf("Load(%d,%d) err = %v, want ErrBadAccess", c.off, c.size, err)
		}
		if err := f.Store(c.off, c.size, 0); !errors.Is(err, ErrBadAccess) {
			t.Errorf("Store(%d,%d) err = %v, want ErrBadAccess", c.off, c.size, err)
		}
	}
}

func TestUnsupportedSize(t *testing.T) {
	var f Frame
	if _, err := f.Load(0, 3); !errors.Is(err, ErrBadAccess) {
		t.Errorf("Load size 3: err = %v, want ErrBadAccess", err)
	}
	if err := f.Store(0, 5, 1); !errors.Is(err, ErrBadAccess) {
		t.Errorf("Store size 5: err = %v, want ErrBadAccess", err)
	}
}

func TestSnapshotInstallShort(t *testing.T) {
	var src Frame
	for i := 0; i < ShortSize; i++ {
		src.data[i] = byte(i + 1)
	}
	src.data[ShortSize] = 0xFF // beyond short region
	src.gen = 10

	var dst Frame
	dst.data[ShortSize] = 0x55
	snap := src.Snapshot(true)
	if len(snap) != ShortSize {
		t.Fatalf("short snapshot length %d", len(snap))
	}
	if err := dst.Install(snap, src.Gen()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst.data[:ShortSize], src.data[:ShortSize]) {
		t.Error("short region not installed")
	}
	if dst.data[ShortSize] != 0x55 {
		t.Error("install of short snapshot touched superset remainder")
	}
	if dst.Gen() != 10 {
		t.Errorf("gen = %d, want 10", dst.Gen())
	}
}

func TestSnapshotInstallFull(t *testing.T) {
	var src Frame
	src.data[0] = 1
	src.data[PageSize-1] = 2
	src.gen = 3
	var dst Frame
	if err := dst.Install(src.Snapshot(false), src.Gen()); err != nil {
		t.Fatal(err)
	}
	if dst.data[0] != 1 || dst.data[PageSize-1] != 2 {
		t.Error("full install did not copy entire page")
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	var f Frame
	snap := f.Snapshot(true)
	snap[0] = 0xEE
	if f.data[0] != 0 {
		t.Error("snapshot aliases frame storage")
	}
}

func TestRestSnapshotInstall(t *testing.T) {
	var src Frame
	src.data[ShortSize] = 9
	src.data[PageSize-1] = 8
	src.data[0] = 7
	var dst Frame
	dst.data[0] = 1
	if err := dst.InstallRest(src.SnapshotRest()); err != nil {
		t.Fatal(err)
	}
	if dst.data[ShortSize] != 9 || dst.data[PageSize-1] != 8 {
		t.Error("rest not installed")
	}
	if dst.data[0] != 1 {
		t.Error("InstallRest touched the short region")
	}
}

func TestInstallRejectsBadLengths(t *testing.T) {
	var f Frame
	if err := f.Install(make([]byte, 100), 0); !errors.Is(err, ErrBadAccess) {
		t.Errorf("Install(100 bytes) err = %v, want ErrBadAccess", err)
	}
	if err := f.InstallRest(make([]byte, 10)); !errors.Is(err, ErrBadAccess) {
		t.Errorf("InstallRest(10 bytes) err = %v, want ErrBadAccess", err)
	}
}

// Property: store-then-load round-trips for arbitrary aligned offsets and
// values, and never affects neighbouring bytes.
func TestLoadStoreProperty(t *testing.T) {
	prop := func(rawOff uint16, val uint64, szSel uint8) bool {
		sizes := []int{1, 2, 4, 8}
		size := sizes[int(szSel)%len(sizes)]
		off := int(rawOff) % (PageSize - 8)
		var f Frame
		if err := f.Store(off, size, val); err != nil {
			return false
		}
		got, err := f.Load(off, size)
		if err != nil {
			return false
		}
		mask := uint64(1)<<(8*size) - 1
		if size == 8 {
			mask = ^uint64(0)
		}
		return got == val&mask
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: short install + rest install reassembles the original page.
func TestSplitReassemblyProperty(t *testing.T) {
	prop := func(seed []byte) bool {
		var src Frame
		for i, b := range seed {
			src.data[(i*37)%PageSize] ^= b
		}
		var dst Frame
		if err := dst.Install(src.Snapshot(true), 1); err != nil {
			return false
		}
		if err := dst.InstallRest(src.SnapshotRest()); err != nil {
			return false
		}
		return bytes.Equal(dst.data[:], src.data[:])
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
