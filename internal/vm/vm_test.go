package vm

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestLoadStoreRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		off  int
		size int
		val  uint64
	}{
		{"byte", 0, 1, 0xAB},
		{"word16", 2, 2, 0xBEEF},
		{"word32", 4, 4, 0xDEADBEEF},
		{"word64", 8, 8, 0x0123456789ABCDEF},
		{"word32 high", PageSize - 4, 4, 42},
		{"short boundary", ShortSize - 4, 4, 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var f Frame
			if err := f.Store(tt.off, tt.size, tt.val); err != nil {
				t.Fatalf("Store: %v", err)
			}
			got, err := f.Load(tt.off, tt.size)
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			if got != tt.val {
				t.Errorf("got %#x, want %#x", got, tt.val)
			}
		})
	}
}

func TestStoreBumpsGeneration(t *testing.T) {
	var f Frame
	g0 := f.Gen()
	if err := f.Store(0, 4, 1); err != nil {
		t.Fatal(err)
	}
	if f.Gen() != g0+1 {
		t.Errorf("gen = %d, want %d", f.Gen(), g0+1)
	}
	if err := f.WriteBytes(100, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if f.Gen() != g0+2 {
		t.Errorf("gen = %d after WriteBytes, want %d", f.Gen(), g0+2)
	}
}

func TestOutOfRangeAccess(t *testing.T) {
	var f Frame
	cases := []struct {
		off, size int
	}{
		{-1, 4}, {PageSize, 1}, {PageSize - 3, 4}, {0, 0}, {0, -4},
	}
	for _, c := range cases {
		if _, err := f.Load(c.off, c.size); !errors.Is(err, ErrBadAccess) && c.size != 3 {
			t.Errorf("Load(%d,%d) err = %v, want ErrBadAccess", c.off, c.size, err)
		}
		if err := f.Store(c.off, c.size, 0); !errors.Is(err, ErrBadAccess) {
			t.Errorf("Store(%d,%d) err = %v, want ErrBadAccess", c.off, c.size, err)
		}
	}
}

func TestUnsupportedSize(t *testing.T) {
	var f Frame
	if _, err := f.Load(0, 3); !errors.Is(err, ErrBadAccess) {
		t.Errorf("Load size 3: err = %v, want ErrBadAccess", err)
	}
	if err := f.Store(0, 5, 1); !errors.Is(err, ErrBadAccess) {
		t.Errorf("Store size 5: err = %v, want ErrBadAccess", err)
	}
	if f.Tier() != 0 {
		t.Errorf("rejected store grew the tier to %d", f.Tier())
	}
}

func TestSnapshotInstallShort(t *testing.T) {
	var src Frame
	for i := 0; i < ShortSize; i++ {
		if err := src.Store(i, 1, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.Store(ShortSize, 1, 0xFF); err != nil { // beyond short region
		t.Fatal(err)
	}
	src.SetGen(10)

	var dst Frame
	if err := dst.Store(ShortSize, 1, 0x55); err != nil {
		t.Fatal(err)
	}
	snap := src.Snapshot(true)
	if len(snap) != ShortSize {
		t.Fatalf("short snapshot length %d", len(snap))
	}
	if err := dst.Install(snap, src.Gen()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst.Snapshot(true), src.Snapshot(true)) {
		t.Error("short region not installed")
	}
	if v, _ := dst.Load(ShortSize, 1); v != 0x55 {
		t.Error("install of short snapshot touched superset remainder")
	}
	if dst.Gen() != 10 {
		t.Errorf("gen = %d, want 10", dst.Gen())
	}
}

func TestSnapshotInstallFull(t *testing.T) {
	var src Frame
	if err := src.Store(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := src.Store(PageSize-1, 1, 2); err != nil {
		t.Fatal(err)
	}
	var dst Frame
	if err := dst.Install(src.Snapshot(false), src.Gen()); err != nil {
		t.Fatal(err)
	}
	if v, _ := dst.Load(0, 1); v != 1 {
		t.Error("full install did not copy page start")
	}
	if v, _ := dst.Load(PageSize-1, 1); v != 2 {
		t.Error("full install did not copy page end")
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	var f Frame
	snap := f.Snapshot(true)
	snap[0] = 0xEE
	if v, _ := f.Load(0, 1); v != 0 {
		t.Error("snapshot aliases frame storage")
	}
}

func TestRestSnapshotInstall(t *testing.T) {
	var src Frame
	if err := src.Store(ShortSize, 1, 9); err != nil {
		t.Fatal(err)
	}
	if err := src.Store(PageSize-1, 1, 8); err != nil {
		t.Fatal(err)
	}
	if err := src.Store(0, 1, 7); err != nil {
		t.Fatal(err)
	}
	var dst Frame
	if err := dst.Store(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := dst.InstallRest(src.SnapshotRest()); err != nil {
		t.Fatal(err)
	}
	if v, _ := dst.Load(ShortSize, 1); v != 9 {
		t.Error("rest not installed")
	}
	if v, _ := dst.Load(PageSize-1, 1); v != 8 {
		t.Error("rest not installed to page end")
	}
	if v, _ := dst.Load(0, 1); v != 1 {
		t.Error("InstallRest touched the short region")
	}
}

func TestInstallRejectsBadLengths(t *testing.T) {
	var f Frame
	if err := f.Install(make([]byte, 100), 0); !errors.Is(err, ErrBadAccess) {
		t.Errorf("Install(100 bytes) err = %v, want ErrBadAccess", err)
	}
	if err := f.InstallRest(make([]byte, 10)); !errors.Is(err, ErrBadAccess) {
		t.Errorf("InstallRest(10 bytes) err = %v, want ErrBadAccess", err)
	}
}

// The flyweight tiers: an untouched frame stores nothing, a short-region
// write grows it to the short tier, and only a write past ShortSize pays
// for the full page.
func TestFlyweightTierGrowth(t *testing.T) {
	var f Frame
	if f.Tier() != 0 {
		t.Fatalf("fresh frame tier = %d, want 0", f.Tier())
	}
	if v, err := f.Load(PageSize-8, 8); err != nil || v != 0 {
		t.Fatalf("zero-extended read = %d, %v", v, err)
	}
	if f.Tier() != 0 {
		t.Fatalf("read grew tier to %d", f.Tier())
	}
	if err := f.Store(0, 4, 0xAA); err != nil {
		t.Fatal(err)
	}
	if f.Tier() != ShortSize {
		t.Fatalf("short write tier = %d, want %d", f.Tier(), ShortSize)
	}
	if v, _ := f.Load(ShortSize, 8); v != 0 {
		t.Errorf("rest of short-tier frame reads %d, want 0", v)
	}
	if err := f.Store(PageSize-4, 4, 0xBB); err != nil {
		t.Fatal(err)
	}
	if f.Tier() != PageSize {
		t.Fatalf("full write tier = %d, want %d", f.Tier(), PageSize)
	}
	if v, _ := f.Load(0, 4); v != 0xAA {
		t.Errorf("tier growth lost the short bytes: %#x", v)
	}
}

// Region of an untouched frame aliases the canonical zero page rather
// than allocating, and stays all-zero.
func TestRegionOfUntouchedFrameIsZeroAlias(t *testing.T) {
	var f Frame
	full := f.Region(false)
	if len(full) != PageSize {
		t.Fatalf("full region length %d", len(full))
	}
	for i, b := range full {
		if b != 0 {
			t.Fatalf("byte %d of zero region = %#x", i, b)
		}
	}
	if f.Tier() != 0 {
		t.Errorf("Region materialized tier %d on an untouched frame", f.Tier())
	}
	short := f.Region(true)
	if len(short) != ShortSize {
		t.Fatalf("short region length %d", len(short))
	}
	rest := f.RestRegion()
	if len(rest) != PageSize-ShortSize {
		t.Fatalf("rest region length %d", len(rest))
	}
}

// A short-tier frame asked for its full-page region must materialize the
// full tier (the stored short bytes and the zero remainder cannot alias
// two different arrays) and preserve contents.
func TestRegionPromotesShortTier(t *testing.T) {
	var f Frame
	if err := f.Store(0, 4, 0x1234); err != nil {
		t.Fatal(err)
	}
	full := f.Region(false)
	if f.Tier() != PageSize {
		t.Fatalf("tier after full Region = %d, want %d", f.Tier(), PageSize)
	}
	if got := uint64(full[0]) | uint64(full[1])<<8; got != 0x1234 {
		t.Errorf("promoted region lost short bytes: %#x", got)
	}
	for i := ShortSize; i < PageSize; i++ {
		if full[i] != 0 {
			t.Fatalf("promoted region byte %d = %#x, want 0", i, full[i])
		}
	}
}

// Property: store-then-load round-trips for arbitrary aligned offsets and
// values, and never affects neighbouring bytes.
func TestLoadStoreProperty(t *testing.T) {
	prop := func(rawOff uint16, val uint64, szSel uint8) bool {
		sizes := []int{1, 2, 4, 8}
		size := sizes[int(szSel)%len(sizes)]
		off := int(rawOff) % (PageSize - 8)
		var f Frame
		if err := f.Store(off, size, val); err != nil {
			return false
		}
		got, err := f.Load(off, size)
		if err != nil {
			return false
		}
		mask := uint64(1)<<(8*size) - 1
		if size == 8 {
			mask = ^uint64(0)
		}
		return got == val&mask
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: short install + rest install reassembles the original page.
func TestSplitReassemblyProperty(t *testing.T) {
	prop := func(seed []byte) bool {
		var src Frame
		for i, b := range seed {
			off := (i * 37) % PageSize
			old, err := src.Load(off, 1)
			if err != nil {
				return false
			}
			if err := src.Store(off, 1, old^uint64(b)); err != nil {
				return false
			}
		}
		var dst Frame
		if err := dst.Install(src.Snapshot(true), 1); err != nil {
			return false
		}
		if err := dst.InstallRest(src.SnapshotRest()); err != nil {
			return false
		}
		return bytes.Equal(dst.Snapshot(false), src.Snapshot(false))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
