package workload

import (
	"reflect"
	"testing"
	"time"

	"mether/pipe"
)

func TestHotspotCompletes(t *testing.T) {
	r, err := RunHotspot(HotspotConfig{Hosts: 3, Iters: 8, ShortPage: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.DNF {
		t.Fatal("hotspot did not finish")
	}
	if r.Updates != 3*8 {
		t.Errorf("updates = %d, want 24", r.Updates)
	}
	if r.Wall <= 0 || r.WireBytes == 0 || r.LatCount == 0 {
		t.Errorf("implausible report: %+v", r)
	}
}

func TestHotspotShortMovesFewerBytes(t *testing.T) {
	short, err := RunHotspot(HotspotConfig{Hosts: 2, Iters: 8, ShortPage: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	full, err := RunHotspot(HotspotConfig{Hosts: 2, Iters: 8, ShortPage: false, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if short.WireBytes >= full.WireBytes {
		t.Errorf("short page moved %d wire bytes, full %d; want short < full", short.WireBytes, full.WireBytes)
	}
}

func TestHotspotRejectsBadConfig(t *testing.T) {
	if _, err := RunHotspot(HotspotConfig{Hosts: 9, ShortPage: true}); err == nil {
		t.Error("9-host short hotspot should be rejected (8 word slots)")
	}
	if _, err := RunHotspot(HotspotConfig{Hosts: 1, Iters: 1}); err == nil {
		t.Error("1-host hotspot should be rejected")
	}
}

func TestBarrierCompletes(t *testing.T) {
	r, err := RunBarrier(BarrierConfig{Hosts: 3, Phases: 4, Work: time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.DNF {
		t.Fatal("barrier did not finish")
	}
	// One wait sample per host per phase.
	if r.LatCount != 3*4 {
		t.Errorf("barrier wait samples = %d, want 12", r.LatCount)
	}
	if r.Wall < 4*time.Millisecond/2 {
		t.Errorf("wall %v implausibly short for 4 phases of ~1ms work", r.Wall)
	}
}

func TestPipelineDeliversInOrder(t *testing.T) {
	r, err := RunPipeline(PipelineConfig{Stages: 3, Messages: 6, Size: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.DNF || r.Delivered != 6 {
		t.Fatalf("delivered %d/6 (DNF=%v)", r.Delivered, r.DNF)
	}
	if r.LatCount != 6 || r.LatMean <= 0 {
		t.Errorf("latency histogram: count=%d mean=%v", r.LatCount, r.LatMean)
	}
	if r.MsgsPerSec <= 0 {
		t.Errorf("throughput %v", r.MsgsPerSec)
	}
}

func TestPipelineBulkUsesFullPages(t *testing.T) {
	small, err := RunPipeline(PipelineConfig{Stages: 2, Messages: 4, Size: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bulk, err := RunPipeline(PipelineConfig{Stages: 2, Messages: 4, Size: pipe.ShortPayload + 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if bulk.WireBytes <= small.WireBytes {
		t.Errorf("bulk moved %d wire bytes, control %d; want bulk > control", bulk.WireBytes, small.WireBytes)
	}
}

func TestScenarioDeterminism(t *testing.T) {
	a, err := RunBarrier(BarrierConfig{Hosts: 2, Phases: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBarrier(BarrierConfig{Hosts: 2, Phases: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different barrier reports:\n a=%+v\n b=%+v", a, b)
	}
}
