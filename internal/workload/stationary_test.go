package workload

import (
	"reflect"
	"testing"
	"time"
)

// TestStationaryCompletes runs the P5-style stationary-owner counter at
// several cluster sizes: every host finishes all its updates, total
// updates add up, and the sampling path observed the neighbours.
func TestStationaryCompletes(t *testing.T) {
	for _, hosts := range []int{2, 4, 16} {
		r, err := RunStationary(StationaryConfig{Hosts: hosts, Iters: 8, Seed: 1})
		if err != nil {
			t.Fatalf("hosts=%d: %v", hosts, err)
		}
		if r.DNF {
			t.Fatalf("hosts=%d: did not finish (updates=%d)", hosts, r.Updates)
		}
		if want := uint64(hosts * 8); r.Updates != want {
			t.Errorf("hosts=%d: updates = %d, want %d", hosts, r.Updates, want)
		}
		if r.Samples == 0 {
			t.Errorf("hosts=%d: no neighbour samples observed", hosts)
		}
		if r.Wall <= 0 || r.Packets == 0 || r.Events == 0 {
			t.Errorf("hosts=%d: implausible stats %+v", hosts, r.ClusterStats)
		}
	}
}

// TestStationaryNetworkLoadScalesLinearly pins the property that makes
// the stationary discipline the scale-out baseline: per-update packet
// cost must not grow with cluster size (ownership never moves, one
// broadcast per update).
func TestStationaryNetworkLoadScalesLinearly(t *testing.T) {
	perUpdate := func(hosts int) float64 {
		r, err := RunStationary(StationaryConfig{Hosts: hosts, Iters: 16, Seed: 1})
		if err != nil || r.DNF {
			t.Fatalf("hosts=%d: err=%v dnf=%v", hosts, err, r.DNF)
		}
		return float64(r.Packets) / float64(r.Updates)
	}
	small, large := perUpdate(4), perUpdate(16)
	if large > 2*small {
		t.Errorf("packets/update grew superlinearly: %d hosts -> %.2f, %d hosts -> %.2f", 4, small, 16, large)
	}
}

// TestStationaryRejectsBadConfig covers the validation path.
func TestStationaryRejectsBadConfig(t *testing.T) {
	if _, err := RunStationary(StationaryConfig{Hosts: 1}); err == nil {
		t.Error("1-host stationary run should be rejected")
	}
}

// TestStationaryDeterministic: equal seeds, equal reports.
func TestStationaryDeterministic(t *testing.T) {
	run := func() StationaryReport {
		r, err := RunStationary(StationaryConfig{Hosts: 4, Iters: 8, Seed: 7, Cap: time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Errorf("same seed produced different reports:\n%+v\n%+v", a, b)
	}
}
