package workload

import (
	"reflect"
	"testing"
	"time"

	"mether/internal/fault"
)

// The fault plane is part of the deterministic event fabric: the same
// seeded churn schedule against the same seeded workload must produce a
// byte-identical report, run after run.
func TestFaultedStationaryDeterministic(t *testing.T) {
	sched := fault.Churn(42, 8, 0.25, 50*time.Millisecond, 200*time.Millisecond, 30*time.Millisecond, 2)
	run := func() StationaryReport {
		r, err := RunStationary(StationaryConfig{
			Hosts: 8, Iters: 8, Seed: 7, Cap: time.Minute,
			Faults: sched, ClaimRetries: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed + same fault schedule produced different reports:\n%+v\n%+v", a, b)
	}
	if a.DNF {
		t.Errorf("churned run did not finish: %+v", a)
	}
	if a.UnavailNS == 0 {
		t.Error("churn crashed hosts but UnavailNS is zero")
	}
	if a.Orphaned != 0 {
		t.Errorf("%d page(s) still orphaned after churn settled", a.Orphaned)
	}
}

// An empty fault schedule must be a true no-op: field-for-field equal to
// a run that never heard of the fault plane. This is the neutrality
// contract behind `-faults off` baseline comparisons.
func TestEmptyFaultScheduleIsNeutral(t *testing.T) {
	cfg := StationaryConfig{Hosts: 4, Iters: 8, Seed: 7, Cap: time.Minute}
	plain, err := RunStationary(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = fault.Schedule{}
	empty, err := RunStationary(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, empty) {
		t.Errorf("empty schedule perturbed the run:\nplain %+v\nempty %+v", plain, empty)
	}
}

// Crash/heal on the hotspot star topology: a mid-run trunk partition
// heals and the run still completes — no livelock, no orphans — with
// the outage visible as retry-stretched wall time against the healthy
// run of the same seed.
func TestHotspotPartitionHealCompletes(t *testing.T) {
	cfg := HotspotConfig{Hosts: 8, Iters: 8, Seed: 3, Trunks: 2, OwnerTrunk: 1, Cap: time.Minute}
	healthy, err := RunHotspot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = fault.Schedule{}.Partition(200*time.Millisecond, 0).Heal(900*time.Millisecond, 0)
	r, err := RunHotspot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.DNF {
		t.Fatalf("partition-heal run did not finish: %+v", r)
	}
	if r.Orphaned != 0 {
		t.Errorf("%d page(s) orphaned after heal", r.Orphaned)
	}
	if r.Wall <= healthy.Wall {
		t.Errorf("partitioned wall %v not above healthy %v; the outage cut no traffic", r.Wall, healthy.Wall)
	}
}
