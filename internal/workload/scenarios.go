// Scenario workloads beyond the single-pipe throughput run: the hotspot,
// barrier-phase and producer-consumer-pipeline patterns the sweep engine
// measures across its parameter grids. Each is a self-contained World
// run returning a report of virtual-time metrics only, so a fixed seed
// always yields an identical report regardless of the real scheduler.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"mether"
	"mether/internal/core"
	"mether/internal/ethernet"
	"mether/internal/fault"
	"mether/internal/stats"
	"mether/pipe"
)

// ClusterStats aggregates the cluster-wide measurements every scenario
// reports: virtual wall time, host load (CPU split and context
// switches), network load (wire bytes and frames) and the fault-latency
// distribution. All durations are virtual nanoseconds.
type ClusterStats struct {
	Wall        time.Duration
	UserCPU     time.Duration // client-process user time, all hosts
	SysCPU      time.Duration // client-process system time, all hosts
	ServerCPU   time.Duration // Mether server CPU (user-level or kernel)
	CtxSwitches uint64
	WireBytes   uint64
	Packets     uint64
	// Events is the number of simulation-kernel events dispatched for
	// the run (deterministic; the engine-throughput denominator).
	Events   uint64
	LatMean  time.Duration
	LatP50   time.Duration
	LatP90   time.Duration
	LatP99   time.Duration
	LatP999  time.Duration
	LatMax   time.Duration
	LatCount uint64
	// Redundant-fetch counters (zero at the classic k=1): replica
	// answers sent on behalf of owners, replica answers suppressed
	// because the winner's reply landed first, and late/duplicate grants
	// dropped by explicit generation comparison.
	RedundantServes     uint64
	RedundantSuppressed uint64
	LateDrops           uint64
	// Topology counters (zero on a single trunk): bridge forwarded
	// frames, per-port drops, peak store-and-forward occupancy, and the
	// drivers' staleness counters — StaleDrops totals every
	// generation-regressed broadcast, CrossTrunkStale the subset that
	// bridge queues reordered across trunks (the paper's purge-ordering
	// hazard, measured instead of asserted in a comment).
	BridgeForwarded uint64
	BridgePortDrops uint64
	BridgeMaxQueued int
	StaleDrops      uint64
	CrossTrunkStale uint64
	// TrunkUtil and TrunkFrames are each trunk's own wire utilization
	// (busy time / wall) and transmitted frame count, in trunk order —
	// which trunk saturates is invisible in the summed NetStats. Nil on
	// the classic single-trunk worlds.
	TrunkUtil   []float64
	TrunkFrames []uint64
	// Fault-plane counters (all zero in healthy worlds, and in faulted
	// worlds whose schedule is empty): orphaned authorities re-claimed,
	// pre-crash grants refused by the ghost fence, authorities shipped by
	// owner migrations, total NIC-down time, total recovery-to-first-
	// reinstall time, and frames a partitioned bridge drained instead of
	// replaying after its heal.
	OrphanRecoveries     uint64
	GhostDrops           uint64
	MigratedPages        uint64
	UnavailNS            time.Duration
	RejoinNS             time.Duration
	BridgePartitionDrops uint64
	// Fabric counters, zero by construction on Ethernet: unicast copies
	// transmitted on behalf of broadcasts (the sender-paid fan-out cost
	// a shared bus never charges), frames dropped at full per-link
	// transmit queues, and the peak per-link queue occupancy.
	FanoutFrames  uint64
	LinkOverflows uint64
	LinkMaxQueued int
	// MemBytes is the world's structural memory footprint after the run
	// (World.MemFootprint): a deterministic walk of directory shards,
	// frame tiers, rings and pools, not a runtime heap reading.
	MemBytes uint64
	// RingHighWater is the peak NIC receive-ring occupancy anywhere in
	// the world — the measured fan-in that justifies (or indicts) the
	// configured ring capacities.
	RingHighWater int
}

// collectCluster harvests ClusterStats from a finished world. extra is
// merged into the drivers' fault-latency histogram when non-nil (for
// scenarios that measure an application-level latency instead).
func collectCluster(w *mether.World, end time.Duration, extra *stats.Histogram) ClusterStats {
	cs := ClusterStats{Wall: end}
	for i := 0; i < w.NumHosts(); i++ {
		cs.CtxSwitches += w.ContextSwitches(i)
		cs.ServerCPU += w.Driver(i).Metrics().KernelTime
		for _, p := range w.HostMachine(i).Procs() {
			if p.Name() == "metherd" {
				cs.ServerCPU += p.User() + p.Sys()
			} else {
				cs.UserCPU += p.User()
				cs.SysCPU += p.Sys()
			}
		}
	}
	ns := w.NetStats()
	cs.WireBytes = ns.WireBytes
	cs.Packets = ns.Frames
	cs.RingHighWater = ns.RingHighWater
	cs.FanoutFrames = ns.FanoutFrames
	cs.LinkOverflows = ns.LinkOverflows
	cs.LinkMaxQueued = ns.LinkMaxQueued
	cs.Events = w.EventsDispatched()
	cs.MemBytes = w.MemFootprint()
	bs := w.BridgeStats()
	cs.BridgeForwarded = bs.Forwarded
	cs.BridgePortDrops = bs.PortDrops
	cs.BridgeMaxQueued = bs.MaxQueued
	cs.BridgePartitionDrops = bs.PartitionDrops
	for i := 0; i < w.NumHosts(); i++ {
		// Fold still-open crash/rejoin windows into the metrics before
		// harvesting them; a no-op on healthy hosts.
		w.Driver(i).SettleFaults(end)
		m := w.Driver(i).Metrics()
		cs.StaleDrops += m.StaleDrops
		cs.CrossTrunkStale += m.CrossTrunkStale
		cs.RedundantServes += m.RedundantServes
		cs.RedundantSuppressed += m.RedundantSuppressed
		cs.LateDrops += m.LateGrantDrops
		cs.OrphanRecoveries += m.OrphanRecoveries
		cs.GhostDrops += m.GhostDrops
		cs.MigratedPages += m.MigratedPages
		cs.UnavailNS += m.UnavailNS
		cs.RejoinNS += m.RejoinNS
	}
	cs.TrunkUtil, cs.TrunkFrames = w.TrunkUtilization(end)

	var lat stats.Histogram
	if extra != nil {
		lat.Merge(extra)
	} else {
		for i := 0; i < w.NumHosts(); i++ {
			lat.Merge(&w.Driver(i).Metrics().FaultLatency)
		}
	}
	cs.LatMean = lat.Mean()
	cs.LatP50 = lat.Quantile(0.5)
	cs.LatP90 = lat.Quantile(0.9)
	cs.LatP99 = lat.Quantile(0.99)
	cs.LatP999 = lat.Quantile(0.999)
	cs.LatMax = lat.Max()
	cs.LatCount = lat.Count()
	return cs
}

// mediumBlock assembles a world's Medium config from a scenario's
// medium kind, Ethernet model and bridge topology. When the fabric is
// selected, the shared network axes that ride along every scenario —
// loss rate and receive-ring capacity — are mapped onto the fabric
// model, so an ethernet-vs-fabric comparison varies the wire and
// nothing else.
func mediumBlock(kind string, np ethernet.Params, tc ethernet.TopologyConfig) mether.MediumConfig {
	mc := mether.MediumConfig{Kind: kind, Ethernet: np, Topology: tc}
	if kind == mether.MediumFabric {
		fp := mether.DefaultFabricParams()
		fp.LossRate = np.LossRate
		if np.RxRing > 0 {
			fp.RxRing = np.RxRing
		}
		mc.Fabric = fp
	}
	return mc
}

// HotspotConfig parameterizes a hot-page contention run: every host
// repeatedly updates its own word of one shared consistent page, so the
// single consistent copy bounces between all hosts.
type HotspotConfig struct {
	// Hosts is the cluster size (default 4; at most 8 with ShortPage,
	// since the 32-byte short region holds eight words).
	Hosts int
	// Iters is the per-host update count (default 32).
	Iters int
	// ShortPage selects the 32-byte view (the paper's fast path); when
	// false every bounce moves the full 8 KiB page.
	ShortPage bool
	// Writers bounds how many hosts actively update the hot page (0 =
	// every host). The remaining hosts hold resident replicas and ingest
	// every broadcast — the snoop load is still cluster-wide. At the
	// 1024-host tier an all-writers hotspot is O(hosts³) in simulation
	// events (bounces × receivers × outstanding requesters), so the
	// large cells bound the writer set to keep the cell tractable while
	// the fan-out being measured stays at full cluster size.
	Writers int
	// WarmStart seeds resident replicas of the hot page on every host
	// before the run (see Segment.WarmReplicas), removing the cold
	// attach storm from the measurement.
	WarmStart bool
	// IncCost is the CPU cost per update (default 50 µs).
	IncCost time.Duration
	// MinResidency overrides the driver's anti-thrash holdoff when
	// positive. At large host counts the default 10 ms window expires
	// while the grantee's client is still waiting behind its server's
	// broadcast-handling load, so ownership leaves before the update
	// happens and the page thrashes; cluster cells scale this with host
	// count.
	MinResidency time.Duration
	// RetryTimeout overrides the driver's demand-request retransmit
	// interval when positive. At the 1024-host tier the default 250 ms
	// retry is far shorter than the scaled residency window, so every
	// waiting host re-broadcasts its request several times per ownership
	// bounce and each retry costs every host a receive; cluster cells
	// scale the retry with host count to keep the redundant-request storm
	// bounded (absent loss, deferred requests are served without retries).
	RetryTimeout time.Duration
	// KernelServer runs protocol processing at interrupt level (the
	// paper's proposed fix) instead of in the user-level server process.
	KernelServer bool
	// Trunks partitions the hosts across bridged Ethernet trunks (0/1 =
	// the classic single bus); TrunkShape arranges them (star default).
	Trunks     int
	TrunkShape ethernet.Shape
	// OwnerTrunk places the hot page's initial owner on a trunk (its
	// first host). The owner is where the consistent copy starts — on a
	// bridged topology, which trunk hosts it decides who pays the
	// store-and-forward hop for the first round of steals.
	OwnerTrunk int
	// PortLoss is the per-port bridge forwarding loss probability.
	PortLoss float64
	// BacklogUp and BacklogDown model asymmetric background traffic on
	// every bridge: extra forwarding delay toward the higher- and
	// lower-numbered trunk respectively (see ethernet.TopologyConfig).
	BacklogUp   time.Duration
	BacklogDown time.Duration
	// Redundancy is the redundant-fetch fan-out k for read faults (0/1 =
	// the classic owner-only protocol).
	Redundancy int
	// Faults is the deterministic fault schedule to execute during the
	// run (empty = healthy world, provably identical to a schedule-free
	// run). Hotspot fault cells exercise bridge partition/heal; note that
	// orphan re-claiming (ClaimRetries) must stay off in partitioned
	// worlds — a claim across a partition would mint a second owner that
	// the heal then exposes as split-brain.
	Faults fault.Schedule
	// Medium selects the interconnect backend (mether.MediumEthernet
	// when empty, or mether.MediumFabric). Incompatible with Trunks > 1.
	Medium string
	Seed   int64
	Cap    time.Duration
	// NetParams overrides the Ethernet model when non-zero (loss sweeps).
	NetParams ethernet.Params
}

// HotspotReport is the hotspot run's measurements.
type HotspotReport struct {
	Hosts   int
	Iters   int
	Short   bool
	Updates uint64 // total updates completed
	DNF     bool
	// Orphaned is the end-of-run count of pages with no consistent copy
	// anywhere (only measured when a fault schedule ran; 0 otherwise).
	Orphaned int
	ClusterStats
}

func (c HotspotConfig) withDefaults() (HotspotConfig, error) {
	if c.Hosts == 0 {
		c.Hosts = 4
	}
	if c.Iters == 0 {
		c.Iters = 32
	}
	if c.IncCost == 0 {
		c.IncCost = 50 * time.Microsecond
	}
	if c.Cap == 0 {
		c.Cap = 10 * time.Minute
	}
	if c.Hosts < 2 {
		return c, fmt.Errorf("workload: hotspot needs at least 2 hosts")
	}
	if c.Writers == 0 || c.Writers > c.Hosts {
		c.Writers = c.Hosts
	}
	if c.Writers < 2 {
		return c, fmt.Errorf("workload: hotspot needs at least 2 writers")
	}
	if c.ShortPage && c.Writers > 8 {
		return c, fmt.Errorf("workload: short hotspot page holds 8 word slots, got %d writers", c.Writers)
	}
	if c.Writers*4 > mether.PageSize {
		return c, fmt.Errorf("workload: hotspot page holds %d word slots, got %d writers", mether.PageSize/4, c.Writers)
	}
	return c, nil
}

// RunHotspot measures N hosts contending for one shared writable page.
func RunHotspot(cfg HotspotConfig) (HotspotReport, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return HotspotReport{}, err
	}
	wcfg := mether.Config{
		Hosts: cfg.Hosts, Pages: 8, Seed: cfg.Seed,
		Trunks: cfg.Trunks,
		Medium: mediumBlock(cfg.Medium, cfg.NetParams, ethernet.TopologyConfig{
			Shape: cfg.TrunkShape, PortLoss: cfg.PortLoss,
			BacklogUp: cfg.BacklogUp, BacklogDown: cfg.BacklogDown,
		}),
	}
	if cfg.MinResidency > 0 || cfg.RetryTimeout > 0 || cfg.KernelServer || cfg.Redundancy > 1 {
		wcfg.Core = core.DefaultConfig(8)
		if cfg.MinResidency > 0 {
			wcfg.Core.MinResidency = cfg.MinResidency
		}
		if cfg.RetryTimeout > 0 {
			wcfg.Core.RetryTimeout = cfg.RetryTimeout
		}
		wcfg.Core.KernelServer = cfg.KernelServer
		wcfg.Core.Redundancy = cfg.Redundancy
	}
	w := mether.NewWorld(wcfg)
	defer w.Shutdown()
	seg, err := w.CreateSegmentOnTrunk("hotspot", 1, cfg.OwnerTrunk)
	if err != nil {
		return HotspotReport{}, err
	}
	if cfg.WarmStart {
		seg.WarmReplicas()
	}
	if err := w.InjectFaults(cfg.Faults); err != nil {
		return HotspotReport{}, err
	}
	capRW := seg.CapRW()

	done := make([]bool, cfg.Writers)
	errs := make([]error, cfg.Writers)
	var updates uint64
	var lastFinish time.Duration
	for i := 0; i < cfg.Writers; i++ {
		i := i
		w.Spawn(i, fmt.Sprintf("hot%d", i), func(env *mether.Env) {
			m, err := env.Attach(capRW, mether.RW)
			if err != nil {
				errs[i] = err
				return
			}
			a := m.Addr(0, 4*i)
			if cfg.ShortPage {
				a = a.Short()
			}
			for n := 0; n < cfg.Iters; n++ {
				env.Compute(cfg.IncCost)
				v, err := m.Load32(a)
				if err != nil {
					errs[i] = err
					return
				}
				if err := m.Store32(a, v+1); err != nil {
					errs[i] = err
					return
				}
				updates++
			}
			done[i] = true
			if t := env.Now(); t > lastFinish {
				lastFinish = t
			}
		})
	}
	w.RunUntil(cfg.Cap)
	for _, err := range errs {
		if err != nil {
			return HotspotReport{}, err
		}
	}
	r := HotspotReport{Hosts: cfg.Hosts, Iters: cfg.Iters, Short: cfg.ShortPage, Updates: updates}
	for _, d := range done {
		if !d {
			r.DNF = true
			lastFinish = w.Now()
		}
	}
	if !cfg.Faults.Empty() {
		r.Orphaned = w.OrphanedPages()
	}
	r.ClusterStats = collectCluster(w, lastFinish, nil)
	return r, nil
}

// BarrierConfig parameterizes a bulk-synchronous run: every host
// computes a local phase, announces arrival by writing its own
// stationary page and broadcasting a PURGE, then waits until every peer
// page shows the same phase (the paper's final-protocol shape, N ways).
type BarrierConfig struct {
	// Hosts is the cluster size (default 4).
	Hosts int
	// Phases is the number of barrier rounds (default 8).
	Phases int
	// Work is the mean local compute per phase (default 2 ms). Actual
	// per-host, per-phase work is drawn uniformly from [Work/2, 3Work/2]
	// with the run's seed, modelling skew.
	Work time.Duration
	// HysteresisPurge is how many stale reads a waiter tolerates before
	// purging the peer copy to force a fresh fetch (default 4).
	HysteresisPurge int
	// CheckEvery is the waiter's spin-check interval (default 10 µs). At
	// the 1024-host tier every host must ingest a thousand arrival
	// broadcasts per phase, so a 10 µs poll burns millions of simulation
	// events spinning against a copy that cannot change faster than the
	// broadcast backlog drains; cluster cells scale this with host count.
	CheckEvery time.Duration
	// WarmStart seeds resident replicas of every barrier page on every
	// host before the run (see Segment.WarmReplicas).
	WarmStart bool
	// KernelServer runs protocol processing at interrupt level.
	KernelServer bool
	// Trunks partitions the hosts across bridged Ethernet trunks (0/1 =
	// single bus); TrunkShape arranges them. Every arrival broadcast
	// must then be forwarded to every other trunk before its waiters
	// release — the barrier is the broadcast-bound worst case for a
	// bridged topology.
	Trunks     int
	TrunkShape ethernet.Shape
	// PortLoss is the per-port bridge forwarding loss probability.
	PortLoss float64
	// BacklogUp and BacklogDown model asymmetric background traffic on
	// every bridge (see ethernet.TopologyConfig).
	BacklogUp   time.Duration
	BacklogDown time.Duration
	// Redundancy is the redundant-fetch fan-out k for read faults (0/1 =
	// the classic owner-only protocol).
	Redundancy int
	// Medium selects the interconnect backend (mether.MediumEthernet
	// when empty, or mether.MediumFabric). Incompatible with Trunks > 1.
	Medium    string
	Seed      int64
	Cap       time.Duration
	NetParams ethernet.Params
}

// BarrierReport is the barrier run's measurements. The latency fields of
// ClusterStats hold the barrier-wait distribution: time from a host's
// own arrival to its release, one sample per host per phase.
type BarrierReport struct {
	Hosts  int
	Phases int
	DNF    bool
	ClusterStats
}

func (c BarrierConfig) withDefaults() (BarrierConfig, error) {
	if c.Hosts == 0 {
		c.Hosts = 4
	}
	if c.Phases == 0 {
		c.Phases = 8
	}
	if c.Work == 0 {
		c.Work = 2 * time.Millisecond
	}
	if c.HysteresisPurge == 0 {
		c.HysteresisPurge = 4
	}
	if c.CheckEvery == 0 {
		c.CheckEvery = 10 * time.Microsecond
	}
	if c.Cap == 0 {
		c.Cap = 10 * time.Minute
	}
	if c.Hosts < 2 {
		return c, fmt.Errorf("workload: barrier needs at least 2 hosts")
	}
	return c, nil
}

// RunBarrier measures Phases rounds of an N-host barrier built from
// stationary per-host pages.
func RunBarrier(cfg BarrierConfig) (BarrierReport, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return BarrierReport{}, err
	}
	pages := cfg.Hosts
	if pages < 8 {
		pages = 8
	}
	wcfg := mether.Config{
		Hosts: cfg.Hosts, Pages: pages, Seed: cfg.Seed,
		Trunks: cfg.Trunks,
		Medium: mediumBlock(cfg.Medium, cfg.NetParams, ethernet.TopologyConfig{
			Shape: cfg.TrunkShape, PortLoss: cfg.PortLoss,
			BacklogUp: cfg.BacklogUp, BacklogDown: cfg.BacklogDown,
		}),
	}
	if cfg.KernelServer || cfg.Redundancy > 1 {
		wcfg.Core = core.DefaultConfig(pages)
		wcfg.Core.KernelServer = cfg.KernelServer
		wcfg.Core.Redundancy = cfg.Redundancy
	}
	w := mether.NewWorld(wcfg)
	defer w.Shutdown()
	owners := make([]int, cfg.Hosts)
	for i := range owners {
		owners[i] = i
	}
	seg, err := w.CreateSegmentOwners("barrier", owners)
	if err != nil {
		return BarrierReport{}, err
	}
	if cfg.WarmStart {
		seg.WarmReplicas()
	}
	capRW := seg.CapRW()

	// Pre-draw the per-host, per-phase work so the schedule is a pure
	// function of the seed.
	rng := rand.New(rand.NewSource(cfg.Seed))
	work := make([][]time.Duration, cfg.Hosts)
	for i := range work {
		work[i] = make([]time.Duration, cfg.Phases)
		for p := range work[i] {
			half := int64(cfg.Work) / 2
			work[i][p] = cfg.Work/2 + time.Duration(rng.Int63n(2*half+1))
		}
	}

	done := make([]bool, cfg.Hosts)
	errs := make([]error, cfg.Hosts)
	// One histogram streamed into by every host: the simulation kernel
	// serializes processes, and histogram observation is commutative, so
	// the shared instance ends bit-identical to the former per-host
	// slice-then-merge — without retaining hosts × histogram copies for
	// the length of the run.
	var waitHist stats.Histogram
	var lastFinish time.Duration
	for i := 0; i < cfg.Hosts; i++ {
		i := i
		w.Spawn(i, fmt.Sprintf("bsp%d", i), func(env *mether.Env) {
			errs[i] = barrierClient(env, capRW, cfg, i, work[i], &waitHist)
			if errs[i] == nil {
				done[i] = true
				if t := env.Now(); t > lastFinish {
					lastFinish = t
				}
			}
		})
	}
	w.RunUntil(cfg.Cap)
	for _, err := range errs {
		if err != nil {
			return BarrierReport{}, err
		}
	}
	r := BarrierReport{Hosts: cfg.Hosts, Phases: cfg.Phases}
	for _, d := range done {
		if !d {
			r.DNF = true
			lastFinish = w.Now()
		}
	}
	r.ClusterStats = collectCluster(w, lastFinish, &waitHist)
	return r, nil
}

// barrierClient is one host's compute/arrive/wait loop.
func barrierClient(env *mether.Env, cap mether.Capability, cfg BarrierConfig, id int, work []time.Duration, hist *stats.Histogram) error {
	own, err := env.Attach(cap, mether.RW)
	if err != nil {
		return err
	}
	peers, err := env.Attach(cap.ReadOnly(), mether.RO)
	if err != nil {
		return err
	}
	ownAddr := own.Addr(id, 0).Short()
	for phase := 0; phase < cfg.Phases; phase++ {
		env.Compute(work[phase])
		want := uint32(phase + 1)
		if err := own.Store32(ownAddr, want); err != nil {
			return err
		}
		// Passive update: one broadcast refreshes every waiter's copy.
		if err := own.Purge(ownAddr); err != nil {
			return err
		}
		arrived := env.Now()
		for j := 0; j < cfg.Hosts; j++ {
			if j == id {
				continue
			}
			pa := peers.Addr(j, 0).Short()
			stale := 0
			for {
				env.Compute(cfg.CheckEvery)
				v, err := peers.Load32(pa)
				if err != nil {
					return err
				}
				if v >= want {
					break
				}
				stale++
				if stale >= cfg.HysteresisPurge {
					stale = 0
					// Force a fresh demand fetch from the owner; unlike a
					// data-driven block this cannot miss a broadcast that
					// already transited.
					if err := peers.Purge(pa); err != nil {
						return err
					}
				}
			}
		}
		hist.Observe(env.Now() - arrived)
	}
	return nil
}

// PipelineConfig parameterizes a producer-consumer pipeline: Stages
// hosts connected by Mether pipes, messages flowing from stage 0 through
// every stage to the sink, each stage spending StageCost per message.
type PipelineConfig struct {
	// Stages is the number of hosts in the chain (default 3, min 2).
	Stages int
	// Messages is how many messages the source produces (default 16).
	Messages int
	// Size is the payload size in bytes (default 8, the control-message
	// fast path; sizes above pipe.ShortPayload exercise full pages).
	Size int
	// StageCost is the per-message compute at every stage (default 200 µs).
	StageCost time.Duration
	Seed      int64
	Cap       time.Duration
	NetParams ethernet.Params
}

// PipelineReport is the pipeline run's measurements. The latency fields
// of ClusterStats hold the end-to-end message latency distribution
// (source hand-off to sink receipt).
type PipelineReport struct {
	Stages     int
	Messages   int
	Size       int
	Delivered  int
	DNF        bool
	MsgsPerSec float64
	ClusterStats
}

func (c PipelineConfig) withDefaults() (PipelineConfig, error) {
	if c.Stages == 0 {
		c.Stages = 3
	}
	if c.Messages == 0 {
		c.Messages = 16
	}
	if c.Size == 0 {
		c.Size = 8
	}
	if c.StageCost == 0 {
		c.StageCost = 200 * time.Microsecond
	}
	if c.Cap == 0 {
		c.Cap = 10 * time.Minute
	}
	if c.Stages < 2 {
		return c, fmt.Errorf("workload: pipeline needs at least 2 stages")
	}
	if c.Size > pipe.MaxPayload {
		return c, fmt.Errorf("workload: pipeline message %d bytes exceeds %d", c.Size, pipe.MaxPayload)
	}
	return c, nil
}

// RunPipeline measures a Stages-host producer-consumer pipeline.
func RunPipeline(cfg PipelineConfig) (PipelineReport, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return PipelineReport{}, err
	}
	pages := 2 * (cfg.Stages - 1)
	if pages < 8 {
		pages = 8
	}
	w := mether.NewWorld(mether.Config{Hosts: cfg.Stages, Pages: pages, Seed: cfg.Seed, NetParams: cfg.NetParams})
	defer w.Shutdown()
	caps := make([]mether.Capability, cfg.Stages-1)
	for i := range caps {
		caps[i], err = pipe.Create(w, fmt.Sprintf("stage%d", i), i, i+1)
		if err != nil {
			return PipelineReport{}, err
		}
	}

	errs := make([]error, cfg.Stages)
	sentAt := make([]time.Duration, cfg.Messages)
	var lat stats.Histogram
	delivered := 0
	var lastFinish time.Duration
	payload := make([]byte, cfg.Size)
	for i := range payload {
		payload[i] = byte(i)
	}

	// Source.
	w.Spawn(0, "source", func(env *mether.Env) {
		p, err := pipe.Open(env, caps[0], 0)
		if err != nil {
			errs[0] = err
			return
		}
		for m := 0; m < cfg.Messages; m++ {
			env.Compute(cfg.StageCost)
			sentAt[m] = env.Now()
			if err := p.Send(uint32(m), payload); err != nil {
				errs[0] = err
				return
			}
		}
	})
	// Interior stages forward.
	for s := 1; s < cfg.Stages-1; s++ {
		s := s
		w.Spawn(s, fmt.Sprintf("stage%d", s), func(env *mether.Env) {
			in, err := pipe.Open(env, caps[s-1], 1)
			if err != nil {
				errs[s] = err
				return
			}
			out, err := pipe.Open(env, caps[s], 0)
			if err != nil {
				errs[s] = err
				return
			}
			for m := 0; m < cfg.Messages; m++ {
				msg, err := in.Recv()
				if err != nil {
					errs[s] = err
					return
				}
				env.Compute(cfg.StageCost)
				if err := out.Send(msg.Tag, msg.Data); err != nil {
					errs[s] = err
					return
				}
			}
		})
	}
	// Sink.
	sink := cfg.Stages - 1
	w.Spawn(sink, "sink", func(env *mether.Env) {
		p, err := pipe.Open(env, caps[sink-1], 1)
		if err != nil {
			errs[sink] = err
			return
		}
		for m := 0; m < cfg.Messages; m++ {
			msg, err := p.Recv()
			if err != nil {
				errs[sink] = err
				return
			}
			if int(msg.Tag) != m || len(msg.Data) != cfg.Size {
				errs[sink] = fmt.Errorf("workload: pipeline message %d arrived as tag %d, %d bytes", m, msg.Tag, len(msg.Data))
				return
			}
			env.Compute(cfg.StageCost)
			lat.Observe(env.Now() - sentAt[m])
			delivered++
			lastFinish = env.Now()
		}
	})

	w.RunUntil(cfg.Cap)
	for _, err := range errs {
		if err != nil {
			return PipelineReport{}, err
		}
	}
	r := PipelineReport{Stages: cfg.Stages, Messages: cfg.Messages, Size: cfg.Size, Delivered: delivered}
	if delivered != cfg.Messages {
		r.DNF = true
		lastFinish = w.Now()
	}
	r.ClusterStats = collectCluster(w, lastFinish, &lat)
	if lastFinish > 0 {
		r.MsgsPerSec = stats.Rate(uint64(delivered), lastFinish)
	}
	return r, nil
}
