// Package workload generates message workloads for throughput
// experiments over the Mether pipe library. The paper observes that
// "some applications use shared memory to pass small blocks of data
// between processes"; these generators model the common mixes — fixed
// control messages, uniformly sized records, and the bimodal
// control-plus-bulk pattern — so benches can measure how the short-page
// fast path behaves across them.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"mether"
	"mether/pipe"
)

// SizeDist draws message sizes.
type SizeDist interface {
	// Next returns the next message size in bytes.
	Next(rng *rand.Rand) int
	// Name labels the distribution in reports.
	Name() string
}

// Fixed always returns Size.
type Fixed struct{ Size int }

// Next implements SizeDist.
func (f Fixed) Next(*rand.Rand) int { return f.Size }

// Name implements SizeDist.
func (f Fixed) Name() string { return fmt.Sprintf("fixed-%dB", f.Size) }

// Uniform draws uniformly from [Min, Max].
type Uniform struct{ Min, Max int }

// Next implements SizeDist.
func (u Uniform) Next(rng *rand.Rand) int {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + rng.Intn(u.Max-u.Min+1)
}

// Name implements SizeDist.
func (u Uniform) Name() string { return fmt.Sprintf("uniform-%d..%dB", u.Min, u.Max) }

// Bimodal models the control+bulk mix: mostly small control messages
// (short-page fast path) with occasional bulk transfers.
type Bimodal struct {
	Small, Large int
	// LargeEvery is the period of bulk messages (every Nth message).
	LargeEvery int
}

// Next implements SizeDist.
func (b Bimodal) Next(rng *rand.Rand) int {
	if b.LargeEvery > 0 && rng.Intn(b.LargeEvery) == 0 {
		return b.Large
	}
	return b.Small
}

// Name implements SizeDist.
func (b Bimodal) Name() string {
	return fmt.Sprintf("bimodal-%dB/%dB-every%d", b.Small, b.Large, b.LargeEvery)
}

// Config describes one pipe-throughput run.
type Config struct {
	Dist     SizeDist
	Messages int
	Seed     int64
	Cap      time.Duration
}

// Report carries the measured throughput.
type Report struct {
	Dist        string
	Messages    int
	Bytes       int
	Wall        time.Duration
	MsgsPerSec  float64
	BytesPerSec float64
	WireBytes   uint64
	Packets     uint64
	// ShortRatio is the fraction of messages that fit the short path.
	ShortRatio float64
}

// Run streams Messages messages of Dist-drawn sizes through one pipe
// and measures simulated throughput.
func Run(cfg Config) (Report, error) {
	if cfg.Dist == nil || cfg.Messages <= 0 {
		return Report{}, fmt.Errorf("workload: need a distribution and messages")
	}
	if cfg.Cap == 0 {
		cfg.Cap = 10 * time.Minute
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sizes := make([]int, cfg.Messages)
	total, short := 0, 0
	for i := range sizes {
		s := cfg.Dist.Next(rng)
		if s > pipe.MaxPayload {
			s = pipe.MaxPayload
		}
		sizes[i] = s
		total += s
		if s <= pipe.ShortPayload {
			short++
		}
	}

	w := mether.NewWorld(mether.Config{Hosts: 2, Pages: 8, Seed: cfg.Seed})
	defer w.Shutdown()
	cap, err := pipe.Create(w, "load", 0, 1)
	if err != nil {
		return Report{}, err
	}

	var txErr, rxErr error
	received := 0
	w.Spawn(0, "tx", func(env *mether.Env) {
		p, err := pipe.Open(env, cap, 0)
		if err != nil {
			txErr = err
			return
		}
		buf := make([]byte, pipe.MaxPayload)
		for i, s := range sizes {
			if err := p.Send(uint32(i), buf[:s]); err != nil {
				txErr = err
				return
			}
		}
	})
	w.Spawn(1, "rx", func(env *mether.Env) {
		p, err := pipe.Open(env, cap, 1)
		if err != nil {
			rxErr = err
			return
		}
		for range sizes {
			m, err := p.Recv()
			if err != nil {
				rxErr = err
				return
			}
			if len(m.Data) != sizes[received] {
				rxErr = fmt.Errorf("workload: message %d has %d bytes, want %d", received, len(m.Data), sizes[received])
				return
			}
			received++
		}
	})
	end := w.RunUntil(cfg.Cap)
	if txErr != nil {
		return Report{}, txErr
	}
	if rxErr != nil {
		return Report{}, rxErr
	}
	if received != cfg.Messages {
		return Report{}, fmt.Errorf("workload: received %d/%d within cap", received, cfg.Messages)
	}

	r := Report{
		Dist:       cfg.Dist.Name(),
		Messages:   cfg.Messages,
		Bytes:      total,
		Wall:       end,
		WireBytes:  w.NetStats().WireBytes,
		Packets:    w.NetStats().Frames,
		ShortRatio: float64(short) / float64(cfg.Messages),
	}
	if end > 0 {
		r.MsgsPerSec = float64(cfg.Messages) / end.Seconds()
		r.BytesPerSec = float64(total) / end.Seconds()
	}
	return r, nil
}
