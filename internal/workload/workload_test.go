package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mether/pipe"
)

func TestDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if s := (Fixed{Size: 24}).Next(rng); s != 24 {
		t.Errorf("Fixed.Next = %d", s)
	}
	u := Uniform{Min: 10, Max: 20}
	for i := 0; i < 100; i++ {
		if s := u.Next(rng); s < 10 || s > 20 {
			t.Fatalf("Uniform.Next = %d outside [10,20]", s)
		}
	}
	b := Bimodal{Small: 8, Large: 4000, LargeEvery: 4}
	small, large := 0, 0
	for i := 0; i < 1000; i++ {
		switch b.Next(rng) {
		case 8:
			small++
		case 4000:
			large++
		default:
			t.Fatal("Bimodal returned an unexpected size")
		}
	}
	if large == 0 || small < large {
		t.Errorf("Bimodal mix off: %d small, %d large", small, large)
	}
	for _, d := range []SizeDist{Fixed{1}, Uniform{1, 2}, b} {
		if d.Name() == "" {
			t.Error("empty distribution name")
		}
	}
}

func TestUniformDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := Uniform{Min: 5, Max: 5}
	if s := u.Next(rng); s != 5 {
		t.Errorf("degenerate uniform = %d", s)
	}
}

func TestRunDeliversAllSizes(t *testing.T) {
	r, err := Run(Config{Dist: Bimodal{Small: 8, Large: 2000, LargeEvery: 3}, Messages: 12, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.Messages != 12 || r.Bytes == 0 {
		t.Errorf("report = %+v", r)
	}
	if r.MsgsPerSec <= 0 {
		t.Error("throughput not computed")
	}
	if r.ShortRatio <= 0 || r.ShortRatio >= 1 {
		t.Errorf("bimodal short ratio = %f, want strictly between 0 and 1", r.ShortRatio)
	}
}

func TestShortPathIsFaster(t *testing.T) {
	smallR, err := Run(Config{Dist: Fixed{Size: 8}, Messages: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bigR, err := Run(Config{Dist: Fixed{Size: 7000}, Messages: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if smallR.MsgsPerSec <= bigR.MsgsPerSec {
		t.Errorf("small messages (%.1f msg/s) should beat full-page messages (%.1f msg/s)",
			smallR.MsgsPerSec, bigR.MsgsPerSec)
	}
	if smallR.ShortRatio != 1 || bigR.ShortRatio != 0 {
		t.Errorf("short ratios = %f / %f", smallR.ShortRatio, bigR.ShortRatio)
	}
	if smallR.WireBytes >= bigR.WireBytes {
		t.Errorf("wire bytes: small %d should be far under big %d", smallR.WireBytes, bigR.WireBytes)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := Run(Config{Dist: Fixed{8}, Messages: 0}); err == nil {
		t.Error("zero messages accepted")
	}
}

// Property: any distribution's draws clamp into the pipe's payload range
// after Run's clamping, and runs deliver every message intact.
func TestOversizeClampProperty(t *testing.T) {
	prop := func(sz uint16) bool {
		rng := rand.New(rand.NewSource(3))
		d := Fixed{Size: int(sz)}
		s := d.Next(rng)
		if s > pipe.MaxPayload {
			s = pipe.MaxPayload
		}
		return s <= pipe.MaxPayload
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
