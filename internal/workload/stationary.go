// The stationary-owner counter workload: the paper's final-protocol
// (P5) discipline scaled to cluster size. Every host owns one page and
// keeps it stationary — it increments a counter in its own short page
// and broadcasts a PURGE after each update, while periodically sampling
// a neighbour's counter with a purge + demand fetch. Because ownership
// never moves and every update is one short broadcast, the workload's
// network load grows linearly in host count, which is what makes 64-
// and 256-host worlds tractable and why the paper's protocol-5 shape is
// the scale-out baseline.
package workload

import (
	"fmt"
	"time"

	"mether"
	"mether/internal/core"
	"mether/internal/ethernet"
	"mether/internal/fault"
)

// StationaryConfig parameterizes the cluster-scale stationary-owner
// counter run.
type StationaryConfig struct {
	// Hosts is the cluster size (default 4, min 2).
	Hosts int
	// Iters is the per-host update count (default 32).
	Iters int
	// SampleEvery makes each host sample its ring neighbour's counter
	// (purge the local replica, then demand-fetch a fresh copy) every
	// this many of its own updates (default 4). Demand sampling is used
	// rather than a data-driven block because a neighbour that has
	// finished its run produces no further transits — at 256 hosts the
	// startup skew makes that strand passive waiters, where a demand
	// request is always answered by the stationary owner.
	SampleEvery int
	// IncCost is the CPU cost per update (default 50 µs).
	IncCost time.Duration
	// WarmStart seeds resident replicas of every segment page on every
	// host before the run (see Segment.WarmReplicas): at the 1024-host
	// tier a cold start means every host demand-fetches every peer page
	// at attach, an O(hosts³) request storm that swamps the workload.
	WarmStart bool
	// KernelServer runs protocol processing at interrupt level.
	KernelServer bool
	// Trunks partitions the hosts across bridged Ethernet trunks (0/1 =
	// single bus); TrunkShape arranges them. Each host's page is owned
	// (served) by that host, so placement follows the block partition:
	// intra-trunk samples stay local while the border hosts' ring
	// neighbours sit across a bridge.
	Trunks     int
	TrunkShape ethernet.Shape
	// PortLoss is the per-port bridge forwarding loss probability.
	PortLoss float64
	// BacklogUp and BacklogDown model asymmetric background traffic on
	// every bridge: extra forwarding delay toward the higher- and
	// lower-numbered trunk respectively (see ethernet.TopologyConfig).
	BacklogUp   time.Duration
	BacklogDown time.Duration
	// Redundancy is the redundant-fetch fan-out k for the neighbour
	// samples' read faults (0/1 = the classic owner-only protocol): each
	// demand fetch additionally names the k-1 nearest replicas, any of
	// which may answer first — the tail-latency-for-wire-bytes trade.
	Redundancy int
	// RetryTimeout overrides the driver's demand-retransmit interval
	// (zero = the 250 ms default). The windowed tiers widen it: with
	// RingSlots-bounded rings a sample request can land in a saturated
	// owner's drop window, and the retry should arrive after the burst
	// drains, not join it.
	RetryTimeout time.Duration
	// WindowedAttach maps only each host's working set — its own page
	// and its sampled neighbour's page — instead of the whole segment.
	// The classic full attach maps hosts × pages states (quadratic) for
	// a workload that touches two pages per host; the 4096/10000-host
	// tiers require the window.
	WindowedAttach bool
	// StaggerStart delays host i's start by i×StaggerStart, spreading
	// the update broadcasts across virtual time instead of colliding
	// every host's first purge at t=0. On a warm world the attach itself
	// costs no virtual time, so the stagger is pure offset, not hidden
	// work.
	StaggerStart time.Duration
	// LazyReplicas enables the driver's memory-lazy receive path
	// (core.Config.LazyReplicas): snooped broadcasts for pages a host
	// never touched are counted and skipped instead of materializing
	// per-page state. Only the windowed tiers set it — the classic warm
	// cells measure refresh effects on exactly those untouched replicas.
	LazyReplicas bool
	// RingSlots bounds every NIC's logical receive ring when positive,
	// replacing the uniform NetParams.RxRing. The stationary fan-in
	// model: each host's page has exactly one sampler, so an owner must
	// absorb that sampler's request plus its own replies — a handful of
	// frames — and everything beyond is droppable snoop backlog. The
	// windowed tiers derive a small constant from that model (see
	// ClusterGrid) instead of the old 4×hosts worst case, and the
	// reported ring high-water proves the bound out.
	RingSlots int
	// Faults is the deterministic fault schedule to execute during the
	// run (empty = healthy world, provably identical to a schedule-free
	// run): host crashes and recoveries, bridge partitions, owner
	// migrations — all fired at virtual times under the seeded kernel.
	Faults fault.Schedule
	// ClaimRetries arms orphaned-ownership recovery: after this many
	// consecutive unanswered demand retries a requester claims the page
	// itself (generation-bumped, broadcast, deterministically arbitrated).
	// Zero disables claiming — required in worlds whose schedule
	// partitions bridges, where a claim across the partition would mint a
	// second owner.
	ClaimRetries int
	// Medium selects the interconnect backend (mether.MediumEthernet
	// when empty, or mether.MediumFabric). Incompatible with Trunks > 1.
	Medium string
	Seed   int64
	Cap    time.Duration
	// NetParams overrides the Ethernet model when non-zero (loss sweeps).
	NetParams ethernet.Params
}

// StationaryReport is the stationary run's measurements. The latency
// fields of ClusterStats hold the driver fault-latency distribution
// (data-driven sample waits included).
type StationaryReport struct {
	Hosts   int
	Iters   int
	Updates uint64 // total own-page updates completed
	Samples uint64 // neighbour samples observed
	DNF     bool
	// Orphaned is the end-of-run count of pages with no consistent copy
	// anywhere (only measured when a fault schedule ran; 0 otherwise). A
	// crash-and-recover cell must end with zero: every authority lost to
	// a crash has been re-claimed.
	Orphaned int
	ClusterStats
}

func (c StationaryConfig) withDefaults() (StationaryConfig, error) {
	if c.Hosts == 0 {
		c.Hosts = 4
	}
	if c.Iters == 0 {
		c.Iters = 32
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 4
	}
	if c.IncCost == 0 {
		c.IncCost = 50 * time.Microsecond
	}
	if c.Cap == 0 {
		c.Cap = 10 * time.Minute
	}
	if c.Hosts < 2 {
		return c, fmt.Errorf("workload: stationary needs at least 2 hosts")
	}
	return c, nil
}

// RunStationary measures N hosts each updating a stationary owned page
// and passively observing a neighbour.
func RunStationary(cfg StationaryConfig) (StationaryReport, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return StationaryReport{}, err
	}
	pages := cfg.Hosts
	if pages < 8 {
		pages = 8
	}
	wcfg := mether.Config{
		Hosts: cfg.Hosts, Pages: pages, Seed: cfg.Seed,
		Trunks: cfg.Trunks,
		Medium: mediumBlock(cfg.Medium, cfg.NetParams, ethernet.TopologyConfig{
			Shape: cfg.TrunkShape, PortLoss: cfg.PortLoss,
			BacklogUp: cfg.BacklogUp, BacklogDown: cfg.BacklogDown,
		}),
	}
	if cfg.KernelServer || cfg.Redundancy > 1 || cfg.LazyReplicas || cfg.RetryTimeout > 0 || cfg.ClaimRetries > 0 {
		wcfg.Core = core.DefaultConfig(pages)
		wcfg.Core.KernelServer = cfg.KernelServer
		wcfg.Core.Redundancy = cfg.Redundancy
		wcfg.Core.LazyReplicas = cfg.LazyReplicas
		if cfg.RetryTimeout > 0 {
			wcfg.Core.RetryTimeout = cfg.RetryTimeout
		}
		wcfg.Core.ClaimRetries = cfg.ClaimRetries
	}
	if cfg.RingSlots > 0 {
		ring := cfg.RingSlots
		wcfg.Medium.RingOf = func(int) int { return ring }
	}
	w := mether.NewWorld(wcfg)
	defer w.Shutdown()
	owners := make([]int, cfg.Hosts)
	for i := range owners {
		owners[i] = i
	}
	seg, err := w.CreateSegmentOwners("stationary", owners)
	if err != nil {
		return StationaryReport{}, err
	}
	if cfg.WarmStart {
		seg.WarmReplicas()
	}
	if err := w.InjectFaults(cfg.Faults); err != nil {
		return StationaryReport{}, err
	}
	capRW := seg.CapRW()

	done := make([]bool, cfg.Hosts)
	errs := make([]error, cfg.Hosts)
	var updates, samples uint64
	var lastFinish time.Duration
	for i := 0; i < cfg.Hosts; i++ {
		i := i
		w.Spawn(i, fmt.Sprintf("stat%d", i), func(env *mether.Env) {
			if cfg.StaggerStart > 0 {
				env.SleepFor(time.Duration(i) * cfg.StaggerStart)
			}
			var own, peers *mether.Mapping
			var err error
			if cfg.WindowedAttach {
				// Working-set attach: this host touches its own page and
				// its ring neighbour's, nothing else.
				own, err = env.AttachPages(capRW, mether.RW, i)
				if err == nil {
					peers, err = env.AttachPages(capRW.ReadOnly(), mether.RO, (i+1)%cfg.Hosts)
				}
			} else {
				own, err = env.Attach(capRW, mether.RW)
				if err == nil {
					peers, err = env.Attach(capRW.ReadOnly(), mether.RO)
				}
			}
			if err != nil {
				errs[i] = err
				return
			}
			ownAddr := own.Addr(i, 0).Short()
			peerAddr := peers.Addr((i+1)%cfg.Hosts, 0).Short()
			for n := 0; n < cfg.Iters; n++ {
				env.Compute(cfg.IncCost)
				v, err := own.Load32(ownAddr)
				if err != nil {
					errs[i] = err
					return
				}
				if err := own.Store32(ownAddr, v+1); err != nil {
					errs[i] = err
					return
				}
				// Passive update: the stationary page never moves; one
				// short broadcast refreshes every resident copy.
				if err := own.Purge(ownAddr); err != nil {
					errs[i] = err
					return
				}
				updates++
				// Forced fresh sample: purge the local replica and
				// demand-fetch the neighbour's current value from its
				// stationary owner. Between samples the replica rides
				// the neighbour's purge broadcasts for free.
				if cfg.SampleEvery > 0 && n%cfg.SampleEvery == cfg.SampleEvery-1 {
					if err := peers.Purge(peerAddr); err != nil {
						errs[i] = err
						return
					}
					if _, err := peers.Load32(peerAddr); err != nil {
						errs[i] = err
						return
					}
					samples++
				}
			}
			done[i] = true
			if t := env.Now(); t > lastFinish {
				lastFinish = t
			}
		})
	}
	w.RunUntil(cfg.Cap)
	for _, err := range errs {
		if err != nil {
			return StationaryReport{}, err
		}
	}
	r := StationaryReport{Hosts: cfg.Hosts, Iters: cfg.Iters, Updates: updates, Samples: samples}
	for _, d := range done {
		if !d {
			r.DNF = true
			lastFinish = w.Now()
		}
	}
	if !cfg.Faults.Empty() {
		r.Orphaned = w.OrphanedPages()
	}
	r.ClusterStats = collectCluster(w, lastFinish, nil)
	return r, nil
}
