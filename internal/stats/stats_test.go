package stats

import (
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Error("zero histogram should report zeros")
	}
	samples := []time.Duration{time.Millisecond, 3 * time.Millisecond, 5 * time.Millisecond}
	for _, s := range samples {
		h.Observe(s)
	}
	if h.Count() != 3 {
		t.Errorf("count = %d, want 3", h.Count())
	}
	if h.Mean() != 3*time.Millisecond {
		t.Errorf("mean = %v, want 3ms", h.Mean())
	}
	if h.Min() != time.Millisecond || h.Max() != 5*time.Millisecond {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	if h.Min() != 0 || h.Max() != 0 {
		t.Error("negative sample not clamped to zero")
	}
}

func TestQuantileBounds(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	h.Observe(time.Second)
	// Median should be near 1ms (within the 2x bucket bound).
	if q := h.Quantile(0.5); q > 4*time.Millisecond {
		t.Errorf("p50 = %v, want <= 4ms", q)
	}
	if q := h.Quantile(1.0); q < time.Second {
		t.Errorf("p100 = %v, want >= 1s", q)
	}
}

func TestMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Millisecond)
	b.Observe(3 * time.Millisecond)
	b.Observe(5 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 3 {
		t.Errorf("merged count = %d, want 3", a.Count())
	}
	if a.Mean() != 3*time.Millisecond {
		t.Errorf("merged mean = %v, want 3ms", a.Mean())
	}
	if a.Min() != time.Millisecond || a.Max() != 5*time.Millisecond {
		t.Errorf("merged min/max = %v/%v", a.Min(), a.Max())
	}
	var empty Histogram
	a.Merge(&empty)
	if a.Count() != 3 {
		t.Error("merging empty histogram changed count")
	}
}

// The sweep engine's aggregation leans on Merge and Quantile; these pin
// their edge cases.

func TestMergeIntoEmpty(t *testing.T) {
	var dst, src Histogram
	src.Observe(2 * time.Millisecond)
	src.Observe(8 * time.Millisecond)
	dst.Merge(&src)
	if dst.Count() != 2 || dst.Min() != 2*time.Millisecond || dst.Max() != 8*time.Millisecond {
		t.Errorf("merge into empty lost samples: %v", dst.String())
	}
	if dst.Sum() != 10*time.Millisecond {
		t.Errorf("merged sum = %v, want 10ms", dst.Sum())
	}
}

func TestMergeEmptyIntoEmpty(t *testing.T) {
	var a, b Histogram
	a.Merge(&b)
	if a.Count() != 0 || a.Min() != 0 || a.Max() != 0 || a.Quantile(0.5) != 0 {
		t.Errorf("empty merge produced samples: %v", a.String())
	}
}

func TestMergePreservesZeroMin(t *testing.T) {
	// A histogram whose genuine minimum is 0 must not have its min
	// clobbered when merged into a non-empty histogram with min > 0.
	var a, b Histogram
	a.Observe(5 * time.Millisecond)
	b.Observe(0)
	a.Merge(&b)
	if a.Min() != 0 {
		t.Errorf("merged min = %v, want 0", a.Min())
	}
}

func TestMergeCrossBucket(t *testing.T) {
	// Samples landing in distant log2 buckets must all survive a merge,
	// and quantiles must see the union.
	var a, b Histogram
	for i := 0; i < 10; i++ {
		a.Observe(time.Microsecond) // bucket ~10
	}
	for i := 0; i < 10; i++ {
		b.Observe(time.Second) // bucket ~30
	}
	a.Merge(&b)
	if a.Count() != 20 {
		t.Fatalf("merged count = %d, want 20", a.Count())
	}
	if q := a.Quantile(0.25); q > 4*time.Microsecond {
		t.Errorf("p25 = %v, want near 1µs", q)
	}
	if q := a.Quantile(0.95); q < 500*time.Millisecond {
		t.Errorf("p95 = %v, want near 1s", q)
	}
}

func TestMergeSelfDoubles(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	h.Observe(4 * time.Millisecond)
	h.Merge(&h)
	if h.Count() != 4 || h.Sum() != 10*time.Millisecond {
		t.Errorf("self merge: count=%d sum=%v, want 4/10ms", h.Count(), h.Sum())
	}
}

func TestQuantileEmpty(t *testing.T) {
	var h Histogram
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if v := h.Quantile(q); v != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, v)
		}
	}
}

func TestQuantileSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Millisecond)
	for _, q := range []float64{0.01, 0.5, 1.0} {
		v := h.Quantile(q)
		// The single sample is both the floor and the ceiling; the
		// log-bucket estimate must land on it exactly (clamped to max).
		if v != 3*time.Millisecond {
			t.Errorf("single-sample Quantile(%v) = %v, want 3ms", q, v)
		}
	}
}

func TestQuantileNeverExceedsMax(t *testing.T) {
	var h Histogram
	h.Observe(5 * time.Millisecond)
	h.Observe(6 * time.Millisecond)
	for _, q := range []float64{0.1, 0.5, 0.9, 1.0} {
		if v := h.Quantile(q); v > h.Max() {
			t.Errorf("Quantile(%v) = %v exceeds max %v", q, v, h.Max())
		}
	}
}

func TestQuantileOutOfRangeArgs(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	if v := h.Quantile(-0.5); v != 0 {
		t.Errorf("Quantile(-0.5) = %v, want 0", v)
	}
	if v := h.Quantile(5); v != h.Quantile(1) {
		t.Errorf("Quantile(5) = %v, want same as Quantile(1)", v)
	}
}

func TestRateAndRatio(t *testing.T) {
	if r := Rate(100, 2*time.Second); r != 50 {
		t.Errorf("Rate = %f, want 50", r)
	}
	if r := Rate(1, 0); r != 0 {
		t.Errorf("Rate with zero wall = %f, want 0", r)
	}
	if r := Ratio(10, 2); r != 5 {
		t.Errorf("Ratio = %f, want 5", r)
	}
	if r := Ratio(7, 0); r != 7 {
		t.Errorf("Ratio with zero denominator = %f, want 7", r)
	}
	if r := BytesPerSec(4096, 4*time.Second); r != 1024 {
		t.Errorf("BytesPerSec = %f, want 1024", r)
	}
}

// Property: mean always lies within [min, max] and count/sum are exact.
func TestHistogramInvariantProperty(t *testing.T) {
	prop := func(raw []uint32) bool {
		var h Histogram
		var sum time.Duration
		for _, r := range raw {
			d := time.Duration(r)
			h.Observe(d)
			sum += d
		}
		if h.Count() != uint64(len(raw)) {
			return false
		}
		if len(raw) == 0 {
			return true
		}
		if h.Sum() != sum {
			return false
		}
		return h.Mean() >= h.Min() && h.Mean() <= h.Max()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: quantile is monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		var h Histogram
		for _, r := range raw {
			h.Observe(time.Duration(r) * time.Microsecond)
		}
		last := time.Duration(0)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
			v := h.Quantile(q)
			if v < last {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
