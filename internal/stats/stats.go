// Package stats provides the lightweight measurement primitives the
// reproduction reports: latency histograms with log-spaced buckets and
// simple rate helpers. All values are virtual-time durations from the
// simulation; nothing here touches the wall clock.
package stats

import (
	"fmt"
	"math/bits"
	"time"
)

// histBuckets is the number of log2 buckets; bucket i holds samples with
// floor(log2(ns)) == i, so the range covers 1 ns to ~9.2 s and beyond.
const histBuckets = 64

// Histogram accumulates durations. The zero value is ready to use.
type Histogram struct {
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	buckets [histBuckets]uint64
}

// Observe records one sample. Negative samples are clamped to zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	h.buckets[bucketOf(d)]++
}

func bucketOf(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	return bits.Len64(uint64(d)) - 1
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the total of all samples.
func (h *Histogram) Sum() time.Duration { return h.sum }

// Mean returns the average sample, or zero with no samples.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min returns the smallest sample, or zero with no samples.
func (h *Histogram) Min() time.Duration { return h.min }

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) using
// the bucket boundaries; the estimate is exact to within a factor of
// two, and never exceeds the observed maximum.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(h.count))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen >= target {
			bound := time.Duration(1) << uint(i+1)
			if bound > h.max {
				bound = h.max
			}
			return bound
		}
	}
	return h.max
}

// Merge adds all samples of other into h (bucket-wise; min/max/sum exact).
func (h *Histogram) Merge(other *Histogram) {
	if other.count == 0 {
		return
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
}

func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v min=%v max=%v", h.count, h.Mean(), h.min, h.max)
}

// Rate returns events per second of virtual time.
func Rate(events uint64, wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return float64(events) / wall.Seconds()
}

// BytesPerSec returns a byte rate over virtual time.
func BytesPerSec(bytes uint64, wall time.Duration) float64 {
	return Rate(bytes, wall)
}

// Ratio returns a/b, or +Inf-free 0 when b is zero and a is zero, and
// a as float when b is zero (used for loss/win ratios where wins can be
// zero in degenerate runs).
func Ratio(a, b uint64) float64 {
	if b == 0 {
		return float64(a)
	}
	return float64(a) / float64(b)
}
