package protocols

import (
	"runtime"
	"testing"
)

// benchCounterRun runs one full counter experiment per iteration — the
// end-to-end hot path through all four layers (sim kernel, host
// scheduler, ethernet, core driver/server) — and reports allocations
// per simulated event, the tentpole metric the zero-allocation refactor
// is measured by.
func benchCounterRun(b *testing.B, cfg Config) {
	b.Helper()
	var events uint64
	var ms0, ms1 runtime.MemStats
	b.ReportAllocs()
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if r.DNF {
			b.Fatal("counter run did not finish")
		}
		events = r.Events
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	if events > 0 {
		allocsPerRun := float64(ms1.Mallocs-ms0.Mallocs) / float64(b.N)
		b.ReportMetric(allocsPerRun/float64(events), "allocs/event")
		b.ReportMetric(float64(events), "events/run")
	}
}

// BenchmarkCounterRun is the P5 (final protocol) run: stationary pages,
// one purge broadcast per increment.
func BenchmarkCounterRun(b *testing.B) {
	benchCounterRun(b, Config{Protocol: P5Final, Target: 128, Seed: 1})
}

// BenchmarkCounterRunShortPage is the P2 short-page run: every fault
// moves ownership (the request/grant shape rather than P5's broadcasts).
func BenchmarkCounterRunShortPage(b *testing.B) {
	benchCounterRun(b, Config{Protocol: P2ShortPage, Target: 128, Seed: 1})
}
