package protocols

import (
	"testing"
	"time"
)

// TestCounterAcrossBridgedTrunks runs the paper's short-page counter
// with the two peers on opposite trunks of a bridged Ethernet: every
// ownership bounce pays the store-and-forward hop, so the run must
// still finish, must cross the bridge, and must be slower than the
// same run on a single trunk.
func TestCounterAcrossBridgedTrunks(t *testing.T) {
	bridged, err := Run(Config{Protocol: P2ShortPage, Target: 32, Seed: 9, Trunks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if bridged.DNF || bridged.Additions != 32 {
		t.Fatalf("bridged counter: DNF=%v additions=%d, want 32", bridged.DNF, bridged.Additions)
	}
	if bridged.BridgeForwarded == 0 {
		t.Error("no frames crossed the bridge")
	}
	if bridged.BridgeMaxQueued == 0 {
		t.Error("bridge occupancy never observed a queued frame")
	}

	single, err := Run(Config{Protocol: P2ShortPage, Target: 32, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if single.BridgeForwarded != 0 {
		t.Errorf("single-trunk run reports %d forwarded frames", single.BridgeForwarded)
	}
	// Each of the ~64 ownership bounces pays at least the 1ms default
	// store-and-forward delay on top of the single-trunk run.
	if bridged.Wall < single.Wall+32*time.Millisecond {
		t.Errorf("bridged wall %v should exceed single-trunk %v by the bridge hops", bridged.Wall, single.Wall)
	}
}
