package protocols

import (
	"fmt"
	"time"

	"mether"
	"mether/internal/stats"
)

// FanoutMode selects how N readers follow one writer's updates.
type FanoutMode int

const (
	// FanoutDataDriven: readers sleep on the data-driven view; the
	// writer's single purge broadcast refreshes and wakes all of them.
	// This is the paper's scaling argument made concrete: like a
	// hardware cache invalidate, one broadcast costs the writer the same
	// no matter how many hosts hold copies.
	FanoutDataDriven FanoutMode = iota + 1
	// FanoutDemand: readers purge and demand-refetch to observe each
	// update; every reader costs the writer's host a request/response,
	// so writer-side work scales with the reader count.
	FanoutDemand
)

func (m FanoutMode) String() string {
	switch m {
	case FanoutDataDriven:
		return "data-driven"
	case FanoutDemand:
		return "demand-refetch"
	default:
		return fmt.Sprintf("FanoutMode(%d)", int(m))
	}
}

// FanoutConfig parameterizes a one-writer / N-reader run.
type FanoutConfig struct {
	Mode    FanoutMode
	Readers int
	Updates int // writer updates (default 32)
	Seed    int64
	Cap     time.Duration
}

// FanoutReport carries the scaling measurements.
type FanoutReport struct {
	Mode        FanoutMode
	Readers     int
	Updates     int
	Wall        time.Duration
	WriterCPU   time.Duration // writer host client+server CPU
	Packets     uint64
	PacketsPerU float64 // packets per update
	NetBytes    uint64
	Missed      uint64 // reader observations that skipped an update
}

// RunFanout measures one writer publishing updates to N reader hosts.
func RunFanout(cfg FanoutConfig) (FanoutReport, error) {
	if cfg.Readers <= 0 {
		return FanoutReport{}, fmt.Errorf("protocols: need at least one reader")
	}
	if cfg.Updates == 0 {
		cfg.Updates = 32
	}
	if cfg.Cap == 0 {
		cfg.Cap = 600 * time.Second
	}
	w := mether.NewWorld(mether.Config{
		Hosts: cfg.Readers + 1,
		Pages: 8,
		Seed:  cfg.Seed,
	})
	defer w.Shutdown()

	seg, err := w.CreateSegment("fanout", 1, 0)
	if err != nil {
		return FanoutReport{}, err
	}
	capRW := seg.CapRW()

	readersDone := make([]bool, cfg.Readers)
	var missed uint64

	w.Spawn(0, "writer", func(env *mether.Env) {
		m, err := env.Attach(capRW, mether.RW)
		if err != nil {
			return
		}
		a := m.Addr(0, 0).Short()
		for i := 1; i <= cfg.Updates; i++ {
			env.Compute(50 * time.Microsecond)
			if err := m.Store32(a, uint32(i)); err != nil {
				return
			}
			if err := m.Purge(a); err != nil {
				return
			}
			// Paced updates: readers must keep up between publishes.
			env.SleepFor(25 * time.Millisecond)
		}
	})

	for r := 0; r < cfg.Readers; r++ {
		r := r
		w.Spawn(r+1, fmt.Sprintf("reader%d", r), func(env *mether.Env) {
			m, err := env.Attach(capRW.ReadOnly(), mether.RO)
			if err != nil {
				return
			}
			a := m.Addr(0, 0).Short()
			last := uint32(0)
			for last < uint32(cfg.Updates) {
				switch cfg.Mode {
				case FanoutDataDriven:
					v, err := m.Load32(a)
					if err != nil {
						return
					}
					if v > last {
						if v > last+1 {
							missed += uint64(v - last - 1)
						}
						last = v
						continue
					}
					if err := m.Purge(a); err != nil {
						return
					}
					if _, err := m.Load32(a.DataDriven()); err != nil {
						return
					}
				case FanoutDemand:
					if err := m.Purge(a); err != nil {
						return
					}
					v, err := m.Load32(a)
					if err != nil {
						return
					}
					if v > last {
						if v > last+1 {
							missed += uint64(v - last - 1)
						}
						last = v
					} else {
						env.SleepFor(2 * time.Millisecond)
					}
				}
			}
			readersDone[r] = true
		})
	}

	w.RunUntil(cfg.Cap)
	for r, done := range readersDone {
		if !done {
			return FanoutReport{}, fmt.Errorf("protocols: reader %d did not finish", r)
		}
	}

	rep := FanoutReport{Mode: cfg.Mode, Readers: cfg.Readers, Updates: cfg.Updates, Missed: missed}
	rep.Wall = w.Now()
	ns := w.NetStats()
	rep.Packets = ns.Frames
	rep.NetBytes = ns.WireBytes
	rep.PacketsPerU = stats.Ratio(ns.Frames, uint64(cfg.Updates))
	for _, p := range w.HostMachine(0).Procs() {
		rep.WriterCPU += p.User() + p.Sys()
	}
	return rep, nil
}
