package protocols

import (
	"strings"
	"testing"
)

// TestFinalProtocolWireSignature pins the final protocol's on-wire
// behaviour: after the two startup demand fetches, every increment is
// exactly one short DATA broadcast — "Only one packet was ever sent per
// increment: the PURGE packet from the host with the writeable page."
func TestFinalProtocolWireSignature(t *testing.T) {
	r, err := Run(Config{Protocol: P5Final, Target: 8, Seed: 1, TraceLimit: 64})
	if err != nil {
		t.Fatal(err)
	}
	if r.DNF {
		t.Fatal("did not finish")
	}
	lines := strings.Split(strings.TrimSpace(r.Trace), "\n")
	var kinds []string
	for _, l := range lines {
		switch {
		case strings.Contains(l, "MALFORMED"):
			t.Fatalf("malformed frame on the wire: %s", l)
		case strings.Contains(l, "REQ"):
			kinds = append(kinds, "REQ")
		case strings.Contains(l, "RESTREQ"), strings.Contains(l, "RESTDATA"):
			t.Fatalf("rest fetch in a short-only protocol: %s", l)
		case strings.Contains(l, "DATA"):
			kinds = append(kinds, "DATA")
			if !strings.Contains(l, "short") {
				t.Errorf("full-page packet in the final protocol: %s", l)
			}
		}
	}

	// Startup: each side demand-fetches the peer's page once (2 REQ + 2
	// DATA in some interleaving), then 8 increments = 8 purge DATA
	// broadcasts, minus the two increments whose values travelled with
	// the startup replies.
	reqs, datas := 0, 0
	for _, k := range kinds {
		if k == "REQ" {
			reqs++
		} else {
			datas++
		}
	}
	if reqs != 2 {
		t.Errorf("requests on the wire = %d, want exactly the 2 startup fetches\n%s", reqs, r.Trace)
	}
	// One DATA per increment plus the two startup replies.
	if datas != int(r.Additions)+2 {
		t.Errorf("data broadcasts = %d, want %d (one per increment + 2 startup)\n%s",
			datas, r.Additions+2, r.Trace)
	}
	// After startup, the wire alternates pure purge broadcasts.
	tail := kinds[4:]
	for i, k := range tail {
		if k != "DATA" {
			t.Errorf("steady-state packet %d is %s, want DATA\n%s", i, k, r.Trace)
		}
	}
}

// TestFullPageProtocolWireSignature pins protocol 1's pattern: each
// addition is a request plus one full 8 KiB transfer.
func TestFullPageProtocolWireSignature(t *testing.T) {
	r, err := Run(Config{Protocol: P1FullPage, Target: 8, Seed: 1, TraceLimit: 64})
	if err != nil {
		t.Fatal(err)
	}
	full := strings.Count(r.Trace, " full")
	if full < int(r.Additions)-2 {
		t.Errorf("full-page transfers = %d, want ~%d (one per addition)\n%s", full, r.Additions, r.Trace)
	}
	// Attach-time map-in legitimately fetches the 32-byte subset
	// (Figure-1 map-in rule); steady state must be all full-page.
	lines := strings.Split(strings.TrimSpace(r.Trace), "\n")
	if len(lines) > 6 {
		for _, l := range lines[6:] {
			if strings.Contains(l, "short") {
				t.Errorf("short packet in full-page steady state: %s", l)
			}
		}
	}
}
