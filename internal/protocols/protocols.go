// Package protocols implements the paper's Section-4 protocol study: the
// cooperative "count to 1024" synchronization microbenchmark run under
// each of the user protocols the paper measures (Figures 4-9), plus the
// two local baselines the text reports. Each run returns a Report with
// the same rows as the paper's figures: wall-clock time, user time,
// system time, network load, context switches per addition, space,
// average fault latency and the losses/wins ratio.
package protocols

import (
	"fmt"
	"time"

	"mether/internal/core"
	"mether/internal/ethernet"
	"mether/internal/host"
)

// Protocol selects which user protocol drives the counter.
type Protocol int

const (
	// BaselineSingle is one process counting alone (paper: ~50 ms).
	BaselineSingle Protocol = iota + 1
	// BaselineLocalPair is two processes sharing a local page on one
	// host (paper: 81 s wall, 37 s CPU — quantum thrashing).
	BaselineLocalPair
	// P1FullPage: both processes increment the first word of one shared
	// writable full page; every fault moves 8 KiB (Figure 4).
	P1FullPage
	// P2ShortPage: the same through the short view; faults move 32 bytes
	// (Figure 5).
	P2ShortPage
	// P3DisjointRO: disjoint pages, write capability stationary, readers
	// spin on a read-only copy waiting for snoopy refresh — which their
	// own spinning starves. The degenerate protocol of Figure 6.
	P3DisjointRO
	// P3Hysteresis: P3 with a purge only every HysteresisN losses
	// (Figure 7).
	P3Hysteresis
	// P4DataDriven: one page; writers demand-fetch the consistent short
	// view, waiters sample the data-driven view — which is resident
	// whenever the consistent copy is local, so the process spins
	// (Figure 8).
	P4DataDriven
	// P5Final: disjoint pages; each process writes its own stationary
	// page and blocks data-driven on the peer's. One packet per
	// increment (Figure 9).
	P5Final
)

// String returns the protocol mnemonic used in reports.
func (p Protocol) String() string {
	switch p {
	case BaselineSingle:
		return "baseline-single"
	case BaselineLocalPair:
		return "baseline-local-pair"
	case P1FullPage:
		return "P1-full-page"
	case P2ShortPage:
		return "P2-short-page"
	case P3DisjointRO:
		return "P3-disjoint-ro"
	case P3Hysteresis:
		return "P3-hysteresis"
	case P4DataDriven:
		return "P4-data-driven"
	case P5Final:
		return "P5-final"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Config parameterizes one counter run.
type Config struct {
	Protocol Protocol
	// Target is the value counted to (paper: 1024).
	Target uint32
	// HysteresisN is the purge period for P3Hysteresis (losses between
	// purges; 1 makes it equivalent to P3DisjointRO).
	HysteresisN int
	// SleepHysteresis, when nonzero, replaces the purge-based hysteresis
	// with a fixed delay after each loss — the paper's first (rejected)
	// fix ("it was difficult to get consistent timing delays").
	SleepHysteresis time.Duration
	// SpinBeforeBlock is how many losses P5 tolerates on the resident
	// copy before purging and blocking data-driven (default 2).
	SpinBeforeBlock int
	// Cap bounds the simulated run; a run that does not finish reports
	// DNF like the paper's "Never finished" row (default 600 s).
	Cap time.Duration
	// CheckCost and IncCost are the application's per-check and
	// per-increment CPU costs (default 50 µs each, the paper's measured
	// per-iteration cost).
	CheckCost time.Duration
	IncCost   time.Duration
	Seed      int64

	// HostParams, NetParams and Core override the default cost models
	// when non-zero (calibration and ablation sweeps).
	HostParams host.Params
	NetParams  ethernet.Params
	Core       core.Config

	// Trunks splits the two hosts across bridged Ethernet trunks (0/1 =
	// the classic single bus; 2 puts the counting peers on opposite
	// trunks so every packet pays the bridge's store-and-forward hop).
	// Topology parameterizes the bridges.
	Trunks   int
	Topology ethernet.TopologyConfig

	// Medium selects the interconnect backend (mether.MediumEthernet
	// when empty, or mether.MediumFabric for the RDMA-like
	// point-to-point medium, where every broadcast is a sender-paid
	// fan-out). Incompatible with Trunks > 1.
	Medium string

	// TraceLimit, when positive, records the first N datagrams of the
	// run with the protocol analyzer; the rendered trace is returned in
	// Report.Trace.
	TraceLimit int
}

func (c Config) withDefaults() Config {
	if c.Target == 0 {
		c.Target = 1024
	}
	if c.HysteresisN == 0 {
		c.HysteresisN = 100
	}
	if c.SpinBeforeBlock == 0 {
		c.SpinBeforeBlock = 2
	}
	if c.Cap == 0 {
		c.Cap = 600 * time.Second
	}
	if c.CheckCost == 0 {
		c.CheckCost = 50 * time.Microsecond
	}
	if c.IncCost == 0 {
		c.IncCost = 50 * time.Microsecond
	}
	return c
}

// Report carries the measured figure rows for one run.
type Report struct {
	Protocol  Protocol
	Target    uint32
	Additions uint32 // counter value reached (== Target unless DNF)
	DNF       bool   // did not finish within Cap (paper: "Never finished")

	Wall time.Duration
	// User and Sys are host 0's client-process times; SysServer is host
	// 0's Mether server CPU, which the figures' "Sys Time" row includes
	// (in real Mether most of that work ran in kernel context charged to
	// the client).
	User      time.Duration
	Sys       time.Duration
	SysServer time.Duration

	NetBytes       uint64
	NetBytesPerSec float64
	Packets        uint64
	CtxSwitches    uint64
	CtxPerAdd      float64
	SpacePages     int
	SpaceBytes     int
	AvgLatency     time.Duration
	// LatP50/P90/P99/P999/Max and LatCount describe the full
	// fault-latency distribution (the sweep engine aggregates these,
	// not just the mean); the tail quantiles are what the redundancy
	// axis is measured by.
	LatP50   time.Duration
	LatP90   time.Duration
	LatP99   time.Duration
	LatP999  time.Duration
	LatMax   time.Duration
	LatCount uint64
	Losses   uint64
	Wins     uint64
	LossWin  float64

	// Extras for analysis.
	Retries       uint64
	DataFallbacks uint64
	RingDrops     uint64
	// RingHighWater is the deepest any NIC receive ring got (max over
	// hosts, never summed): the measured fan-in bound that justifies a
	// configured ring capacity.
	RingHighWater int
	// MemBytes is the world's structural memory footprint (see
	// World.MemFootprint): deterministic, unlike runtime heap stats.
	MemBytes uint64
	// TxSuppressed counts sends swallowed because the transmitting NIC
	// was down. Down-NIC scenarios used to lose these without a trace —
	// the driver's send counters advanced while the wire counters did
	// not, with nothing explaining the gap.
	TxSuppressed uint64
	// Topology extras, zero by construction on a single trunk: the
	// bridges' forwarded/occupancy/loss counters and CrossTrunkStale —
	// broadcasts whose bridge-queue reordering delivered them after a
	// newer copy had already landed.
	BridgeForwarded uint64
	BridgePortDrops uint64
	BridgeMaxQueued int
	CrossTrunkStale uint64
	// StaleDrops totals every generation-regressed broadcast, bridged
	// or not (single-trunk host-queue races produce them too);
	// CrossTrunkStale is its cross-trunk subset.
	StaleDrops uint64
	// Redundant-fetch counters (zero at the classic k=1): replica
	// answers sent on behalf of owners, replica answers suppressed
	// because the winner's reply landed first, and late/duplicate
	// grants dropped by explicit generation comparison.
	RedundantServes     uint64
	RedundantSuppressed uint64
	LateDrops           uint64
	// TrunkUtil and TrunkFrames are each trunk's own wire utilization
	// and frame count in trunk order (nil on a single trunk): the summed
	// NetBytes cannot show which trunk saturates.
	TrunkUtil   []float64
	TrunkFrames []uint64
	// Events is the number of simulation-kernel events dispatched for the
	// run — the engine-throughput denominator (deterministic: a pure
	// function of config and seed).
	Events uint64
	// Fabric counters, zero by construction on Ethernet: the unicast
	// copies transmitted on behalf of broadcasts (the sender-paid
	// fan-out cost a shared bus never charges), frames dropped at full
	// per-link transmit queues, and the peak per-link queue occupancy.
	FanoutFrames  uint64
	LinkOverflows uint64
	LinkMaxQueued int

	// Trace holds the rendered packet trace when Config.TraceLimit > 0.
	Trace string
}

// SysTotal returns the figure's "Sys Time" row: client sys plus the
// server work done on the client's behalf.
func (r Report) SysTotal() time.Duration { return r.Sys + r.SysServer }
