package protocols

import (
	"fmt"
	"time"

	"mether"
	"mether/internal/stats"
	"mether/internal/trace"
)

// Run executes one counter experiment and returns its report.
func Run(cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	switch cfg.Protocol {
	case BaselineSingle:
		return runBaselineSingle(cfg)
	case BaselineLocalPair:
		return runCounter(cfg, true)
	case P1FullPage, P2ShortPage, P3DisjointRO, P3Hysteresis, P4DataDriven, P5Final:
		return runCounter(cfg, false)
	default:
		return Report{}, fmt.Errorf("protocols: unknown protocol %d", cfg.Protocol)
	}
}

// worldConfig assembles the mether.Config for a run.
func worldConfig(cfg Config) mether.Config {
	return mether.Config{
		Hosts:      2,
		Pages:      8,
		Seed:       cfg.Seed,
		HostParams: cfg.HostParams,
		NetParams:  cfg.NetParams,
		Core:       cfg.Core,
		Trunks:     cfg.Trunks,
		Medium: mether.MediumConfig{
			Kind:     cfg.Medium,
			Ethernet: cfg.NetParams,
			Fabric:   fabricFrom(cfg.Medium, cfg.NetParams),
			Topology: cfg.Topology,
		},
	}
}

// fabricFrom maps the scenario's shared network axes (loss rate, ring
// capacity) onto the fabric model when the fabric medium is selected, so
// a medium sweep varies the wire, not the loss or buffering axes riding
// along. Zero (deferring to world defaults) otherwise.
func fabricFrom(kind string, np mether.EthernetParams) mether.FabricParams {
	if kind != mether.MediumFabric {
		return mether.FabricParams{}
	}
	fp := mether.DefaultFabricParams()
	fp.LossRate = np.LossRate
	if np.RxRing > 0 {
		fp.RxRing = np.RxRing
	}
	return fp
}

// clientState tracks one client's protocol-level counters.
type clientState struct {
	wins     uint64
	losses   uint64
	done     bool
	finishAt time.Duration
	err      error
}

// runBaselineSingle counts alone on one host: pure increment cost.
func runBaselineSingle(cfg Config) (Report, error) {
	w := mether.NewWorld(worldConfig(cfg))
	defer w.Shutdown()
	tap := maybeTap(w, cfg)
	seg, err := w.CreateSegment("counter", 1, 0)
	if err != nil {
		return Report{}, err
	}
	capRW := seg.CapRW()
	var st clientState
	w.Spawn(0, "solo", func(env *mether.Env) {
		m, err := env.Attach(capRW, mether.RW)
		if err != nil {
			st.err = err
			return
		}
		a := m.Addr(0, 0).Short()
		for v := uint32(0); v < cfg.Target; v++ {
			env.Compute(cfg.IncCost)
			if err := m.Store32(a, v+1); err != nil {
				st.err = err
				return
			}
			st.wins++
		}
		st.done = true
		st.finishAt = env.Now()
	})
	w.RunUntil(cfg.Cap)
	if st.err != nil {
		return Report{}, st.err
	}
	r := harvest(cfg, w, []*clientState{&st}, 1)
	if tap != nil {
		r.Trace = tap.String()
	}
	return r, nil
}

// maybeTap attaches the protocol analyzer when tracing is requested.
func maybeTap(w *mether.World, cfg Config) *trace.Log {
	if cfg.TraceLimit <= 0 {
		return nil
	}
	return w.AttachTap(cfg.TraceLimit)
}

// runCounter executes the two-process protocols. When local is true both
// processes share host 0 (the local-pair baseline); otherwise they run on
// hosts 0 and 1 with the configured protocol.
func runCounter(cfg Config, local bool) (Report, error) {
	w := mether.NewWorld(worldConfig(cfg))
	defer w.Shutdown()
	tap := maybeTap(w, cfg)

	cap, spacePages, err := createCounterSegments(w, cfg)
	if err != nil {
		return Report{}, err
	}

	states := []*clientState{{}, {}}
	for i := 0; i < 2; i++ {
		i := i
		hostIdx := i
		if local {
			hostIdx = 0
		}
		w.Spawn(hostIdx, fmt.Sprintf("client%d", i), func(env *mether.Env) {
			runClient(env, cfg, cap, uint32(i), states[i])
		})
	}
	w.RunUntil(cfg.Cap)
	r := harvest(cfg, w, states, spacePages)
	if tap != nil {
		r.Trace = tap.String()
	}
	return r, nil
}

// createCounterSegments lays out the pages each protocol needs and mints
// the capability the clients attach with.
func createCounterSegments(w *mether.World, cfg Config) (mether.Capability, int, error) {
	switch cfg.Protocol {
	case P3DisjointRO, P3Hysteresis, P5Final:
		// Disjoint one-way pages, one owned by each process's host.
		seg, err := w.CreateSegmentOwners("counter", []int{0, 1})
		if err != nil {
			return mether.Capability{}, 0, err
		}
		return seg.CapRW(), 2, nil
	default:
		seg, err := w.CreateSegment("counter", 1, 0)
		if err != nil {
			return mether.Capability{}, 0, err
		}
		return seg.CapRW(), 1, nil
	}
}

// runClient dispatches to the per-protocol client loop.
func runClient(env *mether.Env, cfg Config, cap mether.Capability, id uint32, st *clientState) {
	seg, err := env.Attach(cap, mether.RW)
	if err != nil {
		st.err = err
		return
	}
	switch cfg.Protocol {
	case BaselineLocalPair, P1FullPage:
		err = sharedPageLoop(env, seg, cfg, id, st, false)
	case P2ShortPage:
		err = sharedPageLoop(env, seg, cfg, id, st, true)
	case P3DisjointRO:
		// The degenerate base protocol: spin on the read-only copy with
		// no active update at all, trusting snoopy refresh — which the
		// spin itself starves. (HysteresisN = 1..N gives the flood and
		// hysteresis variants via P3Hysteresis.)
		c := cfg
		c.HysteresisN = 1 << 30
		err = disjointDemandLoop(env, seg, c, cap, id, st)
	case P3Hysteresis:
		err = disjointDemandLoop(env, seg, cfg, cap, id, st)
	case P4DataDriven:
		err = onePageDataLoop(env, seg, cfg, cap, id, st)
	case P5Final:
		err = disjointDataLoop(env, seg, cfg, cap, id, st)
	default:
		err = fmt.Errorf("protocols: no client loop for %v", cfg.Protocol)
	}
	if err != nil {
		st.err = err
		return
	}
	st.done = true
	st.finishAt = env.Now()
}

// sharedPageLoop implements protocols 1 and 2 (and the local pair): both
// processes increment one word on a single shared consistent page.
func sharedPageLoop(env *mether.Env, m *mether.Mapping, cfg Config, id uint32, st *clientState, short bool) error {
	a := m.Addr(0, 0)
	if short {
		a = a.Short()
	}
	for {
		env.Compute(cfg.CheckCost)
		v, err := m.Load32(a)
		if err != nil {
			return err
		}
		if v >= cfg.Target {
			return nil
		}
		if v%2 == id {
			env.Compute(cfg.IncCost)
			if err := m.Store32(a, v+1); err != nil {
				return err
			}
			st.wins++
			if v+1 >= cfg.Target {
				return nil
			}
		} else {
			st.losses++
		}
	}
}

// disjointDemandLoop implements protocols 3 (HysteresisN == 1) and 3h:
// each process writes its own page and spins on a read-only copy of the
// peer's, purging it every HysteresisN losses to force a fresh fetch.
func disjointDemandLoop(env *mether.Env, own *mether.Mapping, cfg Config, cap mether.Capability, id uint32, st *clientState) error {
	peerMap, ownAddr, peerAddr, err := disjointViews(env, cap, own, id)
	if err != nil {
		return err
	}
	sincePurge := 0
	myVal := uint32(0)
	for {
		env.Compute(cfg.CheckCost)
		v, err := peerMap.Load32(peerAddr)
		if err != nil {
			return err
		}
		switch {
		case v >= cfg.Target || myVal >= cfg.Target:
			return nil
		case v%2 == id && v+1 > myVal:
			env.Compute(cfg.IncCost)
			myVal = v + 1
			if err := own.Store32(ownAddr, myVal); err != nil {
				return err
			}
			st.wins++
			if err := own.Purge(ownAddr); err != nil {
				return err
			}
			if myVal >= cfg.Target {
				return nil
			}
			sincePurge = 0
		default:
			st.losses++
			sincePurge++
			if cfg.SleepHysteresis > 0 {
				// Ablation: the paper's first fix — a fixed delay.
				env.SleepFor(cfg.SleepHysteresis)
			} else if sincePurge >= cfg.HysteresisN {
				sincePurge = 0
				if err := peerMap.Purge(peerAddr); err != nil {
					return err
				}
			}
		}
	}
}

// onePageDataLoop implements protocol 4: one page, writers demand-fetch
// the consistent short view, waiters sample the data-driven view. The
// data view is resident whenever this host holds the consistent copy, so
// sampling degenerates to a spin — the paper's observed pathology.
func onePageDataLoop(env *mether.Env, rw *mether.Mapping, cfg Config, cap mether.Capability, id uint32, st *clientState) error {
	ro, err := env.Attach(cap.ReadOnly(), mether.RO)
	if err != nil {
		return err
	}
	aW := rw.Addr(0, 0).Short()
	aD := ro.Addr(0, 0).Short().DataDriven()
	for {
		env.Compute(cfg.CheckCost)
		v, err := ro.Load32(aD)
		if err != nil {
			return err
		}
		if v >= cfg.Target {
			return nil
		}
		if v%2 == id {
			env.Compute(cfg.IncCost)
			if err := rw.Store32(aW, v+1); err != nil {
				return err
			}
			st.wins++
			if err := rw.Purge(aW); err != nil {
				return err
			}
			if v+1 >= cfg.Target {
				return nil
			}
		} else {
			st.losses++
		}
	}
}

// disjointDataLoop implements the final protocol: disjoint stationary
// pages; after a couple of losses on the resident copy the waiter purges
// it and blocks on the data-driven view until the peer's purge broadcast
// transits.
func disjointDataLoop(env *mether.Env, own *mether.Mapping, cfg Config, cap mether.Capability, id uint32, st *clientState) error {
	peerMap, ownAddr, peerAddr, err := disjointViews(env, cap, own, id)
	if err != nil {
		return err
	}
	peerData := peerAddr.DataDriven()
	spins := 0
	myVal := uint32(0)
	for {
		env.Compute(cfg.CheckCost)
		v, err := peerMap.Load32(peerAddr)
		if err != nil {
			return err
		}
		switch {
		case v >= cfg.Target || myVal >= cfg.Target:
			return nil
		case v%2 == id && v+1 > myVal:
			env.Compute(cfg.IncCost)
			myVal = v + 1
			if err := own.Store32(ownAddr, myVal); err != nil {
				return err
			}
			st.wins++
			if err := own.Purge(ownAddr); err != nil {
				return err
			}
			if myVal >= cfg.Target {
				return nil
			}
			spins = 0
		default:
			st.losses++
			spins++
			if spins >= cfg.SpinBeforeBlock {
				spins = 0
				if err := peerMap.Purge(peerAddr); err != nil {
					return err
				}
				// Touch the data-driven view: sleeps until a transit.
				if _, err := peerMap.Load32(peerData); err != nil {
					return err
				}
			}
		}
	}
}

// disjointViews attaches the read-only peer view and computes the short
// addresses for the disjoint-page protocols (own page = id, peer = 1-id).
func disjointViews(env *mether.Env, cap mether.Capability, own *mether.Mapping, id uint32) (*mether.Mapping, mether.Addr, mether.Addr, error) {
	peerMap, err := env.Attach(cap.ReadOnly(), mether.RO)
	if err != nil {
		return nil, 0, 0, err
	}
	ownAddr := own.Addr(int(id), 0).Short()
	peerAddr := peerMap.Addr(1-int(id), 0).Short()
	return peerMap, ownAddr, peerAddr, nil
}

// harvest extracts the figure rows from a finished (or capped) world.
func harvest(cfg Config, w *mether.World, states []*clientState, spacePages int) Report {
	r := Report{
		Protocol:   cfg.Protocol,
		Target:     cfg.Target,
		SpacePages: spacePages,
		SpaceBytes: spacePages * mether.PageSize,
	}

	finished := true
	var wallEnd time.Duration
	for _, st := range states {
		r.Losses += st.losses
		r.Wins += st.wins
		if !st.done {
			finished = false
		}
		if st.finishAt > wallEnd {
			wallEnd = st.finishAt
		}
	}
	r.DNF = !finished
	if r.DNF {
		wallEnd = w.Now()
	}
	r.Wall = wallEnd
	r.Additions = uint32(r.Wins)
	r.LossWin = stats.Ratio(r.Losses, r.Wins)

	// Host 0's client and server times (the runs are symmetric).
	for _, p := range w.HostMachine(0).Procs() {
		switch p.Name() {
		case "metherd":
			r.SysServer += p.Sys() + p.User()
		default:
			r.User += p.User()
			r.Sys += p.Sys()
		}
	}

	ns := w.NetStats()
	r.NetBytes = ns.WireBytes
	r.Packets = ns.Frames
	r.RingDrops = ns.RingDrops
	r.RingHighWater = ns.RingHighWater
	r.MemBytes = w.MemFootprint()
	r.TxSuppressed = ns.TxSuppressed
	r.FanoutFrames = ns.FanoutFrames
	r.LinkOverflows = ns.LinkOverflows
	r.LinkMaxQueued = ns.LinkMaxQueued
	r.Events = w.EventsDispatched()
	r.TrunkUtil, r.TrunkFrames = w.TrunkUtilization(r.Wall)
	if r.Wall > 0 {
		r.NetBytesPerSec = stats.BytesPerSec(r.NetBytes, r.Wall)
	}
	bs := w.BridgeStats()
	r.BridgeForwarded = bs.Forwarded
	r.BridgePortDrops = bs.PortDrops
	r.BridgeMaxQueued = bs.MaxQueued
	for i := 0; i < w.NumHosts(); i++ {
		r.CtxSwitches += w.ContextSwitches(i)
		m := w.Driver(i).Metrics()
		r.Retries += m.Retries
		r.DataFallbacks += m.DataFallbacks
		r.StaleDrops += m.StaleDrops
		r.CrossTrunkStale += m.CrossTrunkStale
		r.RedundantServes += m.RedundantServes
		r.RedundantSuppressed += m.RedundantSuppressed
		r.LateDrops += m.LateGrantDrops
	}
	if r.Additions > 0 {
		r.CtxPerAdd = float64(r.CtxSwitches) / float64(r.Additions)
	}

	var lat stats.Histogram
	for i := 0; i < w.NumHosts(); i++ {
		lat.Merge(&w.Driver(i).Metrics().FaultLatency)
	}
	r.AvgLatency = lat.Mean()
	r.LatP50 = lat.Quantile(0.5)
	r.LatP90 = lat.Quantile(0.9)
	r.LatP99 = lat.Quantile(0.99)
	r.LatP999 = lat.Quantile(0.999)
	r.LatMax = lat.Max()
	r.LatCount = lat.Count()
	return r
}
