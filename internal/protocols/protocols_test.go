package protocols

import (
	"testing"
	"time"

	"mether/internal/ethernet"
)

// runQuick executes a protocol at reduced target for test speed.
func runQuick(t *testing.T, p Protocol, target uint32) Report {
	t.Helper()
	r, err := Run(Config{Protocol: p, Target: target, Cap: 600 * time.Second, Seed: 1})
	if err != nil {
		t.Fatalf("%v: %v", p, err)
	}
	return r
}

func TestAllProtocolsCompleteAndCount(t *testing.T) {
	for _, p := range []Protocol{
		BaselineSingle, BaselineLocalPair, P1FullPage, P2ShortPage,
		P3DisjointRO, P3Hysteresis, P4DataDriven, P5Final,
	} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			r := runQuick(t, p, 64)
			if r.DNF {
				t.Fatalf("%v did not finish: %+v", p, r)
			}
			if r.Additions != 64 {
				t.Errorf("additions = %d, want 64", r.Additions)
			}
			if r.Wall <= 0 {
				t.Error("wall time not positive")
			}
		})
	}
}

func TestBaselineSingleIsMicroseconds(t *testing.T) {
	// Paper: 1024 increments alone run in ~50 ms (~50 µs each).
	r := runQuick(t, BaselineSingle, 1024)
	perAdd := r.Wall / time.Duration(r.Additions)
	if perAdd < 30*time.Microsecond || perAdd > 200*time.Microsecond {
		t.Errorf("per-addition cost = %v, want ~50µs", perAdd)
	}
	if r.NetBytes != 0 {
		t.Error("single process used the network")
	}
}

func TestLocalPairThrashesQuanta(t *testing.T) {
	// Paper: two processes on one host take ~79 ms per addition (a
	// quantum plus a switch), with CPU time ≈ wall time.
	r := runQuick(t, BaselineLocalPair, 64)
	perAdd := r.Wall / time.Duration(r.Additions)
	if perAdd < 50*time.Millisecond || perAdd > 110*time.Millisecond {
		t.Errorf("per-addition = %v, want ~73ms (quantum+switch)", perAdd)
	}
	if r.NetBytes != 0 {
		t.Error("local pair used the network")
	}
	busy := r.User + r.Sys
	if busy < r.Wall*8/10 {
		t.Errorf("cpu %v should be close to wall %v (pure spinning)", busy, r.Wall)
	}
}

// TestFigureShapes asserts the paper's cross-protocol ordering claims —
// the "who wins, by roughly what factor" content of Figures 4-9.
func TestFigureShapes(t *testing.T) {
	const target = 256
	p1 := runQuick(t, P1FullPage, target)
	p2 := runQuick(t, P2ShortPage, target)
	p3 := runQuick(t, P3DisjointRO, target)
	p3h := runQuick(t, P3Hysteresis, target)
	p4 := runQuick(t, P4DataDriven, target)
	p5 := runQuick(t, P5Final, target)
	local := runQuick(t, BaselineLocalPair, target)

	// Figure 4 vs 5: short pages slash network load by an order of
	// magnitude or more and cut latency roughly in half.
	if p1.NetBytes < 10*p2.NetBytes {
		t.Errorf("net bytes: P1 %d should be >= 10x P2 %d", p1.NetBytes, p2.NetBytes)
	}
	if p1.AvgLatency < p2.AvgLatency*3/2 {
		t.Errorf("latency: P1 %v should clearly exceed P2 %v", p1.AvgLatency, p2.AvgLatency)
	}
	if p1.Wall <= p2.Wall {
		t.Errorf("wall: P1 %v should exceed P2 %v", p1.Wall, p2.Wall)
	}

	// Figure 6: the spin protocol is degenerate — loss/win far beyond
	// any finishing protocol's.
	if p3.LossWin < 2*p1.LossWin {
		t.Errorf("P3 loss/win %f should dwarf P1's %f", p3.LossWin, p1.LossWin)
	}
	if p3.User < 2*p3h.User {
		t.Errorf("P3 user %v should dwarf P3h's %v (spinning)", p3.User, p3h.User)
	}

	// Figure 7: hysteresis restores progress with sys >> user.
	if p3h.LossWin > 200 {
		t.Errorf("P3h loss/win = %f, want ~100", p3h.LossWin)
	}
	if p3h.SysTotal() < p3h.User {
		t.Errorf("P3h should be system-time dominated: sys %v vs user %v", p3h.SysTotal(), p3h.User)
	}

	// Figure 8: protocol 4 has the worst context-switch rate and spins
	// far more than protocol 2.
	for _, o := range []Report{p1, p2, p3h, p5} {
		if p4.CtxPerAdd <= o.CtxPerAdd {
			t.Errorf("P4 ctx/add %f should exceed %v's %f", p4.CtxPerAdd, o.Protocol, o.CtxPerAdd)
		}
	}
	if p4.LossWin < 2*p2.LossWin {
		t.Errorf("P4 loss/win %f should clearly exceed P2's %f", p4.LossWin, p2.LossWin)
	}

	// Figure 9: the final protocol wins every axis among the distributed
	// protocols: fewest losses, least user time, lowest latency, least
	// network traffic per addition, and one data packet per increment.
	if p5.LossWin > 10 {
		t.Errorf("P5 loss/win = %f, want single digits", p5.LossWin)
	}
	for _, o := range []Report{p1, p2, p3, p3h, p4} {
		if p5.User >= o.User {
			t.Errorf("P5 user %v should be least (vs %v's %v)", p5.User, o.Protocol, o.User)
		}
		if p5.LossWin >= o.LossWin {
			t.Errorf("P5 loss/win %f should be least (vs %v's %f)", p5.LossWin, o.Protocol, o.LossWin)
		}
	}
	// One broadcast per increment, no requests in steady state: packets
	// scale ~1 per addition (plus constant startup).
	maxPkts := uint64(target) + 30
	if p5.Packets > maxPkts {
		t.Errorf("P5 packets = %d, want <= ~%d (one per increment)", p5.Packets, maxPkts)
	}

	// The paper's motivating crossover: the final protocol over the
	// network beats two processes sharing memory on one machine.
	if p5.Wall >= local.Wall {
		t.Errorf("P5 over the network (%v) should beat the local pair (%v)", p5.Wall, local.Wall)
	}

	// Space: disjoint-page protocols pay two pages, shared-page ones one.
	if p5.SpacePages != 2 || p3.SpacePages != 2 || p3h.SpacePages != 2 {
		t.Error("disjoint protocols should use 2 pages")
	}
	if p1.SpacePages != 1 || p2.SpacePages != 1 || p4.SpacePages != 1 {
		t.Error("shared-page protocols should use 1 page")
	}
}

func TestP3DegeneratesToLivelockUnderLoss(t *testing.T) {
	// With realistic datagram loss the spin protocol's passive update
	// has no recovery path: one lost broadcast stalls it forever — the
	// paper's "never finished".
	np := ethernet.DefaultParams()
	np.LossRate = 0.02
	r, err := Run(Config{
		Protocol:  P3DisjointRO,
		Target:    256,
		Cap:       60 * time.Second,
		Seed:      3,
		NetParams: np,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.DNF {
		t.Fatalf("P3 finished under loss: %+v", r)
	}
	if r.LossWin < 1000 {
		t.Errorf("degenerate loss/win = %f, want >= 1000", r.LossWin)
	}
}

func TestHysteresisSurvivesLoss(t *testing.T) {
	// The purge-based active update is the recovery mechanism: the same
	// loss rate that livelocks P3 leaves P3h finishing fine.
	np := ethernet.DefaultParams()
	np.LossRate = 0.02
	r, err := Run(Config{
		Protocol:    P3Hysteresis,
		Target:      256,
		HysteresisN: 100,
		Cap:         120 * time.Second,
		Seed:        3,
		NetParams:   np,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.DNF {
		t.Fatalf("P3h did not finish under loss: %+v", r)
	}
}

func TestHysteresisSweepTradeoff(t *testing.T) {
	// Larger purge periods mean more spinning per win (ratio ~ N) and
	// eventually the degenerate regime; smaller ones mean more packets.
	var prev Report
	for i, n := range []int{10, 100, 1000} {
		r, err := Run(Config{Protocol: P3Hysteresis, Target: 128, HysteresisN: n, Cap: 600 * time.Second, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if r.DNF {
			t.Fatalf("N=%d did not finish", n)
		}
		if i > 0 {
			if r.LossWin <= prev.LossWin {
				t.Errorf("loss/win should grow with N: N=%d gives %f <= %f", n, r.LossWin, prev.LossWin)
			}
			if r.Packets >= prev.Packets {
				t.Errorf("packets should shrink with N: N=%d gives %d >= %d", n, r.Packets, prev.Packets)
			}
		}
		prev = r
	}
}

func TestSleepHysteresisAblation(t *testing.T) {
	// The paper's first fix — a fixed delay after each loss — also
	// restores progress (they rejected it for interface reasons, not
	// because it didn't work).
	r, err := Run(Config{
		Protocol:        P3Hysteresis,
		Target:          128,
		SleepHysteresis: 5 * time.Millisecond,
		Cap:             600 * time.Second,
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.DNF {
		t.Fatal("sleep hysteresis did not finish")
	}
	if r.LossWin > 50 {
		t.Errorf("sleep hysteresis loss/win = %f; sleeping should slash losses", r.LossWin)
	}
}

func TestRunsAreDeterministic(t *testing.T) {
	a := runQuick(t, P5Final, 128)
	b := runQuick(t, P5Final, 128)
	if a.Wall != b.Wall || a.Losses != b.Losses || a.NetBytes != b.NetBytes ||
		a.CtxSwitches != b.CtxSwitches || a.AvgLatency != b.AvgLatency {
		t.Errorf("identical configs diverged:\n%+v\n%+v", a, b)
	}
}

func TestUnknownProtocolErrors(t *testing.T) {
	if _, err := Run(Config{Protocol: Protocol(99)}); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestReportRates(t *testing.T) {
	r := runQuick(t, P2ShortPage, 64)
	if r.NetBytesPerSec <= 0 {
		t.Error("network rate not computed")
	}
	if r.CtxPerAdd <= 0 {
		t.Error("ctx/add not computed")
	}
	if r.AvgLatency <= 0 {
		t.Error("latency not recorded")
	}
	wantBytes := float64(r.NetBytes) / r.Wall.Seconds()
	if diff := r.NetBytesPerSec - wantBytes; diff > 1 || diff < -1 {
		t.Errorf("rate %f != bytes/wall %f", r.NetBytesPerSec, wantBytes)
	}
}
