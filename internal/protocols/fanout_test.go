package protocols

import (
	"testing"
	"time"
)

func runFanout(t *testing.T, mode FanoutMode, readers int) FanoutReport {
	t.Helper()
	r, err := RunFanout(FanoutConfig{Mode: mode, Readers: readers, Updates: 16, Seed: 1})
	if err != nil {
		t.Fatalf("%v readers=%d: %v", mode, readers, err)
	}
	return r
}

// TestBroadcastFanoutScalesFlat reproduces the broadcast-scaling claim:
// with data-driven readers, one purge serves every copy, so packets per
// update stay ~constant as readers grow, while demand-refetch readers
// cost the writer's host per-reader request traffic.
func TestBroadcastFanoutScalesFlat(t *testing.T) {
	d2 := runFanout(t, FanoutDataDriven, 2)
	d8 := runFanout(t, FanoutDataDriven, 8)
	q2 := runFanout(t, FanoutDemand, 2)
	q8 := runFanout(t, FanoutDemand, 8)

	// Data-driven: packet rate roughly flat in reader count (within 2x;
	// startup fetches add a constant).
	if d8.PacketsPerU > 2*d2.PacketsPerU+2 {
		t.Errorf("data-driven packets/update grew with readers: %f -> %f", d2.PacketsPerU, d8.PacketsPerU)
	}
	// Demand: packet rate clearly grows with readers.
	if q8.PacketsPerU < 2*q2.PacketsPerU {
		t.Errorf("demand packets/update did not scale with readers: %f -> %f", q2.PacketsPerU, q8.PacketsPerU)
	}
	// At 8 readers the broadcast mode moves far fewer packets.
	if d8.Packets*3 > q8.Packets {
		t.Errorf("broadcast fan-out (%d pkts) should be well under demand (%d pkts)", d8.Packets, q8.Packets)
	}
	// Writer CPU: demand mode burns more of the writer host's CPU at 8
	// readers than broadcast mode does (it answers every refetch).
	if d8.WriterCPU >= q8.WriterCPU {
		t.Errorf("writer CPU: broadcast %v should be under demand %v", d8.WriterCPU, q8.WriterCPU)
	}
}

func TestFanoutReadersSeeEveryUpdate(t *testing.T) {
	// With paced updates, data-driven readers should observe every value
	// (missed counts are per-reader aggregated).
	r := runFanout(t, FanoutDataDriven, 4)
	if r.Missed != 0 {
		t.Errorf("readers missed %d updates; broadcast refresh should deliver all", r.Missed)
	}
}

func TestFanoutValidation(t *testing.T) {
	if _, err := RunFanout(FanoutConfig{Mode: FanoutDataDriven, Readers: 0}); err == nil {
		t.Error("zero readers accepted")
	}
	if _, err := RunFanout(FanoutConfig{Mode: FanoutDataDriven, Readers: 2, Updates: 4, Cap: time.Millisecond}); err == nil {
		t.Error("tiny cap should report unfinished readers")
	}
}
