package core
