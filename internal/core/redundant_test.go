package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"mether/internal/ethernet"
	"mether/internal/host"
	"mether/internal/sim"
	"mether/internal/vm"
)

// redundantConfig is fastConfig with the redundant-fetch axis enabled.
func redundantConfig(pages, hosts, k int) Config {
	cfg := fastConfig(pages)
	cfg.NumHosts = hosts
	cfg.Redundancy = k
	return cfg
}

func TestRedundantFetchReplicaAnswersWhenOwnerDown(t *testing.T) {
	// The tentpole scenario: the owner is unreachable, but a replica named
	// as an extra target answers the read fault, so the requester does not
	// have to wait out the owner's recovery (or a retry period).
	c := newTestCluster(t, 3, ethernet.DefaultParams(), redundantConfig(4, 3, 3))
	d0, d1, d2 := c.drivers[0], c.drivers[1], c.drivers[2]
	d0.CreatePage(0)
	addr := NewAddr(0, 0).Short()

	c.spawn(0, "w", func(p *host.Proc) {
		_ = d0.MapIn(p, RW, 0)
		_ = d0.Store(p, RW, addr, 4, 777)
	})
	c.run(t, 100*time.Millisecond)
	// Host 1 primes a resident replica — the copy the redundant fetch will
	// be answered from.
	c.spawn(1, "prime", func(p *host.Proc) {
		_ = d1.MapIn(p, RO, 0)
		_, _ = d1.Load(p, RO, addr, 4)
	})
	c.spawn(2, "prime2", func(p *host.Proc) {
		_ = d2.MapIn(p, RO, 0)
		_, _ = d2.Load(p, RO, addr, 4)
	})
	c.run(t, time.Second)

	// Owner off the wire for 2 s (well past the 50 ms retry window).
	d0.nic.SetDown(true)
	recoverAt := c.k.Now() + 2*time.Second
	c.k.At(recoverAt, "recover", func() { d0.nic.SetDown(false) })

	var got uint64
	var gotAt time.Duration
	c.spawn(2, "r", func(p *host.Proc) {
		_ = d2.Purge(p, RO, addr)
		got, _ = d2.Load(p, RO, addr, 4)
		gotAt = p.Now()
	})
	c.run(t, 10*time.Second)

	if got != 777 {
		t.Fatalf("redundant read = %d, want 777", got)
	}
	if gotAt == 0 || gotAt >= recoverAt {
		t.Errorf("read completed at %v, not before owner recovery at %v: replica did not answer", gotAt, recoverAt)
	}
	if d2.Metrics().RedundantReqs == 0 {
		t.Error("requester sent no redundant request")
	}
	if d1.Metrics().RedundantServes == 0 {
		t.Error("replica recorded no redundant serve")
	}
	c.checkInvariants(t)
}

func TestRedundantLoserSuppressedAndBuffersReleased(t *testing.T) {
	// First-response-wins, loser side: the owner's reply lands at the
	// targeted replica before its queued answer runs, so the answer is
	// suppressed — no duplicate broadcast, no payload buffer held. The
	// replica's server is kept off the CPU by a compute-bound client long
	// enough that both the request and the winning reply are queued when
	// it finally drains its ring (frames before work, so the transit-count
	// snapshot no longer matches).
	c := &testCluster{k: sim.New(42)}
	c.bus = ethernet.NewBus(c.k, ethernet.DefaultParams())
	cfg := redundantConfig(4, 3, 2)
	for i := 0; i < 3; i++ {
		params := fastHostParams()
		if i == 1 {
			// The replica host's quantum must outlast the request→reply
			// window so the hog holds the CPU across it in one slice.
			params.Quantum = time.Second
		}
		h := host.New(c.k, i, fmt.Sprintf("h%d", i), params)
		var d *Driver
		nic := c.bus.Attach(fmt.Sprintf("h%d", i), func() { d.FrameArrived() })
		d = New(h, nic, cfg)
		d.StartServer()
		c.hosts = append(c.hosts, h)
		c.drivers = append(c.drivers, d)
	}
	t.Cleanup(func() { c.k.Shutdown() })

	d0, d1, d2 := c.drivers[0], c.drivers[1], c.drivers[2]
	d0.CreatePage(0)
	addr := NewAddr(0, 0).Short()

	c.spawn(0, "w", func(p *host.Proc) {
		_ = d0.MapIn(p, RW, 0)
		_ = d0.Store(p, RW, addr, 4, 5)
	})
	c.run(t, 100*time.Millisecond)
	c.spawn(1, "prime", func(p *host.Proc) {
		_ = d1.MapIn(p, RO, 0)
		_, _ = d1.Load(p, RO, addr, 4)
	})
	c.run(t, time.Second)

	dataBefore := d1.Metrics().DataSent
	// Hog host 1's CPU so its server cannot run while the fetch resolves.
	c.spawn(1, "hog", func(p *host.Proc) {
		p.UseUser(300 * time.Millisecond)
	})
	var got uint64
	c.spawn(2, "r", func(p *host.Proc) {
		p.SleepFor(10 * time.Millisecond) // let the hog take the CPU first
		_ = d2.MapIn(p, RO, 0)
		_ = d2.Purge(p, RO, addr)
		got, _ = d2.Load(p, RO, addr, 4)
	})
	c.run(t, 5*time.Second)

	if got != 5 {
		t.Fatalf("read = %d, want 5 (owner answer)", got)
	}
	m1 := d1.Metrics()
	if m1.RedundantSuppressed == 0 {
		t.Error("replica did not suppress its overtaken answer")
	}
	if m1.RedundantServes != 0 {
		t.Errorf("replica sent %d redundant serve(s); the owner's reply should have won", m1.RedundantServes)
	}
	if m1.DataSent != dataBefore {
		t.Errorf("replica put %d duplicate data broadcast(s) on the wire", m1.DataSent-dataBefore)
	}
	// The leak check: every pooled wire buffer acquired across the run —
	// including the suppressed answer's request frame — must be back in
	// the pool once the cluster is quiescent.
	alloc, free := c.bus.PoolStats()
	if alloc != free {
		t.Errorf("wire-buffer leak: %d allocated, %d free after quiescence", alloc, free)
	}
	c.checkInvariants(t)
}

func TestRedundantFetchPoolBalancedAtK3(t *testing.T) {
	// k=3 exercises the multi-target path (request payload carries two
	// extra targets, several replicas may answer): whatever mix of served,
	// suppressed and stale-dropped replies the run produces, the wire
	// pool must balance at quiescence.
	c := newTestCluster(t, 4, ethernet.DefaultParams(), redundantConfig(4, 4, 3))
	d0 := c.drivers[0]
	d0.CreatePage(0)
	addr := NewAddr(0, 0).Short()

	c.spawn(0, "w", func(p *host.Proc) {
		_ = d0.MapIn(p, RW, 0)
		_ = d0.Store(p, RW, addr, 4, 11)
	})
	c.run(t, 100*time.Millisecond)
	for i := 1; i < 4; i++ {
		i := i
		c.spawn(i, "prime", func(p *host.Proc) {
			_ = c.drivers[i].MapIn(p, RO, 0)
			_, _ = c.drivers[i].Load(p, RO, addr, 4)
		})
	}
	c.run(t, time.Second)

	var got uint64
	c.spawn(3, "r", func(p *host.Proc) {
		for n := 0; n < 8; n++ {
			_ = c.drivers[3].Purge(p, RO, addr)
			got, _ = c.drivers[3].Load(p, RO, addr, 4)
		}
	})
	c.run(t, 10*time.Second)

	if got != 11 {
		t.Fatalf("read = %d, want 11", got)
	}
	if c.drivers[3].Metrics().RedundantReqs == 0 {
		t.Error("no redundant requests sent at k=3")
	}
	alloc, free := c.bus.PoolStats()
	if alloc != free {
		t.Errorf("wire-buffer leak: %d allocated, %d free after quiescence", alloc, free)
	}
	c.checkInvariants(t)
}

func TestLateGrantAfterOnwardTransferDropped(t *testing.T) {
	// The late-reply hardening this PR pins down: a duplicate ownership
	// grant that arrives after the grantee has already passed ownership
	// onward must be dropped by generation comparison. Before the fix the
	// drop guard also required st.owner, so exactly this replay would
	// re-install ownership on a host that had granted it away — two
	// consistent copies and regressed bytes.
	c := newTestCluster(t, 3, ethernet.DefaultParams(), fastConfig(4))
	d0, d1, d2 := c.drivers[0], c.drivers[1], c.drivers[2]
	d0.CreatePage(0)
	addr := NewAddr(0, 0).Short()

	// Ownership walks 0 -> 1 -> 2, with a write at each stop.
	c.spawn(1, "w1", func(p *host.Proc) {
		_ = d1.MapIn(p, RW, 0)
		_ = d1.Store(p, RW, addr, 4, 5)
	})
	c.run(t, 2*time.Second)
	c.spawn(2, "w2", func(p *host.Proc) {
		_ = d2.MapIn(p, RW, 0)
		_ = d2.Store(p, RW, addr, 4, 6)
	})
	c.run(t, 4*time.Second)
	if !d2.Snapshot(0).Owner || d1.Snapshot(0).Owner {
		t.Fatal("setup: ownership did not walk 0 -> 1 -> 2")
	}
	lateBefore := d1.Metrics().LateGrantDrops

	// Replay host 0's original grant to host 1 (generation 0, zero bytes)
	// — the wire can deliver it this late after loss-driven retransmits.
	dup := buildDataPacket(t, 0, true, 1, 0, make([]byte, vm.ShortSize))
	c.k.At(c.k.Now()+2*time.Millisecond, "late grant", func() {
		d0.nic.Send(ethernet.Broadcast, dup)
	})
	c.run(t, 6*time.Second)

	if d1.Snapshot(0).Owner {
		t.Error("late grant re-installed ownership on the host that granted it onward")
	}
	if d1.Metrics().LateGrantDrops == lateBefore {
		t.Error("late grant was not counted as dropped")
	}
	var v uint64
	c.spawn(2, "check", func(p *host.Proc) {
		v, _ = d2.Load(p, RW, addr, 4)
	})
	c.run(t, 8*time.Second)
	if v != 6 {
		t.Errorf("owner value = %d, want 6", v)
	}
	c.checkInvariants(t)
}

func TestLateReplyPastRetryWindowAdoptOrDrop(t *testing.T) {
	// The organic version: a bridge whose forwarding delay exceeds the
	// retry timeout makes every reply a late reply. The requester's
	// retries put several grants in flight; it must adopt exactly one
	// (the first), write through it, and drop the stragglers by
	// generation comparison — never double-apply.
	c := &testCluster{k: sim.New(42)}
	busA := ethernet.NewBus(c.k, ethernet.DefaultParams())
	busB := ethernet.NewBus(c.k, ethernet.DefaultParams())
	// 60 ms store-and-forward vs the 50 ms fastConfig retry window.
	ethernet.NewBridge(c.k, busA, busB, 60*time.Millisecond)
	c.bus = busA
	cfg := fastConfig(4)
	for i := 0; i < 2; i++ {
		bus := busA
		if i == 1 {
			bus = busB
		}
		h := host.New(c.k, i, fmt.Sprintf("h%d", i), fastHostParams())
		var d *Driver
		nic := bus.Attach(fmt.Sprintf("h%d", i), func() { d.FrameArrived() })
		d = New(h, nic, cfg)
		d.StartServer()
		c.hosts = append(c.hosts, h)
		c.drivers = append(c.drivers, d)
	}
	t.Cleanup(func() { c.k.Shutdown() })

	d0, d1 := c.drivers[0], c.drivers[1]
	d0.CreatePage(0)
	addr := NewAddr(0, 0).Short()

	var done bool
	c.spawn(1, "w", func(p *host.Proc) {
		_ = d1.MapIn(p, RW, 0)
		if err := d1.Store(p, RW, addr, 4, 9); err == nil {
			done = true
		}
	})
	c.run(t, 10*time.Second)

	if !done {
		t.Fatal("cross-bridge write never completed")
	}
	m1 := d1.Metrics()
	if m1.Retries == 0 {
		t.Fatal("no retries: the bridge delay did not outlast the retry window")
	}
	if m1.LateGrantDrops == 0 {
		t.Error("duplicate grants arrived after the adopted one but none was dropped")
	}
	s := d1.Snapshot(0)
	if !s.Owner {
		t.Error("requester did not end up owner")
	}
	var v uint64
	c.spawn(1, "check", func(p *host.Proc) {
		v, _ = d1.Load(p, RW, addr, 4)
	})
	c.run(t, 12*time.Second)
	if v != 9 {
		t.Errorf("value = %d, want 9 (late duplicates must not regress the write)", v)
	}
	c.checkInvariants(t)
}

// runRedundantDifferential runs the same stationary-style op schedule —
// own-page increments plus purge-and-refetch neighbour samples, under
// datagram loss and a mid-run down-NIC window — at fan-out k and returns
// the final per-host own-page values.
func runRedundantDifferential(t *testing.T, k int, schedule [][]bool) ([]uint64, *testCluster) {
	t.Helper()
	hosts, iters := 4, len(schedule[0])
	ep := ethernet.DefaultParams()
	ep.LossRate = 0.1
	c := newTestCluster(t, hosts, ep, redundantConfig(hosts, hosts, k))
	for i := 0; i < hosts; i++ {
		c.drivers[i].CreatePage(vm.PageID(i))
	}
	// Host 3 drops off the wire for 500 ms mid-run; retries must carry
	// both its own purges and its neighbour samples across the gap.
	c.k.At(time.Second, "down", func() { c.drivers[3].nic.SetDown(true) })
	c.k.At(1500*time.Millisecond, "up", func() { c.drivers[3].nic.SetDown(false) })

	done := make([]bool, hosts)
	for i := 0; i < hosts; i++ {
		i := i
		d := c.drivers[i]
		own := NewAddr(vm.PageID(i), 0).Short()
		peer := NewAddr(vm.PageID((i+1)%hosts), 0).Short()
		c.spawn(i, fmt.Sprintf("stat%d", i), func(p *host.Proc) {
			if d.MapIn(p, RW, own.Page()) != nil || d.MapIn(p, RO, peer.Page()) != nil {
				return
			}
			for n := 0; n < iters; n++ {
				v, err := d.Load(p, RW, own, 4)
				if err != nil || d.Store(p, RW, own, 4, v+1) != nil {
					return
				}
				if d.Purge(p, RW, own) != nil {
					return
				}
				if schedule[i][n] {
					if d.Purge(p, RO, peer) != nil {
						return
					}
					if _, err := d.Load(p, RO, peer, 4); err != nil {
						return
					}
				}
			}
			done[i] = true
		})
	}
	c.run(t, 5*time.Minute)
	for i, ok := range done {
		if !ok {
			t.Fatalf("k=%d: host %d did not finish", k, i)
		}
	}
	c.checkInvariants(t)
	// No generation regression: every replica of a page must sit at or
	// below the owner's generation.
	for pg := 0; pg < hosts; pg++ {
		var ownerGen uint64
		for _, d := range c.drivers {
			if s := d.Snapshot(vm.PageID(pg)); s.Owner {
				ownerGen = s.Gen
			}
		}
		for _, d := range c.drivers {
			if s := d.Snapshot(vm.PageID(pg)); !s.Owner && s.Gen > ownerGen {
				t.Errorf("k=%d: host %d holds page %d at gen %d beyond owner gen %d",
					k, d.h.ID(), pg, s.Gen, ownerGen)
			}
		}
	}
	vals := make([]uint64, hosts)
	final := make([]bool, hosts)
	for i := 0; i < hosts; i++ {
		i := i
		d := c.drivers[i]
		own := NewAddr(vm.PageID(i), 0).Short()
		c.spawn(i, "final", func(p *host.Proc) {
			vals[i], _ = d.Load(p, RW, own, 4)
			final[i] = true
		})
	}
	c.run(t, 6*time.Minute)
	for i, ok := range final {
		if !ok {
			t.Fatalf("k=%d: final read on host %d did not finish", k, i)
		}
	}
	return vals, c
}

func TestRedundantDifferentialAgainstClassic(t *testing.T) {
	// The differential harness: the same randomized schedule of writes,
	// purges and neighbour samples runs at k=1 (the classic owner-only
	// reference) and k=3 under adversarial loss and a down-NIC window.
	// Both must converge to identical owner-held contents with no
	// generation regression anywhere — redundancy may change who answers
	// a fault, never what the cluster agrees the page holds.
	rng := rand.New(rand.NewSource(7))
	schedule := make([][]bool, 4)
	for i := range schedule {
		schedule[i] = make([]bool, 12)
		for n := range schedule[i] {
			schedule[i][n] = rng.Intn(2) == 0
		}
	}
	ref, _ := runRedundantDifferential(t, 1, schedule)
	got, c3 := runRedundantDifferential(t, 3, schedule)
	for i := range ref {
		if ref[i] != got[i] {
			t.Errorf("host %d final value: k=3 %d != k=1 %d", i, got[i], ref[i])
		}
		if ref[i] != uint64(len(schedule[i])) {
			t.Errorf("host %d k=1 value = %d, want %d", i, ref[i], len(schedule[i]))
		}
	}
	var reqs uint64
	for _, d := range c3.drivers {
		reqs += d.Metrics().RedundantReqs
	}
	if reqs == 0 {
		t.Error("k=3 run sent no redundant requests; the axis was inert")
	}
}
