package core

import (
	"testing"
	"time"

	"mether/internal/ethernet"
	"mether/internal/host"
	"mether/internal/proto"
)

// claimConfig is fastConfig with orphan re-claiming armed.
func claimConfig(pages, retries int) Config {
	cfg := fastConfig(pages)
	cfg.ClaimRetries = retries
	return cfg
}

// Crash wipes the driver's protocol state in place and takes it off the
// wire; Recover re-joins cold, re-fetching on demand through the same
// (still materialized) directory entries, and the unavailability and
// rejoin windows land in the metrics.
func TestCrashRecoverRefetchesOnDemand(t *testing.T) {
	c := newTestCluster(t, 2, ethernet.DefaultParams(), fastConfig(4))
	d0, d1 := c.drivers[0], c.drivers[1]
	d0.CreatePage(0)
	addr := NewAddr(0, 0).Short()

	var werr, rerr error
	c.spawn(0, "writer", func(p *host.Proc) {
		if werr = d0.MapIn(p, RW, 0); werr == nil {
			werr = d0.Store(p, RW, addr, 4, 7)
		}
	})
	c.run(t, 100*time.Millisecond)
	var got uint64
	c.spawn(1, "reader", func(p *host.Proc) {
		if rerr = d1.MapIn(p, RO, 0); rerr == nil {
			got, rerr = d1.Load(p, RO, addr, 4)
		}
	})
	c.run(t, time.Second)
	if werr != nil || rerr != nil {
		t.Fatalf("setup: werr=%v rerr=%v", werr, rerr)
	}
	if got != 7 || !d1.Snapshot(0).ShortPresent {
		t.Fatalf("replica not resident before crash (got %d)", got)
	}

	d1.Crash()
	if !d1.CrashedDown() {
		t.Fatal("CrashedDown false after Crash")
	}
	snap := d1.Snapshot(0)
	if snap.ShortPresent || snap.RestPresent || snap.Owner || snap.RestOwner {
		t.Errorf("crash left state resident: %+v", snap)
	}
	// Recover on a kernel timer so virtual time actually spans the down
	// window (the kernel stops at quiescence, not at the deadline).
	c.k.After(500*time.Millisecond, "recover", func() { d1.Recover() })
	c.run(t, 1200*time.Millisecond)

	var got2 uint64
	c.spawn(1, "rereader", func(p *host.Proc) {
		got2, rerr = d1.Load(p, RO, addr, 4)
	})
	c.run(t, 3*time.Second)
	if rerr != nil {
		t.Fatalf("post-recovery read: %v", rerr)
	}
	if got2 != 7 {
		t.Errorf("post-recovery read = %d, want 7 (demand re-fetch)", got2)
	}
	m := d1.Metrics()
	if m.UnavailNS < 400*time.Millisecond {
		t.Errorf("UnavailNS = %v, want ~the 500 ms down window", m.UnavailNS)
	}
	if m.RejoinNS <= 0 {
		t.Errorf("RejoinNS = %v, want > 0 (cold re-join measured)", m.RejoinNS)
	}
	c.checkInvariants(t)
}

// A crashed owner's page is orphaned; a requester whose demand retries
// go unanswered ClaimRetries times re-claims it (generation-bumped), and
// the recovered ghost re-fetches from the new owner instead of
// re-minting its lost authority.
func TestOrphanedOwnershipIsClaimed(t *testing.T) {
	c := newTestCluster(t, 2, ethernet.DefaultParams(), claimConfig(4, 3))
	d0, d1 := c.drivers[0], c.drivers[1]
	d0.CreatePage(0)
	addr := NewAddr(0, 0).Short()

	var err0, err1 error
	c.spawn(0, "writer", func(p *host.Proc) {
		if err0 = d0.MapIn(p, RW, 0); err0 == nil {
			err0 = d0.Store(p, RW, addr, 4, 7)
		}
	})
	c.run(t, 100*time.Millisecond)

	d0.Crash()
	c.spawn(1, "claimer", func(p *host.Proc) {
		if err1 = d1.MapIn(p, RW, 0); err1 == nil {
			err1 = d1.Store(p, RW, addr, 4, 9)
		}
	})
	// 3 unanswered retries at 50 ms each, then the claim broadcast.
	c.run(t, 2*time.Second)
	if err0 != nil || err1 != nil {
		t.Fatalf("err0=%v err1=%v", err0, err1)
	}
	if !d1.Snapshot(0).Owner {
		t.Fatal("claimer did not take ownership of the orphaned page")
	}
	if d1.Metrics().OrphanRecoveries != 1 {
		t.Errorf("OrphanRecoveries = %d, want 1", d1.Metrics().OrphanRecoveries)
	}

	d0.Recover()
	var got uint64
	c.spawn(0, "ghost", func(p *host.Proc) {
		if err0 = d0.MapIn(p, RO, 0); err0 == nil {
			got, err0 = d0.Load(p, RO, addr, 4)
		}
	})
	c.run(t, 4*time.Second)
	if err0 != nil {
		t.Fatalf("ghost read: %v", err0)
	}
	if got != 9 {
		t.Errorf("ghost read = %d, want 9 (the claimer's copy)", got)
	}
	if d0.Snapshot(0).Owner {
		t.Error("recovered ghost re-minted ownership it lost in the crash")
	}
	c.checkInvariants(t)
}

// The ghost fence: after a crash and recovery, a grant the host no
// longer wants (minted for its pre-crash self) is refused instead of
// installing stale authority.
func TestGhostFenceRefusesUnwantedGrant(t *testing.T) {
	c := newTestCluster(t, 2, ethernet.DefaultParams(), fastConfig(4))
	d0, d1 := c.drivers[0], c.drivers[1]
	d0.CreatePage(0)
	addr := NewAddr(0, 0).Short()

	var err0, err1 error
	c.spawn(0, "writer", func(p *host.Proc) {
		if err0 = d0.MapIn(p, RW, 0); err0 == nil {
			err0 = d0.Store(p, RW, addr, 4, 7)
		}
	})
	c.run(t, 100*time.Millisecond)
	c.spawn(1, "toucher", func(p *host.Proc) {
		if err1 = d1.MapIn(p, RO, 0); err1 == nil {
			_, err1 = d1.Load(p, RO, addr, 4)
		}
	})
	c.run(t, time.Second)
	if err0 != nil || err1 != nil {
		t.Fatalf("setup: err0=%v err1=%v", err0, err1)
	}

	d1.Crash()
	c.run(t, 1100*time.Millisecond)
	d1.Recover()
	c.run(t, 1200*time.Millisecond)

	// A pre-crash ownership grant arrives for the recovered host, which
	// wants nothing: the fence must drop it without installing.
	raw := c.bus.Attach("ghost-granter", nil)
	payload := make([]byte, 32)
	payload[0] = 99
	b, err := proto.Encode(proto.Packet{
		Type: proto.TypeData, Page: 0, Short: true, Consistent: true,
		From: 0, OwnerTo: 1, Gen: 5, Data: payload,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw.Send(ethernet.Broadcast, b)
	c.run(t, 2*time.Second)

	if d1.Snapshot(0).Owner {
		t.Error("ghost grant installed ownership on the recovered host")
	}
	if d1.Metrics().GhostDrops == 0 {
		t.Error("GhostDrops = 0, want the fence to count the refused grant")
	}
}
