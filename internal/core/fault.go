package core

import (
	"time"

	"mether/internal/proto"
	"mether/internal/vm"
)

// This file is the driver's side of the fault-injection plane
// (internal/fault schedules, executed by the world layer): crash,
// recovery and owner migration. Crash models a power failure — the NIC
// goes down and every byte of driver state is lost — while client
// processes keep their mappings and simply re-fault. All of it runs at
// virtual time under the simulation kernel, so a faulted run is exactly
// as deterministic as a healthy one.

// Crash takes the host off the wire and wipes the driver's protocol
// state in place. "In place" matters: client processes sleep holding
// *pageState pointers, so every materialized entry is reset where it
// lives, never reallocated. Authority held here (owner/restOwner) is
// simply lost — that is the point: the cluster must detect the orphaned
// pages and re-claim them (Config.ClaimRetries). Client-side
// bookkeeping (mappings, locks, data-waiter counts) survives, the way a
// process's VM structures outlive a device reset; waiters are woken so
// they re-enter their fault loops against the cold state.
func (d *Driver) Crash() {
	if d.down {
		return
	}
	d.down = true
	d.everCrashed = true
	d.downSince = d.h.Kernel().Now()
	d.nic.SetDown(true)
	// Frames already in the receive ring died with the host.
	for {
		f, ok := d.nic.Recv()
		if !ok {
			break
		}
		d.nic.Release(f)
	}
	// Pending server work and warm-seed bookkeeping are driver state.
	for i := d.workHead; i < len(d.workq); i++ {
		d.workq[i] = workItem{}
	}
	d.workq = d.workq[:0]
	d.workHead = 0
	d.seedRanges = nil
	d.transits = nil
	for _, s := range d.shards {
		if s == nil {
			continue
		}
		for i := range s {
			st := &s[i]
			if !st.inited {
				continue
			}
			if st.retry != nil {
				st.retry.Cancel()
				st.retry = nil
			}
			st.frame = vm.Frame{}
			st.shortPresent, st.restPresent = false, false
			st.owner, st.restOwner = false, false
			st.grantedTo, st.grantedRestTo = proto.NoOwner, proto.NoOwner
			st.wantShort, st.wantRest, st.wantConsistent = false, false, false
			st.reqInFlight, st.reqAskedCons, st.reqAskedRest = false, false, false
			st.purgePending, st.purgeShort = false, false
			st.deferred = st.deferred[:0]
			st.backoff, st.claimTries = 0, 0
			st.installedAt = 0
			st.fullUnmapped, st.fullUnmappedByLock = false, false
			d.h.Wakeup(st.waitK)
			d.h.Wakeup(st.purgeK)
		}
	}
	d.h.Wakeup(d.serverKey)
}

// Recover brings a crashed host back on the wire. The driver state
// stays cold — re-join happens through the ordinary attach path, with
// every touched page re-materializing through the lazy directory and
// demand-fetching from the cluster. Outstanding wants (clients that
// faulted while down and went to sleep against suppressed sends) are
// re-sent immediately at the base retry timeout, so the re-join is as
// snappy as the protocol allows; RejoinNS measures until the first
// piece of data actually lands.
func (d *Driver) Recover() {
	if !d.down {
		return
	}
	now := d.h.Kernel().Now()
	d.down = false
	d.m.UnavailNS += now - d.downSince
	d.rejoinPending = true
	d.rejoinStart = now
	d.nic.SetDown(false)
	for _, s := range d.shards {
		if s == nil {
			continue
		}
		for i := range s {
			st := &s[i]
			if !st.inited {
				continue
			}
			st.backoff = 0
			if st.wantsAnything() {
				if st.retry != nil {
					st.retry.Cancel()
					st.retry = nil
				}
				st.reqInFlight = true
				d.enqueueWork(workItem{kind: workSendReq, page: st.page})
			}
		}
	}
}

// CrashedDown reports whether the host is currently crashed.
func (d *Driver) CrashedDown() bool { return d.down }

// noteRejoin closes an open rejoin measurement: the first data that
// lands after a recovery ends the cold window.
func (d *Driver) noteRejoin() {
	if d.rejoinPending {
		d.rejoinPending = false
		d.m.RejoinNS += d.h.Kernel().Now() - d.rejoinStart
	}
}

// SettleFaults folds still-open fault windows into the metrics at
// end-of-run time: a host that is down (or mid-rejoin) when the
// workload stops measuring must still account the open window, or a
// crash near the cap would under-report unavailability. A no-op on
// healthy hosts.
func (d *Driver) SettleFaults(end time.Duration) {
	if d.down {
		d.m.UnavailNS += end - d.downSince
		d.downSince = end
	}
	if d.rejoinPending {
		d.rejoinPending = false
		d.m.RejoinNS += end - d.rejoinStart
	}
}

// MigrateTo re-homes every authority resident on this host to dst,
// shipping the owner's resident working set with it MOSIX-style: the
// page bytes and their generation move together, so the authority stays
// generation-fenced through the move. The transfer is modeled as an
// out-of-band bulk copy (no per-page broadcasts — a real migration
// ships the working set in one stream, not through the coherence
// protocol); requesters find the new owner naturally because requests
// are broadcast. The source keeps non-authoritative replicas, and pages
// mid-lock or mid-purge stay put (their authority migrates on a later
// event, if any). Returns the number of authorities moved.
func (d *Driver) MigrateTo(dst *Driver) int {
	if d.down || dst.down || d == dst {
		return 0
	}
	now := d.h.Kernel().Now()
	moved := 0
	for _, s := range d.shards {
		if s == nil {
			continue
		}
		for i := range s {
			st := &s[i]
			if !st.inited || (!st.owner && !st.restOwner) || st.locked || st.purgePending {
				continue
			}
			dstSt := dst.page(st.page)
			if err := dstSt.frame.Install(st.frame.Snapshot(false), st.frame.Gen()); err != nil {
				continue
			}
			dstSt.shortPresent, dstSt.restPresent = true, true
			dstSt.wantShort, dstSt.wantRest = false, false
			if st.owner {
				st.owner = false
				st.grantedTo = dst.id
				dstSt.owner = true
				dstSt.grantedTo = proto.NoOwner
				dstSt.installedAt = now
				dstSt.wantConsistent = false
			}
			if st.restOwner {
				st.restOwner = false
				st.grantedRestTo = dst.id
				dstSt.restOwner = true
				dstSt.grantedRestTo = proto.NoOwner
			}
			dst.m.MigratedPages++
			dst.clearRetryIfDone(dstSt)
			dst.h.Wakeup(dstSt.waitK)
			moved++
		}
	}
	return moved
}
