package core

import (
	"time"

	"mether/internal/host"
	"mether/internal/medium"
	"mether/internal/proto"
)

// StartServer spawns the host's user-level Mether server process (a
// no-op in kernel-server mode, where FrameArrived and enqueueWork drive
// interrupt-level processing directly). The
// server is an ordinary timesharing process — which is the point: it
// competes for the CPU with the application, and a spinning client
// starves it. It drains the NIC receive ring and the driver work queue,
// sleeping when both are empty.
func (d *Driver) StartServer() {
	if d.cfg.KernelServer {
		return
	}
	d.server = d.h.Spawn("metherd", d.serve)
}

// Server returns the server process (nil before StartServer).
func (d *Driver) Server() *host.Proc { return d.server }

func (d *Driver) serve(p *host.Proc) {
	for !d.stopped {
		if f, ok := d.nic.Recv(); ok {
			d.handleFrame(p, f)
			// Everything needed from the frame has been copied into
			// page frames, so the wire buffer can be recycled.
			d.nic.Release(f)
			continue
		}
		if w, ok := d.dequeueWork(); ok {
			d.handleWork(p, w)
			continue
		}
		p.SleepOn(d.serverKey)
	}
}

// Stop makes the server exit at its next scheduling point.
func (d *Driver) Stop() {
	d.stopped = true
	d.h.Wakeup(d.serverKey)
}

// handleWork processes one driver-originated work item.
func (d *Driver) handleWork(p cpuSink, w workItem) {
	st := d.page(w.page)
	switch w.kind {
	case workSendReq:
		d.sendRequest(p, st)
	case workPurge:
		d.servePurge(p, st)
	case workRedeliver:
		if w.req.rest {
			d.serveRestRequest(p, st, w.req.from, w.req.reqID)
		} else {
			d.serveRequest(p, st, w.req)
		}
	case workRedundant:
		d.serveRedundant(p, st, w.req, w.seq)
	case workClaim:
		d.serveClaim(p, st)
	}
}

// serveClaim re-mints authority over an orphaned page: ClaimRetries
// retries went unanswered, so the owner is gone and this host promotes
// its copy (possibly the flyweight zeros of a cold replica) to the
// consistent copy at a bumped generation, then broadcasts the claim.
// The bump is the ghost fence's other half: a recovered ghost restarts
// at generation zero and everCrashed, so it can never outrank or
// re-adopt the claimed line. The claim broadcast is distinguishable on
// the wire (Consistent with OwnerTo == From — a self-grant no ordinary
// serve ever produces), which is what lets two racing claimants
// arbitrate deterministically in handleData. Everything is re-checked
// first: data or a migration may have landed between the retry timer
// and this work item.
func (d *Driver) serveClaim(p cpuSink, st *pageState) {
	st.claimTries = 0
	if d.cfg.ClaimRetries <= 0 || !st.wantsAnything() {
		return
	}
	if st.owner {
		// Only the rest authority is orphaned (ownership arrived via a
		// short transfer and the rest owner crashed). Re-mint it locally:
		// rest authority is not snooped, so there is nothing to
		// broadcast, and the crashed rest owner's wiped state cannot
		// conflict.
		if st.wantRest && !st.restOwner {
			st.restOwner = true
			st.restPresent = true
			st.wantRest = false
			st.grantedRestTo = proto.NoOwner
			d.m.OrphanRecoveries++
			d.noteRejoin()
			d.clearRetryIfDone(st)
			d.h.Wakeup(st.waitK)
		}
		return
	}
	st.frame.SetGen(st.frame.Gen() + 1)
	st.owner = true
	st.restOwner = true
	st.shortPresent = true
	st.restPresent = true
	st.grantedTo = proto.NoOwner
	st.grantedRestTo = proto.NoOwner
	st.installedAt = d.h.Kernel().Now()
	st.wantShort, st.wantRest, st.wantConsistent = false, false, false
	d.m.OrphanRecoveries++
	d.noteRejoin()
	pkt := proto.Packet{
		Type:       proto.TypeData,
		Page:       st.page,
		Short:      true,
		Consistent: true,
		From:       d.id,
		OwnerTo:    d.id,
		Gen:        uint32(st.frame.Gen()),
		Data:       st.frame.Region(true),
	}
	d.m.DataSent++
	d.transmit(p, pkt)
	d.clearRetryIfDone(st)
	d.h.Wakeup(st.waitK)
}

// sendRequest transmits the demand request implied by the page's want
// bits and arms the retransmit timer.
func (d *Driver) sendRequest(p cpuSink, st *pageState) {
	if !st.wantsAnything() {
		st.reqInFlight = false
		return
	}
	st.reqAskedCons = st.wantConsistent
	st.reqAskedRest = st.wantRest
	var pkt proto.Packet
	if st.owner && st.wantRest && !st.wantConsistent && !st.wantShort {
		// We hold the consistent copy but need the authoritative
		// remainder (ownership arrived via a short transfer).
		pkt = proto.Packet{Type: proto.TypeRestRequest, Page: st.page, From: d.id, OwnerTo: proto.NoOwner, ReqID: st.reqID}
	} else {
		pkt = proto.Packet{
			Type:       proto.TypeRequest,
			Page:       st.page,
			Short:      !st.wantRest,
			Consistent: st.wantConsistent,
			From:       d.id,
			OwnerTo:    proto.NoOwner,
			ReqID:      st.reqID,
		}
		// Redundant fetch: a read fault additionally names the k-1
		// nearest replicas as extra targets, trading a few wire bytes
		// for a chance that a replica's answer beats (or survives the
		// loss of) the owner's. Ownership requests never fan out — only
		// the owner can grant the consistent copy.
		if k := d.cfg.Redundancy; k > 1 && !pkt.Consistent {
			if targets := d.redundantTargets(k - 1); len(targets) > 0 {
				pkt.Data = targets
				d.m.RedundantReqs++
			}
		}
	}
	st.reqID++
	d.m.RequestsSent++
	d.transmit(p, pkt)
	d.armRetry(st)
}

// armRetry schedules a retransmit if the wants are still outstanding
// after the retry timeout. Mether runs over unreliable datagrams:
// requests, replies and grants can all be lost, and the demand path must
// recover on its own. While the NIC is down every send is suppressed
// anyway, so the timeout backs off exponentially — capped at the larger
// of MinResidency and 32x the base timeout (the default residency is
// smaller than one retry, which would make a residency-only cap a
// no-op) — instead of spinning the event kernel hot for the whole
// outage; the first up-NIC arm resets the backoff.
func (d *Driver) armRetry(st *pageState) {
	if st.retry != nil {
		st.retry.Cancel()
	}
	to := d.cfg.RetryTimeout
	if d.nic.Down() {
		limit := d.cfg.MinResidency
		if m := 32 * d.cfg.RetryTimeout; limit < m {
			limit = m
		}
		to <<= st.backoff
		if to >= limit {
			to = limit
		} else if st.backoff < 8 {
			st.backoff++
		}
	} else {
		st.backoff = 0
	}
	st.retry = d.h.Kernel().After(to, "mether retry", func() {
		st.retry = nil
		if !st.wantsAnything() {
			st.reqInFlight = false
			return
		}
		d.m.Retries++
		// Orphaned-ownership detection: an owner that answers nothing for
		// ClaimRetries consecutive retries has crashed, and its authority
		// must be re-minted or the want livelocks. Suppressed sends teach
		// nothing (the request never reached the wire), so a down NIC
		// never advances the count.
		if d.cfg.ClaimRetries > 0 && !d.nic.Down() {
			st.claimTries++
			if int(st.claimTries) >= d.cfg.ClaimRetries {
				d.enqueueWork(workItem{kind: workClaim, page: st.page})
				return
			}
		}
		d.enqueueWork(workItem{kind: workSendReq, page: st.page})
	})
}

// clearRetryIfDone cancels the retransmit timer once nothing is wanted.
// Satisfied wants also reset the claim counter: the cluster answered,
// so the owner is alive.
func (d *Driver) clearRetryIfDone(st *pageState) {
	st.claimTries = 0
	if st.wantsAnything() {
		return
	}
	st.reqInFlight = false
	if st.retry != nil {
		st.retry.Cancel()
		st.retry = nil
	}
}

// servePurge broadcasts a read-only copy of a purge-pending page and
// issues DO-PURGE, waking the blocked purger.
func (d *Driver) servePurge(p cpuSink, st *pageState) {
	if !st.purgePending {
		return
	}
	d.m.PurgeSends++
	d.sendData(p, st, st.purgeShort, proto.NoOwner)
	// DO-PURGE: clear purge pending and wake the waiting process.
	st.purgePending = false
	d.flushDeferred(st)
	d.h.Wakeup(st.purgeK)
}

// serveRequest answers a remote demand request if this host can.
func (d *Driver) serveRequest(p cpuSink, st *pageState, r deferredReq) {
	if !st.owner {
		// Ownership-grant retransmit: if we granted the consistent copy
		// to this very requester and it is still asking, the grant was
		// lost on the wire — resend it (idempotent at the receiver).
		// Rest authority rides along only if it was granted to the same
		// host; otherwise resend the short grant alone.
		if r.cons && st.grantedTo == r.from && st.shortPresent {
			short := r.short || !st.restPresent || st.grantedRestTo != r.from
			d.sendData(p, st, short, int(r.from))
		}
		return
	}
	if st.locked || st.purgePending {
		d.m.Deferred++
		st.deferred = append(st.deferred, r)
		return
	}
	if r.cons {
		// Anti-thrash holdoff: a freshly arrived consistent copy must
		// stay long enough for the local client to use it once.
		if held := d.h.Kernel().Now() - st.installedAt; held < d.cfg.MinResidency {
			d.m.HoldOffs++
			rr := r
			d.h.Kernel().After(d.cfg.MinResidency-held, "mether holdoff", func() {
				d.enqueueWork(workItem{kind: workRedeliver, page: st.page, req: rr})
			})
			return
		}
	}
	short := r.short
	if !short && !st.restPresent {
		// Asked for the full page but the remainder lives elsewhere:
		// serve the short page plus ownership; the requester will
		// rest-fetch from the rest owner.
		short = true
	}
	if r.cons && !short && !st.restOwner {
		// We hold stale rest bytes but not the rest authority: a full
		// consistency grant would mint a second rest owner. Grant the
		// short region only.
		short = true
	}
	ownerTo := proto.NoOwner
	if r.cons {
		ownerTo = int(r.from)
	}
	d.sendData(p, st, short, ownerTo)
	if r.cons {
		// The consistent copy leaves; our bytes stay resident as an
		// inconsistent copy (writable mappings will fault from now on).
		st.owner = false
		st.grantedTo = r.from
		if !short {
			st.restOwner = false
			st.grantedRestTo = r.from
		}
	}
}

// serveRedundant answers a redundant fetch that named this replica as
// an extra target. First-response-wins is enforced here on the loser's
// side: seq snapshots the page's transit count at request arrival, and
// any transit since — almost always the winning reply, which the serve
// loops drain before work items — suppresses the answer instead of
// putting a duplicate broadcast on the wire. A replica that does answer
// sends a plain refresh (no ownership), so even a stale-but-resident
// copy can only ever be dropped by the requester's generation check,
// never regress a fresher winner.
func (d *Driver) serveRedundant(p cpuSink, st *pageState, r deferredReq, seq uint64) {
	if st.transitSeq != seq {
		d.m.RedundantSuppressed++
		return
	}
	// Became owner since (the request raced an ownership transfer): the
	// owner path answers retransmits. Serve strictly within what is
	// resident; a replica missing the remainder leaves a full-extent
	// fetch to the owner rather than answering with a partial view.
	if st.owner || !st.shortPresent || (!r.short && !st.restPresent) || st.locked || st.purgePending {
		return
	}
	d.m.RedundantServes++
	d.sendData(p, st, r.short, proto.NoOwner)
}

// sendData broadcasts page bytes (the only way data ever moves). Every
// TypeData transit refreshes all resident copies cluster-wide. The
// payload aliases the page frame (no snapshot copy): transmit encodes
// it into the scratch buffer before anything else can run.
func (d *Driver) sendData(p cpuSink, st *pageState, short bool, ownerTo int) {
	pkt := proto.Packet{
		Type:    proto.TypeData,
		Page:    st.page,
		Short:   short,
		From:    d.id,
		OwnerTo: int16(ownerTo),
		Gen:     uint32(st.frame.Gen()),
		Data:    st.frame.Region(short),
	}
	d.m.DataSent++
	d.transmit(p, pkt)
}

// transmit encodes and sends one packet, charging the server's CPU cost.
// Encoding reuses the driver's scratch buffer; the NIC copies the bytes
// into its pooled wire buffer, so the scratch is free for the next send
// as soon as Send returns.
func (d *Driver) transmit(p cpuSink, pkt proto.Packet) {
	buf, err := proto.AppendEncode(d.txBuf[:0], pkt)
	if err != nil {
		panic("core: internal packet encode failure: " + err.Error())
	}
	d.txBuf = buf[:0]
	p.UseSys(d.cfg.PacketCost + time.Duration(len(pkt.Data))*d.cfg.ByteCost)
	d.nic.Send(medium.Broadcast, buf)
}

// handleFrame processes one received datagram. The parse goes through
// the decode-once view cache (view.go): for a broadcast, only the first
// of the N receiving servers actually parses the header, but every
// receiver still pays its own simulated handling cost.
func (d *Driver) handleFrame(p cpuSink, f medium.Frame) {
	pkt, err := d.decodeFrame(f)
	if err != nil {
		// Corrupt datagram: charge minimal handling and drop.
		p.UseSys(d.cfg.PacketCost)
		return
	}
	p.UseSys(d.cfg.PacketCost + time.Duration(len(pkt.Data))*d.cfg.ByteCost)
	var st *pageState
	if d.cfg.LazyReplicas {
		if st = d.lazyLookup(pkt); st == nil {
			return
		}
	} else {
		st = d.page(pkt.Page)
	}
	switch pkt.Type {
	case proto.TypeRequest:
		r := deferredReq{from: pkt.From, short: pkt.Short, cons: pkt.Consistent, reqID: pkt.ReqID}
		d.serveRequest(p, st, r)
		// A redundant fetch that names this replica as an extra target:
		// queue the answer with a transit-count snapshot so it can be
		// suppressed if the owner's (or another replica's) reply covers
		// the page first. The owner path above already answered, so a
		// targeted owner adds nothing.
		if len(pkt.Data) > 0 && !pkt.Consistent && !st.owner &&
			pkt.From != d.id && proto.HasTarget(pkt.Data, d.id) {
			d.enqueueWork(workItem{kind: workRedundant, page: st.page, req: r, seq: st.transitSeq})
		}
	case proto.TypeData:
		d.handleData(st, pkt)
	case proto.TypeRestRequest:
		d.serveRestRequest(p, st, pkt.From, pkt.ReqID)
	case proto.TypeRestData:
		d.handleRestData(st, pkt)
	}
}

// lazyLookup resolves a received packet's page state without
// materializing state for pages this host has never touched
// (Config.LazyReplicas). The handling cost has already been charged —
// every station still ingests every broadcast — so the skip is
// memory-only. An unmaterialized page implies, by construction: not
// owner, not rest owner, nothing granted from here, no local waiters.
// Under those facts each packet type's handler is a no-op unless the
// frame is addressed to this host (a grant answering our own request,
// which MapIn/fault paths materialize before sending) or names it as a
// redundant-fetch target; only those materialize. Unaddressed TypeData
// transits are noted in the transit bitmap so a later materialization
// still observes that the page transited (the purge→data-fault race
// detector compares transit counts for equality only).
func (d *Driver) lazyLookup(pkt proto.Packet) *pageState {
	if st := d.peek(pkt.Page); st != nil {
		return st
	}
	switch pkt.Type {
	case proto.TypeRequest:
		if len(pkt.Data) > 0 && !pkt.Consistent && pkt.From != d.id && proto.HasTarget(pkt.Data, d.id) {
			return d.page(pkt.Page)
		}
	case proto.TypeData:
		if int(pkt.OwnerTo) == d.h.ID() {
			return d.page(pkt.Page)
		}
		d.noteTransit(pkt.Page)
	case proto.TypeRestData:
		if int(pkt.OwnerTo) == d.h.ID() {
			return d.page(pkt.Page)
		}
	}
	return nil
}

// handleData implements the snoopy receive path for page broadcasts.
func (d *Driver) handleData(st *pageState, pkt proto.Packet) {
	st.transitSeq++
	gen := uint64(pkt.Gen)
	toMe := int(pkt.OwnerTo) == d.h.ID()
	// A claim is a self-grant (Consistent with OwnerTo == From): the
	// sender re-minted an orphaned page's authority. No ordinary serve
	// produces this shape, so it only appears in fault worlds with
	// claiming armed.
	claim := pkt.Consistent && pkt.OwnerTo == pkt.From
	switch {
	case toMe && d.everCrashed && !st.wantConsistent:
		// Ghost fence: this host crashed at least once, so a grant it is
		// not currently asking for is pre-crash wreckage — a retransmit or
		// in-flight grant from before the crash, replayed at a host whose
		// state restarted at generation zero. The generation comparison
		// below is useless after the reset (everything outranks zero), so
		// the want qualification alone decides: adopting would re-mint the
		// authority the cluster has since re-claimed. This extends the
		// want-qualified adopt-or-drop rule to crashed hosts.
		d.m.StaleDrops++
		d.m.GhostDrops++
	case toMe && gen < st.frame.Gen() && !st.wantConsistent:
		// A late or duplicate ownership grant (grants are retransmitted
		// because they can be lost, and a reply answered after
		// RetryTimeout races the retry's answer). wantConsistent clears
		// only when a grant is adopted, so no-want plus an older
		// generation proves this is a leftover copy of a grant we
		// already adopted: installing it would regress the bytes and —
		// if we wrote through the first copy and granted ownership
		// onward since — mint a second consistent copy. The want check
		// is what makes this safe: a grant that answers an outstanding
		// fault is adopted even when snooped refreshes have pushed our
		// replica's generation past it, because it carries the cluster's
		// only ownership token and refusing it would strand the page
		// with no owner at all.
		d.m.StaleDrops++
		d.m.LateGrantDrops++
	case toMe:
		// Ownership transfer addressed to us: install.
		if st.frame.Install(pkt.Data, gen) != nil {
			return
		}
		st.owner = true
		st.grantedTo = proto.NoOwner
		st.installedAt = d.h.Kernel().Now()
		st.shortPresent = true
		st.wantShort = false
		st.wantConsistent = false
		if !pkt.Short {
			st.restPresent = true
			st.restOwner = true
			st.grantedRestTo = proto.NoOwner
			st.wantRest = false
		}
		d.m.Installs++
		d.noteRejoin()
		d.clearRetryIfDone(st)
	case st.owner && claim:
		// A rival claim while we hold the consistent copy: two requesters
		// crossed the claim threshold in flight (or our own claim raced
		// theirs). Exactly one may survive. The comparison is
		// antisymmetric — higher generation wins, ties go to the lower
		// host id — so of any racing pair, one side yields on receiving
		// the other's claim and the other side drops the loser's claim as
		// stale below.
		if gen > st.frame.Gen() || (gen == st.frame.Gen() && int(pkt.From) < d.h.ID()) {
			if st.frame.Install(pkt.Data, gen) != nil {
				return
			}
			st.owner = false
			st.restOwner = false
			st.grantedTo = proto.NoOwner
			st.grantedRestTo = proto.NoOwner
		} else {
			d.m.StaleDrops++
		}
	case st.owner:
		// We hold the consistent copy: a passing transit never clobbers it.
		d.m.StaleDrops++
	case gen >= st.frame.Gen():
		wanted := st.wantShort || (st.wantRest && !pkt.Short)
		switch {
		case wanted || st.dataWaiters > 0:
			// Satisfy demand waiters (non-consistent needs) and
			// data-driven sleepers: install the covered region.
			if st.frame.Install(pkt.Data, gen) != nil {
				return
			}
			st.shortPresent = true
			st.wantShort = false
			if !pkt.Short {
				st.restPresent = true
				st.wantRest = false
			}
			d.m.Installs++
			d.noteRejoin()
			d.clearRetryIfDone(st)
		case st.shortPresent:
			// Snoopy refresh of a resident inconsistent copy.
			if st.frame.Install(pkt.Data, gen) != nil {
				return
			}
			if !pkt.Short {
				st.restPresent = true
			}
			d.m.Refreshes++
		}
	default:
		d.m.StaleDrops++
		d.noteCrossTrunkStale(pkt.From)
	}
	// Every transit wakes the page's waiters: data-driven sleepers must
	// observe every passing copy (they compare generations themselves),
	// and demand waiters re-check their needs.
	d.h.Wakeup(st.waitK)
}

// noteCrossTrunkStale counts a generation-regressed broadcast whose
// sender sits on another trunk: bridge queues delivered it after a newer
// copy had already landed here. This is the paper's "purges don't cross
// bridges consistently" hazard made measurable — on a single trunk the
// serialized medium makes such reordering impossible, so the counter
// stays zero there by construction.
func (d *Driver) noteCrossTrunkStale(from int16) {
	if d.cfg.TrunkOf == nil || int(from) < 0 || int(from) >= len(d.cfg.TrunkOf) {
		return
	}
	if d.cfg.TrunkOf[from] != d.trunk {
		d.m.CrossTrunkStale++
	}
}

// serveRestRequest answers a remainder fetch if we hold the authority.
func (d *Driver) serveRestRequest(p cpuSink, st *pageState, from int16, reqID uint16) {
	if !st.restOwner {
		if st.grantedRestTo == from && st.restPresent {
			// Lost rest-grant retransmit.
			d.sendRestData(p, st, from)
		}
		return
	}
	if st.locked || st.purgePending {
		d.m.Deferred++
		st.deferred = append(st.deferred, deferredReq{from: from, rest: true, reqID: reqID})
		return
	}
	d.sendRestData(p, st, from)
	st.restOwner = false
	st.grantedRestTo = from
}

func (d *Driver) sendRestData(p cpuSink, st *pageState, to int16) {
	out := proto.Packet{
		Type:    proto.TypeRestData,
		Page:    st.page,
		From:    d.id,
		OwnerTo: to,
		Gen:     uint32(st.frame.Gen()),
		Data:    st.frame.RestRegion(),
	}
	d.m.RestSent++
	d.transmit(p, out)
}

// handleRestData installs or refreshes the superset remainder.
func (d *Driver) handleRestData(st *pageState, pkt proto.Packet) {
	if int(pkt.OwnerTo) == d.h.ID() {
		if d.everCrashed && !st.wantRest {
			// Ghost fence, rest flavour: a crashed host adopts no rest
			// grant it is not currently asking for — it is pre-crash
			// wreckage, and the authority it carries has been re-minted
			// by a claim since. See handleData's fence.
			d.m.GhostDrops++
			d.h.Wakeup(st.waitK)
			return
		}
		if !st.wantRest && st.restOwner {
			// A late or duplicate rest grant. With no ask outstanding
			// and the rest authority already here, an earlier copy of
			// this grant was provably adopted: installing this one
			// would clobber rest writes made since. Every other no-want
			// case still adopts — most importantly when a full-page
			// broadcast satisfied wantRest while the grant was in
			// flight, where dropping would lose the authority the
			// granter has already released.
			d.m.LateGrantDrops++
			d.h.Wakeup(st.waitK)
			return
		}
		if st.frame.InstallRest(pkt.Data) != nil {
			return
		}
		st.restPresent = true
		st.restOwner = true
		st.grantedRestTo = proto.NoOwner
		st.wantRest = false
		d.m.Installs++
		d.noteRejoin()
		d.clearRetryIfDone(st)
	} else if st.restPresent && !st.restOwner {
		if st.frame.InstallRest(pkt.Data) != nil {
			return
		}
		d.m.Refreshes++
	}
	d.h.Wakeup(st.waitK)
}
