package core

import (
	"fmt"
	"testing"
	"time"

	"mether/internal/ethernet"
	"mether/internal/host"
	"mether/internal/proto"
	"mether/internal/sim"
	"mether/internal/vm"
)

// newBridgedCluster builds a Mether cluster spanning two Ethernet trunks
// joined by a bridge: hosts 0..splitAt-1 on trunk A, the rest on trunk B.
// This is the paper's multi-bridge topology; Mether's protocol must keep
// working across it (each packet just takes the extra forwarding hop).
func newBridgedCluster(t *testing.T, n, splitAt int) *testCluster {
	t.Helper()
	c := &testCluster{k: sim.New(42)}
	busA := ethernet.NewBus(c.k, ethernet.DefaultParams())
	busB := ethernet.NewBus(c.k, ethernet.DefaultParams())
	ethernet.NewBridge(c.k, busA, busB, 2*time.Millisecond)
	c.bus = busA
	cfg := fastConfig(4)
	for i := 0; i < n; i++ {
		bus := busA
		if i >= splitAt {
			bus = busB
		}
		h := host.New(c.k, i, fmt.Sprintf("h%d", i), fastHostParams())
		var d *Driver
		nic := bus.Attach(fmt.Sprintf("h%d", i), func() { d.FrameArrived() })
		d = New(h, nic, cfg)
		d.StartServer()
		c.hosts = append(c.hosts, h)
		c.drivers = append(c.drivers, d)
	}
	t.Cleanup(func() { c.k.Shutdown() })
	return c
}

func TestMetherAcrossBridgedTrunks(t *testing.T) {
	c := newBridgedCluster(t, 3, 2) // hosts 0,1 on trunk A; host 2 on trunk B
	d0, d2 := c.drivers[0], c.drivers[2]
	d1 := c.drivers[1]
	d0.CreatePage(0)
	addr := NewAddr(0, 0).Short()

	// Cross-trunk ownership transfer: host 2 (other trunk) writes.
	var err0, err2 error
	c.spawn(0, "w", func(p *host.Proc) {
		if err0 = d0.MapIn(p, RW, 0); err0 != nil {
			return
		}
		err0 = d0.Store(p, RW, addr, 4, 5)
	})
	c.run(t, 100*time.Millisecond)
	c.spawn(2, "steal", func(p *host.Proc) {
		if err2 = d2.MapIn(p, RW, 0); err2 != nil {
			return
		}
		err2 = d2.Store(p, RW, addr, 4, 6)
	})
	c.run(t, 5*time.Second)
	if err0 != nil || err2 != nil {
		t.Fatalf("errors: %v / %v", err0, err2)
	}
	if !d2.Snapshot(0).Owner {
		t.Fatal("cross-trunk ownership transfer failed")
	}
	c.checkInvariants(t)

	// Snoopy refresh must also cross the bridge: host 1 (trunk A) holds
	// a resident copy; host 2's purge broadcast reaches it forwarded.
	var v1 uint64
	c.spawn(1, "prime", func(p *host.Proc) {
		_ = d1.MapIn(p, RO, 0)
		v1, _ = d1.Load(p, RO, addr, 4)
	})
	c.run(t, 7*time.Second)
	if v1 != 6 {
		t.Fatalf("host1 read = %d, want 6", v1)
	}
	c.spawn(2, "update", func(p *host.Proc) {
		_ = d2.Store(p, RW, addr, 4, 7)
		_ = d2.Purge(p, RW, addr)
	})
	c.run(t, 9*time.Second)
	c.spawn(1, "check", func(p *host.Proc) {
		v1, _ = d1.Load(p, RO, addr, 4)
	})
	c.run(t, 11*time.Second)
	if v1 != 7 {
		t.Errorf("host1 after cross-bridge purge = %d, want 7 (snoopy refresh must be forwarded)", v1)
	}
	c.checkInvariants(t)
}

// TestCrossTrunkStaleCounted pins the measurable form of the paper's
// purge-ordering hazard: a generation-regressed broadcast from a sender
// on another trunk (a copy the bridge queues delivered after a newer one
// had already landed) increments Metrics.CrossTrunkStale, while the same
// regress from a same-trunk sender counts only as a plain StaleDrop.
func TestCrossTrunkStaleCounted(t *testing.T) {
	c := &testCluster{k: sim.New(7)}
	busA := ethernet.NewBus(c.k, ethernet.DefaultParams())
	busB := ethernet.NewBus(c.k, ethernet.DefaultParams())
	ethernet.NewBridge(c.k, busA, busB, time.Millisecond)
	c.bus = busA
	cfg := fastConfig(4)
	cfg.TrunkOf = []int{0, 0, 1}
	for i := 0; i < 3; i++ {
		bus := busA
		if cfg.TrunkOf[i] == 1 {
			bus = busB
		}
		h := host.New(c.k, i, fmt.Sprintf("h%d", i), fastHostParams())
		var d *Driver
		nic := bus.Attach(fmt.Sprintf("h%d", i), func() { d.FrameArrived() })
		d = New(h, nic, cfg)
		d.StartServer()
		c.hosts = append(c.hosts, h)
		c.drivers = append(c.drivers, d)
	}
	t.Cleanup(func() { c.k.Shutdown() })

	d0, d1 := c.drivers[0], c.drivers[1]
	d0.CreatePage(0)
	addr := NewAddr(0, 0).Short()

	// Host 1 primes a replica; host 0 then bumps the page and purges, so
	// host 1's copy sits at a newer generation than zero.
	c.spawn(1, "prime", func(p *host.Proc) {
		_ = d1.MapIn(p, RO, 0)
		_, _ = d1.Load(p, RO, addr, 4)
	})
	c.run(t, 2*time.Second)
	c.spawn(0, "bump", func(p *host.Proc) {
		_ = d0.MapIn(p, RW, 0)
		_ = d0.Store(p, RW, addr, 4, 9)
		_ = d0.Purge(p, RW, addr)
	})
	c.run(t, 4*time.Second)
	if g := d1.Snapshot(0).Gen; g == 0 {
		t.Fatalf("replica did not refresh (gen %d)", g)
	}

	inject := func(from int16, at time.Duration) {
		pkt, err := proto.AppendEncode(nil, proto.Packet{
			Type: proto.TypeData, Page: 0, Short: true, From: from,
			OwnerTo: proto.NoOwner, Gen: 0, Data: make([]byte, vm.ShortSize),
		})
		if err != nil {
			t.Fatal(err)
		}
		spoof := busB.Attach(fmt.Sprintf("spoof%d", from), nil)
		c.k.At(at, "inject stale", func() { spoof.Send(ethernet.Broadcast, pkt) })
	}
	// A stale generation-0 copy arrives late, "sent" by trunk-B host 2.
	inject(2, c.k.Now()+time.Millisecond)
	c.run(t, 6*time.Second)
	m1 := d1.Metrics()
	if m1.CrossTrunkStale != 1 {
		t.Errorf("CrossTrunkStale = %d after cross-trunk regress, want 1", m1.CrossTrunkStale)
	}
	staleBefore := m1.StaleDrops

	// The same regress from a same-trunk sender is an ordinary stale
	// drop: the serialized local medium cannot have reordered it.
	inject(0, c.k.Now()+time.Millisecond)
	c.run(t, 8*time.Second)
	if m1.CrossTrunkStale != 1 {
		t.Errorf("CrossTrunkStale = %d after same-trunk regress, want still 1", m1.CrossTrunkStale)
	}
	if m1.StaleDrops != staleBefore+1 {
		t.Errorf("StaleDrops = %d, want %d", m1.StaleDrops, staleBefore+1)
	}
}

func TestBridgedLatencyExceedsLocal(t *testing.T) {
	c := newBridgedCluster(t, 3, 2)
	d0 := c.drivers[0]
	d0.CreatePage(0)
	d0.CreatePage(1)
	addr0 := NewAddr(0, 0).Short()
	addr1 := NewAddr(1, 0).Short()

	// Same-trunk fetch (host1 <- host0) vs cross-trunk (host2 <- host0).
	c.spawn(1, "local", func(p *host.Proc) {
		_ = c.drivers[1].MapIn(p, RO, 0)
		_, _ = c.drivers[1].Load(p, RO, addr0, 4)
	})
	c.run(t, 2*time.Second)
	localLat := c.drivers[1].Metrics().FaultLatency.Mean()

	c.spawn(2, "remote", func(p *host.Proc) {
		_ = c.drivers[2].MapIn(p, RO, 1)
		_, _ = c.drivers[2].Load(p, RO, addr1, 4)
	})
	c.run(t, 4*time.Second)
	crossLat := c.drivers[2].Metrics().FaultLatency.Mean()

	if crossLat <= localLat {
		t.Errorf("cross-trunk latency %v should exceed same-trunk %v (bridge store-and-forward)", crossLat, localLat)
	}
}
