// Package core implements Mether itself: the view-encoded address space
// (Figure 2), the kernel driver (fault handling, PURGE/DO-PURGE, locking
// and the Figure-1 subset/superset rules) and the user-level server that
// moves pages over the broadcast network.
//
// Terminology follows the paper. A page has exactly one consistent copy,
// held by its owner host; writable mappings are backed only by the
// consistent copy. Read-only mappings see inconsistent copies, refreshed
// snoopily whenever any copy of the page transits the network. The short
// page is the first 32 bytes of a full page; the short address space
// overlays the full one. Demand-driven faults send a request; data-driven
// faults passively await a transit.
package core

import (
	"fmt"

	"mether/internal/vm"
)

// Address-space layout (Figure 2): a Mether virtual address packs the
// view selection into its top bits, so applications switch views by
// changing address bits rather than making system calls.
//
//	bit 31    — short space (1) vs full space (0)
//	bit 30    — data-driven (1) vs demand-driven (0)
//	bits 29-13 — page number (17 bits, up to 131072 pages = 1 GiB)
//	bits 12-0  — byte offset within the 8 KiB page
const (
	addrShortBit = 1 << 31
	addrDataBit  = 1 << 30
	addrPageMax  = 1 << 17
)

// Addr is a Mether virtual address. The same underlying page is reachable
// through four aliases: {full, short} x {demand, data-driven}.
type Addr uint32

// NewAddr builds a full-space, demand-driven address for a byte offset
// within a page. It panics if the page or offset exceed the address-space
// geometry — programmer error, like an out-of-range pointer constant.
func NewAddr(page vm.PageID, off int) Addr {
	if page >= addrPageMax {
		panic(fmt.Sprintf("core: page %d out of range", page))
	}
	if off < 0 || off >= vm.PageSize {
		panic(fmt.Sprintf("core: offset %d out of range", off))
	}
	return Addr(uint32(page)<<13 | uint32(off))
}

// Short returns the address aliased into the short space.
func (a Addr) Short() Addr { return a | addrShortBit }

// Full returns the address aliased into the full space.
func (a Addr) Full() Addr { return a &^ addrShortBit }

// DataDriven returns the address aliased into the data-driven space.
func (a Addr) DataDriven() Addr { return a | addrDataBit }

// Demand returns the address aliased into the demand-driven space.
func (a Addr) Demand() Addr { return a &^ addrDataBit }

// IsShort reports whether the address selects the short (32-byte) view.
func (a Addr) IsShort() bool { return a&addrShortBit != 0 }

// IsData reports whether the address selects data-driven fault semantics.
func (a Addr) IsData() bool { return a&addrDataBit != 0 }

// Page returns the page number.
func (a Addr) Page() vm.PageID { return vm.PageID(uint32(a) >> 13 & (addrPageMax - 1)) }

// Offset returns the byte offset within the page.
func (a Addr) Offset() int { return int(uint32(a) & 0x1FFF) }

// ViewLimit returns the largest valid offset bound for the view: 32 for
// short addresses, the page size otherwise.
func (a Addr) ViewLimit() int {
	if a.IsShort() {
		return vm.ShortSize
	}
	return vm.PageSize
}

// CheckAccess validates an access of size bytes through this address.
func (a Addr) CheckAccess(size int) error {
	return vm.CheckRange(a.Offset(), size, a.ViewLimit())
}

// SamePage reports whether two addresses alias the same underlying page.
func (a Addr) SamePage(b Addr) bool { return a.Page() == b.Page() }

func (a Addr) String() string {
	space := "full"
	if a.IsShort() {
		space = "short"
	}
	drive := "demand"
	if a.IsData() {
		drive = "data"
	}
	return fmt.Sprintf("page %d+%#x [%s,%s]", a.Page(), a.Offset(), space, drive)
}

// Mode selects which mapping an access goes through: the read-only
// (inconsistent) space or the writable (consistent) space. The paper's
// processes choose this when they map the Mether region in.
type Mode uint8

const (
	// RO maps the inconsistent space: reads may be stale, writes fault.
	RO Mode = iota + 1
	// RW maps the consistent space: any access requires holding the
	// page's consistent copy (ownership) and is always demand-driven.
	RW
)

func (m Mode) String() string {
	switch m {
	case RO:
		return "ro"
	case RW:
		return "rw"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}
