package core

import (
	"fmt"
	"unsafe"

	"mether/internal/proto"
	"mether/internal/vm"
)

// The page directory is two-level: a dense slice of shard pointers with
// leaf shards of shardSize pageState values that materialize on first
// touch. A host's directory footprint therefore tracks its working set
// (the pages it has actually faulted, served or snooped) instead of the
// whole page space, which is what lets a 10k-host world — where each
// host touches a couple of pages out of 10k — fit in memory. The hot
// path stays a branch plus two indexes: no map, and pageState values
// live inline in the shard so their addresses are stable for the
// lifetime of the driver.
const (
	shardBits = 6
	shardSize = 1 << shardBits
	shardMask = shardSize - 1
)

type pageShard [shardSize]pageState

// pageRange is a half-open [lo, hi) range of seeded replica pages.
type pageRange struct{ lo, hi vm.PageID }

// page returns (creating lazily) the state for a page. A freshly
// materialized entry picks up any replica seeding recorded for it, so
// lazy materialization is indistinguishable from the eager per-page
// seeding it replaced: the seed was recorded at world build, before any
// event could have touched the page.
func (d *Driver) page(id vm.PageID) *pageState {
	if int(id) >= d.cfg.NumPages {
		panic(fmt.Sprintf("core: page %d beyond configured space", id))
	}
	s := d.shards[id>>shardBits]
	if s == nil {
		s = new(pageShard)
		d.shards[id>>shardBits] = s
	}
	st := &s[id&shardMask]
	if !st.inited {
		st.inited = true
		st.page = id
		st.grantedTo = proto.NoOwner
		st.grantedRestTo = proto.NoOwner
		st.waitK = waitKey{id}
		st.purgeK = purgeKey{id}
		if d.seedCovers(id) {
			applySeed(st)
		}
		if d.transits != nil && d.transits[id>>6]&(1<<(id&63)) != 0 {
			// Transits were observed while the page was unmaterialized
			// (LazyReplicas mode). Every consumer of transitSeq compares it
			// for equality against a snapshot taken after materialization,
			// so collapsing n observed transits to 1 preserves exactly the
			// n-vs-0 inequality the eager path would have produced.
			st.transitSeq = 1
		}
	}
	return st
}

// peek returns the state for a page if it has been materialized, nil
// otherwise. It never allocates: the receive path uses it to decide
// whether a snooped frame concerns this host at all.
func (d *Driver) peek(id vm.PageID) *pageState {
	s := d.shards[id>>shardBits]
	if s == nil {
		return nil
	}
	st := &s[id&shardMask]
	if !st.inited {
		return nil
	}
	return st
}

// applySeed installs the warm zero-replica state on an entry: resident
// short region, and a resident remainder unless this host holds the
// rest authority. A no-op on the owning host (the owner's copy is not a
// replica).
func applySeed(st *pageState) {
	if st.owner {
		return
	}
	st.shortPresent = true
	if !st.restOwner {
		st.restPresent = true
	}
}

// seedCovers reports whether a page falls in a recorded seed range.
// Worlds record at most a handful of ranges (one per warmed segment),
// so the scan is a few compares on the materialization slow path only.
func (d *Driver) seedCovers(id vm.PageID) bool {
	for _, r := range d.seedRanges {
		if id >= r.lo && id < r.hi {
			return true
		}
	}
	return false
}

// SeedReplicaRange records warm zero-filled read-only replicas for every
// page in [lo, hi), as if a broadcast of each owner's (still zero-
// filled, generation-zero) copy had already transited. The range is
// applied immediately to pages already materialized (created pages,
// earlier touches) and lazily — at first touch — to the rest, so
// seeding a segment costs O(1) per driver instead of O(pages): this is
// what makes warm-start world construction linear in cluster size.
// Large-cluster scenarios seed replicas at world build to model a
// long-running cluster with resident copies: without it, every host's
// attach must demand-fetch every page, and the resulting request
// broadcasts — each ingested by every host — make cold start an
// O(hosts³) event storm that swamps the workload being measured.
func (d *Driver) SeedReplicaRange(lo, hi vm.PageID) {
	if int(hi) > d.cfg.NumPages || lo > hi {
		panic(fmt.Sprintf("core: seed range [%d,%d) beyond configured space", lo, hi))
	}
	d.seedRanges = append(d.seedRanges, pageRange{lo, hi})
	for id := lo; id < hi; {
		s := d.shards[id>>shardBits]
		if s == nil {
			// Skip to the next shard boundary.
			id = (id | shardMask) + 1
			continue
		}
		if st := &s[id&shardMask]; st.inited {
			applySeed(st)
		}
		id++
	}
}

// SeedReplica seeds a warm replica of a single page; see
// SeedReplicaRange. A no-op on the owning host.
func (d *Driver) SeedReplica(id vm.PageID) {
	d.SeedReplicaRange(id, id+1)
}

// noteTransit records a TypeData transit of a page this host has no
// state for (LazyReplicas receive path): the bitmap stands in for the
// per-page transit counter until the page materializes.
func (d *Driver) noteTransit(id vm.PageID) {
	if d.transits == nil {
		d.transits = make([]uint64, (d.cfg.NumPages+63)/64)
	}
	d.transits[id>>6] |= 1 << (id & 63)
}

// OwnsPage reports whether this host currently holds the page's
// consistent copy. It peeks — an unmaterialized entry holds no
// authority by construction — so orphan scans never perturb the
// directory they inspect.
func (d *Driver) OwnsPage(id vm.PageID) bool {
	st := d.peek(id)
	return st != nil && st.owner
}

// MemFootprint returns the driver's structural memory footprint in
// bytes: directory shards, page-frame backing tiers, queues, caches and
// scratch buffers. It is a deterministic walk of sizes the driver's own
// behaviour decides — unlike runtime heap statistics it is identical
// across runs, GC timing and sweep worker counts, so it can live in
// reports that must stay byte-identical.
func (d *Driver) MemFootprint() uint64 {
	// The port is held as a two-word interface but accounted as the
	// single device pointer it stands for: the extra word is Go's
	// dispatch plumbing, not driver state, and counting it would make
	// the footprint depend on how the driver names its NIC rather than
	// on what the NIC is.
	b := uint64(unsafe.Sizeof(*d)) - uint64(unsafe.Sizeof(uintptr(0)))
	b += uint64(cap(d.shards)) * uint64(unsafe.Sizeof((*pageShard)(nil)))
	for _, s := range d.shards {
		if s == nil {
			continue
		}
		b += uint64(unsafe.Sizeof(*s))
		for i := range s {
			st := &s[i]
			b += uint64(st.frame.Tier())
			b += uint64(cap(st.deferred)) * uint64(unsafe.Sizeof(deferredReq{}))
		}
	}
	b += uint64(cap(d.transits)) * 8
	b += uint64(cap(d.workq)) * uint64(unsafe.Sizeof(workItem{}))
	b += uint64(cap(d.txBuf))
	b += uint64(cap(d.redundant))*2 + uint64(cap(d.redundantEnc))
	b += uint64(cap(d.seedRanges)) * uint64(unsafe.Sizeof(pageRange{}))
	return b
}
