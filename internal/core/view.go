package core

import (
	"mether/internal/medium"
	"mether/internal/proto"
)

// The decode-once receive path. Every Mether data packet is broadcast,
// so one transmission is delivered to every station on the trunk — and
// before this existed, every receiving server independently re-parsed
// the same 16-byte header out of the same shared payload buffer. That
// per-receiver parse is exactly the kind of per-packet host load the
// paper's protocols are designed to squeeze out, and at the 1024-host
// tier it is multiplied a thousandfold per frame.
//
// rxView is the pooled decoded form of one delivered frame. The first
// receiver to handle the frame decodes it and attaches the view to the
// frame's shared payload buffer (medium.Frame.SetView); every later
// receiver of the same transmission reuses the cached view. The view's
// packet Data aliases the payload buffer, so the view must share the
// buffer's lifetime exactly: the bus hands it back to the pool
// (ViewPool.Recycle, wired via Bus.OnViewDrop) at the instant the
// buffer's refcount reaches zero, refcounted by proxy.
//
// Caching the parse changes no virtual-time accounting: each receiver
// still pays its own PacketCost/ByteCost for handling the packet —
// what is saved is the real (simulation-engine) work of re-parsing and
// re-validating the header once per station.
type rxView struct {
	pkt proto.Packet
	err error // decode failure, cached like a successful parse
}

// ViewPool recycles rxViews. One pool serves a whole world (every
// driver on every trunk): worlds are single-threaded simulations, so
// the pool needs no locking, and views allocated by one driver are
// recycled when the last receiver on the buffer's bus releases it.
type ViewPool struct {
	free []*rxView
}

// NewViewPool returns an empty pool.
func NewViewPool() *ViewPool { return &ViewPool{} }

// acquire takes a view from the pool.
func (vp *ViewPool) acquire() *rxView {
	if n := len(vp.free); n > 0 {
		v := vp.free[n-1]
		vp.free[n-1] = nil
		vp.free = vp.free[:n-1]
		return v
	}
	return &rxView{}
}

// Recycle returns a view to the pool; it is the medium OnViewDrop
// hook, invoked as the view's payload buffer is recycled. Foreign values
// are ignored so a bus shared with non-Mether receivers stays safe.
func (vp *ViewPool) Recycle(v any) {
	rv, ok := v.(*rxView)
	if !ok {
		return
	}
	rv.pkt = proto.Packet{}
	rv.err = nil
	vp.free = append(vp.free, rv)
}

// decodeFrame parses a received frame's packet, reusing (or priming) the
// buffer-attached decode-once view. A foreign view type (a non-Mether
// receiver on a shared bus got there first — the same case Recycle
// tolerates) is left alone and the packet decoded directly, as is every
// frame when no pool is configured: byte-for-byte the pre-cache
// behaviour.
func (d *Driver) decodeFrame(f medium.Frame) (proto.Packet, error) {
	if rv, ok := f.View().(*rxView); ok {
		return rv.pkt, rv.err
	}
	pkt, err := proto.Decode(f.Payload)
	if vp := d.cfg.Views; vp != nil && f.View() == nil {
		rv := vp.acquire()
		rv.pkt, rv.err = pkt, err
		f.SetView(rv)
	}
	return pkt, err
}
