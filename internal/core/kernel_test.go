package core

import (
	"fmt"
	"testing"
	"time"

	"mether/internal/ethernet"
	"mether/internal/host"
	"mether/internal/sim"
)

// newKernelCluster builds a cluster whose drivers run in kernel-server
// mode.
func newKernelCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	c := &testCluster{k: sim.New(42)}
	c.bus = ethernet.NewBus(c.k, ethernet.DefaultParams())
	cfg := fastConfig(4)
	cfg.KernelServer = true
	for i := 0; i < n; i++ {
		h := host.New(c.k, i, fmt.Sprintf("h%d", i), fastHostParams())
		var d *Driver
		nic := c.bus.Attach(fmt.Sprintf("h%d", i), func() { d.FrameArrived() })
		d = New(h, nic, cfg)
		d.StartServer() // no-op in kernel mode
		c.hosts = append(c.hosts, h)
		c.drivers = append(c.drivers, d)
	}
	t.Cleanup(func() { c.k.Shutdown() })
	return c
}

func TestKernelServerBasicTransfer(t *testing.T) {
	c := newKernelCluster(t, 2)
	d0, d1 := c.drivers[0], c.drivers[1]
	d0.CreatePage(0)
	addr := NewAddr(0, 4).Short()

	var got uint64
	c.spawn(0, "w", func(p *host.Proc) {
		_ = d0.MapIn(p, RW, 0)
		_ = d0.Store(p, RW, addr, 4, 777)
	})
	c.run(t, 100*time.Millisecond)
	c.spawn(1, "r", func(p *host.Proc) {
		_ = d1.MapIn(p, RO, 0)
		got, _ = d1.Load(p, RO, addr, 4)
	})
	c.run(t, time.Second)
	if got != 777 {
		t.Errorf("remote read = %d, want 777", got)
	}
	if d0.Metrics().KernelTime == 0 && d1.Metrics().KernelTime == 0 {
		t.Error("kernel-server mode consumed no kernel time")
	}
	if d0.Server() != nil || d1.Server() != nil {
		t.Error("kernel mode must not spawn a server process")
	}
	c.checkInvariants(t)
}

// TestKernelServerSurvivesSpinners verifies the paper's prediction: with
// the server in the kernel, a spinning client cannot starve protocol
// processing, so fault latency stays near hardware cost even while the
// remote host spins.
func TestKernelServerSurvivesSpinners(t *testing.T) {
	measure := func(kernel bool) time.Duration {
		var c *testCluster
		if kernel {
			c = newKernelCluster(t, 2)
		} else {
			c = newTestCluster(t, 2, ethernet.DefaultParams(), fastConfig(4))
		}
		d0, d1 := c.drivers[0], c.drivers[1]
		d0.CreatePage(0)
		addr := NewAddr(0, 0).Short()

		// Host 0 runs a pure spinner to starve its (user-level) server.
		c.spawn(0, "spin", func(p *host.Proc) {
			_ = d0.MapIn(p, RW, 0)
			for p.Now() < 400*time.Millisecond {
				p.UseUser(50 * time.Microsecond)
			}
		})
		// Host 1 demand-fetches from host 0 after the spinner is running.
		c.spawn(1, "r", func(p *host.Proc) {
			p.SleepFor(50 * time.Millisecond)
			_ = d1.MapIn(p, RO, 0)
			_, _ = d1.Load(p, RO, addr, 4)
		})
		c.run(t, 2*time.Second)
		return d1.Metrics().FaultLatency.Mean()
	}

	user := measure(false)
	kern := measure(true)
	if kern >= user {
		t.Errorf("kernel server latency %v should beat user-level %v under a spinner", kern, user)
	}
	if kern > 5*time.Millisecond {
		t.Errorf("kernel server latency = %v, want near hardware cost", kern)
	}
}

func TestKernelServerPurgeAndDataDriven(t *testing.T) {
	c := newKernelCluster(t, 2)
	d0, d1 := c.drivers[0], c.drivers[1]
	d0.CreatePage(0)
	addr := NewAddr(0, 0).Short()

	var got uint64
	var wokeAt time.Duration
	c.spawn(1, "r", func(p *host.Proc) {
		_ = d1.MapIn(p, RO, 0)
		_ = d1.Purge(p, RO, addr)
		got, _ = d1.Load(p, RO, addr.DataDriven(), 4)
		wokeAt = p.Now()
	})
	c.run(t, 200*time.Millisecond)
	if wokeAt != 0 {
		t.Fatal("data-driven read completed without a transit")
	}
	c.spawn(0, "w", func(p *host.Proc) {
		_ = d0.MapIn(p, RW, 0)
		_ = d0.Store(p, RW, addr, 4, 31)
		_ = d0.Purge(p, RW, addr)
	})
	c.run(t, time.Second)
	if got != 31 {
		t.Errorf("data-driven read = %d, want 31", got)
	}
	c.checkInvariants(t)
}
