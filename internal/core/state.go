package core

import (
	"time"

	"mether/internal/sim"
	"mether/internal/stats"
	"mether/internal/vm"
)

// pageState is the driver's per-page bookkeeping on one host. The frame
// holds the bytes; the booleans track which regions are resident and
// authoritative. Invariants maintained cluster-wide (and asserted by
// tests via CheckInvariants):
//
//   - exactly one host has owner=true per page (the consistent copy);
//   - exactly one host has restOwner=true per page (the authoritative
//     superset remainder, which can lag behind the owner after a
//     short-view ownership transfer);
//   - restOwner implies restPresent; owner implies shortPresent.
type pageState struct {
	// inited distinguishes a materialized entry from the zero value its
	// directory shard was born with; the directory (directory.go) sets it
	// on first touch after filling the non-zero defaults.
	inited bool
	page   vm.PageID
	// frame lives inline: a pageState and its bytes are one allocation
	// (per shard), and the flyweight frame costs nothing until written.
	frame vm.Frame

	shortPresent bool // first 32 bytes resident
	restPresent  bool // bytes [32, 8192) resident
	owner        bool // this host holds the consistent copy
	restOwner    bool // this host holds the authoritative remainder

	mappedRO bool
	mappedRW bool
	locked   bool
	// fullUnmappedByLock marks the superset unmapped for the duration of
	// a short-view lock; fullUnmapped marks it unmapped after a pageout
	// (Figure-1 rules; remapping is implicit on next access).
	fullUnmappedByLock bool
	fullUnmapped       bool

	purgePending bool
	purgeShort   bool // extent of the pending purge broadcast

	// grantedTo / grantedRestTo remember the last host each authority was
	// granted to, so a lost grant can be retransmitted when the grantee
	// asks again (datagram transport loses packets).
	grantedTo     int16
	grantedRestTo int16

	// installedAt is when ownership last arrived here. The server defers
	// serving steal requests until MinResidency has elapsed, so the local
	// client gets one chance to use a page it faulted in — without this
	// anti-thrash holdoff two writers ping-pong a page without either
	// making progress.
	installedAt time.Duration

	// Demand-driven fault state: which regions/rights the local waiters
	// need, whether a request is on the wire, and the retry timer.
	wantShort      bool
	wantRest       bool
	wantConsistent bool
	reqInFlight    bool
	// reqAskedCons / reqAskedRest record what the in-flight request asked
	// for, so escalated needs (e.g. a write fault joining a read fault)
	// trigger an immediate new request instead of waiting for the retry.
	reqAskedCons bool
	reqAskedRest bool
	reqID        uint16
	retry        *sim.Event
	// backoff is the exponential retry-backoff exponent, advanced only
	// while the NIC is down (a crashed host's retries go nowhere, so
	// spinning them at the base timeout just heats the event kernel) and
	// reset to zero by the first up-NIC retry arm.
	backoff uint8
	// claimTries counts consecutive unanswered retries toward the
	// orphaned-ownership claim threshold (Config.ClaimRetries); any
	// arriving data resets it.
	claimTries uint8

	// dataWaiters counts processes blocked in data-driven faults; they
	// are woken by any transit of the page.
	dataWaiters int
	// transitSeq counts every observed transit of this page; dataArmSeq
	// records the count at the application's last read-only purge. A
	// data-driven fault that finds the two unequal knows a transit slipped
	// into the purge→touch window and falls back to a demand fetch
	// instead of blocking for a broadcast that will never recur.
	transitSeq uint64
	dataArmSeq uint64

	// deferred requests received while the page was locked or mid-purge.
	deferred []deferredReq

	// waitK and purgeK are the page's sleep keys boxed once at pageState
	// creation: SleepOn/Wakeup take `any`, and converting a struct key at
	// every fault or transit would allocate on the hottest paths.
	waitK  any
	purgeK any
}

type deferredReq struct {
	from  int16
	short bool
	cons  bool
	rest  bool // a rest-fetch rather than a page request
	reqID uint16
}

// fullPresent reports whether the whole page is resident.
func (st *pageState) fullPresent() bool { return st.shortPresent && st.restPresent }

// wantsAnything reports whether demand state remains outstanding.
func (st *pageState) wantsAnything() bool {
	return st.wantShort || st.wantRest || st.wantConsistent
}

// reqCoversWants reports whether the in-flight request already asked for
// everything currently wanted.
func (st *pageState) reqCoversWants() bool {
	if st.wantConsistent && !st.reqAskedCons {
		return false
	}
	if st.wantRest && !st.reqAskedRest {
		return false
	}
	return true
}

// waitKey is the sleep channel for processes blocked on a page (demand
// and data-driven waiters alike; they re-check their condition on wake).
type waitKey struct {
	page vm.PageID
}

// purgeKey is the sleep channel for a process blocked in a writable
// PURGE awaiting the server's DO-PURGE.
type purgeKey struct {
	page vm.PageID
}

// serverKey is the sleep channel of the host's user-level server.
type serverKey struct {
	host int
}

// Metrics aggregates one host's driver/server counters. Latency is
// measured from first fault to access satisfaction, like the paper's
// "mean time required for a page fault".
type Metrics struct {
	DemandFaults uint64
	DataFaults   uint64
	RequestsSent uint64
	Retries      uint64
	DataSent     uint64 // TypeData broadcasts sent (requests served + purges)
	PurgeSends   uint64 // subset of DataSent caused by writable purges
	RestSent     uint64
	Installs     uint64 // copies installed because wanted/addressed to us
	Refreshes    uint64 // snoopy refreshes of resident copies
	StaleDrops   uint64 // broadcasts ignored because generation was older
	// CrossTrunkStale is the subset of StaleDrops whose sender sat on a
	// different Ethernet trunk: bridge-queue reordering delivered an old
	// broadcast after a newer one — the multi-trunk purge-ordering
	// hazard, zero by construction on a single trunk.
	CrossTrunkStale uint64
	PurgesRO        uint64
	PurgesRW        uint64
	LockFails       uint64
	Deferred        uint64 // requests deferred due to lock/purge
	DataFallbacks   uint64 // data faults converted to demand (missed transit)
	HoldOffs        uint64 // steal requests delayed by the residency holdoff
	// Redundant-fetch counters (Config.Redundancy > 1). RedundantReqs
	// counts requests sent with extra targets; RedundantServes counts
	// replica answers sent on behalf of the owner; RedundantSuppressed
	// counts replica answers cancelled because a transit (almost always
	// the winning reply) covered the page first.
	RedundantReqs       uint64
	RedundantServes     uint64
	RedundantSuppressed uint64
	// LateGrantDrops counts ownership/rest grants addressed to this host
	// that arrived after the want was already satisfied (a retransmit or
	// a redundant loser racing a retry) and were dropped by explicit
	// generation/want comparison instead of being double-applied.
	LateGrantDrops uint64
	// KernelTime is CPU consumed by interrupt-level protocol processing
	// in kernel-server mode (zero with the user-level server).
	KernelTime time.Duration
	// Fault-plane counters (all zero in healthy worlds). OrphanRecoveries
	// counts pages whose orphaned authority this host re-minted via the
	// claim path after a crashed owner stopped answering; GhostDrops
	// counts stale authority grants refused by the post-crash want fence
	// (a recovered ghost must not re-mint authority from a pre-crash
	// grant); MigratedPages counts authorities shipped here by an owner
	// migration.
	OrphanRecoveries uint64
	GhostDrops       uint64
	MigratedPages    uint64
	// UnavailNS totals this host's NIC-down windows; RejoinNS totals
	// recovery-to-first-reinstall latencies (cold re-join time through
	// the lazy directory attach path).
	UnavailNS time.Duration
	RejoinNS  time.Duration

	FaultLatency stats.Histogram
}
