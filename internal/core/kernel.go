package core

import (
	"time"

	"mether/internal/host"
)

// Kernel-server mode implements the paper's stated future work: "At this
// point we have hit a threshold in which the major bottleneck is now the
// context switches required to receive a new page. That problem will be
// solved by a different hardware-based network or a migration of the
// user level server code to the kernel."
//
// With Config.KernelServer set, protocol processing runs at interrupt
// level instead of inside a schedulable process: no dispatch latency, no
// quantum waits behind spinning clients, no context switches to receive
// a page. Handler CPU costs still apply — they serialize a kernel work
// cursor and are accounted in Metrics.KernelTime — but they no longer
// contend with application processes for the CPU. The ablation benches
// (BenchmarkAblationKernelServer) quantify how much of the figures'
// latency this removes.

// kernelWorker satisfies the handlers' CPU-charging interface by
// accumulating cost instead of consuming scheduled CPU time.
type kernelWorker struct {
	used time.Duration
}

func (k *kernelWorker) UseSys(d time.Duration) { k.used += d }

// cpuSink abstracts "who pays for server work": a schedulable process
// (user-level server) or the kernel cursor (kernel server).
type cpuSink interface {
	UseSys(d time.Duration)
}

var (
	_ cpuSink = (*host.Proc)(nil)
	_ cpuSink = (*kernelWorker)(nil)
)

// kernelKick schedules a drain step if one is not already pending. Work
// items are processed one per step; each step is delayed by the previous
// item's accumulated handler cost, serializing the kernel path the way
// interrupt-level processing serializes on a uniprocessor. Kicks are
// coalesced like NIC interrupts: a broadcast delivery kicking every
// kernel-server host schedules one kernel event, not one per host (the
// drain steps themselves stay individually scheduled, as their delays
// depend on per-host handler cost).
func (d *Driver) kernelKick(after time.Duration) {
	if d.kDraining {
		return
	}
	d.kDraining = true
	d.h.Kernel().AfterCoalesced(after, "mether kernel drain", d.stepFn)
}

// kernelStep processes one pending item and reschedules itself.
func (d *Driver) kernelStep() {
	var kw kernelWorker
	if !d.drainFrame(&kw) {
		if w, ok := d.dequeueWork(); ok {
			d.handleWork(&kw, w)
		} else {
			d.kDraining = false
			return
		}
	}
	d.m.KernelTime += kw.used
	d.h.Kernel().After(kw.used, "mether kernel next", d.stepFn)
}

// drainFrame handles one received frame if available.
func (d *Driver) drainFrame(kw *kernelWorker) bool {
	f, ok := d.nic.Recv()
	if !ok {
		return false
	}
	d.handleFrame(kw, f)
	d.nic.Release(f)
	return true
}
