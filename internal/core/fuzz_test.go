package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"mether/internal/ethernet"
	"mether/internal/host"
	"mether/internal/vm"
)

// TestRandomOpSoup drives three hosts with random interleaved Mether
// operations — loads, stores, purges, locks, page-outs, through every
// view combination — and checks the cluster-wide ownership invariants
// after every quiescent point, plus data integrity: after the dust
// settles, a read of each page through a freshly fetched consistent view
// must observe the last value the op log wrote.
func TestRandomOpSoup(t *testing.T) {
	seeds := []int64{1, 2, 3, 5, 8, 13, 21, 34}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runOpSoup(t, seed, 0)
		})
	}
}

// TestRandomOpSoupUnderLoss repeats the soup on a lossy wire: liveness
// is retry-driven, and the invariants must still hold.
func TestRandomOpSoupUnderLoss(t *testing.T) {
	for _, seed := range []int64{7, 11} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runOpSoup(t, seed, 0.05)
		})
	}
}

func runOpSoup(t *testing.T, seed int64, lossRate float64) {
	t.Helper()
	const (
		hosts = 3
		pages = 3
		ops   = 60
	)
	ep := ethernet.DefaultParams()
	ep.LossRate = lossRate
	c := newTestCluster(t, hosts, ep, fastConfig(pages))
	rng := rand.New(rand.NewSource(seed))

	for pg := 0; pg < pages; pg++ {
		c.drivers[pg%hosts].CreatePage(vm.PageID(pg))
	}

	// lastWritten[page] tracks the final value each page's word 0 holds,
	// maintained in program order per page (stores are serialized by
	// ownership, and each client writes a unique value).
	lastWritten := make([]uint64, pages)
	nextVal := uint64(100)

	type clientPlan struct {
		host int
		ops  []func(p *host.Proc, d *Driver) error
	}
	var plans []clientPlan
	for h := 0; h < hosts; h++ {
		plan := clientPlan{host: h}
		d := c.drivers[h]
		_ = d
		for i := 0; i < ops; i++ {
			pg := vm.PageID(rng.Intn(pages))
			short := rng.Intn(2) == 0
			addr := NewAddr(pg, 0)
			if short {
				addr = addr.Short()
			}
			switch rng.Intn(10) {
			case 0, 1, 2: // read-only load (any staleness fine)
				plan.ops = append(plan.ops, func(p *host.Proc, d *Driver) error {
					_, err := d.Load(p, RO, addr.Demand(), 4)
					return err
				})
			case 3, 4, 5: // consistent store of a fresh unique value
				v := nextVal
				nextVal++
				pgCopy := pg
				plan.ops = append(plan.ops, func(p *host.Proc, d *Driver) error {
					if err := d.Store(p, RW, addr, 4, v); err != nil {
						return err
					}
					lastWritten[pgCopy] = v
					return nil
				})
			case 6: // read-only purge
				plan.ops = append(plan.ops, func(p *host.Proc, d *Driver) error {
					return d.Purge(p, RO, addr)
				})
			case 7: // writable purge (only meaningful when owner; fetch first)
				plan.ops = append(plan.ops, func(p *host.Proc, d *Driver) error {
					if _, err := d.Load(p, RW, addr.Demand(), 4); err != nil {
						return err
					}
					return d.Purge(p, RW, addr.Short())
				})
			case 8: // lock/unlock cycle
				plan.ops = append(plan.ops, func(p *host.Proc, d *Driver) error {
					if err := d.Lock(p, RW, addr); err != nil {
						return nil // lock failures are legal (pieces wanted)
					}
					p.SleepFor(time.Duration(1+rng.Intn(3)) * time.Millisecond)
					return d.Unlock(p, addr)
				})
			case 9: // pageout
				plan.ops = append(plan.ops, func(p *host.Proc, d *Driver) error {
					snap := d.Snapshot(pg)
					if snap.Owner || snap.RestOwner {
						// The driver refuses to evict authoritative
						// regions; exercise that path too.
						_ = d.PageOut(addr)
						return nil
					}
					return d.PageOut(addr)
				})
			}
		}
		plans = append(plans, plan)
	}

	for _, plan := range plans {
		plan := plan
		d := c.drivers[plan.host]
		c.spawn(plan.host, "soup", func(p *host.Proc) {
			if err := d.MapIn(p, RO, 0); err != nil {
				t.Errorf("mapin: %v", err)
				return
			}
			for pg := 0; pg < pages; pg++ {
				if err := d.MapIn(p, RO, vm.PageID(pg)); err != nil {
					t.Errorf("mapin ro %d: %v", pg, err)
				}
				if err := d.MapIn(p, RW, vm.PageID(pg)); err != nil {
					t.Errorf("mapin rw %d: %v", pg, err)
				}
			}
			for i, op := range plan.ops {
				if err := op(p, d); err != nil {
					t.Errorf("host %d op %d: %v", plan.host, i, err)
					return
				}
				p.SleepFor(time.Duration(rng.Intn(5)) * time.Millisecond)
			}
		})
	}
	c.run(t, 10*time.Minute)
	c.checkInvariants(t)

	// Data integrity: a consistent read on host 0 must see each page's
	// last written value (ownership serializes the writes; the op-log
	// order of lastWritten matches completion order because each value
	// is unique and monotonically assigned per plan execution order...
	// concurrent writers to one page may interleave, so accept any of
	// the values written by the final writers: we simply require the
	// consistent copy to hold *some* value that was actually written.
	written := map[uint64]bool{0: true}
	for v := uint64(100); v < nextVal; v++ {
		written[v] = true
	}
	var got [pages]uint64
	var readErr error
	c.spawn(0, "verify", func(p *host.Proc) {
		d := c.drivers[0]
		for pg := 0; pg < pages; pg++ {
			if err := d.MapIn(p, RW, vm.PageID(pg)); err != nil {
				readErr = err
				return
			}
			v, err := d.Load(p, RW, NewAddr(vm.PageID(pg), 0), 4)
			if err != nil {
				readErr = err
				return
			}
			got[pg] = v
		}
	})
	c.run(t, 20*time.Minute)
	if readErr != nil {
		t.Fatalf("verify read: %v", readErr)
	}
	for pg := 0; pg < pages; pg++ {
		if !written[got[pg]] {
			t.Errorf("page %d holds %d, which was never written", pg, got[pg])
		}
	}
	c.checkInvariants(t)
}

// TestConcurrentWritersSerialize checks that two hosts hammering the
// same word through the consistent view never lose an increment: the
// single-consistent-copy discipline makes read-modify-write atomic as
// long as the holder does both under one ownership tenure (reads and
// writes here are back-to-back, and the residency holdoff guarantees
// the tenure).
func TestConcurrentWritersSerialize(t *testing.T) {
	c := newTestCluster(t, 2, ethernet.DefaultParams(), fastConfig(2))
	d0 := c.drivers[0]
	d0.CreatePage(0)
	addr := NewAddr(0, 0).Short()
	const perHost = 30

	for h := 0; h < 2; h++ {
		h := h
		d := c.drivers[h]
		c.spawn(h, "incr", func(p *host.Proc) {
			if err := d.MapIn(p, RW, 0); err != nil {
				t.Errorf("mapin: %v", err)
				return
			}
			for i := 0; i < perHost; i++ {
				v, err := d.Load(p, RW, addr, 4)
				if err != nil {
					t.Errorf("load: %v", err)
					return
				}
				if err := d.Store(p, RW, addr, 4, v+1); err != nil {
					t.Errorf("store: %v", err)
					return
				}
			}
		})
	}
	c.run(t, 10*time.Minute)

	var final uint64
	c.spawn(0, "check", func(p *host.Proc) {
		final, _ = d0.Load(p, RW, addr, 4)
	})
	c.run(t, 11*time.Minute)
	if final != 2*perHost {
		t.Errorf("final counter = %d, want %d (lost updates)", final, 2*perHost)
	}
	c.checkInvariants(t)
}
