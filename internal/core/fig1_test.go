package core

import (
	"errors"
	"testing"
	"time"

	"mether/internal/ethernet"
	"mether/internal/host"
)

// TestFigure1Rules exercises every row of the paper's Figure 1 — "the
// rules for subspace operations" — with subset = the short page and
// superset = the containing full page.
func TestFigure1Rules(t *testing.T) {
	// Each subtest builds a two-host cluster where host0 owns page 0 with
	// non-trivial contents and host1 performs the operation under test.
	setup := func(t *testing.T) (*testCluster, *Driver, *Driver) {
		c := newTestCluster(t, 2, ethernet.DefaultParams(), fastConfig(4))
		d0, d1 := c.drivers[0], c.drivers[1]
		d0.CreatePage(0)
		c.spawn(0, "init", func(p *host.Proc) {
			_ = d0.MapIn(p, RW, 0)
			_ = d0.Store(p, RW, NewAddr(0, 0), 4, 11)
			_ = d0.Store(p, RW, NewAddr(0, 4000), 4, 22)
		})
		c.run(t, 200*time.Millisecond)
		return c, d0, d1
	}

	t.Run("mapping a page in: all subsets must be present, supersets need not be", func(t *testing.T) {
		c, _, d1 := setup(t)
		c.spawn(1, "map", func(p *host.Proc) {
			if err := d1.MapIn(p, RO, 0); err != nil {
				t.Errorf("MapIn: %v", err)
			}
		})
		c.run(t, 2*time.Second)
		s := d1.Snapshot(0)
		if !s.ShortPresent {
			t.Error("map-in did not make the subset (short page) present")
		}
		if s.RestPresent {
			t.Error("map-in fetched the superset; it need not be present")
		}
	})

	t.Run("pagein from the network: all subsets paged in, no supersets paged in", func(t *testing.T) {
		c, _, d1 := setup(t)
		// A short-view demand fault pages in exactly the subset.
		c.spawn(1, "r", func(p *host.Proc) {
			_ = d1.MapIn(p, RO, 0)
			if v, _ := d1.Load(p, RO, NewAddr(0, 0).Short(), 4); v != 11 {
				t.Errorf("short read = %d, want 11", v)
			}
		})
		c.run(t, 2*time.Second)
		s := d1.Snapshot(0)
		if !s.ShortPresent || s.RestPresent {
			t.Errorf("after short pagein: short=%v rest=%v; want subset only", s.ShortPresent, s.RestPresent)
		}
		// A full-view fault pages in all subsets (short + remainder).
		c.spawn(1, "r2", func(p *host.Proc) {
			if v, _ := d1.Load(p, RO, NewAddr(0, 4000), 4); v != 22 {
				t.Errorf("full read = %d, want 22", v)
			}
		})
		c.run(t, 4*time.Second)
		s = d1.Snapshot(0)
		if !s.ShortPresent || !s.RestPresent {
			t.Errorf("after full pagein: short=%v rest=%v; want all subsets", s.ShortPresent, s.RestPresent)
		}
	})

	t.Run("pageout: all subsets paged out, supersets left paged in but unmapped", func(t *testing.T) {
		c, _, d1 := setup(t)
		c.spawn(1, "prime", func(p *host.Proc) {
			_ = d1.MapIn(p, RO, 0)
			_, _ = d1.Load(p, RO, NewAddr(0, 4000), 4) // full pagein
		})
		c.run(t, 2*time.Second)

		// Pageout of the short page: subset out, superset stays resident
		// but unmapped.
		if err := d1.PageOut(NewAddr(0, 0).Short()); err != nil {
			t.Fatalf("pageout: %v", err)
		}
		s := d1.Snapshot(0)
		if s.ShortPresent {
			t.Error("short pageout left the subset present")
		}
		if !s.RestPresent {
			t.Error("short pageout evicted the superset remainder")
		}
		if !s.FullUnmapped {
			t.Error("superset should be left unmapped after subset pageout")
		}

		// Pageout of the full page: all subsets out.
		c2, _, e1 := setup(t)
		c2.spawn(1, "prime", func(p *host.Proc) {
			_ = e1.MapIn(p, RO, 0)
			_, _ = e1.Load(p, RO, NewAddr(0, 4000), 4)
		})
		c2.run(t, 2*time.Second)
		if err := e1.PageOut(NewAddr(0, 0)); err != nil {
			t.Fatalf("full pageout: %v", err)
		}
		s = e1.Snapshot(0)
		if s.ShortPresent || s.RestPresent {
			t.Error("full pageout did not evict all subsets")
		}
	})

	t.Run("lock: all subsets must be present else fail and mark wanted", func(t *testing.T) {
		c, _, d1 := setup(t)
		c.spawn(1, "locker", func(p *host.Proc) {
			_ = d1.MapIn(p, RW, 0) // short arrives, remainder does not
			err := d1.Lock(p, RW, NewAddr(0, 0))
			if !errors.Is(err, ErrLockFailed) {
				t.Errorf("lock with absent subset err = %v, want ErrLockFailed", err)
			}
			if s := d1.Snapshot(0); !s.WantRest {
				t.Error("failed lock did not mark the absent subset wanted")
			}
		})
		c.run(t, 2*time.Second)
	})

	t.Run("lock of subset: supersets must be present and are unmapped, not locked", func(t *testing.T) {
		c, _, d1 := setup(t)
		c.spawn(1, "locker", func(p *host.Proc) {
			_ = d1.MapIn(p, RO, 0)
			_, _ = d1.Load(p, RO, NewAddr(0, 4000), 4) // make superset present
			if err := d1.Lock(p, RO, NewAddr(0, 0).Short()); err != nil {
				t.Errorf("short lock with everything present: %v", err)
				return
			}
			s := d1.Snapshot(0)
			if !s.Locked {
				t.Error("lock did not take")
			}
			if !s.FullUnmapped {
				t.Error("superset not unmapped during subset lock")
			}
			if err := d1.Unlock(p, NewAddr(0, 0).Short()); err != nil {
				t.Errorf("unlock: %v", err)
			}
			if s := d1.Snapshot(0); s.FullUnmapped {
				t.Error("superset still unmapped after unlock")
			}
		})
		c.run(t, 2*time.Second)
	})

	t.Run("page fault: all subsets must be present, supersets need not be", func(t *testing.T) {
		c, _, d1 := setup(t)
		c.spawn(1, "r", func(p *host.Proc) {
			_ = d1.MapIn(p, RO, 0)
			// A full-view access at offset 10 needs the subset (short);
			// satisfying it must not require the superset remainder.
			if v, _ := d1.Load(p, RO, NewAddr(0, 10).Short(), 2); v != 0 {
				_ = v
			}
		})
		c.run(t, 2*time.Second)
		if s := d1.Snapshot(0); s.RestPresent {
			t.Error("fault on short view paged in the superset")
		}
	})

	t.Run("purge: all consistent subsets are purged, supersets are not affected", func(t *testing.T) {
		c, _, d1 := setup(t)
		c.spawn(1, "p", func(p *host.Proc) {
			_ = d1.MapIn(p, RO, 0)
			_, _ = d1.Load(p, RO, NewAddr(0, 4000), 4) // full present
			// Purging the short view invalidates the subset only.
			_ = d1.Purge(p, RO, NewAddr(0, 0).Short())
			s := d1.Snapshot(0)
			if s.ShortPresent {
				t.Error("short purge left subset present")
			}
			if !s.RestPresent {
				t.Error("short purge affected the superset")
			}
			// Re-fetch, then purge the full view: all subsets go.
			_, _ = d1.Load(p, RO, NewAddr(0, 0).Short(), 4)
			_ = d1.Purge(p, RO, NewAddr(0, 0))
			s = d1.Snapshot(0)
			if s.ShortPresent || s.RestPresent {
				t.Error("full purge did not invalidate all subsets")
			}
		})
		c.run(t, 4*time.Second)
	})
}
