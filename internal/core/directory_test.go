package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"mether/internal/ethernet"
	"mether/internal/host"
	"mether/internal/vm"
)

// TestFaultOnUntouchedPagePromotesShard pins the two-level directory's
// laziness boundary: a page nobody touched has no shard at all, a
// demand fault materializes exactly the shard it lives in (applying any
// recorded seed ranges on the way), and sibling shards stay nil.
func TestFaultOnUntouchedPagePromotesShard(t *testing.T) {
	pages := 4 * shardSize // four shards
	c := newTestCluster(t, 2, ethernet.DefaultParams(), fastConfig(pages))
	d0, d1 := c.drivers[0], c.drivers[1]

	// Owner creates one page per shard; d1 has touched nothing.
	var ids []vm.PageID
	for s := 0; s < 4; s++ {
		id := vm.PageID(s*shardSize + 7)
		d0.CreatePage(id)
		ids = append(ids, id)
	}
	for si, sh := range d1.shards {
		if sh != nil {
			t.Fatalf("untouched driver has shard %d materialized", si)
		}
	}

	// Warm-seed d1, then fault on the page in shard 2 only.
	d1.SeedReplicaRange(0, vm.PageID(pages))
	target := ids[2]
	var got uint64
	var loadErr error
	c.spawn(0, "writer", func(p *host.Proc) {
		if err := d0.MapIn(p, RW, target); err != nil {
			loadErr = err
			return
		}
		loadErr = d0.Store(p, RW, NewAddr(target, 0).Short(), 4, 99)
	})
	c.run(t, 100*time.Millisecond)
	c.spawn(1, "reader", func(p *host.Proc) {
		if err := d1.MapIn(p, RO, target); err != nil {
			loadErr = err
			return
		}
		got, loadErr = d1.Load(p, RO, NewAddr(target, 0).Short(), 4)
	})
	c.run(t, time.Second)
	if loadErr != nil {
		t.Fatalf("load: %v", loadErr)
	}
	// The seeded replica predates the owner's store; whether the store's
	// refresh broadcast beat the read is a protocol matter — what the
	// directory must guarantee is that exactly one shard materialized.
	_ = got
	for si, sh := range d1.shards {
		if si == 2 && sh == nil {
			t.Error("faulted shard not materialized")
		}
		if si != 2 && sh != nil {
			t.Errorf("shard %d materialized without any access", si)
		}
	}
	// peek must see what page() built, and nothing else.
	if d1.peek(target) == nil {
		t.Error("peek misses the materialized page")
	}
	if d1.peek(ids[3]) != nil {
		t.Error("peek materialized an untouched page")
	}
	c.checkInvariants(t)
}

// TestSeededReplicaStaysFlyweightUntilWritten pins the zero-page
// copy-on-write contract end to end: warm-seeding a replica costs no
// frame bytes (the range is just recorded), a read of the untouched
// page serves zeros from the shared zero page at tier 0, and only the
// owner's real store materializes backing bytes — on the owner.
func TestSeededReplicaStaysFlyweightUntilWritten(t *testing.T) {
	c := newTestCluster(t, 2, ethernet.DefaultParams(), fastConfig(8))
	d0, d1 := c.drivers[0], c.drivers[1]
	d0.CreatePage(3)
	d1.SeedReplicaRange(0, 8)

	// Owner side: CreatePage marks presence but writes nothing — the
	// frame must still be the zero flyweight.
	if tier := d0.page(3).frame.Tier(); tier != 0 {
		t.Fatalf("owner frame tier = %d before any store, want 0", tier)
	}

	// Replica side: materialize via seed, read zeros, stay tier 0.
	var got uint64
	var err error
	c.spawn(1, "reader", func(p *host.Proc) {
		if e := d1.MapIn(p, RO, 3); e != nil {
			err = e
			return
		}
		got, err = d1.Load(p, RO, NewAddr(3, 0).Short(), 4)
	})
	c.run(t, time.Second)
	if err != nil {
		t.Fatalf("seeded read: %v", err)
	}
	if got != 0 {
		t.Errorf("seeded replica read = %d, want 0", got)
	}
	if tier := d1.page(3).frame.Tier(); tier != 0 {
		t.Errorf("replica tier = %d after zero read, want 0 (flyweight)", tier)
	}

	// First write forks the owner's frame off the zero page; the purge
	// broadcast (passive update) then refreshes the seeded replica,
	// which must materialize real bytes only now.
	c.spawn(0, "writer", func(p *host.Proc) {
		if e := d0.MapIn(p, RW, 3); e != nil {
			err = e
			return
		}
		if e := d0.Store(p, RW, NewAddr(3, 4).Short(), 4, 0xCAFE); e != nil {
			err = e
			return
		}
		err = d0.Purge(p, RW, NewAddr(3, 4).Short())
	})
	c.run(t, 2*time.Second)
	if err != nil {
		t.Fatalf("store: %v", err)
	}
	if tier := d0.page(3).frame.Tier(); tier == 0 {
		t.Error("owner frame still tier 0 after store (write did not fork)")
	}
	var v uint64
	c.spawn(1, "reread", func(p *host.Proc) {
		v, err = d1.Load(p, RO, NewAddr(3, 4).Short(), 4)
	})
	c.run(t, 3*time.Second)
	if err != nil {
		t.Fatalf("reread: %v", err)
	}
	if v != 0xCAFE {
		t.Errorf("replica reread = %#x, want 0xCAFE", v)
	}
	c.checkInvariants(t)
}

// lazyDiffState is the per-driver observable state the differential
// test compares: every counter that feeds the gated report metrics,
// the fault-latency distribution, and the pages' final contents.
// Refreshes/Installs/StaleDrops are deliberately absent — they count
// per-replica materialization work, which is exactly what LazyReplicas
// elides for pages nobody mapped; everything a workload can observe
// through virtual time or page contents must still match.
func lazyDiffState(t *testing.T, c *testCluster, pages int) string {
	t.Helper()
	out := ""
	for i, d := range c.drivers {
		m := d.Metrics()
		out += fmt.Sprintf("d%d: faults=%d/%d req=%d retries=%d data=%d rest=%d lat=%d/%d\n",
			i, m.DemandFaults, m.DataFaults, m.RequestsSent, m.Retries, m.DataSent,
			m.RestSent, m.FaultLatency.Count(), m.FaultLatency.Mean())
	}
	// Final contents, read through the owner of each page (the
	// authoritative copy); owners are host id%len below.
	for pg := 0; pg < pages; pg++ {
		d := c.drivers[pg%len(c.drivers)]
		st := d.page(vm.PageID(pg))
		out += fmt.Sprintf("page%d gen=%d data=%x\n", pg, st.frame.Gen(), st.frame.Snapshot(true))
	}
	return out
}

// TestLazyReplicasDifferential is the gated receive path's proof
// obligation, in the style of ethernet/differential_test.go: on a
// windowed workload — every host maps only the pages it touches, which
// is the only configuration the grids enable LazyReplicas for — the
// lazy path must be observation-identical to the eager one. Same
// virtual clock, same per-driver metrics, same final page contents and
// generations, under randomized store/purge/sample interleavings. The
// only permitted difference is memory: the lazy world must not have
// materialized the pages nobody mapped.
func TestLazyReplicasDifferential(t *testing.T) {
	const hosts, rounds = 5, 40
	pages := hosts * 3 // one owned page per host + spare pages nobody maps
	rng := rand.New(rand.NewSource(7))
	// One shared op schedule, replayed identically on both worlds.
	type op struct {
		host int
		kind int // 0 = store+purge own, 1 = sample neighbour, 2 = plain load own
		val  uint32
	}
	var script []op
	for r := 0; r < rounds; r++ {
		script = append(script, op{
			host: rng.Intn(hosts), kind: rng.Intn(3), val: rng.Uint32(),
		})
	}

	runWorld := func(lazy bool) (*testCluster, time.Duration) {
		cfg := fastConfig(pages)
		cfg.LazyReplicas = lazy
		c := newTestCluster(t, hosts, ethernet.DefaultParams(), cfg)
		for i := 0; i < hosts; i++ {
			c.drivers[i].CreatePage(vm.PageID(i))
			c.drivers[i].SeedReplicaRange(0, vm.PageID(pages))
		}
		var err error
		for i := 0; i < hosts; i++ {
			i := i
			d := c.drivers[i]
			c.spawn(i, fmt.Sprintf("w%d", i), func(p *host.Proc) {
				own := NewAddr(vm.PageID(i), 0).Short()
				peer := NewAddr(vm.PageID((i+1)%hosts), 0).Short()
				if e := d.MapIn(p, RW, vm.PageID(i)); e != nil {
					err = e
					return
				}
				if e := d.MapIn(p, RO, vm.PageID((i+1)%hosts)); e != nil {
					err = e
					return
				}
				for _, o := range script {
					if o.host != i {
						continue
					}
					p.UseUser(50 * time.Microsecond)
					switch o.kind {
					case 0:
						if e := d.Store(p, RW, own, 4, uint64(o.val)); e != nil {
							err = e
							return
						}
						if e := d.Purge(p, RW, own); e != nil {
							err = e
							return
						}
					case 1:
						if e := d.Purge(p, RO, peer); e != nil {
							err = e
							return
						}
						if _, e := d.Load(p, RO, peer, 4); e != nil {
							err = e
							return
						}
					case 2:
						if _, e := d.Load(p, RW, own, 4); e != nil {
							err = e
							return
						}
					}
				}
			})
		}
		end := c.k.RunUntil(5 * time.Minute)
		if err != nil {
			t.Fatalf("lazy=%v: %v", lazy, err)
		}
		c.checkInvariants(t)
		return c, end
	}

	eager, eagerEnd := runWorld(false)
	lazyC, lazyEnd := runWorld(true)

	if eagerEnd != lazyEnd {
		t.Errorf("virtual end time diverged: eager %v, lazy %v", eagerEnd, lazyEnd)
	}
	eagerState := lazyDiffState(t, eager, pages)
	lazyState := lazyDiffState(t, lazyC, pages)
	if eagerState != lazyState {
		t.Errorf("observable state diverged:\n--- eager ---\n%s--- lazy ---\n%s", eagerState, lazyState)
	}

	// The payoff side: the spare pages (id >= hosts) are seeded but never
	// mapped by anyone, so the lazy world must not have built them on
	// non-owner hosts, while the eager world ingested their... nothing —
	// nobody writes them, so neither world should have them; the real
	// laziness shows on the owned pages' replicas at non-mapping hosts.
	// Host j maps pages j and j+1 only: page i must be unmaterialized on
	// every lazy host other than i-1, i, and the owner.
	for pg := 0; pg < hosts; pg++ {
		for j := 0; j < hosts; j++ {
			maps := j == pg || (j+1)%hosts == pg
			if maps || pg%hosts == j {
				continue
			}
			if lazyC.drivers[j].peek(vm.PageID(pg)) != nil {
				t.Errorf("lazy host %d materialized unmapped page %d", j, pg)
			}
		}
	}
}
