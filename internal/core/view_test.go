package core

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"mether/internal/ethernet"
	"mether/internal/host"
	"mether/internal/proto"
	"mether/internal/sim"
)

// viewFixture wires a bus, a shared view pool and two receiving drivers
// the way a world builder does, plus a bare transmit NIC.
type viewFixture struct {
	k    *sim.Kernel
	bus  *ethernet.Bus
	pool *ViewPool
	tx   *ethernet.NIC
	rx   [2]*ethernet.NIC
	d    [2]*Driver
}

func newViewFixture(t *testing.T) *viewFixture {
	t.Helper()
	f := &viewFixture{k: sim.New(1), pool: NewViewPool()}
	f.bus = ethernet.NewBus(f.k, ethernet.DefaultParams())
	f.bus.OnViewDrop(f.pool.Recycle)
	f.tx = f.bus.Attach("tx", nil)
	cfg := fastConfig(4)
	cfg.Views = f.pool
	for i := 0; i < 2; i++ {
		h := host.New(f.k, i, fmt.Sprintf("h%d", i), fastHostParams())
		f.rx[i] = f.bus.Attach(h.Name(), nil) // drained by hand in the test
		f.d[i] = New(h, f.rx[i], cfg)
	}
	t.Cleanup(f.k.Shutdown)
	return f
}

// broadcastAndRecv sends one payload and returns each receiver's frame.
func (f *viewFixture) broadcastAndRecv(t *testing.T, payload []byte) [2]ethernet.Frame {
	t.Helper()
	f.tx.Send(ethernet.Broadcast, payload)
	f.k.Run()
	var out [2]ethernet.Frame
	for i := range out {
		fr, ok := f.rx[i].Recv()
		if !ok {
			t.Fatalf("receiver %d got no frame", i)
		}
		out[i] = fr
	}
	return out
}

// TestDecodeOnceSharesTheParse: the first receiver's parse is attached
// to the shared buffer and later receivers reuse it rather than
// re-reading the wire bytes — proven by corrupting the payload after
// the first decode, which a re-parse could not survive.
func TestDecodeOnceSharesTheParse(t *testing.T) {
	f := newViewFixture(t)
	wire, err := proto.Encode(proto.Packet{Type: proto.TypeRequest, Page: 3, Short: true, From: 7, OwnerTo: proto.NoOwner, ReqID: 9})
	if err != nil {
		t.Fatal(err)
	}
	frames := f.broadcastAndRecv(t, wire)

	pkt0, err := f.d[0].decodeFrame(frames[0])
	if err != nil {
		t.Fatalf("first decode: %v", err)
	}
	if frames[0].View() == nil || frames[1].View() == nil {
		t.Fatal("decode did not attach a view to the shared buffer")
	}
	// Corrupt the wire bytes: only a cached parse survives this.
	frames[1].Payload[0] = 0xFF
	pkt1, err := f.d[1].decodeFrame(frames[1])
	if err != nil {
		t.Fatalf("second decode should reuse the cached parse, got %v", err)
	}
	if !reflect.DeepEqual(pkt0, pkt1) {
		t.Fatalf("receivers decoded different packets: %+v vs %+v", pkt0, pkt1)
	}
	if pkt1.Page != 3 || pkt1.From != 7 || pkt1.ReqID != 9 || !pkt1.Short {
		t.Fatalf("cached packet wrong: %+v", pkt1)
	}
}

// TestDecodeOnceCachesFailures: a malformed broadcast is parsed (and
// rejected) once; later receivers get the identical cached error.
func TestDecodeOnceCachesFailures(t *testing.T) {
	f := newViewFixture(t)
	frames := f.broadcastAndRecv(t, []byte{0xBA, 0xD0, 0x00, 0x00, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	_, err0 := f.d[0].decodeFrame(frames[0])
	_, err1 := f.d[1].decodeFrame(frames[1])
	if !errors.Is(err0, proto.ErrMalformed) {
		t.Fatalf("err0 = %v, want ErrMalformed", err0)
	}
	if err0 != err1 {
		t.Fatalf("second receiver re-parsed: %v vs cached %v", err1, err0)
	}
}

// TestDecodeOnceViewsRecycle: releasing every receiver returns the view
// to the pool, and the buffer's next transmission decodes fresh from a
// recycled view instead of allocating.
func TestDecodeOnceViewsRecycle(t *testing.T) {
	f := newViewFixture(t)
	wire, err := proto.Encode(proto.Packet{Type: proto.TypeRequest, Page: 1, From: 0, OwnerTo: proto.NoOwner})
	if err != nil {
		t.Fatal(err)
	}
	frames := f.broadcastAndRecv(t, wire)
	if _, err := f.d[0].decodeFrame(frames[0]); err != nil {
		t.Fatal(err)
	}
	first := frames[0].View()
	f.rx[0].Release(frames[0])
	if n := len(f.pool.free); n != 0 {
		t.Fatalf("view recycled while receiver 1 still held the buffer (pool %d)", n)
	}
	f.rx[1].Release(frames[1])
	if n := len(f.pool.free); n != 1 {
		t.Fatalf("pool holds %d views after full release, want 1", n)
	}

	frames = f.broadcastAndRecv(t, wire)
	if frames[0].View() != nil {
		t.Fatal("stale view survived buffer recycling")
	}
	if _, err := f.d[1].decodeFrame(frames[0]); err != nil {
		t.Fatal(err)
	}
	if frames[0].View() != first {
		t.Error("decode did not reuse the recycled view")
	}
	if n := len(f.pool.free); n != 0 {
		t.Errorf("pool holds %d views mid-flight, want 0", n)
	}
}
