package core

import (
	"testing"
	"testing/quick"

	"mether/internal/vm"
)

func TestAddrBasics(t *testing.T) {
	a := NewAddr(5, 100)
	if a.Page() != 5 || a.Offset() != 100 {
		t.Errorf("page/offset = %d/%d, want 5/100", a.Page(), a.Offset())
	}
	if a.IsShort() || a.IsData() {
		t.Error("base address must be full-space, demand-driven")
	}
}

// TestAddressSpaceLayout verifies the Figure-2 property: the four views
// of a page are aliases selected purely by address bits, and the short
// space completely overlays the full space.
func TestAddressSpaceLayout(t *testing.T) {
	base := NewAddr(9, 16)
	views := []struct {
		name  string
		addr  Addr
		short bool
		data  bool
	}{
		{"full demand", base, false, false},
		{"short demand", base.Short(), true, false},
		{"full data", base.DataDriven(), false, true},
		{"short data", base.Short().DataDriven(), true, true},
	}
	for _, v := range views {
		t.Run(v.name, func(t *testing.T) {
			if v.addr.Page() != base.Page() || v.addr.Offset() != base.Offset() {
				t.Error("view bits changed the page/offset")
			}
			if v.addr.IsShort() != v.short || v.addr.IsData() != v.data {
				t.Errorf("IsShort/IsData = %v/%v, want %v/%v",
					v.addr.IsShort(), v.addr.IsData(), v.short, v.data)
			}
			if !v.addr.SamePage(base) {
				t.Error("view does not alias the same page")
			}
		})
	}
}

func TestAddrViewTransitionsInvert(t *testing.T) {
	a := NewAddr(3, 8).Short().DataDriven()
	if b := a.Full(); b.IsShort() {
		t.Error("Full() did not clear the short bit")
	}
	if b := a.Demand(); b.IsData() {
		t.Error("Demand() did not clear the data bit")
	}
	if a.Short().Short() != a {
		t.Error("Short() is not idempotent")
	}
}

func TestViewLimit(t *testing.T) {
	a := NewAddr(0, 0)
	if a.ViewLimit() != vm.PageSize {
		t.Errorf("full view limit = %d, want %d", a.ViewLimit(), vm.PageSize)
	}
	if a.Short().ViewLimit() != vm.ShortSize {
		t.Errorf("short view limit = %d, want %d", a.Short().ViewLimit(), vm.ShortSize)
	}
}

func TestCheckAccess(t *testing.T) {
	tests := []struct {
		name string
		a    Addr
		size int
		ok   bool
	}{
		{"full in range", NewAddr(0, 8000), 4, true},
		{"full at end", NewAddr(0, vm.PageSize-8), 8, true},
		{"short in range", NewAddr(0, 28).Short(), 4, true},
		{"short crossing boundary", NewAddr(0, 30).Short(), 4, false},
		{"short beyond", NewAddr(0, 32).Short(), 1, false},
		{"zero size", NewAddr(0, 0), 0, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.a.CheckAccess(tt.size)
			if (err == nil) != tt.ok {
				t.Errorf("CheckAccess err = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestNewAddrPanicsOutOfRange(t *testing.T) {
	for _, fn := range []func(){
		func() { NewAddr(addrPageMax, 0) },
		func() { NewAddr(0, vm.PageSize) },
		func() { NewAddr(0, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range address")
				}
			}()
			fn()
		}()
	}
}

func TestAddrString(t *testing.T) {
	s := NewAddr(7, 16).Short().DataDriven().String()
	if s != "page 7+0x10 [short,data]" {
		t.Errorf("String() = %q", s)
	}
}

// Property: codec round-trips for every page/offset, and view bits never
// leak into page/offset decoding.
func TestAddrRoundTripProperty(t *testing.T) {
	prop := func(page uint32, off uint16, short, data bool) bool {
		p := vm.PageID(page % addrPageMax)
		o := int(off) % vm.PageSize
		a := NewAddr(p, o)
		if short {
			a = a.Short()
		}
		if data {
			a = a.DataDriven()
		}
		return a.Page() == p && a.Offset() == o &&
			a.IsShort() == short && a.IsData() == data
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
