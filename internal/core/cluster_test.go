package core

import (
	"fmt"
	"testing"
	"time"

	"mether/internal/ethernet"
	"mether/internal/host"
	"mether/internal/sim"
)

// testCluster wires kernel + bus + hosts + drivers for driver-level tests.
type testCluster struct {
	k       *sim.Kernel
	bus     *ethernet.Bus
	hosts   []*host.Host
	drivers []*Driver
}

// fastHostParams keeps simulated runs short for unit tests.
func fastHostParams() host.Params {
	return host.Params{
		Quantum:         10 * time.Millisecond,
		CtxSwitch:       200 * time.Microsecond,
		DispatchLatency: 50 * time.Microsecond,
		TrapCost:        100 * time.Microsecond,
		SyscallCost:     50 * time.Microsecond,
		InterruptCost:   50 * time.Microsecond,
	}
}

func fastConfig(pages int) Config {
	return Config{
		NumPages:     pages,
		RetryTimeout: 50 * time.Millisecond,
		PacketCost:   200 * time.Microsecond,
		ByteCost:     100 * time.Nanosecond,
	}
}

func newTestCluster(t *testing.T, n int, ep ethernet.Params, cfg Config) *testCluster {
	t.Helper()
	c := &testCluster{k: sim.New(42)}
	c.bus = ethernet.NewBus(c.k, ep)
	for i := 0; i < n; i++ {
		h := host.New(c.k, i, fmt.Sprintf("h%d", i), fastHostParams())
		var d *Driver
		nic := c.bus.Attach(fmt.Sprintf("h%d", i), func() { d.FrameArrived() })
		d = New(h, nic, cfg)
		d.StartServer()
		c.hosts = append(c.hosts, h)
		c.drivers = append(c.drivers, d)
	}
	t.Cleanup(func() { c.k.Shutdown() })
	return c
}

// run drives the simulation until quiescence or the deadline.
func (c *testCluster) run(t *testing.T, deadline time.Duration) {
	t.Helper()
	c.k.RunUntil(deadline)
}

// spawn starts a client process on host i.
func (c *testCluster) spawn(i int, name string, fn func(p *host.Proc)) *host.Proc {
	return c.hosts[i].Spawn(name, fn)
}

// checkInvariants asserts the cluster-wide ownership invariants.
func (c *testCluster) checkInvariants(t *testing.T) {
	t.Helper()
	if err := CheckInvariants(c.drivers...); err != nil {
		t.Errorf("invariant violation: %v", err)
	}
}
