package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"mether/internal/ethernet"
	"mether/internal/host"
	"mether/internal/proto"
	"mether/internal/vm"
)

func TestDemandReadFetchesShortCopy(t *testing.T) {
	c := newTestCluster(t, 2, ethernet.DefaultParams(), fastConfig(4))
	d0, d1 := c.drivers[0], c.drivers[1]
	d0.CreatePage(0)
	addr := NewAddr(0, 8).Short()

	var got uint64
	var readErr error
	c.spawn(0, "writer", func(p *host.Proc) {
		if err := d0.MapIn(p, RW, 0); err != nil {
			readErr = err
			return
		}
		if err := d0.Store(p, RW, addr, 4, 12345); err != nil {
			readErr = err
		}
	})
	c.run(t, 100*time.Millisecond)

	c.spawn(1, "reader", func(p *host.Proc) {
		if err := d1.MapIn(p, RO, 0); err != nil {
			readErr = err
			return
		}
		got, readErr = d1.Load(p, RO, addr, 4)
	})
	c.run(t, time.Second)

	if readErr != nil {
		t.Fatalf("read: %v", readErr)
	}
	if got != 12345 {
		t.Errorf("remote read = %d, want 12345", got)
	}
	snap := d1.Snapshot(0)
	if !snap.ShortPresent {
		t.Error("short copy not resident after demand read")
	}
	if snap.RestPresent {
		t.Error("short fault paged in the superset remainder")
	}
	if snap.Owner {
		t.Error("read-only fetch must not move the consistent copy")
	}
	c.checkInvariants(t)
}

func TestWriteFaultMovesConsistentCopy(t *testing.T) {
	c := newTestCluster(t, 2, ethernet.DefaultParams(), fastConfig(4))
	d0, d1 := c.drivers[0], c.drivers[1]
	d0.CreatePage(0)
	addr := NewAddr(0, 0).Short()

	var err0, err1 error
	c.spawn(0, "a", func(p *host.Proc) {
		if err0 = d0.MapIn(p, RW, 0); err0 != nil {
			return
		}
		err0 = d0.Store(p, RW, addr, 4, 7)
	})
	c.run(t, 100*time.Millisecond)
	c.spawn(1, "b", func(p *host.Proc) {
		if err1 = d1.MapIn(p, RW, 0); err1 != nil {
			return
		}
		err1 = d1.Store(p, RW, addr, 4, 8)
	})
	c.run(t, time.Second)

	if err0 != nil || err1 != nil {
		t.Fatalf("errors: %v / %v", err0, err1)
	}
	if !d1.Snapshot(0).Owner {
		t.Error("host1 should own the page after its write")
	}
	if d0.Snapshot(0).Owner {
		t.Error("host0 should have lost ownership")
	}
	if !d0.Snapshot(0).ShortPresent {
		t.Error("host0 should keep an inconsistent resident copy")
	}
	c.checkInvariants(t)

	// The broadcast transfer carried value 7; host0's resident copy was
	// refreshed by the transit and shows the pre-steal value.
	var v uint64
	c.spawn(0, "check", func(p *host.Proc) {
		_ = d0.MapIn(p, RO, 0)
		v, _ = d0.Load(p, RO, addr, 4)
	})
	c.run(t, 2*time.Second)
	if v != 7 {
		t.Errorf("host0 inconsistent copy = %d, want 7 (refreshed at transfer)", v)
	}
}

func TestSnoopyRefreshOfThirdParty(t *testing.T) {
	c := newTestCluster(t, 3, ethernet.DefaultParams(), fastConfig(4))
	d0, d1, d2 := c.drivers[0], c.drivers[1], c.drivers[2]
	d0.CreatePage(0)
	addr := NewAddr(0, 0).Short()

	var v2 uint64
	// Host0 writes 1; host2 reads it (gets a resident inconsistent copy).
	c.spawn(0, "w", func(p *host.Proc) {
		_ = d0.MapIn(p, RW, 0)
		_ = d0.Store(p, RW, addr, 4, 1)
	})
	c.run(t, 100*time.Millisecond)
	c.spawn(2, "r2", func(p *host.Proc) {
		_ = d2.MapIn(p, RO, 0)
		v2, _ = d2.Load(p, RO, addr, 4)
	})
	c.run(t, time.Second)
	if v2 != 1 {
		t.Fatalf("host2 initial read = %d, want 1", v2)
	}

	// Host0 writes 2, then host1 steals the page; the broadcast transfer
	// must snoopily refresh host2's resident copy to 2.
	c.spawn(0, "w2", func(p *host.Proc) {
		_ = d0.Store(p, RW, addr, 4, 2)
	})
	c.run(t, 1100*time.Millisecond)
	c.spawn(1, "steal", func(p *host.Proc) {
		_ = d1.MapIn(p, RW, 0)
		_, _ = d1.Load(p, RW, addr, 4)
	})
	c.run(t, 2*time.Second)

	c.spawn(2, "r2b", func(p *host.Proc) {
		v2, _ = d2.Load(p, RO, addr, 4)
	})
	c.run(t, 3*time.Second)
	if v2 != 2 {
		t.Errorf("host2 copy after transit = %d, want 2 (snoopy refresh)", v2)
	}
	if got := d2.Metrics().Refreshes; got == 0 {
		t.Error("expected at least one snoopy refresh on host2")
	}
	c.checkInvariants(t)
}

func TestDataDrivenFaultBlocksUntilTransit(t *testing.T) {
	c := newTestCluster(t, 2, ethernet.DefaultParams(), fastConfig(4))
	d0, d1 := c.drivers[0], c.drivers[1]
	d0.CreatePage(0)
	addr := NewAddr(0, 0).Short()

	var readAt time.Duration
	var got uint64
	c.spawn(1, "datareader", func(p *host.Proc) {
		_ = d1.MapIn(p, RO, 0)
		// Purge whatever MapIn fetched, then touch the data-driven view:
		// this must block with no request sent ("Deal Me In" pattern).
		_ = d1.Purge(p, RO, addr)
		got, _ = d1.Load(p, RO, addr.DataDriven(), 4)
		readAt = p.Now()
	})
	// Run long enough that a demand fault would long since have fetched.
	c.run(t, 500*time.Millisecond)
	if readAt != 0 {
		t.Fatalf("data-driven read completed at %v without any transit", readAt)
	}
	reqsBefore := d1.Metrics().RequestsSent

	// Now the owner writes and purges: the broadcast satisfies the fault.
	c.spawn(0, "writer", func(p *host.Proc) {
		_ = d0.MapIn(p, RW, 0)
		_ = d0.Store(p, RW, addr, 4, 99)
		_ = d0.Purge(p, RW, addr)
	})
	c.run(t, time.Second)

	if readAt == 0 {
		t.Fatal("data-driven fault never satisfied by the purge broadcast")
	}
	if got != 99 {
		t.Errorf("data-driven read = %d, want 99", got)
	}
	if d1.Metrics().RequestsSent != reqsBefore {
		t.Errorf("data-driven fault sent %d extra request(s); must be passive",
			d1.Metrics().RequestsSent-reqsBefore)
	}
	c.checkInvariants(t)
}

func TestPurgeReadOnlyInvalidatesAndRefetches(t *testing.T) {
	c := newTestCluster(t, 2, ethernet.DefaultParams(), fastConfig(4))
	d0, d1 := c.drivers[0], c.drivers[1]
	d0.CreatePage(0)
	addr := NewAddr(0, 0).Short()

	var first, second uint64
	c.spawn(0, "w", func(p *host.Proc) {
		_ = d0.MapIn(p, RW, 0)
		_ = d0.Store(p, RW, addr, 4, 10)
	})
	c.run(t, 100*time.Millisecond)
	c.spawn(1, "r", func(p *host.Proc) {
		_ = d1.MapIn(p, RO, 0)
		first, _ = d1.Load(p, RO, addr, 4)
	})
	c.run(t, time.Second)

	// Owner silently updates (no purge): reader's copy is now stale.
	c.spawn(0, "w2", func(p *host.Proc) {
		_ = d0.Store(p, RW, addr, 4, 20)
	})
	c.run(t, 1100*time.Millisecond)

	c.spawn(1, "r2", func(p *host.Proc) {
		// Still stale without purge...
		stale, _ := d1.Load(p, RO, addr, 4)
		if stale != 10 {
			t.Errorf("read before purge = %d, want stale 10", stale)
		}
		// ...but purge + refetch (the active update) gets fresh data.
		_ = d1.Purge(p, RO, addr)
		second, _ = d1.Load(p, RO, addr, 4)
	})
	c.run(t, 2*time.Second)

	if first != 10 || second != 20 {
		t.Errorf("reads = %d, %d; want 10 then 20", first, second)
	}
	if d1.Metrics().PurgesRO == 0 {
		t.Error("read-only purge not counted")
	}
	c.checkInvariants(t)
}

func TestPurgeWritableBroadcastsAndBlocks(t *testing.T) {
	c := newTestCluster(t, 2, ethernet.DefaultParams(), fastConfig(4))
	d0, d1 := c.drivers[0], c.drivers[1]
	d0.CreatePage(0)
	addr := NewAddr(0, 0).Short()

	// Give host1 a resident copy first.
	c.spawn(1, "prime", func(p *host.Proc) {
		_ = d1.MapIn(p, RO, 0)
		_, _ = d1.Load(p, RO, addr, 4)
	})
	c.run(t, 500*time.Millisecond)

	dataSentBefore := d0.Metrics().DataSent
	c.spawn(0, "w", func(p *host.Proc) {
		_ = d0.MapIn(p, RW, 0)
		_ = d0.Store(p, RW, addr, 4, 77)
		_ = d0.Purge(p, RW, addr) // blocks until DO-PURGE
		if d0.Snapshot(0).PurgePending {
			t.Error("purge returned while still pending")
		}
	})
	c.run(t, time.Second)

	if d0.Metrics().PurgeSends != 1 {
		t.Errorf("purge sends = %d, want 1", d0.Metrics().PurgeSends)
	}
	if d0.Metrics().DataSent != dataSentBefore+1 {
		t.Errorf("data sent = %d, want exactly one broadcast", d0.Metrics().DataSent-dataSentBefore)
	}
	// Host1's resident copy must have been refreshed passively.
	var v uint64
	c.spawn(1, "check", func(p *host.Proc) {
		v, _ = d1.Load(p, RO, addr, 4)
	})
	c.run(t, 2*time.Second)
	if v != 77 {
		t.Errorf("host1 copy after purge broadcast = %d, want 77", v)
	}
	if d0.Snapshot(0).Owner != true {
		t.Error("writable purge must not give up ownership")
	}
	c.checkInvariants(t)
}

func TestPurgeReadOnlyViewOfOwnedPageIsNoop(t *testing.T) {
	// The fourth-protocol pathology: purging your own consistent copy
	// through a read-only view does nothing, so you keep sampling your
	// own unchanged value.
	c := newTestCluster(t, 1, ethernet.DefaultParams(), fastConfig(4))
	d0 := c.drivers[0]
	d0.CreatePage(0)
	addr := NewAddr(0, 0).Short()
	c.spawn(0, "p", func(p *host.Proc) {
		_ = d0.MapIn(p, RW, 0)
		_ = d0.MapIn(p, RO, 0)
		_ = d0.Store(p, RW, addr, 4, 5)
		_ = d0.Purge(p, RO, addr)
		if !d0.Snapshot(0).ShortPresent {
			t.Error("read-only purge discarded the only consistent copy")
		}
		v, err := d0.Load(p, RO, addr, 4)
		if err != nil || v != 5 {
			t.Errorf("read after no-op purge = %d, %v; want 5", v, err)
		}
	})
	c.run(t, time.Second)
	c.checkInvariants(t)
}

func TestStoreThroughReadOnlyViewFails(t *testing.T) {
	c := newTestCluster(t, 1, ethernet.DefaultParams(), fastConfig(4))
	d0 := c.drivers[0]
	d0.CreatePage(0)
	addr := NewAddr(0, 0)
	c.spawn(0, "p", func(p *host.Proc) {
		_ = d0.MapIn(p, RO, 0)
		if err := d0.Store(p, RO, addr, 4, 1); !errors.Is(err, ErrReadOnly) {
			t.Errorf("store via RO err = %v, want ErrReadOnly", err)
		}
	})
	c.run(t, time.Second)
}

func TestConsistentSpaceIsDemandOnly(t *testing.T) {
	// Paper note 2: "the consistent space can only be demand-driven."
	c := newTestCluster(t, 1, ethernet.DefaultParams(), fastConfig(4))
	d0 := c.drivers[0]
	d0.CreatePage(0)
	addr := NewAddr(0, 0).DataDriven()
	c.spawn(0, "p", func(p *host.Proc) {
		_ = d0.MapIn(p, RW, 0)
		if _, err := d0.Load(p, RW, addr, 4); !errors.Is(err, ErrInvalidView) {
			t.Errorf("data-driven consistent load err = %v, want ErrInvalidView", err)
		}
		if err := d0.Store(p, RW, addr, 4, 1); !errors.Is(err, ErrInvalidView) {
			t.Errorf("data-driven consistent store err = %v, want ErrInvalidView", err)
		}
	})
	c.run(t, time.Second)
}

func TestUnmappedAccessFails(t *testing.T) {
	c := newTestCluster(t, 1, ethernet.DefaultParams(), fastConfig(4))
	d0 := c.drivers[0]
	d0.CreatePage(0)
	c.spawn(0, "p", func(p *host.Proc) {
		if _, err := d0.Load(p, RO, NewAddr(0, 0), 4); !errors.Is(err, ErrNotMapped) {
			t.Errorf("unmapped load err = %v, want ErrNotMapped", err)
		}
	})
	c.run(t, time.Second)
}

func TestShortViewBoundsChecked(t *testing.T) {
	c := newTestCluster(t, 1, ethernet.DefaultParams(), fastConfig(4))
	d0 := c.drivers[0]
	d0.CreatePage(0)
	c.spawn(0, "p", func(p *host.Proc) {
		_ = d0.MapIn(p, RO, 0)
		// Offset 30 size 4 crosses the 32-byte short boundary.
		a := NewAddr(0, 30).Short()
		if _, err := d0.Load(p, RO, a, 4); !errors.Is(err, vm.ErrBadAccess) {
			t.Errorf("short overflow err = %v, want ErrBadAccess", err)
		}
	})
	c.run(t, time.Second)
}

func TestRestFetchAfterShortOwnershipTransfer(t *testing.T) {
	c := newTestCluster(t, 2, ethernet.DefaultParams(), fastConfig(4))
	d0, d1 := c.drivers[0], c.drivers[1]
	d0.CreatePage(0)
	shortA := NewAddr(0, 0).Short()
	deepA := NewAddr(0, 4000) // beyond the short region

	var deepVal uint64
	c.spawn(0, "w", func(p *host.Proc) {
		_ = d0.MapIn(p, RW, 0)
		_ = d0.Store(p, RW, deepA, 4, 31337) // value in the remainder
		_ = d0.Store(p, RW, shortA, 4, 1)
	})
	c.run(t, 100*time.Millisecond)

	// Host1 takes ownership via the short view only.
	c.spawn(1, "steal-short", func(p *host.Proc) {
		_ = d1.MapIn(p, RW, 0)
		_ = d1.Store(p, RW, shortA, 4, 2)
	})
	c.run(t, time.Second)

	s1 := d1.Snapshot(0)
	if !s1.Owner || s1.RestPresent {
		t.Fatalf("after short steal: owner=%v restPresent=%v; want owner without rest", s1.Owner, s1.RestPresent)
	}
	if !d0.Snapshot(0).RestOwner {
		t.Fatal("host0 must remain rest-owner after a short transfer")
	}
	c.checkInvariants(t)

	// Now host1 reads beyond the short region: a rest-fetch must pull the
	// authoritative remainder (including 31337) from host0.
	c.spawn(1, "deep-read", func(p *host.Proc) {
		deepVal, _ = d1.Load(p, RW, deepA, 4)
	})
	c.run(t, 2*time.Second)

	if deepVal != 31337 {
		t.Errorf("deep read = %d, want 31337 via rest-fetch", deepVal)
	}
	s1 = d1.Snapshot(0)
	if !s1.RestOwner || !s1.RestPresent {
		t.Error("rest authority did not transfer with the rest-fetch")
	}
	if d0.Snapshot(0).RestOwner {
		t.Error("host0 still claims rest authority")
	}
	if d1.Metrics().RestSent+d0.Metrics().RestSent == 0 {
		t.Error("no rest data packet was sent")
	}
	c.checkInvariants(t)
}

func TestLockDefersRemoteSteal(t *testing.T) {
	c := newTestCluster(t, 2, ethernet.DefaultParams(), fastConfig(4))
	d0, d1 := c.drivers[0], c.drivers[1]
	d0.CreatePage(0)
	addr := NewAddr(0, 0)

	var stealDone time.Duration
	var unlockAt time.Duration
	c.spawn(0, "locker", func(p *host.Proc) {
		_ = d0.MapIn(p, RW, 0)
		if err := d0.Lock(p, RW, addr); err != nil {
			t.Errorf("lock: %v", err)
			return
		}
		// Hold the lock for a long time while the remote tries to steal.
		p.SleepFor(300 * time.Millisecond)
		_ = d0.Store(p, RW, addr, 4, 42)
		unlockAt = p.Now()
		_ = d0.Unlock(p, addr)
	})
	c.spawn(1, "stealer", func(p *host.Proc) {
		p.SleepFor(50 * time.Millisecond) // let the lock happen first
		_ = d1.MapIn(p, RW, 0)
		v, err := d1.Load(p, RW, addr, 4)
		if err != nil {
			t.Errorf("steal load: %v", err)
		}
		if v != 42 {
			t.Errorf("steal read %d, want 42 (written under lock)", v)
		}
		stealDone = p.Now()
	})
	c.run(t, 5*time.Second)

	if stealDone == 0 {
		t.Fatal("steal never completed")
	}
	if stealDone < unlockAt {
		t.Errorf("steal done %v before unlock %v; lock did not defer", stealDone, unlockAt)
	}
	if d0.Metrics().Deferred == 0 {
		t.Error("no deferred request recorded")
	}
	c.checkInvariants(t)
}

func TestLockFailsWithAbsentPiecesAndMarksWanted(t *testing.T) {
	c := newTestCluster(t, 2, ethernet.DefaultParams(), fastConfig(4))
	d0, d1 := c.drivers[0], c.drivers[1]
	d0.CreatePage(0)
	addr := NewAddr(0, 0)

	var firstErr error
	var retryOK bool
	c.spawn(1, "locker", func(p *host.Proc) {
		_ = d1.MapIn(p, RW, 0) // fetches short only
		firstErr = d1.Lock(p, RW, addr)
		// The failed lock marked the remainder wanted; wait for the
		// background fetch, then retry.
		for i := 0; i < 100; i++ {
			p.SleepFor(20 * time.Millisecond)
			if d1.Snapshot(0).RestPresent {
				break
			}
		}
		if err := d1.Lock(p, RW, addr); err == nil {
			retryOK = true
			_ = d1.Unlock(p, addr)
		}
	})
	c.run(t, 5*time.Second)

	if !errors.Is(firstErr, ErrLockFailed) {
		t.Errorf("first lock err = %v, want ErrLockFailed", firstErr)
	}
	if !retryOK {
		t.Error("retry lock failed even after wanted pieces arrived")
	}
	if d1.Metrics().LockFails == 0 {
		t.Error("lock failure not counted")
	}
	c.checkInvariants(t)
}

func TestRetryRecoversFromLostRequest(t *testing.T) {
	ep := ethernet.DefaultParams()
	ep.LossRate = 0.4 // heavy loss; retries must still converge
	c := newTestCluster(t, 2, ep, fastConfig(4))
	d0, d1 := c.drivers[0], c.drivers[1]
	d0.CreatePage(0)
	addr := NewAddr(0, 0).Short()

	var got uint64
	var done bool
	c.spawn(0, "w", func(p *host.Proc) {
		_ = d0.MapIn(p, RW, 0)
		_ = d0.Store(p, RW, addr, 4, 555)
	})
	c.run(t, 100*time.Millisecond)
	c.spawn(1, "r", func(p *host.Proc) {
		_ = d1.MapIn(p, RO, 0)
		got, _ = d1.Load(p, RO, addr, 4)
		done = true
	})
	c.run(t, 30*time.Second)

	if !done {
		t.Fatal("read never completed despite retries")
	}
	if got != 555 {
		t.Errorf("read = %d, want 555", got)
	}
	c.checkInvariants(t)
}

func TestOwnershipGrantRetransmitOnLoss(t *testing.T) {
	// Force the first grant to be lost, then verify the grantee's retry
	// recovers ownership (the grantedTo path).
	ep := ethernet.DefaultParams()
	ep.LossRate = 0.5
	c := newTestCluster(t, 2, ep, fastConfig(4))
	d0, d1 := c.drivers[0], c.drivers[1]
	d0.CreatePage(0)
	addr := NewAddr(0, 0).Short()

	var done bool
	c.spawn(1, "w", func(p *host.Proc) {
		_ = d1.MapIn(p, RW, 0)
		if err := d1.Store(p, RW, addr, 4, 9); err == nil {
			done = true
		}
	})
	c.run(t, 60*time.Second)
	if !done {
		t.Fatal("write never completed under loss")
	}
	if !d1.Snapshot(0).Owner {
		t.Error("grantee did not end up owner")
	}
	c.checkInvariants(t)
}

func TestFaultLatencyRecorded(t *testing.T) {
	c := newTestCluster(t, 2, ethernet.DefaultParams(), fastConfig(4))
	d0, d1 := c.drivers[0], c.drivers[1]
	d0.CreatePage(0)
	addr := NewAddr(0, 0).Short()
	c.spawn(1, "r", func(p *host.Proc) {
		_ = d1.MapIn(p, RO, 0)
		_, _ = d1.Load(p, RO, addr, 4)
	})
	c.run(t, time.Second)
	m := d1.Metrics()
	if m.FaultLatency.Count() == 0 {
		t.Fatal("no fault latency samples recorded")
	}
	if m.FaultLatency.Mean() <= 0 {
		t.Error("fault latency mean should be positive")
	}
	if m.DemandFaults == 0 {
		t.Error("demand faults not counted")
	}
}

func TestLocalAccessAfterOwnershipIsFaultFree(t *testing.T) {
	c := newTestCluster(t, 1, ethernet.DefaultParams(), fastConfig(4))
	d0 := c.drivers[0]
	d0.CreatePage(0)
	addr := NewAddr(0, 0).Short()
	c.spawn(0, "p", func(p *host.Proc) {
		_ = d0.MapIn(p, RW, 0)
		before := d0.Metrics().DemandFaults
		for i := 0; i < 100; i++ {
			_ = d0.Store(p, RW, addr, 4, uint64(i))
			v, _ := d0.Load(p, RW, addr, 4)
			if v != uint64(i) {
				t.Errorf("local rw read = %d, want %d", v, i)
			}
		}
		if d0.Metrics().DemandFaults != before {
			t.Error("local owned accesses should not fault")
		}
	})
	c.run(t, time.Second)
}

func TestDuplicateGrantDoesNotRegressOwner(t *testing.T) {
	// A retransmitted ownership grant arriving after the new owner has
	// already written must not roll the consistent copy back.
	c := newTestCluster(t, 2, ethernet.DefaultParams(), fastConfig(4))
	d0, d1 := c.drivers[0], c.drivers[1]
	d0.CreatePage(0)
	addr := NewAddr(0, 0).Short()

	// Prime: host1 takes ownership and writes 5.
	c.spawn(1, "w", func(p *host.Proc) {
		_ = d1.MapIn(p, RW, 0)
		_ = d1.Store(p, RW, addr, 4, 5)
	})
	c.run(t, 2*time.Second)
	if !d1.Snapshot(0).Owner {
		t.Fatal("setup: host1 not owner")
	}
	genAfterWrite := d1.Snapshot(0).Gen

	// Replay the original grant (value 0, older generation) as a
	// duplicate broadcast addressed to host1, sent through host0's NIC.
	dup := buildDataPacket(t, 0, true, 1, 0, make([]byte, vm.ShortSize))
	c.k.At(c.k.Now()+2*time.Millisecond, "send dup", func() {
		d0.nic.Send(-1, dup)
	})
	c.run(t, 4*time.Second)

	s := d1.Snapshot(0)
	if !s.Owner {
		t.Error("duplicate grant cleared ownership")
	}
	if s.Gen < genAfterWrite {
		t.Errorf("frame regressed: gen %d < %d", s.Gen, genAfterWrite)
	}
	var v uint64
	c.spawn(1, "check", func(p *host.Proc) {
		v, _ = d1.Load(p, RW, addr, 4)
	})
	c.run(t, 6*time.Second)
	if v != 5 {
		t.Errorf("owner value = %d, want 5 (duplicate grant must be dropped)", v)
	}
	c.checkInvariants(t)
}

// buildDataPacket encodes a TypeData packet for fault-injection tests.
func buildDataPacket(t *testing.T, page vm.PageID, short bool, ownerTo int16, gen uint32, data []byte) []byte {
	t.Helper()
	b, err := proto.Encode(proto.Packet{
		Type: proto.TypeData, Page: page, Short: short,
		From: 0, OwnerTo: ownerTo, Gen: gen, Data: data,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestUnreachableOwnerRecoversViaRetry(t *testing.T) {
	// The paper's reliability scenario: "Hosts may become unreachable
	// for a period of time and yet still have a copy of the page."
	// While the owner is off the wire, demand requests go unanswered;
	// the requester's retransmit timer keeps asking and succeeds once
	// the owner returns.
	c := newTestCluster(t, 2, ethernet.DefaultParams(), fastConfig(4))
	d0, d1 := c.drivers[0], c.drivers[1]
	d0.CreatePage(0)
	addr := NewAddr(0, 0).Short()

	c.spawn(0, "w", func(p *host.Proc) {
		_ = d0.MapIn(p, RW, 0)
		_ = d0.Store(p, RW, addr, 4, 404)
	})
	c.run(t, 50*time.Millisecond)

	// Take host0 off the wire for 400ms.
	d0.nic.SetDown(true)
	recoverAt := c.k.Now() + 400*time.Millisecond
	c.k.At(recoverAt, "recover", func() {
		d0.nic.SetDown(false)
	})

	var got uint64
	var gotAt time.Duration
	c.spawn(1, "r", func(p *host.Proc) {
		_ = d1.MapIn(p, RO, 0)
		got, _ = d1.Load(p, RO, addr, 4)
		gotAt = p.Now()
	})
	c.run(t, 10*time.Second)

	if got != 404 {
		t.Fatalf("read = %d, want 404 after owner recovery", got)
	}
	if gotAt < recoverAt {
		t.Errorf("read completed at %v, before the owner was reachable (%v)", gotAt, recoverAt)
	}
	if d1.Metrics().Retries == 0 {
		t.Error("no retries recorded while the owner was unreachable")
	}
	c.checkInvariants(t)
}

func TestMapOutStopsAccessButKeepsContents(t *testing.T) {
	c := newTestCluster(t, 1, ethernet.DefaultParams(), fastConfig(4))
	d0 := c.drivers[0]
	d0.CreatePage(0)
	addr := NewAddr(0, 0).Short()
	c.spawn(0, "p", func(p *host.Proc) {
		_ = d0.MapIn(p, RW, 0)
		_ = d0.Store(p, RW, addr, 4, 9)
		d0.MapOut(RW, 0)
		if err := d0.Store(p, RW, addr, 4, 10); !errors.Is(err, ErrNotMapped) {
			t.Errorf("store after MapOut err = %v, want ErrNotMapped", err)
		}
		// Remap: contents survived.
		_ = d0.MapIn(p, RW, 0)
		v, err := d0.Load(p, RW, addr, 4)
		if err != nil || v != 9 {
			t.Errorf("after remap: %d, %v; want 9", v, err)
		}
	})
	c.run(t, time.Second)
}

func TestServerAccessorAndStop(t *testing.T) {
	c := newTestCluster(t, 1, ethernet.DefaultParams(), fastConfig(4))
	d0 := c.drivers[0]
	if d0.Server() == nil {
		t.Fatal("user-level server process missing")
	}
	c.run(t, 50*time.Millisecond)
	d0.Stop()
	c.run(t, 100*time.Millisecond)
	// After Stop the server proc eventually exits; new work is not
	// processed but the driver does not crash.
	d0.CreatePage(1)
	c.checkInvariants(t)
}

func TestSnapshotReflectsDriverState(t *testing.T) {
	c := newTestCluster(t, 1, ethernet.DefaultParams(), fastConfig(4))
	d0 := c.drivers[0]
	d0.CreatePage(0)
	s := d0.Snapshot(0)
	if !s.Owner || !s.RestOwner || !s.ShortPresent || !s.RestPresent {
		t.Errorf("created page snapshot = %+v", s)
	}
	if s.MappedRO || s.MappedRW || s.Locked || s.PurgePending {
		t.Errorf("fresh page has activity flags: %+v", s)
	}
	c.spawn(0, "p", func(p *host.Proc) {
		_ = d0.MapIn(p, RO, 0)
		_ = d0.MapIn(p, RW, 0)
	})
	c.run(t, time.Second)
	s = d0.Snapshot(0)
	if !s.MappedRO || !s.MappedRW {
		t.Errorf("mapped flags not reflected: %+v", s)
	}
}

func TestWriteBytesAcrossShortBoundaryNeedsFullView(t *testing.T) {
	c := newTestCluster(t, 1, ethernet.DefaultParams(), fastConfig(4))
	d0 := c.drivers[0]
	d0.CreatePage(0)
	c.spawn(0, "p", func(p *host.Proc) {
		_ = d0.MapIn(p, RW, 0)
		data := bytes.Repeat([]byte{7}, 64) // crosses offset 32
		if err := d0.WriteBytes(p, RW, NewAddr(0, 0), data); err != nil {
			t.Errorf("full-view cross-boundary write: %v", err)
		}
		// The same write through the short view must be rejected.
		if err := d0.WriteBytes(p, RW, NewAddr(0, 0).Short(), data); !errors.Is(err, vm.ErrBadAccess) {
			t.Errorf("short-view cross-boundary write err = %v, want ErrBadAccess", err)
		}
		buf := make([]byte, 64)
		if err := d0.ReadBytes(p, RW, NewAddr(0, 0), buf); err != nil {
			t.Errorf("read back: %v", err)
		}
		if !bytes.Equal(buf, data) {
			t.Error("cross-boundary bytes corrupted")
		}
	})
	c.run(t, time.Second)
}
