package core

import (
	"errors"
	"fmt"
	"time"

	"mether/internal/host"
	"mether/internal/medium"
	"mether/internal/proto"
	"mether/internal/vm"
)

// Errors returned by driver operations.
var (
	// ErrReadOnly reports a store through a read-only or data-driven view.
	ErrReadOnly = errors.New("core: store to read-only view")
	// ErrInvalidView reports an access combination the address space does
	// not provide (e.g. data-driven consistent access; paper note 2).
	ErrInvalidView = errors.New("core: invalid view for access")
	// ErrNotMapped reports access to a page that is not mapped in.
	ErrNotMapped = errors.New("core: page not mapped")
	// ErrLockFailed reports a failed Lock; missing subsets were marked
	// wanted per Figure 1, so a retry after they arrive will succeed.
	ErrLockFailed = errors.New("core: lock failed")
	// ErrNotPresent reports an operation that needs resident data the
	// host does not hold (e.g. purging an absent full page).
	ErrNotPresent = errors.New("core: page not present")
)

// Config carries the Mether driver/server cost model and limits.
type Config struct {
	// NumPages bounds the global Mether page space for this world.
	NumPages int
	// RetryTimeout is how long the server waits for a demand request to
	// be satisfied before retransmitting. Mether runs over unreliable
	// datagrams; requests must be retried.
	RetryTimeout time.Duration
	// PacketCost is the user-level server's CPU cost to handle or send
	// one packet (UDP traversal, context bookkeeping).
	PacketCost time.Duration
	// ByteCost is the per-payload-byte CPU cost (copies and checksums);
	// this is what makes 8 KiB transfers so much more expensive than
	// short pages on the host as well as on the wire.
	ByteCost time.Duration
	// MinResidency is the anti-thrash holdoff: after ownership arrives,
	// steal requests are deferred this long so the local client can use
	// the page at least once. Without it two writers ping-pong a page
	// endlessly with neither making progress.
	MinResidency time.Duration
	// KernelServer runs protocol processing at interrupt level instead
	// of in a user-level server process — the paper's proposed fix for
	// the context-switch bottleneck. See kernel.go.
	KernelServer bool
	// TrunkOf maps every host id to its Ethernet trunk (nil = the
	// classic single-trunk world). The driver uses it only for
	// diagnostics: bridge queues reorder broadcasts between trunks, so a
	// refresh can arrive after a newer one already landed — the paper's
	// "which purge goes out first depends on the depth of the queues in
	// the hosts and the bridges" hazard — and the trunk map lets
	// Metrics.CrossTrunkStale count exactly those arrivals.
	TrunkOf []int
	// Views is the world's decode-once view pool (see view.go): drivers
	// sharing a pool parse each broadcast once per delivery instead of
	// once per receiver. Nil disables caching (drivers decode directly,
	// the pre-cache behaviour); world builders wire one pool per world.
	Views *ViewPool
	// Redundancy is the redundant-fetch fan-out k for read faults: a
	// non-consistent demand request additionally names the k-1 nearest
	// peers (trunk-aware) as extra targets, any of which may answer from
	// a resident replica. The first response wins; replicas whose answer
	// is overtaken by a transit suppress it. 0 or 1 is the classic
	// owner-only protocol and leaves the wire format byte-identical.
	Redundancy int
	// NumHosts is the world's host count, needed by the redundant-fetch
	// target selection (0 disables redundancy regardless of Redundancy).
	NumHosts int
	// TrunkHops returns the bridge-hop distance between two trunks for
	// nearest-first target ordering. Nil falls back to 0 (same trunk) /
	// 1 (different trunk) derived from TrunkOf.
	TrunkHops func(a, b int) int
	// ClaimRetries arms orphaned-ownership recovery: after this many
	// consecutive unanswered retries (the owner has stopped answering —
	// it crashed and its authority is orphaned), the requester claims the
	// page, self-minting ownership at a bumped generation and
	// broadcasting the claim. 0 (the default) disables claiming, which
	// keeps every healthy-world cell byte-identical; fault worlds whose
	// schedule can orphan authority turn it on. Worlds that partition
	// must leave it off: a requester cut off by a bridge cannot
	// distinguish a crashed owner from an unreachable one, and claiming
	// across a partition would mint a second owner that the heal exposes.
	ClaimRetries int
	// LazyReplicas keeps the receive path from materializing page state
	// for pages this host has never touched: snooped broadcasts that are
	// not addressed here are noted in a transit bitmap and skipped
	// (handling cost is still charged — the skip is memory-only). The
	// trade is that an untouched seeded replica no longer tracks refresh
	// broadcasts, so its first materialized read sees the seed-time zeros
	// rather than the latest transit, and redundant-fetch targets without
	// state never answer. The classic grids leave this off (their warm
	// multi-trunk and k>1 cells measure exactly those refresh effects);
	// the 4096/10000-host tiers turn it on, where hosts touch O(1) of the
	// page space and per-host state must track the working set.
	LazyReplicas bool
}

// DefaultConfig returns the calibrated Sun-3/50-class server cost model.
func DefaultConfig(numPages int) Config {
	return Config{
		NumPages:     numPages,
		RetryTimeout: 250 * time.Millisecond,
		PacketCost:   1500 * time.Microsecond,
		ByteCost:     3 * time.Microsecond,
		MinResidency: 10 * time.Millisecond,
	}
}

// Driver is one host's Mether kernel driver plus the state shared with
// its user-level server. All client-facing methods must be called from a
// process goroutine on the same host (they may block the caller); the
// server runs as its own process started by StartServer.
type Driver struct {
	h     *host.Host
	nic   medium.Port
	cfg   Config
	id    int16
	trunk int // this host's trunk (0 when Config.TrunkOf is nil)

	// shards is the two-level page directory (directory.go): a dense
	// slice of shard pointers indexed by PageID>>shardBits, with leaf
	// shards materialized on first touch so footprint tracks the working
	// set. The hot-path lookup stays a branch plus two indexes.
	shards []*pageShard
	// seedRanges records warm-replica seeding (SeedReplicaRange) applied
	// lazily as directory entries materialize.
	seedRanges []pageRange
	// transits marks pages whose TypeData broadcasts were snooped while
	// unmaterialized (LazyReplicas mode); nil until first needed.
	transits []uint64
	// workq is drained via workHead instead of re-slicing so the backing
	// array is reused once the queue empties.
	workq     []workItem
	workHead  int
	stopped   bool
	server    *host.Proc
	kDraining bool
	m         Metrics
	// txBuf is the reusable packet-encode scratch buffer: transmit
	// encodes into it and the NIC copies it onto the (pooled) wire
	// buffer, so steady-state sends do not allocate.
	txBuf []byte
	// serverKey, intrFn and stepFn are the pre-boxed wakeup key and the
	// prebuilt closures for the frame-arrival and kernel-server drain
	// paths.
	serverKey any
	intrFn    func()
	stepFn    func()
	// Fault-plane state (world.CrashHost / RecoverHost). down mirrors the
	// NIC; everCrashed stays set forever after the first crash and gates
	// the ghost fence (a host that never crashed keeps PR 6's exact
	// adopt-or-drop behaviour). downSince/rejoinStart/rejoinPending drive
	// the UnavailNS and RejoinNS measurements.
	down          bool
	everCrashed   bool
	rejoinPending bool
	downSince     time.Duration
	rejoinStart   time.Duration
	// redundant is the cached nearest-first extra-target list for
	// redundant fetches (page-independent, built lazily once); its wire
	// encoding is cached alongside so request sends do not re-encode it.
	redundant    []int16
	redundantEnc []byte
}

type workKind uint8

const (
	workSendReq workKind = iota + 1
	workPurge
	workRedeliver
	// workRedundant is a replica's deferred answer to a redundant fetch
	// that named this host as an extra target; seq snapshots the page's
	// transit count so the answer is suppressed if any transit (almost
	// always the winning reply) covered the page in the meantime.
	workRedundant
	// workClaim is the orphaned-ownership claim: ClaimRetries retries
	// went unanswered, so the server re-mints authority for the page
	// (re-checking that nothing arrived in the meantime).
	workClaim
)

type workItem struct {
	kind workKind
	page vm.PageID
	req  deferredReq
	seq  uint64
}

// New creates the driver for host h using port n (a station on whatever
// medium the world was built over). The port's interrupt callback must
// be wired (by the caller) to d.FrameArrived.
func New(h *host.Host, n medium.Port, cfg Config) *Driver {
	if cfg.NumPages <= 0 || cfg.NumPages > addrPageMax || cfg.NumPages > proto.MaxPages {
		panic(fmt.Sprintf("core: NumPages %d out of range", cfg.NumPages))
	}
	if h.ID() > proto.MaxHostID {
		panic(fmt.Sprintf("core: host id %d beyond the wire format's %d", h.ID(), proto.MaxHostID))
	}
	d := &Driver{
		h:      h,
		nic:    n,
		cfg:    cfg,
		id:     int16(h.ID()),
		shards: make([]*pageShard, (cfg.NumPages+shardSize-1)>>shardBits),
	}
	if cfg.TrunkOf != nil {
		d.trunk = cfg.TrunkOf[h.ID()]
	}
	d.serverKey = serverKey{h.ID()}
	d.intrFn = func() { d.h.Wakeup(d.serverKey) }
	if cfg.KernelServer {
		// stepFn only drives the interrupt-level drain loop; user-level
		// server worlds never call it, so don't box a closure per driver.
		d.stepFn = func() { d.kernelStep() }
	}
	return d
}

// Host returns the driver's host.
func (d *Driver) Host() *host.Host { return d.h }

// Metrics returns the driver's counters; the pointer stays valid for the
// driver's lifetime.
func (d *Driver) Metrics() *Metrics { return &d.m }

// FrameArrived is the NIC interrupt hook: it wakes the user-level server
// after the configured interrupt latency — or, in kernel-server mode,
// processes the frame at interrupt level.
func (d *Driver) FrameArrived() {
	if d.cfg.KernelServer {
		d.kernelKick(d.h.Params().InterruptCost)
		return
	}
	d.h.Interrupt(d.intrFn)
}

// CreatePage makes this host the initial owner of a page: the consistent
// copy and the authoritative remainder both start here, zero-filled.
func (d *Driver) CreatePage(id vm.PageID) {
	st := d.page(id)
	st.owner = true
	st.restOwner = true
	st.shortPresent = true
	st.restPresent = true
}

// MapIn maps a page into the given space. Per Figure 1 ("mapping a page
// in: all subsets must be present; supersets need not be present") the
// call demand-fetches the short page if it is absent, blocking the
// caller; the full remainder is not fetched.
func (d *Driver) MapIn(p *host.Proc, mode Mode, id vm.PageID) error {
	st := d.page(id)
	switch mode {
	case RO:
		st.mappedRO = true
	case RW:
		st.mappedRW = true
	default:
		return fmt.Errorf("%w: mode %v", ErrInvalidView, mode)
	}
	if st.shortPresent {
		return nil
	}
	start := p.Now()
	for !st.shortPresent {
		if err := d.demandFault(p, st, needSet{short: true}); err != nil {
			return err
		}
	}
	d.m.FaultLatency.Observe(p.Now() - start)
	return nil
}

// MapOut removes a mapping. Contents stay resident (pageout is separate).
func (d *Driver) MapOut(mode Mode, id vm.PageID) {
	st := d.page(id)
	switch mode {
	case RO:
		st.mappedRO = false
	case RW:
		st.mappedRW = false
	}
}

// needSet describes what a faulting access requires.
type needSet struct {
	short      bool // first 32 bytes resident
	rest       bool // remainder resident
	consistent bool // ownership (consistent copy) held here
	restAuth   bool // authoritative remainder held here
}

// accessNeeds computes requirements for an access at a. Per Figure 1's
// fault row, a fault on the short space pages in only the subset, while a
// fault on the full space pages in all subsets — the entire 8 KiB page.
// This is exactly the paper's protocol-1 versus protocol-2 distinction:
// "when a process required access to the 32-bit word [through the full
// space] an entire Sun page had to be transferred."
func accessNeeds(mode Mode, a Addr, size int) needSet {
	_ = size // the view, not the access width, decides the extent
	n := needSet{short: true}
	if !a.IsShort() {
		n.rest = true
	}
	if mode == RW {
		n.consistent = true
		if n.rest {
			n.restAuth = true
		}
	}
	return n
}

// satisfied reports whether the page state meets the needs.
func (st *pageState) satisfied(n needSet) bool {
	if n.short && !st.shortPresent {
		return false
	}
	if n.rest && !st.restPresent {
		return false
	}
	if n.consistent && !st.owner {
		return false
	}
	if n.restAuth && !st.restOwner {
		return false
	}
	return true
}

// checkAccess validates view/mode legality for an access.
func (d *Driver) checkAccess(mode Mode, a Addr, size int, write bool) (*pageState, error) {
	if err := a.CheckAccess(size); err != nil {
		return nil, err
	}
	st := d.page(a.Page())
	switch mode {
	case RO:
		if !st.mappedRO {
			return nil, fmt.Errorf("%w: page %d (ro)", ErrNotMapped, a.Page())
		}
		if write {
			return nil, fmt.Errorf("%w: %v", ErrReadOnly, a)
		}
	case RW:
		if !st.mappedRW {
			return nil, fmt.Errorf("%w: page %d (rw)", ErrNotMapped, a.Page())
		}
		if a.IsData() {
			// "Note that the consistent space can only be demand-driven."
			return nil, fmt.Errorf("%w: data-driven consistent access at %v", ErrInvalidView, a)
		}
	default:
		return nil, fmt.Errorf("%w: mode %v", ErrInvalidView, mode)
	}
	return st, nil
}

// access drives the fault loop until the needs are met, then calls fn.
// It implements both demand-driven and data-driven semantics.
func (d *Driver) access(p *host.Proc, mode Mode, a Addr, size int, write bool, fn func(st *pageState) error) error {
	st, err := d.checkAccess(mode, a, size, write)
	if err != nil {
		return err
	}
	needs := accessNeeds(mode, a, size)
	faulted := false
	start := p.Now()
	for !st.satisfied(needs) {
		faulted = true
		if a.IsData() {
			if err := d.dataFault(p, st); err != nil {
				return err
			}
		} else {
			if err := d.demandFault(p, st, needs); err != nil {
				return err
			}
		}
	}
	if faulted {
		d.m.FaultLatency.Observe(p.Now() - start)
	}
	return fn(st)
}

// demandFault blocks the caller until something about the page changes,
// after marking wants and queueing a request for the server to send.
// Callers loop: the wake may be for a different region than needed.
func (d *Driver) demandFault(p *host.Proc, st *pageState, needs needSet) error {
	d.m.DemandFaults++
	p.UseSys(d.h.Params().TrapCost)
	// Re-check after the trap: the wanted data may have arrived while the
	// trap cost was being charged (the client can be preempted in Use).
	if st.satisfied(needs) {
		return nil
	}
	if needs.short && !st.shortPresent {
		st.wantShort = true
	}
	if needs.rest && !st.restPresent {
		st.wantRest = true
	}
	if needs.consistent && !st.owner {
		st.wantConsistent = true
	}
	if needs.restAuth && !st.restOwner {
		st.wantRest = true
	}
	d.queueRequest(st)
	p.SleepOn(st.waitK)
	return nil
}

// dataFault blocks the caller until any copy of the page transits the
// network. No request is sent: this fault is completely passive — except
// when a transit slipped between the caller's purge and this fault, in
// which case waiting would deadlock and the driver falls back to one
// demand fetch to preserve liveness.
func (d *Driver) dataFault(p *host.Proc, st *pageState) error {
	d.m.DataFaults++
	p.UseSys(d.h.Params().TrapCost)
	if st.shortPresent { // a transit landed during the trap
		return nil
	}
	if st.transitSeq != st.dataArmSeq {
		st.dataArmSeq = st.transitSeq
		d.m.DataFallbacks++
		st.wantShort = true
		d.queueRequest(st)
		p.SleepOn(st.waitK)
		return nil
	}
	st.dataWaiters++
	p.SleepOn(st.waitK)
	st.dataWaiters--
	return nil
}

// queueRequest schedules the server to send a demand request for the
// page unless an in-flight request already covers the current wants.
func (d *Driver) queueRequest(st *pageState) {
	if st.reqInFlight && st.reqCoversWants() {
		return
	}
	st.reqInFlight = true
	d.enqueueWork(workItem{kind: workSendReq, page: st.page})
}

// enqueueWork appends server work and wakes whoever processes it.
func (d *Driver) enqueueWork(w workItem) {
	d.workq = append(d.workq, w)
	if d.cfg.KernelServer {
		d.kernelKick(0)
		return
	}
	d.h.Wakeup(d.serverKey)
}

// dequeueWork pops the oldest pending work item. The backing array is
// reused once the queue drains.
func (d *Driver) dequeueWork() (workItem, bool) {
	if d.workHead >= len(d.workq) {
		return workItem{}, false
	}
	w := d.workq[d.workHead]
	d.workq[d.workHead] = workItem{}
	d.workHead++
	if d.workHead == len(d.workq) {
		d.workq = d.workq[:0]
		d.workHead = 0
	}
	return w, true
}

// Load reads an integer of size 1, 2, 4 or 8 bytes through the given
// mapping and address, faulting as needed.
func (d *Driver) Load(p *host.Proc, mode Mode, a Addr, size int) (uint64, error) {
	var v uint64
	err := d.access(p, mode, a, size, false, func(st *pageState) error {
		var err error
		v, err = st.frame.Load(a.Offset(), size)
		return err
	})
	return v, err
}

// Store writes an integer of size 1, 2, 4 or 8 bytes through the given
// mapping and address, faulting in the consistent copy as needed.
func (d *Driver) Store(p *host.Proc, mode Mode, a Addr, size int, v uint64) error {
	return d.access(p, mode, a, size, true, func(st *pageState) error {
		return st.frame.Store(a.Offset(), size, v)
	})
}

// ReadBytes copies len(buf) bytes from the page into buf.
func (d *Driver) ReadBytes(p *host.Proc, mode Mode, a Addr, buf []byte) error {
	return d.access(p, mode, a, len(buf), false, func(st *pageState) error {
		return st.frame.ReadBytes(a.Offset(), buf)
	})
}

// WriteBytes copies data into the page.
func (d *Driver) WriteBytes(p *host.Proc, mode Mode, a Addr, data []byte) error {
	return d.access(p, mode, a, len(data), true, func(st *pageState) error {
		return st.frame.WriteBytes(a.Offset(), data)
	})
}

// Purge implements the PURGE operator (syscall).
//
// Read-only (or unowned) pages: the local copy of the addressed view is
// invalidated; the next access refetches — the application's active
// update. Per Figure 1, purging the short view leaves the superset
// remainder resident and purging the full view invalidates all subsets.
// Purging a page whose consistent copy is local through a read-only view
// is a no-op (the only consistent copy cannot be discarded); this is
// exactly why the paper's fourth protocol "continues to sample a value
// that is not changing".
//
// Writable (owned) pages: the page is marked purge-pending and the caller
// sleeps until the server has broadcast a read-only copy and issued
// DO-PURGE — the passive update that propagates new contents.
func (d *Driver) Purge(p *host.Proc, mode Mode, a Addr) error {
	st := d.page(a.Page())
	p.UseSys(d.h.Params().SyscallCost)
	if mode == RW && st.owner {
		if !a.IsShort() && !st.restPresent {
			return fmt.Errorf("%w: full purge of page %d without remainder", ErrNotPresent, a.Page())
		}
		d.m.PurgesRW++
		st.purgePending = true
		st.purgeShort = a.IsShort()
		d.enqueueWork(workItem{kind: workPurge, page: st.page})
		for st.purgePending {
			p.SleepOn(st.purgeK)
		}
		return nil
	}
	d.m.PurgesRO++
	if st.owner {
		return nil // sole consistent copy: purge is a no-op
	}
	st.shortPresent = false
	// Purge invalidates replicas; an authoritative remainder (held after
	// granting ownership via a short transfer) is not a replica and must
	// survive, or its bytes would be lost cluster-wide.
	if !a.IsShort() && !st.restOwner {
		st.restPresent = false
	}
	// Arm the purge→data-fault race detector: a transit arriving from
	// here until the next data-driven fault must not be missed.
	st.dataArmSeq = st.transitSeq
	return nil
}

// Lock implements the Figure-1 lock rules. Locking pins the page's
// resident copies: the server defers remote requests (including
// consistency transfers) until Unlock. Missing pieces fail the lock and
// are marked wanted so the server fetches them in the background.
func (d *Driver) Lock(p *host.Proc, mode Mode, a Addr) error {
	st := d.page(a.Page())
	p.UseSys(d.h.Params().SyscallCost)
	missing := false
	if !st.shortPresent {
		st.wantShort = true
		missing = true
	}
	// For a short-view lock the superset (the full page) must be present
	// though it is not itself locked; for a full-view lock the remainder
	// is a subset and must be present too.
	if !st.restPresent {
		st.wantRest = true
		missing = true
	}
	if missing {
		d.m.LockFails++
		d.queueRequest(st)
		return fmt.Errorf("%w: page %d has absent pieces (marked wanted)", ErrLockFailed, a.Page())
	}
	st.locked = true
	if a.IsShort() {
		// Supersets are unmapped for the duration of the lock.
		st.fullUnmappedByLock = true
	}
	_ = mode
	return nil
}

// Unlock releases a lock and redelivers requests deferred while it was
// held.
func (d *Driver) Unlock(p *host.Proc, a Addr) error {
	st := d.page(a.Page())
	p.UseSys(d.h.Params().SyscallCost)
	if !st.locked {
		return fmt.Errorf("core: unlock of unlocked page %d", a.Page())
	}
	st.locked = false
	st.fullUnmappedByLock = false
	d.flushDeferred(st)
	return nil
}

// flushDeferred requeues requests that arrived while the page was locked
// or purge-pending.
func (d *Driver) flushDeferred(st *pageState) {
	for _, r := range st.deferred {
		d.enqueueWork(workItem{kind: workRedeliver, page: st.page, req: r})
	}
	st.deferred = nil
}

// PageOut implements the Figure-1 pageout rule: all subsets of the
// addressed view are paged out; supersets stay resident but are unmapped.
// Pageout applies to replicas only: Mether has no backing store, so
// evicting a region this host holds the authority for (the consistent
// copy or the authoritative remainder) would destroy the only current
// bytes, and the call refuses.
func (d *Driver) PageOut(a Addr) error {
	st := d.page(a.Page())
	if a.IsShort() {
		if st.owner {
			return fmt.Errorf("%w: pageout of the consistent copy of page %d", ErrNotPresent, a.Page())
		}
		st.shortPresent = false
		st.fullUnmappedByLock = false
		st.fullUnmapped = true
		return nil
	}
	if st.owner || st.restOwner {
		return fmt.Errorf("%w: pageout of an authoritative region of page %d", ErrNotPresent, a.Page())
	}
	st.shortPresent = false
	st.restPresent = false
	return nil
}

// PageSnapshot is an observable copy of per-page driver state for tests
// and diagnostics.
type PageSnapshot struct {
	ShortPresent bool
	RestPresent  bool
	Owner        bool
	RestOwner    bool
	MappedRO     bool
	MappedRW     bool
	Locked       bool
	FullUnmapped bool
	PurgePending bool
	WantShort    bool
	WantRest     bool
	WantCons     bool
	DataWaiters  int
	Gen          uint64
}

// Snapshot returns the current state of a page on this host.
func (d *Driver) Snapshot(id vm.PageID) PageSnapshot {
	st := d.page(id)
	return PageSnapshot{
		ShortPresent: st.shortPresent,
		RestPresent:  st.restPresent,
		Owner:        st.owner,
		RestOwner:    st.restOwner,
		MappedRO:     st.mappedRO,
		MappedRW:     st.mappedRW,
		Locked:       st.locked,
		FullUnmapped: st.fullUnmapped || st.fullUnmappedByLock,
		PurgePending: st.purgePending,
		WantShort:    st.wantShort,
		WantRest:     st.wantRest,
		WantCons:     st.wantConsistent,
		DataWaiters:  st.dataWaiters,
		Gen:          st.frame.Gen(),
	}
}

// redundantTargets returns the wire-encoded extra-target list naming
// the `extra` nearest peers for a redundant fetch. Nearest-first is
// trunk-aware: peers are ordered by bridge-hop distance from this
// host's trunk, then by host-id distance (replicas of a page cluster
// around its numeric neighbourhood in the block-partitioned worlds),
// then by id for determinism. The list is page-independent, so it is
// built once and cached; a host that turns out to be the owner is
// harmless as a target (the owner answers the broadcast anyway and a
// targeted owner skips the extra serve).
func (d *Driver) redundantTargets(extra int) []byte {
	if extra <= 0 || d.cfg.NumHosts <= 1 {
		return nil
	}
	if d.redundantEnc == nil {
		hops := d.cfg.TrunkHops
		if hops == nil {
			hops = func(a, b int) int {
				if a == b {
					return 0
				}
				return 1
			}
		}
		trunkOf := func(h int) int {
			if d.cfg.TrunkOf == nil || h >= len(d.cfg.TrunkOf) {
				return 0
			}
			return d.cfg.TrunkOf[h]
		}
		self := d.h.ID()
		max := proto.MaxRedundantTargets
		ids := make([]int16, 0, max)
		// Selection sort of the first `max` peers by (hops, |Δid|, id):
		// host counts reach 1024 but max is 8, so the scan is cheap and
		// allocation-free beyond the cached slices.
		better := func(a, b int) bool {
			ha, hb := hops(trunkOf(self), trunkOf(a)), hops(trunkOf(self), trunkOf(b))
			if ha != hb {
				return ha < hb
			}
			da, db := a-self, b-self
			if da < 0 {
				da = -da
			}
			if db < 0 {
				db = -db
			}
			if da != db {
				return da < db
			}
			return a < b
		}
		for len(ids) < max && len(ids) < d.cfg.NumHosts-1 {
			best := -1
			for h := 0; h < d.cfg.NumHosts; h++ {
				if h == self {
					continue
				}
				taken := false
				for _, t := range ids {
					if int(t) == h {
						taken = true
						break
					}
				}
				if taken {
					continue
				}
				if best < 0 || better(h, best) {
					best = h
				}
			}
			if best < 0 {
				break
			}
			ids = append(ids, int16(best))
		}
		d.redundant = ids
		d.redundantEnc = proto.AppendTargets(make([]byte, 0, 2*len(ids)), ids)
	}
	if extra > len(d.redundant) {
		extra = len(d.redundant)
	}
	return d.redundantEnc[:2*extra]
}

// CheckInvariants verifies the cluster-wide single-consistent-copy
// invariants over a set of drivers sharing one page space: each page has
// exactly one owner and one rest-owner, owners hold their regions, and
// locked/purge-pending flags only appear on owners' pages where required.
// The walk is driver-major over materialized shards only — an
// unmaterialized (or merely seeded) entry holds no authority by
// construction, so skipping it checks the same invariants in
// O(working set + pages) instead of O(drivers × pages).
func CheckInvariants(drivers ...*Driver) error {
	if len(drivers) == 0 {
		return nil
	}
	n := drivers[0].cfg.NumPages
	owners := make([]int16, n)
	restOwners := make([]int16, n)
	for _, d := range drivers {
		for si, s := range d.shards {
			if s == nil {
				continue
			}
			for i := range s {
				st := &s[i]
				if !st.inited {
					continue
				}
				pg := si<<shardBits | i
				if st.owner {
					owners[pg]++
					if !st.shortPresent {
						return fmt.Errorf("host %d owns page %d without short presence", d.h.ID(), pg)
					}
				}
				if st.restOwner {
					restOwners[pg]++
					if !st.restPresent {
						return fmt.Errorf("host %d rest-owns page %d without rest presence", d.h.ID(), pg)
					}
				}
			}
		}
	}
	for pg := 0; pg < n; pg++ {
		if owners[pg] > 1 {
			return fmt.Errorf("page %d has %d consistent copies", pg, owners[pg])
		}
		if restOwners[pg] > 1 {
			return fmt.Errorf("page %d has %d rest owners", pg, restOwners[pg])
		}
	}
	return nil
}
